#!/usr/bin/env bash
# Release-mode bench smoke: run every bench binary for a few iterations so a
# perf-path crash (OOB table index, allocation blow-up, divergent loop) fails
# CI instead of the next person's perf run. Also exercises the shared --json
# reporting. Usage: scripts/bench_smoke.sh <build-dir> [out-dir]
set -euo pipefail

build_dir=${1:?usage: bench_smoke.sh <build-dir> [out-dir]}
out_dir=${2:-"$build_dir/bench-json"}
mkdir -p "$out_dir"

runs=2
threads=2

run() {
  echo "--- $* ---"
  "$@" > /dev/null
}

run "$build_dir/bench_table1_success_rate" $runs --threads $threads --json "$out_dir/"
run "$build_dir/bench_fig8_solution_distribution" $runs --threads $threads --json "$out_dir/"
run "$build_dir/bench_fig9_distinct_solutions" $runs --threads $threads --json "$out_dir/"
run "$build_dir/bench_fig10_time_to_solution" $runs --threads $threads --json "$out_dir/"
run "$build_dir/bench_scaling" $runs --threads $threads --json "$out_dir/"
run "$build_dir/bench_tiled_scaling" 1 --threads $threads --json "$out_dir/"
run "$build_dir/bench_service_throughput" 6 --threads $threads --json "$out_dir/"
run "$build_dir/bench_serve_throughput" 3 --threads $threads --json "$out_dir/"
run "$build_dir/bench_store" 8 --json "$out_dir/"
run "$build_dir/bench_fig2_fefet_idvg"
run "$build_dir/bench_fig5_wta_cell"
run "$build_dir/bench_fig7a_crossbar_linearity"
run "$build_dir/bench_fig7b_wta_corners"
run "$build_dir/bench_ablation_quantization" $runs
run "$build_dir/bench_ablation_variability" $runs
run "$build_dir/bench_ablation_faults" $runs
run "$build_dir/bench_ablation_mlc" $runs
run "$build_dir/bench_ablation_squbo" $runs
if [ -x "$build_dir/bench_micro_vmv" ]; then
  run "$build_dir/bench_micro_vmv" --benchmark_min_time=0.01 --json "$out_dir/"
fi

echo "bench smoke OK; JSON reports in $out_dir:"
ls "$out_dir"
