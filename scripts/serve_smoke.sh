#!/usr/bin/env bash
# End-to-end smoke of the Nash-serving gateway: boots nash_serve with four
# event-loop threads on an ephemeral loopback port and drives nash_client
# through the acceptance scenarios — cold solve, byte-identical cached
# re-solve in both framings (JSON lines and binary), anytime solve streaming
# progress frames, deadline-degraded solve that is never cached, large-game
# batch, tiled-backend round trip, malformed request → structured error,
# graceful SIGTERM drain (exit 0) — then the persistence scenarios: a gateway
# restarted against the same --store-dir answers a previously solved request
# byte-identically with zero solver jobs, nash_store fsck is safe on a live
# directory, and a deliberately truncated segment (simulated crash) is
# reported by fsck and repaired by the next boot.
#
# Observability: the main server boots with --trace-out; the smoke scrapes
# the `metrics` method (JSON and Prometheus text, validating the required
# instrument names) and, after the drain, validates the written Chrome trace
# covers every pipeline stage. Set CNASH_TRACE_ARTIFACT to a path to keep
# the trace file (CI uploads it as an artifact); otherwise it dies with the
# temp dir.
# Usage: scripts/serve_smoke.sh <build-dir>
set -euo pipefail

build_dir=${1:?usage: serve_smoke.sh <build-dir>}
script_dir=$(cd "$(dirname "$0")" && pwd)
games_dir="$script_dir/../examples/games"
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

server="$build_dir/nash_serve"
client="$build_dir/nash_client"

trace_out=${CNASH_TRACE_ARTIFACT:-$out_dir/trace.json}

echo "--- boot nash_serve ---"
"$server" --threads 2 --serve-threads 4 --trace-out "$trace_out" \
  > "$out_dir/serve.stdout" 2> "$out_dir/serve.stderr" &
server_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(awk '/^LISTENING /{print $2}' "$out_dir/serve.stdout" 2>/dev/null || true)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server did not announce a port" >&2
  cat "$out_dir/serve.stderr" >&2
  exit 1
fi
echo "server pid $server_pid on port $port"

fail() {
  echo "FAIL: $*" >&2
  kill "$server_pid" 2>/dev/null || true
  exit 1
}

echo "--- backends ---"
"$client" --port "$port" --list-backends | tee "$out_dir/backends.txt"
grep -q '^hardware-sa-tiled' "$out_dir/backends.txt" \
  || fail "hardware-sa-tiled not registered"

echo "--- cold solve ---"
solve_flags=(--backend hardware-sa --runs 4 --iterations 500 --seed 99)
"$client" --port "$port" "${solve_flags[@]}" --json \
  "$games_dir/battle_of_sexes.game" > "$out_dir/cold.json"
grep -q '"cached":false' "$out_dir/cold.json" || fail "cold solve was cached?"
grep -q '"ok":true' "$out_dir/cold.json" || fail "cold solve failed"

echo "--- cached re-solve (byte-identical) ---"
"$client" --port "$port" "${solve_flags[@]}" --json \
  "$games_dir/battle_of_sexes.game" > "$out_dir/warm.json"
grep -q '"cached":true' "$out_dir/warm.json" || fail "re-solve missed the cache"
# Identical response except for the cached flag.
sed 's/"cached":[a-z]*/"cached":_/' "$out_dir/cold.json" > "$out_dir/cold.norm"
sed 's/"cached":[a-z]*/"cached":_/' "$out_dir/warm.json" > "$out_dir/warm.norm"
cmp -s "$out_dir/cold.norm" "$out_dir/warm.norm" \
  || fail "cached report is not byte-identical to the cold solve"

echo "--- binary cached re-solve (byte-identical across framings) ---"
"$client" --port "$port" "${solve_flags[@]}" --binary --json \
  "$games_dir/battle_of_sexes.game" > "$out_dir/warm_bin.json"
grep -q '"cached":true' "$out_dir/warm_bin.json" \
  || fail "binary re-solve missed the cache"
cmp -s "$out_dir/warm.json" "$out_dir/warm_bin.json" \
  || fail "binary cached reply differs from the JSON-lines reply"

echo "--- anytime solve: progress frames stream before the final ---"
"$client" --port "$port" --backend exact-sa --runs 24 --iterations 300 \
  --seed 11 --progress --deadline 30 --json \
  "$games_dir/stag_hunt.game" > "$out_dir/anytime.json"
progress_frames=$(grep -c '"progress":' "$out_dir/anytime.json" || true)
[ "$progress_frames" -ge 1 ] || fail "no progress frames streamed"
grep -q '"ok":true' "$out_dir/anytime.json" || fail "anytime solve failed"
if grep -q '"degraded":true' "$out_dir/anytime.json"; then
  fail "anytime solve with a generous deadline was degraded"
fi

echo "--- deadline cutoff: degraded report, never cached ---"
deadline_flags=(--backend exact-sa --runs 32 --iterations 5000 --seed 12
                --deadline 0.001)
"$client" --port "$port" "${deadline_flags[@]}" --json \
  "$games_dir/random_64.game" > "$out_dir/degraded1.json"
grep -q '"degraded":true' "$out_dir/degraded1.json" \
  || fail "deadline solve was not degraded (machine too fast? raise runs)"
"$client" --port "$port" "${deadline_flags[@]}" --json \
  "$games_dir/random_64.game" > "$out_dir/degraded2.json"
grep -q '"cached":false' "$out_dir/degraded2.json" \
  || fail "degraded report was served from the cache"

echo "--- large-game batch (64 and 128 actions) ---"
"$client" --port "$port" --backend exact-sa --intervals 4 --runs 2 \
  --iterations 300 "$games_dir/random_64.game" "$games_dir/random_128.game" \
  || fail "large-game batch"

echo "--- tiled-backend round trip ---"
"$client" --port "$port" --backend hardware-sa-tiled --runs 2 \
  --iterations 300 --tile-rows 64 --tile-cols 1024 \
  "$games_dir/stag_hunt.game" || fail "hardware-sa-tiled round trip"

echo "--- malformed request → structured error ---"
"$client" --port "$port" --raw 'this is not json' > "$out_dir/malformed.json"
grep -q '"code":"bad_request"' "$out_dir/malformed.json" \
  || fail "malformed request did not produce a structured error"

echo "--- stats sanity ---"
"$client" --port "$port" --stats --json > "$out_dir/stats.json"
grep -q '"hits":2' "$out_dir/stats.json" \
  || fail "expected exactly two cache hits (JSON + binary re-solve)"

echo "--- metrics scrape: text exposition carries every instrument family ---"
"$client" --port "$port" --metrics-text > "$out_dir/metrics.txt"
for name in \
    cnash_cache_hits_total cnash_cache_misses_total \
    cnash_admission_admitted_total cnash_store_hits_total \
    cnash_requests_total cnash_served_solves_ok_total \
    cnash_re_swap_proposals_total cnash_fallback_samples_total \
    cnash_degraded_reports_total cnash_service_threads \
    cnash_connections cnash_uptime_seconds \
    cnash_stage_parse_seconds cnash_stage_cache_lookup_seconds \
    cnash_stage_unit_seconds cnash_solve_wall_seconds; do
  grep -q "^$name" "$out_dir/metrics.txt" \
    || fail "metrics text exposition is missing $name"
done
grep -q '^cnash_solve_jobs_total{backend="' "$out_dir/metrics.txt" \
  || fail "metrics is missing the per-backend solve counter"
grep -q '^cnash_stage_parse_seconds{quantile="0.99"}' "$out_dir/metrics.txt" \
  || fail "stage histograms do not expose quantiles"
# Cross-check one mirrored counter against the stats method.
grep -q '^cnash_cache_hits_total 2$' "$out_dir/metrics.txt" \
  || fail "metrics cache-hit mirror disagrees with stats"
# Both degraded deadline solves must be visible.
grep -q '^cnash_degraded_reports_total 2$' "$out_dir/metrics.txt" \
  || fail "degraded reports did not surface in metrics"

echo "--- metrics scrape: JSON form ---"
"$client" --port "$port" --metrics --json > "$out_dir/metrics.json"
grep -q '"ok":true' "$out_dir/metrics.json" || fail "metrics method errored"
for key in '"counters"' '"gauges"' '"histograms"' \
    '"cnash_request_handle_seconds"' '"p99"'; do
  grep -q "$key" "$out_dir/metrics.json" \
    || fail "JSON metrics is missing $key"
done

echo "--- graceful SIGTERM drain ---"
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
[ "$server_rc" -eq 0 ] || fail "server exited $server_rc after SIGTERM"
grep -q 'drained' "$out_dir/serve.stderr" || fail "server did not report a drain"

echo "--- trace: written on drain, covers every pipeline stage ---"
[ -s "$trace_out" ] || fail "--trace-out produced no file"
grep -q '"traceEvents"' "$trace_out" || fail "trace is not Chrome trace JSON"
for span in request parse canonicalize cache admit queue-wait prepare unit \
    render flush read; do
  grep -q "\"name\":\"$span\"" "$trace_out" \
    || fail "trace is missing the $span span"
done
grep -q 'trace —' "$out_dir/serve.stderr" \
  || fail "server did not report the trace write"

# ---- persistence: the tier-2 store across restarts --------------------------

nash_store="$build_dir/nash_store"
store_dir="$out_dir/store"

# Boot a gateway against $store_dir; sets server_pid and port.
boot_with_store() {
  local log="$1"
  "$server" --threads 2 --serve-threads 2 --store-dir "$store_dir" \
    > "$out_dir/$log.stdout" 2> "$out_dir/$log.stderr" &
  server_pid=$!
  port=""
  for _ in $(seq 1 100); do
    port=$(awk '/^LISTENING /{print $2}' "$out_dir/$log.stdout" 2>/dev/null || true)
    [ -n "$port" ] && break
    sleep 0.1
  done
  [ -n "$port" ] || fail "store-backed server ($log) did not announce a port"
}

drain() {
  kill -TERM "$server_pid"
  local rc=0
  wait "$server_pid" || rc=$?
  [ "$rc" -eq 0 ] || fail "store-backed server exited $rc after SIGTERM"
}

echo "--- store: cold solves against --store-dir ---"
boot_with_store persist1
"$client" --port "$port" "${solve_flags[@]}" --json \
  "$games_dir/battle_of_sexes.game" > "$out_dir/persist_cold.json"
grep -q '"cached":false' "$out_dir/persist_cold.json" \
  || fail "first store-backed solve was cached?"
"$client" --port "$port" --backend exact-sa --runs 4 --iterations 300 \
  --seed 21 --json "$games_dir/stag_hunt.game" > /dev/null

echo "--- store: fsck is safe on a live directory ---"
"$nash_store" fsck "$store_dir" > "$out_dir/fsck_live.txt" \
  || fail "fsck on the live store dir found issues"
drain

echo "--- store: fsck + stats after a clean drain ---"
"$nash_store" fsck "$store_dir" | tee "$out_dir/fsck_drained.txt"
grep -q '^clean$' "$out_dir/fsck_drained.txt" || fail "drained store not clean"
"$nash_store" stats "$store_dir" --json > "$out_dir/store_stats.json"
grep -q '"entries":2' "$out_dir/store_stats.json" \
  || fail "expected 2 persisted entries, got: $(cat "$out_dir/store_stats.json")"

echo "--- store: restart serves the warm hit byte-identically, zero jobs ---"
boot_with_store persist2
"$client" --port "$port" "${solve_flags[@]}" --json \
  "$games_dir/battle_of_sexes.game" > "$out_dir/persist_warm.json"
grep -q '"cached":true' "$out_dir/persist_warm.json" \
  || fail "restarted gateway missed the disk tier"
sed 's/"cached":[a-z]*/"cached":_/' "$out_dir/persist_cold.json" \
  > "$out_dir/persist_cold.norm"
sed 's/"cached":[a-z]*/"cached":_/' "$out_dir/persist_warm.json" \
  > "$out_dir/persist_warm.norm"
cmp -s "$out_dir/persist_cold.norm" "$out_dir/persist_warm.norm" \
  || fail "disk-tier replay is not byte-identical to the pre-restart solve"
"$client" --port "$port" --stats --json > "$out_dir/persist_stats.json"
grep -q '"jobs_submitted":0' "$out_dir/persist_stats.json" \
  || fail "warm hit reached the solver pool"
grep -q '"enabled":true' "$out_dir/persist_stats.json" \
  || fail "stats does not report the store as enabled"
drain

echo "--- store: truncated segment is reported by fsck, repaired on boot ---"
segment=$(ls "$store_dir"/segment-*.log | sort | tail -1)
truncate -s -3 "$segment"
fsck_rc=0
"$nash_store" fsck "$store_dir" > "$out_dir/fsck_torn.txt" 2>&1 || fsck_rc=$?
[ "$fsck_rc" -eq 2 ] || fail "fsck exited $fsck_rc on a torn segment (want 2)"
grep -q 'torn tail' "$out_dir/fsck_torn.txt" \
  || fail "fsck did not name the torn tail"

boot_with_store persist3   # recovery truncates the torn record
"$client" --port "$port" "${solve_flags[@]}" --json \
  "$games_dir/battle_of_sexes.game" > "$out_dir/persist_recovered.json"
grep -q '"cached":true' "$out_dir/persist_recovered.json" \
  || fail "surviving record was lost by torn-tail recovery"
drain
"$nash_store" fsck "$store_dir" > "$out_dir/fsck_repaired.txt" \
  || fail "store not clean after torn-tail recovery"

echo "serve smoke OK"
