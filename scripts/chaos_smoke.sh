#!/usr/bin/env bash
# Chaos smoke of the Nash-serving gateway: boots nash_serve (ideally an ASan
# build) and attacks it with chaos_client — slow-loris ramp, mid-request
# disconnect storm, malformed floods — then exercises the robustness surface
# end to end: a 100% tile-fault resilient solve (fallback_count == runs), a
# deadline-bounded degraded solve, an FD-leak check against the pre-storm
# baseline, and a clean SIGTERM drain (exit 0). The robustness counters must
# also surface in the `metrics` exposition: fallback samples and degraded
# reports on the main server, and injected write stalls on a second server
# booted with CNASH_FAULT_WRITE_STALL=1.0.
# Usage: scripts/chaos_smoke.sh <build-dir> [connections]
set -euo pipefail

build_dir=${1:?usage: chaos_smoke.sh <build-dir> [connections]}
connections=${2:-200}
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

server="$build_dir/nash_serve"
client="$build_dir/nash_client"
chaos="$build_dir/chaos_client"

echo "--- boot nash_serve ---"
"$server" --threads 2 --serve-threads 3 --queue-depth 64 \
  > "$out_dir/serve.stdout" 2> "$out_dir/serve.stderr" &
server_pid=$!
port=""
for _ in $(seq 1 100); do
  port=$(awk '/^LISTENING /{print $2}' "$out_dir/serve.stdout" 2>/dev/null || true)
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "FAIL: server did not announce a port" >&2
  cat "$out_dir/serve.stderr" >&2
  exit 1
fi
echo "server pid $server_pid on port $port, $connections connections per storm"

fail() {
  echo "FAIL: $*" >&2
  cat "$out_dir/serve.stderr" >&2 || true
  kill "$server_pid" 2>/dev/null || true
  exit 1
}

fd_count() {
  ls "/proc/$server_pid/fd" 2>/dev/null | wc -l
}

# Baseline AFTER one served request so lazily-created fds (epoll, pipes,
# worker-thread plumbing) are already counted.
"$client" --port "$port" --status --json > /dev/null \
  || fail "pre-chaos status probe"
fd_baseline=$(fd_count)
echo "fd baseline: $fd_baseline"

echo "--- slow-loris ramp ---"
"$chaos" --port "$port" --mode slowloris --connections "$connections" \
  || fail "slowloris"

echo "--- disconnect storm ---"
"$chaos" --port "$port" --mode disconnect --connections "$connections" \
  || fail "disconnect storm"

echo "--- malformed flood ---"
"$chaos" --port "$port" --mode malformed --connections 64 \
  || fail "malformed flood"

echo "--- binary malformed-frame storm ---"
"$chaos" --port "$port" --mode frames --connections 64 \
  || fail "frames storm"

echo "--- resilient solve: 100% tile faults -> full exact-sa fallback ---"
resilient_req='{"method":"solve","id":1,"game":{"name":"mp","m":[[1,-1],[-1,1]],"n":[[-1,1],[1,-1]]},"backend":"resilient","primary":"hardware-sa-tiled","runs":4,"iterations":400,"seed":7,"fault":{"seed":11,"tile_rate":1.0}}'
"$client" --port "$port" --raw "$resilient_req" > "$out_dir/resilient.json"
grep -q '"ok":true' "$out_dir/resilient.json" || fail "resilient solve errored"
grep -q '"fallback_count":4' "$out_dir/resilient.json" \
  || fail "expected fallback_count == runs (4)"

echo "--- deadline solve -> degraded report ---"
deadline_req='{"method":"solve","id":2,"game":{"name":"mp","m":[[1,-1],[-1,1]],"n":[[-1,1],[1,-1]]},"backend":"exact-sa","runs":64,"iterations":1000000,"seed":3,"batch_lanes":1,"deadline_s":0.25}'
"$client" --port "$port" --raw "$deadline_req" > "$out_dir/deadline.json"
grep -q '"ok":true' "$out_dir/deadline.json" || fail "deadline solve errored"
grep -q '"degraded":true' "$out_dir/deadline.json" \
  || fail "deadline solve was not degraded (machine too fast? raise runs)"

echo "--- degraded/fallback reports are not cached ---"
"$client" --port "$port" --stats --json > "$out_dir/stats.json"
grep -q '"uncached_reports":2' "$out_dir/stats.json" \
  || fail "expected both robustness reports to be excluded from the cache"

echo "--- fault/fallback counters surface in metrics ---"
"$client" --port "$port" --metrics-text > "$out_dir/metrics.txt"
grep -q '^cnash_fallback_samples_total 4$' "$out_dir/metrics.txt" \
  || fail "metrics is missing the 4 fallback samples of the resilient solve"
grep -q '^cnash_degraded_reports_total 1$' "$out_dir/metrics.txt" \
  || fail "metrics is missing the degraded deadline report"
# Socket-fault counters must be exposed even when no faults are injected.
grep -q '^cnash_served_write_stalls_total 0$' "$out_dir/metrics.txt" \
  || fail "metrics is missing the write-stall counter"
grep -q '^cnash_served_injected_disconnects_total 0$' "$out_dir/metrics.txt" \
  || fail "metrics is missing the injected-disconnect counter"

echo "--- fd leak check ---"
fd_after=$fd_baseline
for _ in $(seq 1 50); do
  fd_after=$(fd_count)
  [ "$fd_after" -le "$fd_baseline" ] && break
  sleep 0.1   # reaping is poll-loop-async; give closed peers a beat
done
[ "$fd_after" -le "$fd_baseline" ] \
  || fail "fd leak: baseline $fd_baseline, now $fd_after"

echo "--- graceful SIGTERM drain ---"
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
[ "$server_rc" -eq 0 ] || fail "server exited $server_rc after SIGTERM"
grep -q 'drained' "$out_dir/serve.stderr" || fail "server did not report a drain"

echo "--- injected write stalls surface in metrics ---"
# A stalled flush still completes (one byte per attempt, rest via EPOLLOUT),
# so responses survive a 100% stall rate and the counter is deterministic.
CNASH_FAULT_SEED=42 CNASH_FAULT_WRITE_STALL=1.0 \
  "$server" --threads 1 --serve-threads 1 \
  > "$out_dir/fault.stdout" 2> "$out_dir/fault.stderr" &
fault_pid=$!
fault_port=""
for _ in $(seq 1 100); do
  fault_port=$(awk '/^LISTENING /{print $2}' "$out_dir/fault.stdout" 2>/dev/null || true)
  [ -n "$fault_port" ] && break
  sleep 0.1
done
[ -n "$fault_port" ] || {
  kill "$fault_pid" 2>/dev/null || true
  fail "fault-injected server did not announce a port"
}
"$client" --port "$fault_port" --status --json > /dev/null \
  || { kill "$fault_pid" 2>/dev/null || true; fail "status under write stalls"; }
"$client" --port "$fault_port" --metrics-text > "$out_dir/fault_metrics.txt" \
  || { kill "$fault_pid" 2>/dev/null || true; fail "metrics under write stalls"; }
grep -Eq '^cnash_served_write_stalls_total [1-9]' "$out_dir/fault_metrics.txt" \
  || { kill "$fault_pid" 2>/dev/null || true; \
       fail "write stalls were injected but did not surface in metrics"; }
kill -TERM "$fault_pid"
fault_rc=0
wait "$fault_pid" || fault_rc=$?
[ "$fault_rc" -eq 0 ] || fail "fault-injected server exited $fault_rc"

echo "chaos smoke OK"
