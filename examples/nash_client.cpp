// nash_client — CLI for the nash_serve gateway. Submits game files as `solve`
// requests over one pipelined connection, correlates out-of-order responses
// by id, and renders either a human summary or the raw JSON lines.
//
//   nash_client [--host H] [--port P] [--backend NAME] [--runs N]
//               [--iterations N] [--intervals I] [--seed S] [--scale S]
//               [--tile-rows R] [--tile-cols C] [--repeat K] [--no-cache]
//               [--deadline S] [--progress] [--binary] [--max-retries N]
//               [--json] [--status] [--stats] [--metrics] [--metrics-text]
//               [--list-backends] [--raw LINE] [game-file ...]
//
// --metrics scrapes the server's instrument registry (counters, gauges,
// per-stage latency quantiles) as JSON; --metrics-text fetches the
// Prometheus-style text exposition instead, printed verbatim for piping
// into scrape tooling. Both are safe against a server mid-solve.
//
// --binary speaks the length-prefixed binary framing of protocol.hpp instead
// of JSON lines (same JSON bodies; --raw stays a verbatim JSON line and
// ignores it). --deadline S sets the anytime SLO: the server returns its
// best-so-far report within S seconds plus one work unit, flagged degraded
// if units were cut. --progress asks for interim best-so-far progress
// frames, printed as they stream in; they do not count as responses.
//
// Batch mode: every game file becomes one request; all are sent up front and
// answered as the server completes them. --repeat K sends each game K times
// (identical requests — the repeats exercise the server's solution cache and
// report "cached" in the summary). Retryable rejections ("overloaded",
// "draining") are resent up to --max-retries times (default 3) after the
// server's retry_after_s hint, escalated by retry_backoff_s (capped
// exponential backoff with deterministic jitter). --raw sends one verbatim
// line and prints the verbatim response (protocol smoke tests). Exit codes:
// 0 all responses ok, 1 any error response or transport failure, 2 usage /
// unreadable file.

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/report_json.hpp"
#include "serve/line_client.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string backend;
  std::size_t runs = 0, iterations = 0, intervals = 0, repeat = 1;
  std::uint64_t seed = 0;
  bool have_seed = false;
  double scale = 0.0;
  std::size_t tile_rows = 0, tile_cols = 0;
  std::size_t max_retries = 3;
  double deadline_s = 0.0;
  bool progress = false, binary = false;
  bool no_cache = false, json = false;
  bool status = false, stats = false, list_backends = false;
  bool metrics = false, metrics_text = false;
  std::string raw;
  std::vector<std::string> files;
};

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--backend NAME] [--runs N]\n"
      "       [--iterations N] [--intervals I] [--seed S] [--scale S]\n"
      "       [--tile-rows R] [--tile-cols C] [--repeat K] [--no-cache]\n"
      "       [--deadline S] [--progress] [--binary] [--max-retries N]\n"
      "       [--json] [--status] [--stats] [--metrics] [--metrics-text]\n"
      "       [--list-backends] [--raw LINE] [game-file ...]\n",
      argv0);
}

std::string json_escape_via(const std::string& s) {
  return cnash::util::Json::string(s).dump();
}

void print_report_summary(const std::string& label,
                          const cnash::util::Json& response) {
  const bool cached = response.at("cached").as_bool();
  const cnash::core::SolveReport report =
      cnash::core::report_from_json(response.at("report"));
  std::string degraded;
  if (report.degraded)
    degraded = "  [degraded " + std::to_string(report.units_completed) + "/" +
               std::to_string(report.units_total) + " units]";
  std::printf("%s: %s  %zu samples, %zu nash (%zu valid), best %.6g, "
              "modeled %.4g s%s%s\n",
              label.c_str(), report.backend.c_str(), report.runs(),
              report.nash_count, report.valid_count, report.best_objective,
              report.modeled_time_s, cached ? "  [cached]" : "",
              degraded.c_str());
  std::map<std::string, std::pair<const cnash::core::SolveSample*, int>>
      distinct;
  for (const auto& s : report.samples) {
    if (!s.is_nash) continue;
    auto [it, fresh] = distinct.try_emplace(s.key(), &s, 0);
    ++it->second.second;
  }
  for (const auto& [key, entry] : distinct) {
    const auto& s = *entry.first;
    std::string line = "  p = (";
    for (std::size_t i = 0; i < s.p.size(); ++i)
      line += cnash::util::Table::num(s.p[i], 3) +
              (i + 1 < s.p.size() ? ", " : ")");
    line += "  q = (";
    for (std::size_t i = 0; i < s.q.size(); ++i)
      line += cnash::util::Table::num(s.q[i], 3) +
              (i + 1 < s.q.size() ? ", " : ")");
    std::printf("%s   [%d hits]\n", line.c_str(), entry.second);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    auto next = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--host")) opt.host = next("--host");
    else if (!std::strcmp(argv[a], "--port"))
      opt.port = static_cast<std::uint16_t>(
          std::strtoul(next("--port"), nullptr, 10));
    else if (!std::strcmp(argv[a], "--backend")) opt.backend = next("--backend");
    else if (!std::strcmp(argv[a], "--runs"))
      opt.runs = std::strtoul(next("--runs"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--iterations"))
      opt.iterations = std::strtoul(next("--iterations"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--intervals"))
      opt.intervals = std::strtoul(next("--intervals"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--seed")) {
      opt.seed = std::strtoull(next("--seed"), nullptr, 0);
      opt.have_seed = true;
    } else if (!std::strcmp(argv[a], "--scale"))
      opt.scale = std::strtod(next("--scale"), nullptr);
    else if (!std::strcmp(argv[a], "--tile-rows"))
      opt.tile_rows = std::strtoul(next("--tile-rows"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--tile-cols"))
      opt.tile_cols = std::strtoul(next("--tile-cols"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--repeat"))
      opt.repeat = std::strtoul(next("--repeat"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--max-retries"))
      opt.max_retries = std::strtoul(next("--max-retries"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--deadline"))
      opt.deadline_s = std::strtod(next("--deadline"), nullptr);
    else if (!std::strcmp(argv[a], "--progress")) opt.progress = true;
    else if (!std::strcmp(argv[a], "--binary")) opt.binary = true;
    else if (!std::strcmp(argv[a], "--no-cache")) opt.no_cache = true;
    else if (!std::strcmp(argv[a], "--json")) opt.json = true;
    else if (!std::strcmp(argv[a], "--status")) opt.status = true;
    else if (!std::strcmp(argv[a], "--stats")) opt.stats = true;
    else if (!std::strcmp(argv[a], "--list-backends")) opt.list_backends = true;
    else if (!std::strcmp(argv[a], "--metrics")) opt.metrics = true;
    else if (!std::strcmp(argv[a], "--metrics-text")) opt.metrics_text = true;
    else if (!std::strcmp(argv[a], "--raw")) opt.raw = next("--raw");
    else if (argv[a][0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", argv[a]);
      print_usage(argv[0]);
      return 2;
    } else {
      opt.files.push_back(argv[a]);
    }
  }

  if (opt.port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    print_usage(argv[0]);
    return 2;
  }
  if (opt.files.empty() && opt.raw.empty() && !opt.status && !opt.stats &&
      !opt.metrics && !opt.metrics_text && !opt.list_backends) {
    print_usage(argv[0]);
    return 2;
  }

  cnash::serve::LineClient client;
  if (!client.connect_to(opt.host, opt.port)) {
    std::fprintf(stderr, "error: cannot connect to %s:%u: %s\n",
                 opt.host.c_str(), opt.port, std::strerror(errno));
    return 1;
  }

  // Framing-agnostic transport: --binary sends requests as length-prefixed
  // frames (the method rides in the frame type) and reads responses as frame
  // bodies. The JSON bodies are identical in both framings, so everything
  // downstream of these two helpers parses responses one way.
  auto send_request = [&](unsigned char type, const std::string& body) {
    return opt.binary ? client.send_frame(type, body) : client.send_line(body);
  };
  auto recv_response = [&](std::string& body) {
    if (!opt.binary) return client.recv_line(body);
    unsigned char type = 0;
    return client.recv_frame(type, body);
  };

  // ---- Single-shot methods --------------------------------------------------
  if (!opt.raw.empty()) {
    std::string line;
    if (!client.send_line(opt.raw) || !client.recv_line(line)) {
      std::fprintf(stderr, "error: connection lost\n");
      return 1;
    }
    std::printf("%s\n", line.c_str());
    return 0;  // --raw reports the response verbatim; not judged
  }
  for (const auto& [flag, method, type] :
       {std::tuple<bool, const char*, unsigned char>{
            opt.list_backends, "list-backends",
            cnash::serve::kFrameListBackends},
        {opt.status, "status", cnash::serve::kFrameStatus},
        {opt.stats, "stats", cnash::serve::kFrameStats},
        {opt.metrics, "metrics", cnash::serve::kFrameMetrics},
        {opt.metrics_text, "metrics-text", cnash::serve::kFrameMetrics}}) {
    if (!flag) continue;
    // "metrics-text" is the metrics method with the text-exposition format
    // selector, not a wire method of its own.
    const bool exposition = std::strcmp(method, "metrics-text") == 0;
    const std::string body =
        exposition ? "{\"method\":\"metrics\",\"format\":\"text\"}"
                   : std::string("{\"method\":\"") + method + "\"}";
    std::string line;
    if (!send_request(type, body) || !recv_response(line)) {
      std::fprintf(stderr, "error: connection lost\n");
      return 1;
    }
    if (opt.json) {
      std::printf("%s\n", line.c_str());
      continue;
    }
    try {
      const cnash::util::Json response = cnash::util::Json::parse(line);
      if (!response.at("ok").as_bool()) {
        std::fprintf(stderr, "error: %s\n", line.c_str());
        return 1;
      }
      if (opt.list_backends && response.find("backends")) {
        for (const auto& kv : response.at("backends").members())
          std::printf("%-18s %s\n", kv.second.at("name").as_string().c_str(),
                      kv.second.at("description").as_string().c_str());
      } else if (exposition) {
        // Verbatim Prometheus text — pipe straight into scrape tooling.
        std::fputs(response.at("metrics_text").as_string().c_str(), stdout);
      } else {
        const char* key = std::strcmp(method, "status") == 0   ? "status"
                          : std::strcmp(method, "stats") == 0 ? "stats"
                                                              : "metrics";
        std::printf("%s\n", response.at(key).pretty().c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad response: %s\n", e.what());
      return 1;
    }
  }
  if (opt.files.empty()) return 0;

  // ---- Batch solve ----------------------------------------------------------
  struct Submission {
    std::string label;
    int id;
    std::string line;        // the request as sent (resent verbatim on retry)
    std::size_t attempts = 0;  // retries consumed
  };
  std::vector<Submission> submissions;
  std::map<int, std::size_t> id_to_index;
  std::map<int, std::string> responses;
  std::size_t unmatched = 0;  // responses without a usable echoed id
  int next_id = 0;

  // Pipelining window: keep fewer requests outstanding than the server's
  // default per-connection in-flight cap (8) so plain batch mode never
  // triggers its own load shedding. With --repeat the window drops to 1 —
  // a pipelined duplicate would coalesce onto the in-flight solve
  // (cached:false); sending repeats only after the previous response makes
  // them real cache hits, which is what the demo is for.
  const std::size_t window = opt.repeat > 1 ? 1 : 4;
  auto read_one_response = [&]() -> bool {
    std::string line;
    if (!recv_response(line)) {
      std::fprintf(stderr, "error: connection closed with %zu responses "
                   "outstanding\n",
                   submissions.size() - responses.size() - unmatched);
      return false;
    }
    try {
      const cnash::util::Json response = cnash::util::Json::parse(line);
      // Pre-request failures (oversized line, unparsable JSON) echo a null
      // id; report them without losing the batch accounting.
      const cnash::util::Json* id = response.find("id");
      const double id_num = id ? id->as_number() : std::nan("");
      if (!std::isfinite(id_num) || id_num != std::floor(id_num)) {
        std::fprintf(stderr, "error response without request id: %s\n",
                     line.c_str());
        unmatched++;
        return true;
      }
      const int rid = static_cast<int>(id_num);

      // Interim anytime frame (--progress): report it and keep waiting for
      // the final response — it does not settle the request.
      if (const cnash::util::Json* progress = response.find("progress")) {
        if (opt.json) {
          std::printf("%s\n", line.c_str());
        } else {
          const auto prog_it = id_to_index.find(rid);
          const std::string label = prog_it != id_to_index.end()
                                        ? submissions[prog_it->second].label
                                        : "id " + std::to_string(rid);
          const cnash::util::Json& best = progress->at("best_objective");
          std::printf("%s: progress %.0f/%.0f units, %.0f nash",
                      label.c_str(),
                      progress->at("units_completed").as_number(),
                      progress->at("units_total").as_number(),
                      progress->at("nash_count").as_number());
          if (!best.is_null()) std::printf(", best %.6g", best.as_number());
          std::printf(" (%.3f s)\n", progress->at("elapsed_s").as_number());
        }
        return true;
      }

      // Retryable shedding: wait the server's hint (escalated with capped
      // exponential backoff + deterministic jitter), then resend the very
      // same request line. The id is reused, so correlation is unchanged.
      const cnash::util::Json* ok = response.find("ok");
      const auto sub_it = id_to_index.find(rid);
      if (ok && !ok->as_bool() && sub_it != id_to_index.end()) {
        Submission& sub = submissions[sub_it->second];
        std::string code;
        if (const cnash::util::Json* error = response.find("error"))
          if (const cnash::util::Json* c = error->find("code"))
            code = c->as_string();
        if ((code == "overloaded" || code == "draining") &&
            sub.attempts < opt.max_retries) {
          double hint = 0.0;
          if (const cnash::util::Json* r = response.find("retry_after_s"))
            hint = r->as_number();
          const double wait_s = cnash::serve::retry_backoff_s(
              hint, sub.attempts, static_cast<std::uint64_t>(rid));
          sub.attempts++;
          std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
          if (!send_request(cnash::serve::kFrameSolve, sub.line)) {
            std::fprintf(stderr, "error: connection lost while retrying\n");
            return false;
          }
          return true;  // response still outstanding
        }
      }
      responses[rid] = line;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: bad response: %s\n", e.what());
      return false;
    }
    return true;
  };
  for (const std::string& file : opt.files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    std::string request = "{\"method\":\"solve\",\"game_text\":";
    request += json_escape_via(text.str());
    if (!opt.backend.empty())
      request += ",\"backend\":" + json_escape_via(opt.backend);
    if (opt.runs) request += ",\"runs\":" + std::to_string(opt.runs);
    if (opt.iterations)
      request += ",\"iterations\":" + std::to_string(opt.iterations);
    if (opt.intervals)
      request += ",\"intervals\":" + std::to_string(opt.intervals);
    if (opt.have_seed) request += ",\"seed\":" + std::to_string(opt.seed);
    if (opt.scale > 0.0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", opt.scale);
      request += ",\"scale\":" + std::string(buf);
    }
    if (opt.tile_rows)
      request += ",\"tile_rows\":" + std::to_string(opt.tile_rows);
    if (opt.tile_cols)
      request += ",\"tile_cols\":" + std::to_string(opt.tile_cols);
    if (opt.no_cache) request += ",\"no_cache\":true";
    if (opt.deadline_s > 0.0) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", opt.deadline_s);
      request += ",\"deadline_s\":" + std::string(buf);
    }
    if (opt.progress) request += ",\"progress\":true";

    for (std::size_t k = 0; k < opt.repeat; ++k) {
      while (submissions.size() - responses.size() - unmatched >= window)
        if (!read_one_response()) return 1;
      const int id = next_id++;
      std::string line = request + ",\"id\":" + std::to_string(id) + "}";
      if (!send_request(cnash::serve::kFrameSolve, line)) {
        std::fprintf(stderr, "error: connection lost while submitting\n");
        return 1;
      }
      std::string label = file;
      if (opt.repeat > 1) label += " #" + std::to_string(k + 1);
      id_to_index.emplace(id, submissions.size());
      submissions.push_back({std::move(label), id, std::move(line)});
    }
  }

  while (responses.size() + unmatched < submissions.size())
    if (!read_one_response()) return 1;

  bool all_ok = unmatched == 0;
  for (std::size_t i = 0; i < submissions.size(); ++i) {
    const Submission& sub = submissions[i];
    const auto found = responses.find(sub.id);
    if (found == responses.end()) {
      std::fprintf(stderr, "%s: no correlated response\n", sub.label.c_str());
      all_ok = false;
      continue;
    }
    const std::string& line = found->second;
    if (opt.json) {
      std::printf("%s\n", line.c_str());
    }
    try {
      const cnash::util::Json response = cnash::util::Json::parse(line);
      if (!response.at("ok").as_bool()) {
        all_ok = false;
        if (!opt.json) {
          const cnash::util::Json& error = response.at("error");
          std::fprintf(stderr, "%s: error %s: %s\n", sub.label.c_str(),
                       error.at("code").as_string().c_str(),
                       error.at("message").as_string().c_str());
        }
        continue;
      }
      if (!opt.json) print_report_summary(sub.label, response);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: bad response: %s\n", sub.label.c_str(),
                   e.what());
      all_ok = false;
    }
  }
  return all_ok ? 0 : 1;
}
