// Mixed-strategy hunt: the capability quantum S-QUBO annealers lack.
//
// Runs the Bird Game (3 actions, 7 equilibria of which 4 are mixed) through
// both pipelines: the D-Wave-style S-QUBO proxy (binary variables — pure
// strategies only) and C-Nash (quantized mixed strategies on the I=12 grid),
// and shows which equilibria each one can reach.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::size_t threads = 0;  // 0 = one engine worker per hardware thread
  for (int a = 1; a + 1 < argc; ++a)
    if (!std::strcmp(argv[a], "--threads"))
      threads = std::strtoul(argv[a + 1], nullptr, 10);

  const game::BimatrixGame g = game::bird_game();
  const auto ground_truth = game::all_equilibria(g);
  std::printf("%s: %zu equilibria in ground truth\n\n", g.name().c_str(),
              ground_truth.size());

  // --- S-QUBO / D-Wave proxy ------------------------------------------------
  util::Rng rng(7);
  const qubo::DWaveProxy proxy(g, qubo::dwave_advantage41_config());
  std::vector<core::CandidateSolution> dwave_cands;
  for (const auto& s : proxy.run(300, rng)) dwave_cands.push_back({s.p, s.q});
  const auto dwave = core::classify(g, ground_truth, dwave_cands, 1e-9);

  // --- C-Nash ---------------------------------------------------------------
  core::CNashConfig cfg;
  cfg.intervals = 12;
  cfg.sa.iterations = 15000;
  cfg.seed = 99;
  cfg.threads = threads;
  core::CNashSolver solver(g, cfg);
  std::vector<core::CandidateSolution> cnash_cands;
  for (const auto& o : solver.run(300)) cnash_cands.push_back({o.p, o.q});
  const auto cnash = core::classify(g, ground_truth, cnash_cands, 1e-9);

  util::Table table({"equilibrium", "type", "S-QUBO proxy", "C-Nash"});
  for (std::size_t i = 0; i < ground_truth.size(); ++i) {
    const auto& e = ground_truth[i];
    char desc[128];
    std::snprintf(desc, sizeof desc, "p=(%.2f,%.2f,%.2f)", e.p[0], e.p[1],
                  e.p[2]);
    table.add_row({desc, e.pure ? "pure" : "mixed",
                   dwave.hits[i] ? "found" : "missed",
                   cnash.hits[i] ? "found" : "missed"});
  }
  std::printf("%s\n", table.pretty().c_str());
  std::printf("S-QUBO proxy: %zu/%zu distinct (%s%% success)\n",
              dwave.distinct_found(), dwave.target(),
              core::percent(dwave.success_rate()).c_str());
  std::printf("C-Nash:       %zu/%zu distinct (%s%% success)\n",
              cnash.distinct_found(), cnash.target(),
              core::percent(cnash.success_rate()).c_str());
  return 0;
}
