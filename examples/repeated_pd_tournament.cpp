// Repeated Prisoner's Dilemma tournament: a realistic game-theory workload.
//
// Builds the Axelrod-style meta-game over all eight deterministic memory-one
// strategies (payoff = average per-round score over 64 rounds), enumerates its
// exact equilibria, and asks the C-Nash solver (exact objective backend) to
// rediscover them.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/repeated_pd.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::size_t threads = 0;  // 0 = one engine worker per hardware thread
  for (int a = 1; a + 1 < argc; ++a)
    if (!std::strcmp(argv[a], "--threads"))
      threads = std::strtoul(argv[a + 1], nullptr, 10);

  const auto roster = game::memory_one_roster();
  const game::BimatrixGame g = game::repeated_pd_metagame(64);

  std::printf("Tournament payoffs (average per round, row vs column):\n");
  util::Table payoff_table([&] {
    std::vector<std::string> headers{"strategy"};
    for (const auto& s : roster) headers.push_back(s.name);
    return headers;
  }());
  for (std::size_t i = 0; i < roster.size(); ++i) {
    std::vector<std::string> row{roster[i].name};
    for (std::size_t j = 0; j < roster.size(); ++j)
      row.push_back(util::Table::num(g.payoff1()(i, j), 2));
    payoff_table.add_row(row);
  }
  std::printf("%s\n", payoff_table.pretty().c_str());

  game::SupportEnumOptions opts;
  opts.max_support = 3;  // keep the degenerate tournament tractable
  const auto result = game::support_enumeration(g, opts);
  std::printf("equilibria with support size <= 3: %zu%s\n",
              result.equilibria.size(),
              result.degenerate_flag ? " (degenerate game: ties abound)" : "");
  auto describe = [&](const la::Vector& s) {
    std::string out;
    for (std::size_t i = 0; i < roster.size(); ++i)
      if (s[i] > 1e-9) {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s:%.2f ", roster[i].name.c_str(), s[i]);
        out += buf;
      }
    return out;
  };
  for (const auto& e : result.equilibria)
    std::printf("  row[ %s] col[ %s] %s\n", describe(e.p).c_str(),
                describe(e.q).c_str(), e.pure ? "(pure)" : "(mixed)");

  // C-Nash with the exact objective backend (tournament payoffs are 64-round
  // averages — neither integers nor on any small probability grid — so this
  // example reports ε-approximate equilibria: profiles where no deviation
  // gains more than ε = 0.05 payoff per round).
  core::CNashConfig cfg;
  cfg.use_hardware = false;
  cfg.intervals = 16;
  cfg.sa.iterations = 20000;
  cfg.seed = 64;
  cfg.threads = threads;
  core::CNashSolver solver(g, cfg);
  std::vector<core::CandidateSolution> cands;
  for (const auto& o : solver.run(100)) cands.push_back({o.p, o.q});
  const auto report =
      core::classify(g, result.equilibria, cands, /*nash_eps=*/0.05,
                     /*match_tol=*/0.05);
  std::printf(
      "\nC-Nash: %s%% of runs ended at an eps=0.05 approximate equilibrium,\n"
      "touching %zu/%zu of the listed exact equilibria within 0.05.\n",
      core::percent(report.success_rate()).c_str(), report.distinct_found(),
      report.target());
  return 0;
}
