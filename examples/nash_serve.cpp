// nash_serve — the Nash-serving gateway binary: a single-process TCP server
// speaking the newline-delimited JSON protocol of src/serve/ on top of one
// SolverService pool, with a content-addressed solution cache and admission
// control (see README "Serving").
//
//   nash_serve [--port P] [--threads N] [--serve-threads N] [--queue-depth N]
//              [--conn-inflight N] [--cache-mb MB] [--store-dir DIR]
//              [--store-budget-mb MB] [--retry-after S] [--trace-out FILE]
//              [--quiet]
//
// --threads sizes the SolverService worker pool; --serve-threads sizes the
// epoll event-loop pool that connections are sharded across (default 1).
//
// --trace-out FILE enables per-request pipeline tracing (README
// "Observability") and writes the run's spans as Chrome trace-event JSON to
// FILE on graceful shutdown — load it in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Tracing is off (and near-free) without the flag.
//
// --store-dir enables the tier-2 persistent solution store (README
// "Persistence"): solved reports are written through to an append-only log
// in DIR and survive restarts — pointing a fresh gateway at a populated DIR
// serves previously solved requests byte-identically with zero solver jobs.
// --store-budget-mb bounds the live bytes on disk (default 256).
//
// --port 0 (default) binds an ephemeral loopback port; the bound port is
// announced on stdout as "LISTENING <port>" so scripts can pick it up.
// SIGTERM / SIGINT trigger a graceful drain: stop accepting, answer new
// solves with {"code":"draining"}, finish in-flight jobs, flush, exit 0.
//
// Server-side fault injection (chaos testing; README "Failure model") is
// read from the environment: CNASH_FAULT_SEED, CNASH_FAULT_WRITE_STALL,
// CNASH_FAULT_DISCONNECT. All off by default.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "serve/server.hpp"

namespace {

cnash::serve::NashServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server) g_server->request_stop();
}

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--threads N] [--serve-threads N]\n"
               "       [--queue-depth N] [--conn-inflight N] [--cache-mb MB]\n"
               "       [--store-dir DIR] [--store-budget-mb MB] "
               "[--retry-after S]\n"
               "       [--trace-out FILE] [--quiet]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  cnash::serve::ServeOptions options;
  options.announce = true;
  options.fault = cnash::util::fault_plan_from_env();

  for (int a = 1; a < argc; ++a) {
    auto next = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--port"))
      options.port =
          static_cast<std::uint16_t>(std::strtoul(next("--port"), nullptr, 10));
    else if (!std::strcmp(argv[a], "--threads"))
      options.service_threads = std::strtoul(next("--threads"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--serve-threads"))
      options.serve_threads =
          std::strtoul(next("--serve-threads"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--queue-depth"))
      options.admission.max_queue_depth =
          std::strtoul(next("--queue-depth"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--conn-inflight"))
      options.admission.per_connection_inflight =
          std::strtoul(next("--conn-inflight"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--cache-mb"))
      options.cache_bytes =
          std::strtoul(next("--cache-mb"), nullptr, 10) << 20;
    else if (!std::strcmp(argv[a], "--store-dir"))
      options.store_dir = next("--store-dir");
    else if (!std::strcmp(argv[a], "--store-budget-mb"))
      options.store_budget_bytes =
          std::strtoul(next("--store-budget-mb"), nullptr, 10) << 20;
    else if (!std::strcmp(argv[a], "--retry-after"))
      options.admission.retry_after_s =
          std::strtod(next("--retry-after"), nullptr);
    else if (!std::strcmp(argv[a], "--trace-out"))
      options.trace_out = next("--trace-out");
    else if (!std::strcmp(argv[a], "--quiet"))
      options.announce = false;
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[a]);
      print_usage(argv[0]);
      return 2;
    }
  }

  try {
    cnash::serve::NashServer server(options);
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    server.start();
    server.run();  // returns after a signal-triggered graceful drain
    const auto& served = server.served_stats();
    const auto& cache = server.cache_stats();
    std::fprintf(stderr,
                 "nash_serve: drained — %zu solves served (%zu cache hits, "
                 "%zu coalesced), %zu errors, %zu jobs submitted\n",
                 served.solves_ok, cache.hits, served.coalesced, served.errors,
                 served.jobs_submitted);
    if (const cnash::store::SolutionStore* store = server.store()) {
      const cnash::store::StoreStats sts = store->stats();
      std::fprintf(stderr,
                   "nash_serve: store — %zu entries in %zu segments, "
                   "%zu hits / %zu appends, %.2fx compression\n",
                   sts.entries, sts.segments, sts.hits, sts.appends,
                   sts.compression_ratio());
    }
    if (!options.trace_out.empty()) {
      const cnash::obs::TraceRecorder& trace = server.trace_recorder();
      std::fprintf(stderr,
                   "nash_serve: trace — %zu spans written to %s"
                   " (%zu dropped)\n",
                   trace.event_count(), options.trace_out.c_str(),
                   trace.dropped());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nash_serve: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
