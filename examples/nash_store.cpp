// nash_store — offline inspection of a tier-2 solution store directory
// (src/store/, README "Persistence"):
//
//   nash_store fsck <dir> [--json]      read-only integrity scan; repairs
//                                       nothing. Exit 0 when clean, 2 when
//                                       torn tails / corrupt records / bad
//                                       segment headers were found.
//   nash_store stats <dir> [--json]     open the store (this RECOVERS it:
//                                       torn tails are truncated exactly as
//                                       the gateway would on boot) and print
//                                       its counters.
//   nash_store compact <dir> [--budget-mb N] [--json]
//                                       open, rewrite live records into
//                                       fresh segments, drop the dead bytes.
//
// fsck is safe to run against a directory a live gateway is serving from:
// it opens the segments read-only and scans whatever has been written so
// far. stats/compact take ownership of the log for their run — use them on
// idle directories.

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>

#include "store/store.hpp"
#include "util/json.hpp"

namespace {

using cnash::store::FsckReport;
using cnash::store::SolutionStore;
using cnash::store::StoreOptions;
using cnash::store::StoreStats;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <fsck|stats|compact> <store-dir> "
               "[--budget-mb N] [--json]\n",
               argv0);
  return 2;
}

cnash::util::Json stats_json(const StoreStats& s) {
  cnash::util::Json j = cnash::util::Json::object();
  j.set("hits", s.hits);
  j.set("misses", s.misses);
  j.set("appends", s.appends);
  j.set("tombstones", s.tombstones);
  j.set("evictions", s.evictions);
  j.set("oversize_rejects", s.oversize_rejects);
  j.set("compactions", s.compactions);
  j.set("entries", s.entries);
  j.set("segments", s.segments);
  j.set("live_raw_bytes", s.live_raw_bytes);
  j.set("live_value_bytes", s.live_value_bytes);
  j.set("live_stored_bytes", s.live_stored_bytes);
  j.set("dead_stored_bytes", s.dead_stored_bytes);
  j.set("compressed_records", s.compressed_records);
  j.set("stored_records", s.stored_records);
  j.set("corrupt_records_skipped", s.corrupt_records_skipped);
  j.set("torn_tail_truncations", s.torn_tail_truncations);
  j.set("byte_budget", s.byte_budget);
  j.set("compression_ratio", s.compression_ratio());
  return j;
}

void print_stats(const StoreStats& s) {
  std::printf("entries            %zu\n", s.entries);
  std::printf("segments           %zu\n", s.segments);
  std::printf("live_raw_bytes     %zu\n", s.live_raw_bytes);
  std::printf("live_value_bytes   %zu\n", s.live_value_bytes);
  std::printf("live_stored_bytes  %zu\n", s.live_stored_bytes);
  std::printf("dead_stored_bytes  %zu\n", s.dead_stored_bytes);
  std::printf("compression_ratio  %.3f\n", s.compression_ratio());
  std::printf("compressed/stored  %zu/%zu\n", s.compressed_records,
              s.stored_records);
  std::printf("torn_truncations   %zu\n", s.torn_tail_truncations);
  std::printf("corrupt_skipped    %zu\n", s.corrupt_records_skipped);
  std::printf("byte_budget        %zu\n", s.byte_budget);
}

int run_fsck(const std::string& dir, bool json) {
  const FsckReport report = SolutionStore::fsck(dir);
  if (json) {
    cnash::util::Json j = cnash::util::Json::object();
    j.set("clean", report.clean());
    j.set("live_entries", report.live_entries);
    j.set("records", report.records);
    j.set("torn_segments", report.torn_segments);
    j.set("corrupt_records", report.corrupt_records);
    cnash::util::Json segs = cnash::util::Json::array();
    for (const FsckReport::Segment& s : report.segments) {
      cnash::util::Json& seg = segs.push();
      seg.set("file", s.file);
      seg.set("header_ok", s.header_ok);
      seg.set("file_bytes", s.file_bytes);
      seg.set("records", s.records);
      seg.set("torn_bytes", s.torn_bytes);
      seg.set("corrupt_bytes", s.corrupt_bytes);
      seg.set("corrupt_records", s.corrupt_records);
    }
    j.set("segments", std::move(segs));
    std::printf("%s\n", j.dump().c_str());
  } else {
    for (const FsckReport::Segment& s : report.segments) {
      std::printf("%s: %zu bytes, %zu records", s.file.c_str(), s.file_bytes,
                  s.records);
      if (!s.header_ok) std::printf(", BAD SEGMENT HEADER");
      if (s.torn_bytes > 0) std::printf(", torn tail (%zu bytes)", s.torn_bytes);
      if (s.corrupt_records > 0)
        std::printf(", %zu corrupt records (%zu bytes skipped)",
                    s.corrupt_records, s.corrupt_bytes);
      std::printf("\n");
    }
    std::printf("%zu live entries, %zu records total\n", report.live_entries,
                report.records);
    std::printf(report.clean() ? "clean\n" : "ISSUES FOUND\n");
  }
  return report.clean() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string command = argv[1];
  const std::string dir = argv[2];
  bool json = false;
  StoreOptions options;
  for (int a = 3; a < argc; ++a) {
    if (!std::strcmp(argv[a], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[a], "--budget-mb") && a + 1 < argc) {
      options.byte_budget =
          static_cast<std::size_t>(std::strtoul(argv[++a], nullptr, 10)) << 20;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (command == "fsck") return run_fsck(dir, json);
    if (command == "stats") {
      SolutionStore store(dir, options);
      if (json)
        std::printf("%s\n", stats_json(store.stats()).dump().c_str());
      else
        print_stats(store.stats());
      return 0;
    }
    if (command == "compact") {
      SolutionStore store(dir, options);
      const StoreStats before = store.stats();
      store.compact();
      const StoreStats after = store.stats();
      if (json) {
        cnash::util::Json j = cnash::util::Json::object();
        j.set("reclaimed_bytes", before.dead_stored_bytes);
        j.set("segments_before", before.segments);
        j.set("segments_after", after.segments);
        j.set("stats", stats_json(after));
        std::printf("%s\n", j.dump().c_str());
      } else {
        std::printf("compacted: reclaimed %zu dead bytes, %zu -> %zu segments\n",
                    before.dead_stored_bytes, before.segments, after.segments);
        print_stats(after);
      }
      return 0;
    }
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nash_store: %s\n", e.what());
    return 1;
  }
}
