// Ground-truth explorer: exact equilibrium census of every game in the
// library via support enumeration, cross-checked with Lemke-Howson.

#include <cstdio>

#include "game/games.hpp"
#include "game/lemke_howson.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"

int main() {
  using namespace cnash;

  std::vector<game::BimatrixGame> games = {
      game::battle_of_sexes(),     game::bird_game(),
      game::modified_prisoners_dilemma(),
      game::prisoners_dilemma(),   game::matching_pennies(),
      game::rock_paper_scissors(), game::chicken(),
      game::stag_hunt(),           game::coordination(4),
  };

  util::Table table({"game", "actions", "NE total", "pure", "mixed",
                     "LH labels found", "degenerate"});
  for (const auto& g : games) {
    const auto result = game::support_enumeration(g);
    std::size_t pure = 0;
    for (const auto& e : result.equilibria)
      if (e.pure) ++pure;
    const auto lh = game::lemke_howson_all_labels(g);
    table.add_row({g.name(),
                   std::to_string(g.num_actions1()) + "x" +
                       std::to_string(g.num_actions2()),
                   std::to_string(result.equilibria.size()),
                   std::to_string(pure),
                   std::to_string(result.equilibria.size() - pure),
                   std::to_string(lh.size()),
                   result.degenerate_flag ? "yes" : "no"});
  }
  std::printf("%s", table.pretty().c_str());
  std::printf(
      "\nNote: Lemke-Howson visits one equilibrium per path (at most n+m "
      "labels),\nwhile support enumeration is exhaustive.\n");
  return 0;
}
