// CLI driver: solve an arbitrary bimatrix game from a text file (or stdin)
// with the C-Nash hardware model, cross-checked against exact ground truth.
//
//   solve_file <game-file|-> [--runs N] [--iterations N] [--intervals I]
//              [--exact] [--scale S] [--threads T]
//
// Game file format (see src/game/parse.hpp):
//   name: my game
//   M:
//   2 0
//   0 1
//   N:
//   1 0
//   0 2
//
// --scale multiplies payoffs before integer coding (use when payoffs are
// fractional, e.g. --scale 10 for one decimal place); --exact bypasses the
// hardware model; --threads spreads the runs across T engine workers
// (0 = all hardware threads; results are identical for any T).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/parse.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <game-file|-> [--runs N] [--iterations N] "
                 "[--intervals I] [--exact] [--scale S] [--threads T]\n",
                 argv[0]);
    return 2;
  }

  std::size_t runs = 100, iterations = 10000, threads = 0;
  std::uint32_t intervals = 12;
  bool exact = false;
  double scale = 1.0;
  for (int a = 2; a < argc; ++a) {
    auto next = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--runs"))
      runs = std::strtoul(next("--runs"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--iterations"))
      iterations = std::strtoul(next("--iterations"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--intervals"))
      intervals = static_cast<std::uint32_t>(
          std::strtoul(next("--intervals"), nullptr, 10));
    else if (!std::strcmp(argv[a], "--scale"))
      scale = std::strtod(next("--scale"), nullptr);
    else if (!std::strcmp(argv[a], "--threads"))
      threads = std::strtoul(next("--threads"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--exact"))
      exact = true;
    else {
      std::fprintf(stderr, "unknown flag %s\n", argv[a]);
      return 2;
    }
  }

  game::BimatrixGame g = [&] {
    try {
      if (!std::strcmp(argv[1], "-")) return game::parse_game(std::cin);
      std::ifstream file(argv[1]);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        std::exit(2);
      }
      return game::parse_game(file);
    } catch (const game::ParseError& e) {
      std::fprintf(stderr, "parse error in %s: %s\n", argv[1], e.what());
      std::exit(2);
    }
  }();

  std::printf("%s\n", g.to_string().c_str());

  const auto gt_result = game::support_enumeration(g);
  const auto& gt = gt_result.equilibria;
  std::printf("ground truth: %zu equilibria%s\n\n", gt.size(),
              gt_result.degenerate_flag ? " (degenerate game — the list may "
                                          "be incomplete)"
                                        : "");

  core::CNashConfig cfg;
  cfg.intervals = intervals;
  cfg.sa.iterations = iterations;
  cfg.use_hardware = !exact;
  cfg.hardware.value_scale = scale;
  cfg.threads = threads;
  core::CNashSolver solver(g, cfg);
  const auto outcomes = solver.run(runs);

  std::vector<core::CandidateSolution> cands;
  for (const auto& o : outcomes) cands.push_back({o.p, o.q});
  const auto report = core::classify(g, gt, cands, 1e-7, 1e-4);

  std::printf("C-Nash (%s backend): %zu runs, success %s%%, distinct %zu/%zu\n\n",
              exact ? "exact" : "hardware", report.runs,
              core::percent(report.success_rate()).c_str(),
              report.distinct_found(), report.target());

  std::map<std::string, std::pair<core::RunOutcome, int>> distinct;
  for (const auto& o : outcomes) {
    if (!game::is_nash_equilibrium(g, o.p, o.q, 1e-7)) continue;
    auto [it, fresh] = distinct.try_emplace(o.profile.key(), o, 0);
    ++it->second.second;
  }
  for (const auto& [key, entry] : distinct) {
    const auto& o = entry.first;
    std::string ps = "p = (", qs = "q = (";
    for (std::size_t i = 0; i < o.p.size(); ++i)
      ps += util::Table::num(o.p[i], 3) + (i + 1 < o.p.size() ? ", " : ")");
    for (std::size_t j = 0; j < o.q.size(); ++j)
      qs += util::Table::num(o.q[j], 3) + (j + 1 < o.q.size() ? ", " : ")");
    std::printf("%s %s  %s   [%d hits]\n",
                game::is_pure_profile(o.p, o.q) ? "pure " : "mixed", ps.c_str(),
                qs.c_str(), entry.second);
  }
  return 0;
}
