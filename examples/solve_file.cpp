// CLI driver: solve arbitrary bimatrix games from text files (or stdin)
// through the SolverService — any registered backend, N games per invocation
// (jobs run concurrently on the shared worker pool), cross-checked against
// exact ground truth.
//
//   solve_file [--backend NAME] [--runs N] [--iterations N] [--intervals I]
//              [--exact] [--scale S] [--threads T] [--seed S]
//              [--tile-rows R] [--tile-cols C] [--json]
//              [--list-backends] <game-file|-> [<game-file> ...]
//
// Game file format (see src/game/parse.hpp):
//   name: my game
//   M:
//   2 0
//   0 1
//   N:
//   1 0
//   0 2
//
// --backend picks a registry key (hardware-sa, hardware-sa-tiled, exact-sa,
// dwave-2000q6, dwave-advantage41, lemke-howson, support-enum); --exact is an
// alias for --backend exact-sa. --scale multiplies payoffs before integer
// coding (use when payoffs are fractional, e.g. --scale 10 for one decimal
// place); --threads caps each job's in-flight runs on the service pool
// (0 = all workers; results are identical for any T); --tile-rows/--tile-cols
// set the physical tile dimensions of the hardware-sa-tiled chip model;
// --json replaces the human summary with one machine-readable JSON report
// line per game (the core/report_json.hpp schema shared with nash_serve —
// no ground-truth cross-check, so it also works for games too large to
// support-enumerate).
//
// Exit codes: 0 success, 2 usage / malformed game file (reported per file
// with line numbers), 3 invalid solve request (rejected at submit time, e.g.
// --runs 0 or an unknown --backend), 1 runtime failure.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <vector>

#include "core/metrics.hpp"
#include "core/report_json.hpp"
#include "core/service.hpp"
#include "game/parse.hpp"
#include "game/support_enum.hpp"
#include "util/table.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--backend NAME] [--runs N] [--iterations N] "
               "[--intervals I]\n"
               "       [--exact] [--scale S] [--threads T] [--seed S] "
               "[--tile-rows R] [--tile-cols C]\n"
               "       [--json] [--list-backends] <game-file|-> "
               "[<game-file> ...]\n",
               argv0);
}

std::string strategy_string(const char* label, const cnash::la::Vector& v) {
  std::string s = std::string(label) + " = (";
  for (std::size_t i = 0; i < v.size(); ++i)
    s += cnash::util::Table::num(v[i], 3) + (i + 1 < v.size() ? ", " : ")");
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cnash;

  std::string backend = "hardware-sa";
  std::size_t runs = 100, iterations = 10000, threads = 0;
  std::uint32_t intervals = 12;
  std::uint64_t seed = 0xC0FFEE;
  double scale = 1.0;
  bool json = false;
  chip::ChipConfig chip;
  std::vector<std::string> files;

  for (int a = 1; a < argc; ++a) {
    auto next = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--backend"))
      backend = next("--backend");
    else if (!std::strcmp(argv[a], "--runs"))
      runs = std::strtoul(next("--runs"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--iterations"))
      iterations = std::strtoul(next("--iterations"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--intervals"))
      intervals = static_cast<std::uint32_t>(
          std::strtoul(next("--intervals"), nullptr, 10));
    else if (!std::strcmp(argv[a], "--scale"))
      scale = std::strtod(next("--scale"), nullptr);
    else if (!std::strcmp(argv[a], "--threads"))
      threads = std::strtoul(next("--threads"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--seed"))
      seed = std::strtoull(next("--seed"), nullptr, 0);
    else if (!std::strcmp(argv[a], "--tile-rows"))
      chip.tile_rows = std::strtoul(next("--tile-rows"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--tile-cols"))
      chip.tile_cols = std::strtoul(next("--tile-cols"), nullptr, 10);
    else if (!std::strcmp(argv[a], "--json"))
      json = true;
    else if (!std::strcmp(argv[a], "--exact"))
      backend = "exact-sa";
    else if (!std::strcmp(argv[a], "--list-backends")) {
      for (const std::string& name : core::SolverRegistry::global().names())
        std::printf("%-18s %s\n", name.c_str(),
                    core::SolverRegistry::global().at(name).describe().c_str());
      return 0;
    } else if (argv[a][0] == '-' && std::strcmp(argv[a], "-") != 0) {
      std::fprintf(stderr, "unknown flag %s\n", argv[a]);
      print_usage(argv[0]);
      return 2;
    } else {
      files.push_back(argv[a]);
    }
  }

  if (files.empty()) {
    print_usage(argv[0]);
    return 2;
  }

  // ---- Parse every game file up front; report ALL malformed inputs. --------
  std::vector<game::BimatrixGame> games;
  bool parse_failed = false;
  for (const std::string& file : files) {
    try {
      if (file == "-") {
        games.push_back(game::parse_game(std::cin));
      } else {
        std::ifstream in(file);
        if (!in) {
          std::fprintf(stderr, "error: cannot open %s\n", file.c_str());
          parse_failed = true;
          continue;
        }
        games.push_back(game::parse_game(in));
      }
    } catch (const game::ParseError& e) {
      std::fprintf(stderr, "error: %s: parse error at %s\n", file.c_str(),
                   e.what());
      parse_failed = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: invalid game: %s\n", file.c_str(),
                   e.what());
      parse_failed = true;
    }
  }
  if (parse_failed) return 2;

  // ---- Submit one job per game; all run concurrently on the shared pool. ---
  core::SolverService& service = core::SolverService::shared();
  std::vector<std::future<core::SolveReport>> futures;
  futures.reserve(games.size());
  for (const game::BimatrixGame& g : games) {
    core::SolveRequest req(g);
    req.backend = backend;
    req.runs = runs;
    req.seed = seed;
    req.intervals = intervals;
    req.sa.iterations = iterations;
    req.hardware.value_scale = scale;
    req.chip = chip;
    req.max_parallelism = threads;
    futures.push_back(service.submit(std::move(req)));
  }

  for (std::size_t i = 0; i < games.size(); ++i) {
    const game::BimatrixGame& g = games[i];
    core::SolveReport report;
    try {
      report = futures[i].get();
    } catch (const std::invalid_argument& e) {
      // Rejected at submit time (validate_request / registry lookup).
      std::fprintf(stderr, "error: %s: invalid request: %s\n",
                   files[i].c_str(), e.what());
      return 3;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", files[i].c_str(), e.what());
      return 1;
    }

    if (json) {
      std::printf("%s\n", core::report_to_json(report).dump().c_str());
      continue;
    }

    std::printf("%s\n", g.to_string().c_str());

    const auto gt_result = game::support_enumeration(g);
    const auto& gt = gt_result.equilibria;
    std::printf("ground truth: %zu equilibria%s\n\n", gt.size(),
                gt_result.degenerate_flag ? " (degenerate game — the list may "
                                            "be incomplete)"
                                          : "");

    std::vector<core::CandidateSolution> cands;
    for (const auto& s : report.samples) cands.push_back({s.p, s.q});
    const auto cls = core::classify(g, gt, cands, 1e-7, 1e-4);

    std::printf(
        "%s: %zu samples, success %s%%, distinct %zu/%zu, modeled %.4g s\n\n",
        report.backend.c_str(), report.runs(),
        core::percent(cls.success_rate()).c_str(), cls.distinct_found(),
        cls.target(), report.modeled_time_s);

    std::map<std::string, std::pair<core::SolveSample, int>> distinct;
    for (const auto& s : report.samples) {
      if (!s.is_nash) continue;
      auto [it, fresh] = distinct.try_emplace(s.key(), s, 0);
      ++it->second.second;
    }
    for (const auto& [key, entry] : distinct) {
      const auto& s = entry.first;
      std::printf("%s %s  %s   [%d hits]\n",
                  game::is_pure_profile(s.p, s.q) ? "pure " : "mixed",
                  strategy_string("p", s.p).c_str(),
                  strategy_string("q", s.q).c_str(), entry.second);
    }
    if (i + 1 < games.size()) std::printf("\n%s\n\n", std::string(72, '-').c_str());
  }
  return 0;
}
