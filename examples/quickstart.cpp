// Quickstart: solve "Battle of the Sexes" on the C-Nash hardware model.
//
//   $ ./quickstart [--threads N]
//
// Programs the FeFET bi-crossbar with the payoff matrices, runs a batch of
// two-phase simulated-annealing descents through the SolverEngine (spread
// across N worker threads — same results for any N), and prints every
// distinct Nash equilibrium found (pure and mixed), cross-checked against
// the exact support-enumeration ground truth.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"

int main(int argc, char** argv) {
  using namespace cnash;

  std::size_t threads = 0;  // 0 = one worker per hardware thread
  for (int a = 1; a + 1 < argc; ++a)
    if (!std::strcmp(argv[a], "--threads"))
      threads = std::strtoul(argv[a + 1], nullptr, 10);

  const game::BimatrixGame g = game::battle_of_sexes();
  std::printf("%s\n", g.to_string().c_str());

  // 1. Configure the solver: probability grid I=12 (the mixed equilibrium
  //    (2/3,1/3)x(1/3,2/3) lies exactly on this grid), 10000 SA iterations as
  //    in the paper, full hardware model (device variability, WTA offsets,
  //    ADC quantization). Each run gets its own keyed RNG stream and its own
  //    hardware instance, so the batch parallelises without changing results.
  core::CNashConfig cfg;
  cfg.intervals = 12;
  cfg.sa.iterations = 10000;
  cfg.seed = 2024;
  cfg.threads = threads;
  core::CNashSolver solver(g, cfg);

  // 2. Run 50 annealing descents and collect the solutions.
  const auto outcomes = solver.run(50);

  // 3. Verify against the exact ground truth.
  const auto ground_truth = game::all_equilibria(g);
  std::vector<core::CandidateSolution> candidates;
  for (const auto& o : outcomes) candidates.push_back({o.p, o.q});
  const auto report = core::classify(g, ground_truth, candidates, 1e-9);

  std::printf("SA runs: %zu   success rate: %s%%   distinct NE found: %zu/%zu\n\n",
              report.runs, core::percent(report.success_rate()).c_str(),
              report.distinct_found(), report.target());

  std::map<std::string, std::pair<core::SolveSample, int>> distinct;
  for (const auto& o : outcomes) {
    if (!game::is_nash_equilibrium(g, o.p, o.q, 1e-9)) continue;
    auto [it, fresh] = distinct.try_emplace(o.key(), o, 0);
    ++it->second.second;
  }
  for (const auto& [key, entry] : distinct) {
    const auto& o = entry.first;
    std::printf("NE %s  p = (%.3f, %.3f)  q = (%.3f, %.3f)   hit %d times, f = %.4f\n",
                game::is_pure_profile(o.p, o.q) ? "(pure) " : "(mixed)",
                o.p[0], o.p[1], o.q[0], o.q[1], entry.second, o.objective);
  }
  return 0;
}
