// chaos_client — adversarial load generator for the nash_serve gateway
// (scripts/chaos_smoke.sh drives it; README "Failure model"). Opens many
// concurrent connections and misbehaves on purpose:
//
//   --mode slowloris   N connections dribbling a valid request one byte at a
//                      time round-robin, then each reads its response — the
//                      server must neither block on a slow writer nor drop a
//                      complete request.
//   --mode disconnect  N connections that send half a request (odd), or a
//                      full solve and vanish without reading the response
//                      (even) — exercises mid-request disconnects and
//                      responses to dead peers.
//   --mode malformed   N connections flooding unparsable JSON, wrong-type
//                      fields and unknown methods — every line must come
//                      back as a structured {"ok":false,...} error on a
//                      still-usable connection.
//   --mode frames      N connections abusing the binary framing: broken
//                      frame headers (wrong version, oversize length) must
//                      get one structured error frame then EOF — the stream
//                      is desynchronised and cannot be resumed — while
//                      well-framed garbage (unknown request type, unparsable
//                      payload) must get an error frame on a still-usable
//                      connection.
//   --mode mixed       the three JSON-lines storms, round-robin by
//                      connection index.
//
//   chaos_client --port P [--host H] [--mode M] [--connections N]
//
// Exit 0 when every expectation held; 1 otherwise (details on stderr).

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/line_client.hpp"
#include "util/json.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string mode = "mixed";
  std::size_t connections = 200;
};

const char* kStatusLine = "{\"method\":\"status\",\"id\":7}\n";

// A tiny but real solve: matching-pennies, few runs/iterations so even a
// storm of them drains quickly.
std::string solve_line(std::size_t i) {
  return "{\"method\":\"solve\",\"id\":" + std::to_string(i) +
         ",\"game\":{\"name\":\"mp\",\"m\":[[1,-1],[-1,1]],"
         "\"n\":[[-1,1],[1,-1]]},\"backend\":\"exact-sa\",\"runs\":2,"
         "\"iterations\":60,\"seed\":" + std::to_string(1000 + i) + "}\n";
}

const char* malformed_line(std::size_t i) {
  switch (i % 4) {
    case 0: return "{not json at all\n";
    case 1: return "{\"method\":42}\n";
    case 2: return "{\"method\":\"no-such-method\",\"id\":3}\n";
    default:
      return "{\"method\":\"solve\",\"id\":4,\"game\":{\"m\":[[1]],"
             "\"n\":[[1]]},\"runs\":-5}\n";
  }
}

bool send_all(cnash::serve::LineClient& c, const std::string& bytes) {
  // LineClient::send_line appends '\n'; the chaos lines carry their own, so
  // strip it and let send_line re-add (keeps framing in one place).
  std::string line = bytes;
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return c.send_line(line);
}

bool expect_response(cnash::serve::LineClient& c, const char* what,
                     bool* was_ok = nullptr) {
  std::string line;
  if (!c.recv_line(line)) {
    std::fprintf(stderr, "chaos: no response for %s\n", what);
    return false;
  }
  try {
    const cnash::util::Json r = cnash::util::Json::parse(line);
    const bool ok = r.at("ok").as_bool();
    if (was_ok) *was_ok = ok;
    if (!ok && !r.find("error")) {
      std::fprintf(stderr, "chaos: error response without error object: %s\n",
                   line.c_str());
      return false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: unparsable response for %s: %s\n", what,
                 e.what());
    return false;
  }
  return true;
}

int run_slowloris(const Options& opt) {
  std::vector<cnash::serve::LineClient> conns(opt.connections);
  for (std::size_t i = 0; i < conns.size(); ++i)
    if (!conns[i].connect_to(opt.host, opt.port)) {
      std::fprintf(stderr, "chaos: connect %zu failed: %s\n", i,
                   std::strerror(errno));
      return 1;
    }
  // Dribble the request one byte per connection per round: every connection
  // stays incomplete for the whole ramp, so the server holds all of them
  // buffered at once.
  const std::string line = kStatusLine;
  for (std::size_t pos = 0; pos + 1 < line.size(); ++pos)
    for (auto& c : conns)
      if (!c.send_raw(line.data() + pos, 1)) {
        std::fprintf(stderr, "chaos: slowloris send failed: %s\n",
                     std::strerror(errno));
        return 1;
      }
  for (auto& c : conns)
    if (!c.send_raw(line.data() + line.size() - 1, 1)) {
      std::fprintf(stderr, "chaos: slowloris final byte failed\n");
      return 1;
    }
  int rc = 0;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    bool ok = false;
    if (!expect_response(conns[i], "slowloris status", &ok) || !ok) rc = 1;
  }
  return rc;
}

int run_disconnect(const Options& opt) {
  for (std::size_t i = 0; i < opt.connections; ++i) {
    cnash::serve::LineClient c;
    if (!c.connect_to(opt.host, opt.port)) {
      std::fprintf(stderr, "chaos: connect %zu failed: %s\n", i,
                   std::strerror(errno));
      return 1;
    }
    const std::string line = solve_line(i);
    if (i % 2) {
      // Half a request, then vanish.
      c.send_raw(line.data(), line.size() / 2);
    } else {
      // Full request, vanish before the response (the server answers a
      // closed socket and must shrug it off).
      send_all(c, line);
    }
    // c's destructor closes the socket — the disconnect.
  }
  // The server must still be alive and coherent afterwards.
  cnash::serve::LineClient probe;
  if (!probe.connect_to(opt.host, opt.port) ||
      !send_all(probe, kStatusLine)) {
    std::fprintf(stderr, "chaos: server unreachable after disconnect storm\n");
    return 1;
  }
  bool ok = false;
  if (!expect_response(probe, "post-storm status", &ok) || !ok) return 1;
  return 0;
}

int run_malformed(const Options& opt) {
  int rc = 0;
  for (std::size_t i = 0; i < opt.connections; ++i) {
    cnash::serve::LineClient c;
    if (!c.connect_to(opt.host, opt.port)) {
      std::fprintf(stderr, "chaos: connect %zu failed: %s\n", i,
                   std::strerror(errno));
      return 1;
    }
    if (!send_all(c, malformed_line(i))) {
      std::fprintf(stderr, "chaos: malformed send %zu failed\n", i);
      rc = 1;
      continue;
    }
    bool ok = true;
    if (!expect_response(c, "malformed line", &ok)) {
      rc = 1;
      continue;
    }
    if (ok) {
      std::fprintf(stderr, "chaos: malformed line %zu was accepted\n", i);
      rc = 1;
      continue;
    }
    // The connection must survive a bad line: a good request on the same
    // socket still gets served.
    bool ok2 = false;
    if (!send_all(c, kStatusLine) ||
        !expect_response(c, "post-malformed status", &ok2) || !ok2) {
      std::fprintf(stderr, "chaos: connection %zu unusable after error\n", i);
      rc = 1;
    }
  }
  return rc;
}

// One binary response frame that must be a structured error.
bool expect_error_frame(cnash::serve::LineClient& c, const char* what) {
  unsigned char type = 0;
  std::string body;
  if (!c.recv_frame(type, body)) {
    std::fprintf(stderr, "chaos: no frame response for %s\n", what);
    return false;
  }
  if (type != cnash::serve::kFrameError) {
    std::fprintf(stderr, "chaos: %s got frame type 0x%02x, not an error\n",
                 what, type);
    return false;
  }
  try {
    const cnash::util::Json r = cnash::util::Json::parse(body);
    if (r.at("ok").as_bool() || !r.find("error")) {
      std::fprintf(stderr, "chaos: malformed %s was accepted: %s\n", what,
                   body.c_str());
      return false;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos: unparsable error frame for %s: %s\n", what,
                 e.what());
    return false;
  }
  return true;
}

int run_frames(const Options& opt) {
  int rc = 0;
  for (std::size_t i = 0; i < opt.connections; ++i) {
    cnash::serve::LineClient c;
    if (!c.connect_to(opt.host, opt.port)) {
      std::fprintf(stderr, "chaos: connect %zu failed: %s\n", i,
                   std::strerror(errno));
      return 1;
    }
    const bool desync = i % 4 < 2;  // header-level damage: error then close
    switch (i % 4) {
      case 0: {  // unsupported frame version
        const char header[8] = {'\xCE', '\x4E', '\x00', '\x01', 0, 0, 0, 0};
        if (!c.send_raw(header, sizeof header)) rc = 1;
        break;
      }
      case 1: {  // payload length beyond the server's limit
        const char header[8] = {'\xCE', '\x4E', '\x01', '\x01',
                                '\xFF', '\xFF', '\xFF', '\xFF'};
        if (!c.send_raw(header, sizeof header)) rc = 1;
        break;
      }
      case 2:  // well-framed, unknown request type
        if (!c.send_frame(0x7F, "{}")) rc = 1;
        break;
      default:  // well-framed solve, unparsable payload
        if (!c.send_frame(cnash::serve::kFrameSolve, "{not json")) rc = 1;
        break;
    }
    if (!expect_error_frame(c, desync ? "broken header" : "garbage frame")) {
      rc = 1;
      continue;
    }
    unsigned char type = 0;
    std::string body;
    if (desync) {
      // The stream is unrecoverable: the server must close after the error.
      if (c.recv_frame(type, body)) {
        std::fprintf(stderr,
                     "chaos: connection %zu stayed open after a broken "
                     "frame header\n", i);
        rc = 1;
      }
      continue;
    }
    // A frame-level error must not poison the connection: a good status
    // frame on the same socket still gets served.
    if (!c.send_frame(cnash::serve::kFrameStatus, "{}") ||
        !c.recv_frame(type, body) || type != cnash::serve::kFrameFinal) {
      std::fprintf(stderr, "chaos: connection %zu unusable after frame "
                   "error\n", i);
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int a = 1; a < argc; ++a) {
    auto next = [&](const char* flag) {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++a];
    };
    if (!std::strcmp(argv[a], "--host")) opt.host = next("--host");
    else if (!std::strcmp(argv[a], "--port"))
      opt.port = static_cast<std::uint16_t>(
          std::strtoul(next("--port"), nullptr, 10));
    else if (!std::strcmp(argv[a], "--mode")) opt.mode = next("--mode");
    else if (!std::strcmp(argv[a], "--connections"))
      opt.connections = std::strtoul(next("--connections"), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: %s --port P [--host H] [--mode slowloris|"
                   "disconnect|malformed|frames|mixed] [--connections N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.port == 0 || opt.connections == 0) {
    std::fprintf(stderr, "chaos: --port required, --connections > 0\n");
    return 2;
  }

  if (opt.mode == "slowloris") return run_slowloris(opt);
  if (opt.mode == "disconnect") return run_disconnect(opt);
  if (opt.mode == "malformed") return run_malformed(opt);
  if (opt.mode == "frames") return run_frames(opt);
  if (opt.mode == "mixed") {
    Options third = opt;
    third.connections = (opt.connections + 2) / 3;
    int rc = 0;
    rc |= run_slowloris(third);
    rc |= run_disconnect(third);
    rc |= run_malformed(third);
    return rc;
  }
  std::fprintf(stderr, "chaos: unknown mode %s\n", opt.mode.c_str());
  return 2;
}
