// Hardware tour: walks through every analog component of the C-Nash
// architecture bottom-up — FeFET device, 1FeFET1R cell, crossbar mapping,
// WTA tree, ADC — and shows one full two-phase objective evaluation with all
// intermediate currents, latency and energy.

#include <cstdio>

#include "core/timing.hpp"
#include "core/two_phase.hpp"
#include "fefet/cell_1t1r.hpp"
#include "fefet/preisach.hpp"
#include "game/games.hpp"
#include "util/rng.hpp"
#include "wta/wta_tree.hpp"
#include "xbar/energy.hpp"

int main() {
  using namespace cnash;

  std::printf("=== 1. FeFET device (Fig. 2) ===\n");
  fefet::PreisachFerroelectric fe;
  fe.apply_pulse(4.0);
  std::printf("after +4V write pulse: P = %+.2f, V_TH = %.2f V (logic '1')\n",
              fe.polarization(), fe.threshold_voltage());
  fe.apply_pulse(-4.0);
  std::printf("after -4V write pulse: P = %+.2f, V_TH = %.2f V (logic '0')\n",
              fe.polarization(), fe.threshold_voltage());

  const fefet::VariabilityParams var;
  fefet::Cell1T1R on_cell(true, {0.0, var.r_nominal});
  fefet::Cell1T1R off_cell(false, {0.0, var.r_nominal});
  std::printf("1FeFET1R read currents: ON = %.3e A, OFF = %.3e A (window %.0fx)\n\n",
              on_cell.read(true, true), off_cell.read(true, true),
              on_cell.read(true, true) / off_cell.read(true, true));

  std::printf("=== 2. Bi-crossbar mapping (Fig. 4) ===\n");
  const game::BimatrixGame g = game::bird_game();
  const std::uint32_t intervals = 12;
  core::TwoPhaseConfig cfg;
  core::TwoPhaseEvaluator hw(g, intervals, cfg, util::Rng(5));
  const auto& geom = hw.crossbar_m().mapping().geometry();
  std::printf("game %s: payoff matrix %zux%zu, I=%u, t=%u cells/element\n",
              g.name().c_str(), geom.n, geom.m, geom.intervals,
              geom.cells_per_element);
  std::printf("crossbar M: %zu x %zu = %zu 1FeFET1R cells\n", geom.total_rows(),
              geom.total_cols(), geom.total_cells());

  std::printf("\n=== 3. WTA tree (Fig. 5) ===\n");
  const auto& tree = hw.wta_rows();
  std::printf("%zu inputs -> %zu two-input cells, depth %zu, latency %.3f ns\n",
              tree.num_inputs(), tree.num_cells(), tree.depth(),
              tree.latency_s() * 1e9);

  std::printf("\n=== 4. Two-phase evaluation (Fig. 6) ===\n");
  game::QuantizedProfile prof{
      game::QuantizedStrategy::from_distribution({0.25, 0.25, 0.5}, intervals),
      game::QuantizedStrategy::from_distribution({0.25, 0.25, 0.5}, intervals)};
  const double f = hw.evaluate(prof);
  const auto& r = hw.last_readout();
  std::printf("profile p=q=(0.25,0.25,0.50) — a mixed NE of the bird game\n");
  std::printf("phase 1: max(Mq)  = %.4f, max(Ntp) = %.4f (payoff units)\n",
              r.max_mq, r.max_ntp);
  std::printf("phase 2: ptMq     = %.4f, ptNq     = %.4f\n", r.vmv_m, r.vmv_n);
  std::printf("objective f = %.5f  (0 at a Nash equilibrium)\n", f);

  std::printf("\n=== 5. Latency & energy models ===\n");
  const core::CNashTimingModel timing;
  std::printf("analog path: %.2f ns/iteration, controller-bound: %.2f us\n",
              timing.analog_path_s(geom) * 1e9, timing.iteration_s(geom) * 1e6);
  const xbar::EnergyModel energy;
  const auto breakdown = energy.array_read(
      2e-4, geom.total_rows(), geom.total_cols(), geom.n + 1);
  std::printf("one array read: %.2f pJ (crossbar %.2f + lines %.2f + ADC %.2f)\n",
              breakdown.total() * 1e12, breakdown.crossbar_j * 1e12,
              breakdown.lines_j * 1e12, breakdown.adc_j * 1e12);
  return 0;
}
