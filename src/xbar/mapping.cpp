#include "xbar/mapping.hpp"

#include <cmath>
#include <stdexcept>

namespace cnash::xbar {

la::Matrix require_integer_matrix(const la::Matrix& payoff, double tol) {
  la::Matrix out(payoff.rows(), payoff.cols());
  for (std::size_t r = 0; r < payoff.rows(); ++r)
    for (std::size_t c = 0; c < payoff.cols(); ++c) {
      const double v = payoff(r, c);
      const double rounded = std::round(v);
      if (std::abs(v - rounded) > tol || rounded < 0.0)
        throw std::invalid_argument(
            "crossbar mapping requires non-negative integer payoffs");
      out(r, c) = rounded;
    }
  return out;
}

CrossbarMapping::CrossbarMapping(const la::Matrix& payoff,
                                 std::uint32_t intervals,
                                 std::uint32_t cells_per_element,
                                 std::uint32_t levels_per_cell) {
  if (intervals == 0) throw std::invalid_argument("CrossbarMapping: I == 0");
  if (levels_per_cell < 2)
    throw std::invalid_argument("CrossbarMapping: need >= 2 levels per cell");
  const la::Matrix ints = require_integer_matrix(payoff);
  geom_.n = ints.rows();
  geom_.m = ints.cols();
  geom_.intervals = intervals;
  geom_.levels_per_cell = levels_per_cell;
  std::uint32_t max_el = 0;
  elements_.resize(geom_.n * geom_.m);
  for (std::size_t r = 0; r < geom_.n; ++r)
    for (std::size_t c = 0; c < geom_.m; ++c) {
      const auto v = static_cast<std::uint32_t>(ints(r, c));
      elements_[r * geom_.m + c] = v;
      max_el = std::max(max_el, v);
    }
  const std::uint32_t per_cell = levels_per_cell - 1;
  const std::uint32_t needed = (std::max(max_el, 1u) + per_cell - 1) / per_cell;
  if (cells_per_element == 0) cells_per_element = needed;
  if (cells_per_element * per_cell < max_el)
    throw std::invalid_argument(
        "CrossbarMapping: t*(levels-1) smaller than max element");
  geom_.cells_per_element = cells_per_element;
}

std::uint32_t CrossbarMapping::element(std::size_t i, std::size_t j) const {
  if (i >= geom_.n || j >= geom_.m)
    throw std::out_of_range("CrossbarMapping::element");
  return elements_[i * geom_.m + j];
}

CrossbarMapping::ColAddress CrossbarMapping::col_address(std::size_t col) const {
  if (col >= geom_.total_cols()) throw std::out_of_range("col_address");
  const std::size_t block_width =
      static_cast<std::size_t>(geom_.intervals) * geom_.cells_per_element;
  ColAddress a;
  a.j = col / block_width;
  const std::size_t within = col % block_width;
  a.group = static_cast<std::uint32_t>(within / geom_.cells_per_element);
  a.cell = static_cast<std::uint32_t>(within % geom_.cells_per_element);
  return a;
}

CrossbarMapping::RowAddress CrossbarMapping::row_address(std::size_t row) const {
  if (row >= geom_.total_rows()) throw std::out_of_range("row_address");
  RowAddress a;
  a.i = row / geom_.intervals;
  a.row_in_block = static_cast<std::uint32_t>(row % geom_.intervals);
  return a;
}

std::uint32_t CrossbarMapping::cell_level(std::uint32_t element_value,
                                          std::uint32_t k) const {
  const std::uint32_t per_cell = geom_.levels_per_cell - 1;
  const std::uint64_t consumed = static_cast<std::uint64_t>(k) * per_cell;
  if (consumed >= element_value) return 0;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(element_value - consumed, per_cell));
}

bool CrossbarMapping::stored_bit(std::size_t row, std::size_t col) const {
  const ColAddress a = col_address(col);
  const RowAddress r = row_address(row);
  return cell_level(element(r.i, a.j), a.cell) > 0;
}

std::uint64_t CrossbarMapping::conducting_cells(
    const std::vector<std::uint32_t>& rows_active,
    const std::vector<std::uint32_t>& groups_active) const {
  if (rows_active.size() != geom_.n || groups_active.size() != geom_.m)
    throw std::invalid_argument("conducting_cells: activation size mismatch");
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < geom_.n; ++i) {
    if (rows_active[i] > geom_.intervals)
      throw std::invalid_argument("conducting_cells: rows_active > I");
    for (std::size_t j = 0; j < geom_.m; ++j) {
      if (groups_active[j] > geom_.intervals)
        throw std::invalid_argument("conducting_cells: groups_active > I");
      total += static_cast<std::uint64_t>(rows_active[i]) * groups_active[j] *
               element(i, j);
    }
  }
  return total;
}

}  // namespace cnash::xbar
