#pragma once
// Silicon-area estimation for the C-Nash macro. The paper motivates FeFET by
// its compact three-terminal cell; this model turns array geometry into µm²
// so design points (quantization I, cells-per-element t, game size) can be
// compared. 28 nm-class defaults: a 1FeFET1R cell is a few F² larger than
// bare 1T, peripheral drivers scale with line counts, ADCs and WTA cells are
// macro blocks.

#include <cstddef>

#include "xbar/mapping.hpp"

namespace cnash::xbar {

struct AreaParams {
  double cell_um2 = 0.045;          // 1FeFET1R cell incl. resistor
  double wl_driver_um2 = 1.2;       // per word line
  double dl_driver_um2 = 1.0;       // per data line
  double sense_um2 = 18.0;          // per source-line sense path
  double adc_um2 = 380.0;           // per ADC macro
  double wta_cell_um2 = 6.5;        // per 2-input WTA cell
  double sa_logic_um2 = 5200.0;     // digital SA controller (shared)
};

struct AreaBreakdown {
  double array_um2 = 0.0;
  double drivers_um2 = 0.0;
  double sense_um2 = 0.0;
  double adc_um2 = 0.0;
  double wta_um2 = 0.0;
  double logic_um2 = 0.0;
  double total_um2() const {
    return array_um2 + drivers_um2 + sense_um2 + adc_um2 + wta_um2 + logic_um2;
  }
};

class AreaModel {
 public:
  explicit AreaModel(AreaParams params = {});

  const AreaParams& params() const { return params_; }

  /// One crossbar with its peripherals (`adcs` converters, `wta_cells`
  /// two-input cells; block-row sensing — one sense path per matrix row).
  AreaBreakdown crossbar(const MappingGeometry& geom, std::size_t adcs,
                         std::size_t wta_cells) const;

  /// The full bi-crossbar C-Nash macro for an n×m game: two crossbars, two
  /// WTA trees, two ADCs per array and the shared SA controller.
  AreaBreakdown macro(const MappingGeometry& geom_m,
                      const MappingGeometry& geom_nt) const;

 private:
  AreaParams params_;
};

}  // namespace cnash::xbar
