#pragma once
// Silicon-area estimation for the C-Nash macro. The paper motivates FeFET by
// its compact three-terminal cell; this model turns array geometry into µm²
// so design points (quantization I, cells-per-element t, game size) can be
// compared. 28 nm-class defaults: a 1FeFET1R cell is a few F² larger than
// bare 1T, peripheral drivers scale with line counts, ADCs and WTA cells are
// macro blocks.

#include <cstddef>

#include "xbar/mapping.hpp"

namespace cnash::xbar {

struct AreaParams {
  double cell_um2 = 0.045;          // 1FeFET1R cell incl. resistor
  double wl_driver_um2 = 1.2;       // per word line
  double dl_driver_um2 = 1.0;       // per data line
  double sense_um2 = 18.0;          // per source-line sense path
  double adc_um2 = 380.0;           // per ADC macro
  double wta_cell_um2 = 6.5;        // per 2-input WTA cell
  double sa_logic_um2 = 5200.0;     // digital SA controller (shared)
  double htree_adder_um2 = 14.0;    // per 2-input H-tree aggregation adder
};

struct AreaBreakdown {
  double array_um2 = 0.0;
  double drivers_um2 = 0.0;
  double sense_um2 = 0.0;
  double adc_um2 = 0.0;
  double wta_um2 = 0.0;
  double logic_um2 = 0.0;
  double htree_um2 = 0.0;  // tile-output aggregation tree (tiled macro only)
  double total_um2() const {
    return array_um2 + drivers_um2 + sense_um2 + adc_um2 + wta_um2 + logic_um2 +
           htree_um2;
  }
};

class AreaModel {
 public:
  explicit AreaModel(AreaParams params = {});

  const AreaParams& params() const { return params_; }

  /// One crossbar with its peripherals (`adcs` converters, `wta_cells`
  /// two-input cells; block-row sensing — one sense path per matrix row).
  AreaBreakdown crossbar(const MappingGeometry& geom, std::size_t adcs,
                         std::size_t wta_cells) const;

  /// The full bi-crossbar C-Nash macro for an n×m game: two crossbars, two
  /// WTA trees, two ADCs per array and the shared SA controller.
  AreaBreakdown macro(const MappingGeometry& geom_m,
                      const MappingGeometry& geom_nt) const;

  /// One tiled crossbar: `num_tiles` fixed-size arrays of
  /// tile_rows × tile_cols cells (unused lines of partial tiles are still
  /// paid for — the tiling overhead), per-tile drivers and per-logical-row
  /// sensing, plus the H-tree adder stage (num_tiles - 1 two-input adders
  /// per aggregated output is conservatively folded into one tree of
  /// num_tiles - 1 adders).
  AreaBreakdown tiled_crossbar(std::size_t tile_rows, std::size_t tile_cols,
                               std::size_t num_tiles, std::size_t logical_rows,
                               std::size_t adcs, std::size_t wta_cells) const;

  /// The tiled bi-crossbar macro: both tile grids, shared WTA / ADC / SA
  /// controller, H-tree adders per grid.
  AreaBreakdown tiled_macro(std::size_t tile_rows, std::size_t tile_cols,
                            std::size_t num_tiles_m, std::size_t num_tiles_nt,
                            std::size_t n, std::size_t m) const;

 private:
  AreaParams params_;
};

}  // namespace cnash::xbar
