#pragma once
// ADC / sense model quantizing analog source-line currents ("S&A" blocks of
// Fig. 3(b,c)). Uniform quantization over a configurable full-scale range plus
// optional input-referred Gaussian noise.

#include <cstdint>

#include "util/rng.hpp"

namespace cnash::xbar {

struct AdcConfig {
  unsigned bits = 8;
  double full_scale_current = 1e-3;   // A
  double noise_sigma = 0.0;           // A, input-referred
  double conversion_time_s = 10e-9;   // per conversion (timing model)
  double energy_per_conversion_j = 2e-12;
};

class Adc {
 public:
  explicit Adc(AdcConfig config);

  const AdcConfig& config() const { return config_; }

  /// Digital code for the input current (clamped to the full scale).
  std::uint32_t quantize(double current, util::Rng& rng) const;
  /// Code converted back to a current (mid-rise reconstruction).
  double reconstruct(std::uint32_t code) const;
  /// Convenience: quantize-then-reconstruct.
  double convert(double current, util::Rng& rng) const;

  double lsb_current() const { return lsb_; }
  std::uint32_t max_code() const { return max_code_; }

 private:
  AdcConfig config_;
  double lsb_;
  std::uint32_t max_code_;
};

}  // namespace cnash::xbar
