#include "xbar/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cnash::xbar {

Adc::Adc(AdcConfig config) : config_(config) {
  if (config_.bits == 0 || config_.bits > 24)
    throw std::invalid_argument("Adc: bits out of range");
  if (config_.full_scale_current <= 0.0)
    throw std::invalid_argument("Adc: full scale must be positive");
  max_code_ = (1u << config_.bits) - 1;
  lsb_ = config_.full_scale_current / static_cast<double>(max_code_ + 1);
}

std::uint32_t Adc::quantize(double current, util::Rng& rng) const {
  double x = current;
  if (config_.noise_sigma > 0.0) x += rng.normal(0.0, config_.noise_sigma);
  x = std::clamp(x, 0.0, config_.full_scale_current);
  const auto code = static_cast<std::uint32_t>(x / lsb_);
  return std::min(code, max_code_);
}

double Adc::reconstruct(std::uint32_t code) const {
  return (static_cast<double>(std::min(code, max_code_)) + 0.5) * lsb_;
}

double Adc::convert(double current, util::Rng& rng) const {
  return reconstruct(quantize(current, rng));
}

}  // namespace cnash::xbar
