#include "xbar/parasitics.hpp"

#include <cmath>
#include <stdexcept>

namespace cnash::xbar {

WireModel::WireModel(WireParams params) : params_(params) {
  if (params_.resistance_per_cell < 0 || params_.capacitance_per_cell < 0)
    throw std::invalid_argument("WireModel: negative parasitics");
}

double WireModel::line_resistance(std::size_t cells) const {
  return params_.resistance_per_cell * static_cast<double>(cells);
}

double WireModel::line_capacitance(std::size_t cells) const {
  return params_.capacitance_per_cell * static_cast<double>(cells);
}

double WireModel::settle_time(std::size_t cells) const {
  const double c = line_capacitance(cells);
  return 0.69 * params_.driver_resistance * c +
         0.38 * line_resistance(cells) * c;
}

double WireModel::ir_drop(std::size_t cells, double current) const {
  return current * line_resistance(cells) / 2.0;
}

std::size_t WireModel::max_cells_for_drop(double max_drop,
                                          double per_cell_current) const {
  if (per_cell_current <= 0.0 || params_.resistance_per_cell <= 0.0)
    return static_cast<std::size_t>(-1);
  // drop(n) = per_cell_current * n * (r * n) / 2 <= max_drop.
  const double n = std::sqrt(2.0 * max_drop /
                             (per_cell_current * params_.resistance_per_cell));
  return static_cast<std::size_t>(n);
}

}  // namespace cnash::xbar
