#pragma once
// The bi-crossbar mapping of Fig. 4.
//
// A payoff matrix M (n×m, non-negative integers <= t) is stored in an
// (I·n) × (I·t·m) array of 1FeFET1R cells:
//   * element block (i, j) is an I × (I·t) subarray;
//   * within a block, columns form I groups of t cells; m_ij of the t cells in
//     every group store '1' (unary value coding);
//   * strategy input p_i activates round(p_i · I) word lines of block-row i;
//   * strategy input q_j activates round(q_j · I) column groups of block j.
// The summed block current is then ∝ p_i · m_ij · q_j (Fig. 4(c) example:
// 0.25 × 3 × 0.75 with I = 4, t = 4 activates 1 row and 8 of 12 stored
// columns). Source lines sum along block-rows, so per-block-row readout gives
// the matrix-vector product Mq and full-array readout gives pᵀMq.

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace cnash::xbar {

struct MappingGeometry {
  std::size_t n;        // matrix rows (player-1 actions)
  std::size_t m;        // matrix cols (player-2 actions)
  std::uint32_t intervals;  // I
  std::uint32_t cells_per_element;  // t
  /// Conductance levels per cell: 2 = binary (the paper's 1-bit cells);
  /// > 2 models the multi-level-cell FeFETs of ref. [29], which shrink t to
  /// ceil(max_element / (levels-1)) cells per element.
  std::uint32_t levels_per_cell = 2;

  std::size_t total_rows() const { return n * intervals; }
  std::size_t total_cols() const {
    return m * static_cast<std::size_t>(intervals) * cells_per_element;
  }
  std::size_t total_cells() const { return total_rows() * total_cols(); }
};

/// Integer-coded payoff matrix ready for programming. Validates that all
/// entries are non-negative integers not exceeding t.
class CrossbarMapping {
 public:
  /// `payoff` must contain non-negative integers. With binary cells
  /// (levels_per_cell = 2) t defaults to the maximum element; with
  /// multi-level cells t = ceil(max_element / (levels_per_cell - 1)). An
  /// explicit `cells_per_element` must be large enough to code the maximum.
  CrossbarMapping(const la::Matrix& payoff, std::uint32_t intervals,
                  std::uint32_t cells_per_element = 0,
                  std::uint32_t levels_per_cell = 2);

  const MappingGeometry& geometry() const { return geom_; }
  std::uint32_t element(std::size_t i, std::size_t j) const;

  /// Stored bit of the physical cell at (row, col) in array coordinates
  /// (true when the cell conducts at all, i.e. level > 0).
  bool stored_bit(std::size_t row, std::size_t col) const;

  /// Programmed conductance level of cell k within an element of the given
  /// value: the value is coded base-(levels-1), greedily filling cells.
  std::uint32_t cell_level(std::uint32_t element_value, std::uint32_t k) const;

  /// Decompose a physical column into (element col j, group g, cell k).
  struct ColAddress {
    std::size_t j;
    std::uint32_t group;
    std::uint32_t cell;
  };
  ColAddress col_address(std::size_t col) const;

  /// Decompose a physical row into (element row i, row-in-block r).
  struct RowAddress {
    std::size_t i;
    std::uint32_t row_in_block;
  };
  RowAddress row_address(std::size_t row) const;

  /// Number of conducting ('1'·active) cells for an activation pattern:
  /// rows_active[i] word lines in block-row i, groups_active[j] column groups
  /// in block j. Exact combinatorial count (ideal current / nominal i_on).
  std::uint64_t conducting_cells(const std::vector<std::uint32_t>& rows_active,
                                 const std::vector<std::uint32_t>& groups_active)
      const;

 private:
  MappingGeometry geom_;
  std::vector<std::uint32_t> elements_;  // row-major n×m integer payoffs
};

/// Round-to-nearest integer payoff check: returns the integer matrix when all
/// entries of `payoff` are (within tol) non-negative integers, else throws.
la::Matrix require_integer_matrix(const la::Matrix& payoff, double tol = 1e-9);

}  // namespace cnash::xbar
