#pragma once
// Analytic wire parasitics for the crossbar lines. The paper extracts 28 nm
// wiring parasitics with DESTINY [28]; here an Elmore-style RC model with
// per-cell-pitch constants plays the same role: line settle time bounds the
// array read latency, and worst-case IR drop bounds usable array dimensions.

#include <cstddef>

namespace cnash::xbar {

struct WireParams {
  // Per cell pitch along a line, 28 nm-class metal defaults.
  double resistance_per_cell = 2.5;    // Ω
  double capacitance_per_cell = 0.08e-15;  // F
  double driver_resistance = 1.0e3;    // Ω
};

class WireModel {
 public:
  explicit WireModel(WireParams params = {});

  const WireParams& params() const { return params_; }

  double line_resistance(std::size_t cells) const;
  double line_capacitance(std::size_t cells) const;

  /// Elmore delay of a distributed RC line with the driver lumped in:
  /// t = 0.69 R_drv C_line + 0.38 R_line C_line.
  double settle_time(std::size_t cells) const;

  /// Worst-case IR drop at the far end when the line sinks `current` amps
  /// uniformly along its length (≈ I · R_line / 2).
  double ir_drop(std::size_t cells, double current) const;

  /// Largest line length whose IR drop stays under `max_drop` volts at the
  /// given per-cell sink current.
  std::size_t max_cells_for_drop(double max_drop, double per_cell_current) const;

 private:
  WireParams params_;
};

}  // namespace cnash::xbar
