#include "xbar/area.hpp"

#include "util/bits.hpp"

namespace cnash::xbar {

namespace {
std::size_t wta_cells_for(std::size_t inputs) {
  return (static_cast<std::size_t>(1) << util::ceil_log2(inputs)) - 1;
}
}  // namespace

AreaModel::AreaModel(AreaParams params) : params_(params) {}

AreaBreakdown AreaModel::crossbar(const MappingGeometry& geom, std::size_t adcs,
                                  std::size_t wta_cells) const {
  AreaBreakdown a;
  a.array_um2 = params_.cell_um2 * static_cast<double>(geom.total_cells());
  a.drivers_um2 =
      params_.wl_driver_um2 * static_cast<double>(geom.total_rows()) +
      params_.dl_driver_um2 * static_cast<double>(geom.total_cols());
  a.sense_um2 = params_.sense_um2 * static_cast<double>(geom.n);
  a.adc_um2 = params_.adc_um2 * static_cast<double>(adcs);
  a.wta_um2 = params_.wta_cell_um2 * static_cast<double>(wta_cells);
  return a;
}

AreaBreakdown AreaModel::tiled_crossbar(std::size_t tile_rows,
                                        std::size_t tile_cols,
                                        std::size_t num_tiles,
                                        std::size_t logical_rows,
                                        std::size_t adcs,
                                        std::size_t wta_cells) const {
  AreaBreakdown a;
  const double tiles = static_cast<double>(num_tiles);
  a.array_um2 = params_.cell_um2 * tiles * static_cast<double>(tile_rows) *
                static_cast<double>(tile_cols);
  a.drivers_um2 =
      tiles * (params_.wl_driver_um2 * static_cast<double>(tile_rows) +
               params_.dl_driver_um2 * static_cast<double>(tile_cols));
  a.sense_um2 = params_.sense_um2 * static_cast<double>(logical_rows);
  a.adc_um2 = params_.adc_um2 * static_cast<double>(adcs);
  a.wta_um2 = params_.wta_cell_um2 * static_cast<double>(wta_cells);
  a.htree_um2 = num_tiles > 1
                    ? params_.htree_adder_um2 * static_cast<double>(num_tiles - 1)
                    : 0.0;
  return a;
}

AreaBreakdown AreaModel::tiled_macro(std::size_t tile_rows,
                                     std::size_t tile_cols,
                                     std::size_t num_tiles_m,
                                     std::size_t num_tiles_nt, std::size_t n,
                                     std::size_t m) const {
  const AreaBreakdown bm =
      tiled_crossbar(tile_rows, tile_cols, num_tiles_m, n, 1, wta_cells_for(n));
  const AreaBreakdown bnt = tiled_crossbar(tile_rows, tile_cols, num_tiles_nt,
                                           m, 1, wta_cells_for(m));
  AreaBreakdown total;
  total.array_um2 = bm.array_um2 + bnt.array_um2;
  total.drivers_um2 = bm.drivers_um2 + bnt.drivers_um2;
  total.sense_um2 = bm.sense_um2 + bnt.sense_um2;
  total.adc_um2 = bm.adc_um2 + bnt.adc_um2;
  total.wta_um2 = bm.wta_um2 + bnt.wta_um2;
  total.htree_um2 = bm.htree_um2 + bnt.htree_um2;
  total.logic_um2 = params_.sa_logic_um2;
  return total;
}

AreaBreakdown AreaModel::macro(const MappingGeometry& geom_m,
                               const MappingGeometry& geom_nt) const {
  const AreaBreakdown m = crossbar(geom_m, 1, wta_cells_for(geom_m.n));
  const AreaBreakdown nt = crossbar(geom_nt, 1, wta_cells_for(geom_nt.n));
  AreaBreakdown total;
  total.array_um2 = m.array_um2 + nt.array_um2;
  total.drivers_um2 = m.drivers_um2 + nt.drivers_um2;
  total.sense_um2 = m.sense_um2 + nt.sense_um2;
  total.adc_um2 = m.adc_um2 + nt.adc_um2;
  total.wta_um2 = m.wta_um2 + nt.wta_um2;
  total.logic_um2 = params_.sa_logic_um2;
  return total;
}

}  // namespace cnash::xbar
