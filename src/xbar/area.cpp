#include "xbar/area.hpp"

namespace cnash::xbar {

namespace {
std::size_t wta_cells_for(std::size_t inputs) {
  std::size_t depth = 0;
  for (std::size_t span = 1; span < inputs; span <<= 1) ++depth;
  return (static_cast<std::size_t>(1) << depth) - 1;
}
}  // namespace

AreaModel::AreaModel(AreaParams params) : params_(params) {}

AreaBreakdown AreaModel::crossbar(const MappingGeometry& geom, std::size_t adcs,
                                  std::size_t wta_cells) const {
  AreaBreakdown a;
  a.array_um2 = params_.cell_um2 * static_cast<double>(geom.total_cells());
  a.drivers_um2 =
      params_.wl_driver_um2 * static_cast<double>(geom.total_rows()) +
      params_.dl_driver_um2 * static_cast<double>(geom.total_cols());
  a.sense_um2 = params_.sense_um2 * static_cast<double>(geom.n);
  a.adc_um2 = params_.adc_um2 * static_cast<double>(adcs);
  a.wta_um2 = params_.wta_cell_um2 * static_cast<double>(wta_cells);
  return a;
}

AreaBreakdown AreaModel::macro(const MappingGeometry& geom_m,
                               const MappingGeometry& geom_nt) const {
  const AreaBreakdown m = crossbar(geom_m, 1, wta_cells_for(geom_m.n));
  const AreaBreakdown nt = crossbar(geom_nt, 1, wta_cells_for(geom_nt.n));
  AreaBreakdown total;
  total.array_um2 = m.array_um2 + nt.array_um2;
  total.drivers_um2 = m.drivers_um2 + nt.drivers_um2;
  total.sense_um2 = m.sense_um2 + nt.sense_um2;
  total.adc_um2 = m.adc_um2 + nt.adc_um2;
  total.wta_um2 = m.wta_um2 + nt.wta_um2;
  total.logic_um2 = params_.sa_logic_um2;
  return total;
}

}  // namespace cnash::xbar
