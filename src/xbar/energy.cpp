#include "xbar/energy.hpp"

namespace cnash::xbar {

EnergyModel::EnergyModel(EnergyParams params) : params_(params) {}

ReadEnergyBreakdown EnergyModel::array_read(double total_current,
                                            std::size_t rows_active,
                                            std::size_t cols_active,
                                            std::size_t adc_conversions) const {
  ReadEnergyBreakdown e;
  e.crossbar_j = total_current * params_.v_dl * params_.read_time_s;
  e.lines_j = params_.line_charge_energy_j *
              static_cast<double>(rows_active + cols_active);
  e.adc_j = params_.adc_energy_j * static_cast<double>(adc_conversions);
  return e;
}

double EnergyModel::wta_tree(std::size_t inputs) const {
  if (inputs < 2) return 0.0;
  return params_.wta_cell_energy_j * static_cast<double>(inputs - 1);
}

double EnergyModel::htree(std::size_t fanin) const {
  if (fanin < 2) return 0.0;
  return params_.htree_adder_energy_j * static_cast<double>(fanin - 1);
}

}  // namespace cnash::xbar
