#pragma once
// A programmed FeFET crossbar array with static per-cell variability.
//
// Every physical cell's read current is sampled once at programming time
// (device-to-device variation is static), then folded into flat
// structure-of-arrays buffers:
//
//   * `prefix_` — one contiguous array holding, per element block (i,j), a
//     2-D prefix-sum table P of size (I+1)×(I+1) where P[r][g] is the summed
//     current of the first r rows and first g column groups of the block
//     ('1' cells at their sampled ON currents, '0' cells at leakage). Blocks
//     are row-major, tables row-major within a block.
//   * `mv_table_` — the per-column conductance sums driving Phase-1 MV
//     reads: entry (j, g, i) = P_ij[I][g], the full-row current of block
//     (i,j) at g active groups, laid out with i contiguous so a q_j group
//     change updates all n line currents with one contiguous pass.
//
// A matrix-vector or vector-matrix-vector read is then an O(n·m) table walk
// over contiguous memory while remaining *exactly* equal to the sum of the
// individual cell currents — cell-level fidelity at simulation speed. On top
// of the full reads, O(n) / O(m) delta kernels report how the line currents
// and the total array current move when a single strategy tick changes one
// activation count — the basis of the incremental two-phase evaluator. A
// direct per-cell read path is kept for validation and for the Fig. 7(a)
// robustness experiment.

#include <cstdint>
#include <vector>

#include "fefet/cell_1t1r.hpp"
#include "util/rng.hpp"
#include "xbar/mapping.hpp"

namespace cnash::xbar {

struct ArrayConfig {
  fefet::FeFetParams fet;
  fefet::VariabilityParams variability;
  fefet::CellBias bias;
  bool ideal = false;  // true: no variability, every ON cell = nominal i_on
  /// Fast device sampling: per-cell currents from a calibrated response
  /// surface (linearised ON-current sensitivity to ΔV_TH / ΔR — accurate
  /// because the 1R clamps the ON current — and the exact exponential
  /// subthreshold law for OFF cells) instead of the per-cell fixed-point
  /// solve. Validated against the exact path in tests; ~50× faster to
  /// program multi-million-cell arrays.
  bool fast_sampling = true;
  /// Fault injection: fraction of cells stuck non-conducting (broken FeFET /
  /// open resistor) and stuck conducting at the nominal ON current (shorted
  /// / depolarised device), sampled independently per cell at program time.
  double stuck_off_rate = 0.0;
  double stuck_on_rate = 0.0;
};

class ProgrammedCrossbar {
 public:
  ProgrammedCrossbar(CrossbarMapping mapping, const ArrayConfig& config,
                     util::Rng& rng);

  const CrossbarMapping& mapping() const { return mapping_; }
  const ArrayConfig& config() const { return config_; }

  /// Source-line current of block-row i for an activation pattern
  /// (rows_active[i] word lines of block-row i, groups_active[j] groups of
  /// block column j). Includes OFF-state leakage of activated '0' cells.
  double block_row_current(std::size_t i,
                           const std::vector<std::uint32_t>& rows_active,
                           const std::vector<std::uint32_t>& groups_active) const;

  /// All block-row currents: the analog vector that feeds the WTA tree.
  /// For an MV read (Mq), pass rows_active = I everywhere.
  std::vector<double> read_mv(
      const std::vector<std::uint32_t>& groups_active) const;

  /// Allocation-free MV read: writes the n block-row currents (all word
  /// lines active) into `out[0..n)`.
  void read_mv_into(const std::vector<std::uint32_t>& groups_active,
                    double* out) const;

  /// Raw-pointer variant for callers holding activations in a larger buffer
  /// (a chip tile slicing the global count vectors): `groups_active[0..m)`,
  /// no size validation.
  void read_mv_into(const std::uint32_t* groups_active, double* out) const;

  /// Total array current: the VMV read pᵀMq (Phase 2 of Fig. 6).
  double read_vmv(const std::vector<std::uint32_t>& rows_active,
                  const std::vector<std::uint32_t>& groups_active) const;

  /// Raw-pointer VMV read: `rows_active[0..n)`, `groups_active[0..m)`.
  double read_vmv(const std::uint32_t* rows_active,
                  const std::uint32_t* groups_active) const;

  // ---- Incremental delta kernels (single-tick activation changes) ----------
  //
  // A strategy tick move changes one activation count by ±1; these kernels
  // report the resulting current changes from the precomputed tables instead
  // of re-reading the whole array. All are exact (same table entries a full
  // read would sum, differenced instead).

  /// Phase-1 update: adds (column j at g_new) − (column j at g_old) to the n
  /// full-row line currents in `mv[0..n)`. O(n), contiguous.
  void mv_group_delta(std::size_t j, std::uint32_t g_old, std::uint32_t g_new,
                      double* mv) const;

  /// Phase-2 update: change of the total array current when block-row i goes
  /// from r_old to r_new active word lines under `groups_active`. O(m).
  double vmv_row_delta(std::size_t i, std::uint32_t r_old, std::uint32_t r_new,
                       const std::vector<std::uint32_t>& groups_active) const;

  /// Raw-pointer variant: `groups_active[0..m)`, no size validation.
  double vmv_row_delta(std::size_t i, std::uint32_t r_old, std::uint32_t r_new,
                       const std::uint32_t* groups_active) const;

  /// Phase-2 update: change of the total array current when block column j
  /// goes from g_old to g_new active groups under `rows_active`. O(n).
  double vmv_group_delta(std::size_t j, std::uint32_t g_old,
                         std::uint32_t g_new,
                         const std::vector<std::uint32_t>& rows_active) const;

  /// Raw-pointer variant: `rows_active[0..n)`, no size validation.
  double vmv_group_delta(std::size_t j, std::uint32_t g_old,
                         std::uint32_t g_new,
                         const std::uint32_t* rows_active) const;

  /// Slow path: direct sum over the activated cells (validation only).
  double read_vmv_percell(const std::vector<std::uint32_t>& rows_active,
                          const std::vector<std::uint32_t>& groups_active) const;

  /// Current of one physical cell under explicit activation (validation).
  double cell_current(std::size_t row, std::size_t col, bool row_active,
                      bool col_active) const;

  /// Nominal full-ON single-cell current.
  double nominal_on_current() const { return i_on_nominal_; }

  /// Current per unit of payoff value: i_on / (levels_per_cell - 1) — a
  /// full-ON cell codes (levels-1) payoff units.
  double unit_current() const;

  /// Convert an output current into payoff-matrix units: payoff value
  /// v = current / (i_on_nominal): one conducting cell == one payoff unit
  /// under full activation of I rows and I groups scaled by 1/I².
  double current_to_value(double current) const;

 private:
  double sampled_cell_current(std::size_t row, std::size_t col) const;
  const double* block_table(std::size_t i, std::size_t j) const {
    return prefix_.data() + (i * mapping_.geometry().m + j) * block_stride_;
  }

  CrossbarMapping mapping_;
  ArrayConfig config_;
  double i_on_nominal_;
  // Flat SoA prefix tables: block (i,j) occupies block_stride_ = (I+1)²
  // doubles starting at (i*m + j) * block_stride_; entry (r,g) sits at
  // r*table_dim_ + g within the block.
  std::vector<double> prefix_;
  // Per-column full-row sums for MV reads: entry (j, g, i) at
  // (j*table_dim_ + g)*n + i equals prefix entry (i, j, I, g).
  std::vector<double> mv_table_;
  std::size_t table_dim_;     // I+1
  std::size_t block_stride_;  // (I+1)²
};

}  // namespace cnash::xbar
