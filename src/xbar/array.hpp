#pragma once
// A programmed FeFET crossbar array with static per-cell variability.
//
// Every physical cell's read current is sampled once at programming time
// (device-to-device variation is static), then folded into per-block 2-D
// prefix sums over (rows-in-block, column groups). A matrix-vector or
// vector-matrix-vector read is then an O(n·m) table lookup while remaining
// *exactly* equal to the sum of the individual cell currents — cell-level
// fidelity at simulation speed. A direct per-cell read path is kept for
// validation and for the Fig. 7(a) robustness experiment.

#include <cstdint>
#include <vector>

#include "fefet/cell_1t1r.hpp"
#include "util/rng.hpp"
#include "xbar/mapping.hpp"

namespace cnash::xbar {

struct ArrayConfig {
  fefet::FeFetParams fet;
  fefet::VariabilityParams variability;
  fefet::CellBias bias;
  bool ideal = false;  // true: no variability, every ON cell = nominal i_on
  /// Fast device sampling: per-cell currents from a calibrated response
  /// surface (linearised ON-current sensitivity to ΔV_TH / ΔR — accurate
  /// because the 1R clamps the ON current — and the exact exponential
  /// subthreshold law for OFF cells) instead of the per-cell fixed-point
  /// solve. Validated against the exact path in tests; ~50× faster to
  /// program multi-million-cell arrays.
  bool fast_sampling = true;
  /// Fault injection: fraction of cells stuck non-conducting (broken FeFET /
  /// open resistor) and stuck conducting at the nominal ON current (shorted
  /// / depolarised device), sampled independently per cell at program time.
  double stuck_off_rate = 0.0;
  double stuck_on_rate = 0.0;
};

class ProgrammedCrossbar {
 public:
  ProgrammedCrossbar(CrossbarMapping mapping, const ArrayConfig& config,
                     util::Rng& rng);

  const CrossbarMapping& mapping() const { return mapping_; }
  const ArrayConfig& config() const { return config_; }

  /// Source-line current of block-row i for an activation pattern
  /// (rows_active[i] word lines of block-row i, groups_active[j] groups of
  /// block column j). Includes OFF-state leakage of activated '0' cells.
  double block_row_current(std::size_t i,
                           const std::vector<std::uint32_t>& rows_active,
                           const std::vector<std::uint32_t>& groups_active) const;

  /// All block-row currents: the analog vector that feeds the WTA tree.
  /// For an MV read (Mq), pass rows_active = I everywhere.
  std::vector<double> read_mv(
      const std::vector<std::uint32_t>& groups_active) const;

  /// Total array current: the VMV read pᵀMq (Phase 2 of Fig. 6).
  double read_vmv(const std::vector<std::uint32_t>& rows_active,
                  const std::vector<std::uint32_t>& groups_active) const;

  /// Slow path: direct sum over the activated cells (validation only).
  double read_vmv_percell(const std::vector<std::uint32_t>& rows_active,
                          const std::vector<std::uint32_t>& groups_active) const;

  /// Current of one physical cell under explicit activation (validation).
  double cell_current(std::size_t row, std::size_t col, bool row_active,
                      bool col_active) const;

  /// Nominal full-ON single-cell current.
  double nominal_on_current() const { return i_on_nominal_; }

  /// Current per unit of payoff value: i_on / (levels_per_cell - 1) — a
  /// full-ON cell codes (levels-1) payoff units.
  double unit_current() const;

  /// Convert an output current into payoff-matrix units: payoff value
  /// v = current / (i_on_nominal): one conducting cell == one payoff unit
  /// under full activation of I rows and I groups scaled by 1/I².
  double current_to_value(double current) const;

 private:
  double sampled_cell_current(std::size_t row, std::size_t col) const;

  CrossbarMapping mapping_;
  ArrayConfig config_;
  double i_on_nominal_;
  // Per block (i,j): prefix table P of size (I+1)×(I+1);
  // P[r][g] = Σ currents of cells in the first r rows and first g groups
  // (all t cells of a group counted: '1' cells at i_on-sample, '0' at leak).
  std::vector<std::vector<double>> prefix_;  // n*m tables, row-major
  std::size_t table_dim_;                    // I+1
};

}  // namespace cnash::xbar
