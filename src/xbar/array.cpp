#include "xbar/array.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simd/simd.hpp"

namespace cnash::xbar {

namespace {

/// Calibrated response surface for fast per-cell current sampling.
struct FastCellModel {
  double i_on0, don_dvth, don_dr;  // ON current + sensitivities
  double i_off0, off_decade_per_v;  // OFF current + subthreshold slope
  double r_nominal;

  static FastCellModel calibrate(const ArrayConfig& cfg) {
    FastCellModel m;
    m.r_nominal = cfg.variability.r_nominal;
    auto on_current = [&](double dvth, double r) {
      const fefet::Cell1T1R cell(true, {dvth, r}, cfg.fet);
      return cell.read(true, true, cfg.bias);
    };
    const double dv = cfg.variability.sigma_vth;
    const double dr = cfg.variability.sigma_r_rel * m.r_nominal;
    m.i_on0 = on_current(0.0, m.r_nominal);
    m.don_dvth =
        (on_current(dv, m.r_nominal) - on_current(-dv, m.r_nominal)) / (2 * dv);
    m.don_dr = (on_current(0.0, m.r_nominal + dr) -
                on_current(0.0, m.r_nominal - dr)) /
               (2 * dr);
    const fefet::Cell1T1R off_cell(false, {0.0, m.r_nominal}, cfg.fet);
    m.i_off0 = off_cell.read(true, true, cfg.bias);
    // Subthreshold conduction falls one decade per `subthreshold_swing`
    // volts of V_TH increase.
    m.off_decade_per_v = 1.0 / cfg.fet.subthreshold_swing;
    return m;
  }

  double on(const fefet::CellSample& s) const {
    return std::max(0.0, i_on0 + don_dvth * s.vth_offset +
                             don_dr * (s.resistance - r_nominal));
  }
  double off(const fefet::CellSample& s) const {
    return i_off0 * std::pow(10.0, -s.vth_offset * off_decade_per_v);
  }
};

}  // namespace

ProgrammedCrossbar::ProgrammedCrossbar(CrossbarMapping mapping,
                                       const ArrayConfig& config,
                                       util::Rng& rng)
    : mapping_(std::move(mapping)), config_(config) {
  i_on_nominal_ =
      fefet::nominal_on_current(config_.fet, config_.variability, config_.bias);
  const auto& g = mapping_.geometry();
  const std::uint32_t intervals = g.intervals;
  const std::uint32_t t = g.cells_per_element;
  const std::uint32_t per_cell = g.levels_per_cell - 1;
  table_dim_ = intervals + 1;
  block_stride_ = table_dim_ * table_dim_;

  const FastCellModel fast = FastCellModel::calibrate(config_);

  // Leakage current of a stored-'0' cell under full bias (nominal device).
  const fefet::Cell1T1R off_cell(/*stored_one=*/false,
                                 {0.0, config_.variability.r_nominal},
                                 config_.fet);
  const double i_off_nominal = off_cell.read(true, true, config_.bias);

  prefix_.assign(g.n * g.m * block_stride_, 0.0);

  // Batched programming: the common configuration (device variability on, no
  // fault injection) samples all of a block's device deviates up front with
  // simd::fill_normals and scores whole I×I bundle planes per cell index k
  // with vector kernels, instead of three libm calls per cell. Deviates are
  // laid out plane-major (zv[k*B + b] for bundle b = r*I + gr) so both the
  // linearised fast path and the exact KCL path read the SAME per-cell draws
  // — the fast-vs-exact statistical-closeness contract is preserved. The
  // ideal and fault-injection configurations keep the legacy per-cell loop
  // (they draw bernoullis interleaved per cell).
  const bool batched = !config_.ideal && config_.stuck_off_rate == 0.0 &&
                       config_.stuck_on_rate == 0.0;
  const std::size_t bundles =
      static_cast<std::size_t>(intervals) * intervals;
  const fefet::VariabilityParams& var = config_.variability;
  std::vector<double> zv, zr, zm, bundle_sum;
  std::vector<std::uint32_t> levels(t);
  if (batched) {
    zv.resize(bundles * t);
    zr.resize(bundles * t);
    bundle_sum.resize(bundles);
  }

  for (std::size_t i = 0; i < g.n; ++i) {
    for (std::size_t j = 0; j < g.m; ++j) {
      double* table = prefix_.data() + (i * g.m + j) * block_stride_;
      const std::uint32_t value = mapping_.element(i, j);
      if (batched) {
        bool need_mlc = false;
        for (std::uint32_t k = 0; k < t; ++k) {
          levels[k] = mapping_.cell_level(value, k);
          if (var.sigma_mlc_rel > 0.0 && levels[k] > 0 && levels[k] < per_cell)
            need_mlc = true;
        }
        simd::fill_normals(rng, zv.data(), bundles * t);
        simd::fill_normals(rng, zr.data(), bundles * t);
        if (need_mlc) {
          zm.resize(bundles * t);
          simd::fill_normals(rng, zm.data(), bundles * t);
        }
        std::fill(bundle_sum.begin(), bundle_sum.end(), 0.0);
        for (std::uint32_t k = 0; k < t; ++k) {
          const std::uint32_t level = levels[k];
          const double frac =
              static_cast<double>(level) / static_cast<double>(per_cell);
          const double* zvk = zv.data() + k * bundles;
          const double* zrk = zr.data() + k * bundles;
          if (level == 0) {
            simd::off_cell_accumulate(bundle_sum.data(), zvk, bundles,
                                      fast.i_off0,
                                      -var.sigma_vth * fast.off_decade_per_v);
          } else if (level == per_cell && !config_.fast_sampling) {
            // Full-ON binary state: exact series KCL solve per cell, on the
            // same deviates the fast path would use.
            for (std::size_t b = 0; b < bundles; ++b) {
              const double vth = var.sigma_vth * zvk[b];
              const double rel =
                  std::clamp(var.sigma_r_rel * zrk[b], -3.0 * var.sigma_r_rel,
                             3.0 * var.sigma_r_rel);
              const fefet::Cell1T1R cell(
                  true, {vth, var.r_nominal * (1.0 + rel)}, config_.fet);
              bundle_sum[b] += cell.read(true, true, config_.bias);
            }
          } else {
            // Full-ON (fast) or intermediate MLC state: clamped ON current
            // scaled to the level, with the partial-polarization spread that
            // peaks at mid level and vanishes at full ON.
            const double mlc_sigma =
                var.sigma_mlc_rel * 4.0 * frac * (1.0 - frac);
            const simd::OnCellParams p{fast.i_on0,    fast.don_dvth,
                                       fast.don_dr,   var.sigma_vth,
                                       var.sigma_r_rel, var.r_nominal,
                                       frac,          mlc_sigma};
            simd::on_cell_accumulate(
                bundle_sum.data(), zvk, zrk,
                mlc_sigma > 0.0 ? zm.data() + k * bundles : nullptr, bundles,
                p);
          }
        }
        for (std::uint32_t r = 0; r < intervals; ++r) {
          for (std::uint32_t gr = 0; gr < intervals; ++gr) {
            const std::size_t idx = (r + 1) * table_dim_ + (gr + 1);
            table[idx] = bundle_sum[r * intervals + gr] +
                         table[r * table_dim_ + (gr + 1)] +
                         table[(r + 1) * table_dim_ + gr] -
                         table[r * table_dim_ + gr];
          }
        }
        continue;
      }
      // cell_sum[r][gr]: total current of the t cells at (row r, group gr).
      for (std::uint32_t r = 0; r < intervals; ++r) {
        for (std::uint32_t gr = 0; gr < intervals; ++gr) {
          double cell_sum = 0.0;
          for (std::uint32_t k = 0; k < t; ++k) {
            const std::uint32_t level = mapping_.cell_level(value, k);
            const double frac =
                static_cast<double>(level) / static_cast<double>(per_cell);
            // Fault injection first: a faulty cell ignores its programming.
            if (config_.stuck_off_rate > 0.0 &&
                rng.bernoulli(config_.stuck_off_rate))
              continue;
            if (config_.stuck_on_rate > 0.0 &&
                rng.bernoulli(config_.stuck_on_rate)) {
              cell_sum += i_on_nominal_;
              continue;
            }
            if (config_.ideal) {
              cell_sum += level > 0 ? frac * i_on_nominal_ : i_off_nominal;
              continue;
            }
            const fefet::CellSample s =
                fefet::sample_cell(config_.variability, rng);
            if (level == 0) {
              cell_sum += fast.off(s);
            } else if (level == per_cell && !config_.fast_sampling) {
              // Full-ON binary state: exact series KCL solve available.
              const fefet::Cell1T1R cell(true, s, config_.fet);
              cell_sum += cell.read(true, true, config_.bias);
            } else {
              // Full-ON (fast) or intermediate MLC state: clamped ON current
              // scaled to the level, with the partial-polarization spread
              // that peaks at mid level and vanishes at full ON.
              double i = frac * fast.on(s);
              const double mlc_sigma = config_.variability.sigma_mlc_rel *
                                       4.0 * frac * (1.0 - frac);
              if (mlc_sigma > 0.0) i *= 1.0 + rng.normal(0.0, mlc_sigma);
              cell_sum += std::max(0.0, i);
            }
          }
          // Inclusion-exclusion prefix update.
          const std::size_t idx = (r + 1) * table_dim_ + (gr + 1);
          table[idx] = cell_sum + table[r * table_dim_ + (gr + 1)] +
                       table[(r + 1) * table_dim_ + gr] -
                       table[r * table_dim_ + gr];
        }
      }
    }
  }

  // Per-column MV table: the last prefix row (r = I) of every block,
  // transposed so the n line currents of one (j, g) column are contiguous.
  mv_table_.assign(g.m * table_dim_ * g.n, 0.0);
  for (std::size_t j = 0; j < g.m; ++j)
    for (std::size_t gr = 0; gr < table_dim_; ++gr) {
      double* col = mv_table_.data() + (j * table_dim_ + gr) * g.n;
      for (std::size_t i = 0; i < g.n; ++i)
        col[i] = block_table(i, j)[intervals * table_dim_ + gr];
    }
}

double ProgrammedCrossbar::block_row_current(
    std::size_t i, const std::vector<std::uint32_t>& rows_active,
    const std::vector<std::uint32_t>& groups_active) const {
  const auto& g = mapping_.geometry();
  if (i >= g.n) throw std::out_of_range("block_row_current");
  if (rows_active.size() != g.n || groups_active.size() != g.m)
    throw std::invalid_argument("block_row_current: activation size mismatch");
  const std::uint32_t r = rows_active[i];
  if (r > g.intervals) throw std::invalid_argument("rows_active > I");
  const double* row = block_table(i, 0) + r * table_dim_;
  double current = 0.0;
  for (std::size_t j = 0; j < g.m; ++j) {
    const std::uint32_t gr = groups_active[j];
    if (gr > g.intervals) throw std::invalid_argument("groups_active > I");
    current += row[j * block_stride_ + gr];
  }
  return current;
}

std::vector<double> ProgrammedCrossbar::read_mv(
    const std::vector<std::uint32_t>& groups_active) const {
  std::vector<double> out(mapping_.geometry().n);
  read_mv_into(groups_active, out.data());
  return out;
}

void ProgrammedCrossbar::read_mv_into(
    const std::vector<std::uint32_t>& groups_active, double* out) const {
  const auto& g = mapping_.geometry();
  if (groups_active.size() != g.m)
    throw std::invalid_argument("read_mv: activation size mismatch");
  for (std::size_t j = 0; j < g.m; ++j)
    if (groups_active[j] > g.intervals)
      throw std::invalid_argument("groups_active > I");
  read_mv_into(groups_active.data(), out);
}

void ProgrammedCrossbar::read_mv_into(const std::uint32_t* groups_active,
                                      double* out) const {
  const auto& g = mapping_.geometry();
  std::fill(out, out + g.n, 0.0);
  // Accumulate one contiguous n-vector per block column — the SoA layout
  // turns the MV read into m contiguous vector additions.
  for (std::size_t j = 0; j < g.m; ++j) {
    const double* col =
        mv_table_.data() + (j * table_dim_ + groups_active[j]) * g.n;
    simd::accumulate(out, col, g.n);
  }
}

double ProgrammedCrossbar::read_vmv(
    const std::vector<std::uint32_t>& rows_active,
    const std::vector<std::uint32_t>& groups_active) const {
  const auto& g = mapping_.geometry();
  if (rows_active.size() != g.n || groups_active.size() != g.m)
    throw std::invalid_argument("read_vmv: activation size mismatch");
  for (std::size_t i = 0; i < g.n; ++i)
    if (rows_active[i] > g.intervals)
      throw std::invalid_argument("rows_active > I");
  for (std::size_t j = 0; j < g.m; ++j)
    if (groups_active[j] > g.intervals)
      throw std::invalid_argument("groups_active > I");
  return read_vmv(rows_active.data(), groups_active.data());
}

double ProgrammedCrossbar::read_vmv(const std::uint32_t* rows_active,
                                    const std::uint32_t* groups_active) const {
  const auto& g = mapping_.geometry();
  double total = 0.0;
  for (std::size_t i = 0; i < g.n; ++i) {
    const double* row = block_table(i, 0) + rows_active[i] * table_dim_;
    for (std::size_t j = 0; j < g.m; ++j)
      total += row[j * block_stride_ + groups_active[j]];
  }
  return total;
}

void ProgrammedCrossbar::mv_group_delta(std::size_t j, std::uint32_t g_old,
                                        std::uint32_t g_new, double* mv) const {
  const auto& g = mapping_.geometry();
  if (j >= g.m || g_old > g.intervals || g_new > g.intervals)
    throw std::out_of_range("mv_group_delta");
  const double* cold = mv_table_.data() + (j * table_dim_ + g_old) * g.n;
  const double* cnew = mv_table_.data() + (j * table_dim_ + g_new) * g.n;
  simd::add_diff(mv, cnew, cold, g.n);
}

double ProgrammedCrossbar::vmv_row_delta(
    std::size_t i, std::uint32_t r_old, std::uint32_t r_new,
    const std::vector<std::uint32_t>& groups_active) const {
  const auto& g = mapping_.geometry();
  if (i >= g.n || r_old > g.intervals || r_new > g.intervals ||
      groups_active.size() != g.m)
    throw std::out_of_range("vmv_row_delta");
  return vmv_row_delta(i, r_old, r_new, groups_active.data());
}

double ProgrammedCrossbar::vmv_row_delta(std::size_t i, std::uint32_t r_old,
                                         std::uint32_t r_new,
                                         const std::uint32_t* groups_active)
    const {
  const auto& g = mapping_.geometry();
  const double* base = block_table(i, 0);
  const std::size_t off_new = r_new * table_dim_;
  const std::size_t off_old = r_old * table_dim_;
  double delta = 0.0;
  for (std::size_t j = 0; j < g.m; ++j) {
    const double* table = base + j * block_stride_;
    const std::uint32_t gr = groups_active[j];
    delta += table[off_new + gr] - table[off_old + gr];
  }
  return delta;
}

double ProgrammedCrossbar::vmv_group_delta(
    std::size_t j, std::uint32_t g_old, std::uint32_t g_new,
    const std::vector<std::uint32_t>& rows_active) const {
  const auto& g = mapping_.geometry();
  if (j >= g.m || g_old > g.intervals || g_new > g.intervals ||
      rows_active.size() != g.n)
    throw std::out_of_range("vmv_group_delta");
  return vmv_group_delta(j, g_old, g_new, rows_active.data());
}

double ProgrammedCrossbar::vmv_group_delta(std::size_t j, std::uint32_t g_old,
                                           std::uint32_t g_new,
                                           const std::uint32_t* rows_active)
    const {
  const auto& g = mapping_.geometry();
  double delta = 0.0;
  for (std::size_t i = 0; i < g.n; ++i) {
    const double* row = block_table(i, j) + rows_active[i] * table_dim_;
    delta += row[g_new] - row[g_old];
  }
  return delta;
}

double ProgrammedCrossbar::sampled_cell_current(std::size_t row,
                                                std::size_t col) const {
  // Reconstructing a single sampled cell's current is not possible from the
  // prefix tables alone; derive it by inclusion-exclusion over its block — the
  // difference of four prefix entries isolates the (row, group) cell bundle,
  // which is the finest physical granularity the source line can observe.
  const auto ra = mapping_.row_address(row);
  const auto ca = mapping_.col_address(col);
  const double* table = block_table(ra.i, ca.j);
  const std::size_t r = ra.row_in_block;
  const std::size_t gr = ca.group;
  const double bundle = table[(r + 1) * table_dim_ + (gr + 1)] -
                        table[r * table_dim_ + (gr + 1)] -
                        table[(r + 1) * table_dim_ + gr] +
                        table[r * table_dim_ + gr];
  return bundle / mapping_.geometry().cells_per_element;
}

double ProgrammedCrossbar::cell_current(std::size_t row, std::size_t col,
                                        bool row_active, bool col_active) const {
  if (!row_active || !col_active) return 0.0;
  return sampled_cell_current(row, col);
}

double ProgrammedCrossbar::read_vmv_percell(
    const std::vector<std::uint32_t>& rows_active,
    const std::vector<std::uint32_t>& groups_active) const {
  const auto& g = mapping_.geometry();
  if (rows_active.size() != g.n || groups_active.size() != g.m)
    throw std::invalid_argument("read_vmv_percell: activation size mismatch");
  double total = 0.0;
  for (std::size_t row = 0; row < g.total_rows(); ++row) {
    const auto ra = mapping_.row_address(row);
    if (ra.row_in_block >= rows_active[ra.i]) continue;
    for (std::size_t col = 0; col < g.total_cols(); ++col) {
      const auto ca = mapping_.col_address(col);
      if (ca.group >= groups_active[ca.j]) continue;
      total += sampled_cell_current(row, col) ;
    }
  }
  return total;
}

double ProgrammedCrossbar::unit_current() const {
  return i_on_nominal_ /
         static_cast<double>(mapping_.geometry().levels_per_cell - 1);
}

double ProgrammedCrossbar::current_to_value(double current) const {
  const double intervals = mapping_.geometry().intervals;
  return current / (unit_current() * intervals * intervals);
}

}  // namespace cnash::xbar
