#pragma once
// Per-operation energy accounting for the CiM datapath: crossbar read energy
// (conducting cells × V_DL × I_on × t_read), line charging, ADC conversions,
// and WTA tree settling. Feeds the architecture-level comparisons in the
// ablation benches.

#include <cstdint>

namespace cnash::xbar {

struct EnergyParams {
  double v_dl = 0.8;                  // drain line voltage (V)
  double read_time_s = 2e-9;          // analog integration window
  double line_charge_energy_j = 5e-15;  // per activated line
  double adc_energy_j = 2e-12;        // per conversion
  double wta_cell_energy_j = 50e-15;  // per 2-input WTA cell settle
  double sa_logic_energy_j = 1e-12;   // digital controller per iteration
  double htree_adder_energy_j = 25e-15;  // per 2-input aggregation adder op
};

struct ReadEnergyBreakdown {
  double crossbar_j = 0.0;
  double lines_j = 0.0;
  double adc_j = 0.0;
  double wta_j = 0.0;
  double logic_j = 0.0;
  double total() const {
    return crossbar_j + lines_j + adc_j + wta_j + logic_j;
  }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {});

  const EnergyParams& params() const { return params_; }

  /// Energy of one analog array read that sinks `total_current` amps with
  /// `rows` + `groups` activated lines and `adc_conversions` conversions.
  ReadEnergyBreakdown array_read(double total_current, std::size_t rows_active,
                                 std::size_t cols_active,
                                 std::size_t adc_conversions) const;

  /// Energy of a D-input WTA reduction (D-1 two-input cells).
  double wta_tree(std::size_t inputs) const;

  /// Energy of one H-tree aggregation merging `fanin` tile outputs
  /// (fanin - 1 two-input adder operations).
  double htree(std::size_t fanin) const;

  /// Digital SA controller energy per iteration.
  double sa_iteration() const { return params_.sa_logic_energy_j; }

 private:
  EnergyParams params_;
};

}  // namespace cnash::xbar
