#pragma once
// Lemke–Howson complementary pivoting: finds one Nash equilibrium per initial
// dropped label. Complements support enumeration (which is exhaustive but
// exponential) — LH scales polynomially per path and is the second solver
// Nashpy exposes. Used for cross-validation of the ground truth and for large
// random games in tests.

#include <optional>
#include <vector>

#include "game/game.hpp"
#include "game/verify.hpp"

namespace cnash::game {

struct LemkeHowsonOptions {
  std::size_t max_pivots = 10000;
  double tol = 1e-10;
};

/// Run LH from the given initial label in [0, n+m). Returns nullopt when the
/// path exceeds max_pivots or hits a degenerate ray.
std::optional<Equilibrium> lemke_howson(const BimatrixGame& game,
                                        std::size_t initial_label,
                                        const LemkeHowsonOptions& opts = {});

/// Run LH from every label and dedup the results.
std::vector<Equilibrium> lemke_howson_all_labels(
    const BimatrixGame& game, const LemkeHowsonOptions& opts = {});

}  // namespace cnash::game
