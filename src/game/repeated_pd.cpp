#include "game/repeated_pd.hpp"

namespace cnash::game {

std::vector<MemoryOneStrategy> memory_one_roster() {
  using M = PdMove;
  // All 8 deterministic memory-one automata (first move × reply table).
  return {
      {"AllC", M::kCooperate, M::kCooperate, M::kCooperate},
      {"TFT", M::kCooperate, M::kCooperate, M::kDefect},
      {"AntiTFT", M::kCooperate, M::kDefect, M::kCooperate},
      {"C-then-AllD", M::kCooperate, M::kDefect, M::kDefect},
      {"SuspiciousAllC", M::kDefect, M::kCooperate, M::kCooperate},
      {"SuspiciousTFT", M::kDefect, M::kCooperate, M::kDefect},
      {"D-AntiTFT", M::kDefect, M::kDefect, M::kCooperate},
      {"AllD", M::kDefect, M::kDefect, M::kDefect},
  };
}

namespace {
double stage_payoff(PdMove mine, PdMove theirs, const PdPayoffs& p) {
  if (mine == PdMove::kCooperate)
    return theirs == PdMove::kCooperate ? p.reward : p.sucker;
  return theirs == PdMove::kCooperate ? p.temptation : p.punishment;
}
}  // namespace

std::pair<double, double> play_repeated(const MemoryOneStrategy& a,
                                        const MemoryOneStrategy& b,
                                        std::size_t rounds,
                                        const PdPayoffs& payoffs) {
  if (rounds == 0) return {0.0, 0.0};
  double total_a = 0.0;
  double total_b = 0.0;
  PdMove move_a = a.first_move;
  PdMove move_b = b.first_move;
  for (std::size_t r = 0; r < rounds; ++r) {
    total_a += stage_payoff(move_a, move_b, payoffs);
    total_b += stage_payoff(move_b, move_a, payoffs);
    const PdMove next_a = (move_b == PdMove::kCooperate) ? a.reply_to_cooperate
                                                         : a.reply_to_defect;
    const PdMove next_b = (move_a == PdMove::kCooperate) ? b.reply_to_cooperate
                                                         : b.reply_to_defect;
    move_a = next_a;
    move_b = next_b;
  }
  const auto n = static_cast<double>(rounds);
  return {total_a / n, total_b / n};
}

BimatrixGame repeated_pd_metagame(std::size_t rounds, const PdPayoffs& payoffs) {
  const auto roster = memory_one_roster();
  const std::size_t k = roster.size();
  la::Matrix m(k, k), n(k, k);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) {
      const auto [pa, pb] = play_repeated(roster[i], roster[j], rounds, payoffs);
      m(i, j) = pa;
      n(i, j) = pb;
    }
  return BimatrixGame(std::move(m), std::move(n), "Repeated-PD metagame");
}

}  // namespace cnash::game
