#include "game/lemke_howson.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cnash::game {

namespace {

// Integer-pivoting tableau implementation following Nashpy's formulation.
// Tableau rows: one per basic variable; columns: [slack vars | strategy vars |
// rhs]. Labels 0..n-1 are player-1 actions, n..n+m-1 player-2 actions.
//
// Player 2's tableau ("row tableau"): rows indexed by player-1 actions,
// variables are player-2 strategy columns; and vice versa.

class Tableau {
 public:
  // A: own-payoff matrix (rows = basic slack labels, cols = entering labels).
  // `row_labels` are the labels of the slack variables (initially basic);
  // `col_labels` the labels of the strategy variables.
  Tableau(const la::Matrix& a, std::vector<std::size_t> row_labels,
          std::vector<std::size_t> col_labels)
      : row_labels_(std::move(row_labels)), col_labels_(std::move(col_labels)) {
    rows_ = a.rows();
    cols_slack_ = a.rows();
    cols_strat_ = a.cols();
    t_ = la::Matrix(rows_, cols_slack_ + cols_strat_ + 1, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      t_(r, r) = 1.0;  // slack identity
      for (std::size_t c = 0; c < cols_strat_; ++c)
        t_(r, cols_slack_ + c) = a(r, c);
      t_(r, cols_slack_ + cols_strat_) = 1.0;  // rhs
    }
    basic_ = row_labels_;  // initially all slacks basic
  }

  // Pivot so that the variable with label `entering` becomes basic.
  // Returns the label that leaves the basis, or nullopt on failure.
  std::optional<std::size_t> pivot(std::size_t entering, double tol) {
    const std::size_t col = column_of_label(entering);
    // Minimum ratio test over rows with positive column entry.
    std::size_t best_row = rows_;
    double best_ratio = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double a = t_(r, col);
      if (a <= tol) continue;
      const double ratio = t_(r, rhs_col()) / a;
      if (best_row == rows_ || ratio < best_ratio - tol ||
          (std::abs(ratio - best_ratio) <= tol && basic_[r] < basic_[best_row])) {
        best_row = r;
        best_ratio = ratio;
      }
    }
    if (best_row == rows_) return std::nullopt;  // unbounded ray (degenerate)

    const double pivot_el = t_(best_row, col);
    for (std::size_t c = 0; c < t_.cols(); ++c) t_(best_row, c) /= pivot_el;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == best_row) continue;
      const double f = t_(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < t_.cols(); ++c)
        t_(r, c) -= f * t_(best_row, c);
    }
    const std::size_t leaving = basic_[best_row];
    basic_[best_row] = entering;
    return leaving;
  }

  /// Extract the normalised strategy over the strategy-variable labels.
  la::Vector strategy(std::size_t strat_dim) const {
    la::Vector x(strat_dim, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t lbl = basic_[r];
      // Strategy labels are exactly col_labels_.
      const auto it = std::find(col_labels_.begin(), col_labels_.end(), lbl);
      if (it == col_labels_.end()) continue;
      const auto idx = static_cast<std::size_t>(
          std::distance(col_labels_.begin(), it));
      x[idx] = std::max(0.0, t_(r, rhs_col()));
    }
    const double s = la::sum(x);
    if (s <= 0.0) return {};
    for (auto& v : x) v /= s;
    return x;
  }

 private:
  std::size_t column_of_label(std::size_t label) const {
    auto it = std::find(row_labels_.begin(), row_labels_.end(), label);
    if (it != row_labels_.end())
      return static_cast<std::size_t>(std::distance(row_labels_.begin(), it));
    it = std::find(col_labels_.begin(), col_labels_.end(), label);
    if (it == col_labels_.end()) throw std::logic_error("LH: unknown label");
    return cols_slack_ +
           static_cast<std::size_t>(std::distance(col_labels_.begin(), it));
  }

  std::size_t rhs_col() const { return cols_slack_ + cols_strat_; }

  la::Matrix t_;
  std::vector<std::size_t> row_labels_;
  std::vector<std::size_t> col_labels_;
  std::vector<std::size_t> basic_;
  std::size_t rows_ = 0;
  std::size_t cols_slack_ = 0;
  std::size_t cols_strat_ = 0;
};

}  // namespace

std::optional<Equilibrium> lemke_howson(const BimatrixGame& game,
                                        std::size_t initial_label,
                                        const LemkeHowsonOptions& opts) {
  const std::size_t n = game.num_actions1();
  const std::size_t m = game.num_actions2();
  if (initial_label >= n + m) throw std::out_of_range("lemke_howson: label");

  // Make both payoff matrices strictly positive (shift preserves NE).
  const BimatrixGame g = game.shifted_non_negative(1.0);

  std::vector<std::size_t> labels1(n), labels2(m);
  for (std::size_t i = 0; i < n; ++i) labels1[i] = i;
  for (std::size_t j = 0; j < m; ++j) labels2[j] = n + j;

  // Row tableau: slacks are player-1 labels, strategy vars are player-2 labels,
  // matrix is M (n×m). Column tableau: slacks player-2 labels, strategy vars
  // player-1 labels, matrix is Nᵀ (m×n).
  Tableau row_tab(g.payoff1(), labels1, labels2);
  Tableau col_tab(g.payoff2().transposed(), labels2, labels1);

  std::size_t entering = initial_label;
  // First pivot happens in the tableau whose *strategy columns* include the
  // label... Convention (Nashpy): if label < n it enters the column tableau.
  bool in_col_tab = initial_label < n;

  for (std::size_t step = 0; step < opts.max_pivots; ++step) {
    auto leaving = in_col_tab ? col_tab.pivot(entering, opts.tol)
                              : row_tab.pivot(entering, opts.tol);
    if (!leaving) return std::nullopt;
    if (*leaving == initial_label) {
      la::Vector p = col_tab.strategy(n);
      la::Vector q = row_tab.strategy(m);
      if (p.empty() || q.empty()) return std::nullopt;
      if (!is_nash_equilibrium(game, p, q, 1e-6)) return std::nullopt;
      return Equilibrium{p, q, is_pure_profile(p, q, 1e-7)};
    }
    entering = *leaving;
    in_col_tab = !in_col_tab;
  }
  return std::nullopt;
}

std::vector<Equilibrium> lemke_howson_all_labels(
    const BimatrixGame& game, const LemkeHowsonOptions& opts) {
  std::vector<Equilibrium> eqs;
  const std::size_t total = game.num_actions1() + game.num_actions2();
  for (std::size_t lbl = 0; lbl < total; ++lbl) {
    if (auto eq = lemke_howson(game, lbl, opts)) eqs.push_back(std::move(*eq));
  }
  return dedup(std::move(eqs), 1e-6);
}

}  // namespace cnash::game
