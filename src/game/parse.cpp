#include "game/parse.hpp"

#include <cstdio>
#include <sstream>
#include <vector>

namespace cnash::game {

ParseError::ParseError(std::size_t line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

la::Matrix rows_to_matrix(const std::vector<std::vector<double>>& rows,
                          std::size_t first_line, const char* which) {
  if (rows.empty())
    throw ParseError(first_line, std::string("matrix ") + which + " is empty");
  const std::size_t cols = rows.front().size();
  la::Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols)
      throw ParseError(first_line, std::string("ragged rows in matrix ") + which);
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

}  // namespace

BimatrixGame parse_game(std::istream& in) {
  std::string name = "unnamed";
  std::vector<std::vector<double>> m_rows, n_rows;
  std::vector<std::vector<double>>* current = nullptr;
  std::size_t m_line = 0, n_line = 0;

  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("name:", 0) == 0) {
      name = trim(line.substr(5));
      continue;
    }
    if (line == "M:") {
      current = &m_rows;
      m_line = line_no;
      continue;
    }
    if (line == "N:") {
      current = &n_rows;
      n_line = line_no;
      continue;
    }
    if (current == nullptr)
      throw ParseError(line_no, "payoff row before any 'M:' or 'N:' header");
    std::istringstream row_in(line);
    std::vector<double> row;
    double v = 0.0;
    while (row_in >> v) row.push_back(v);
    if (!row_in.eof())
      throw ParseError(line_no, "non-numeric token in payoff row");
    if (row.empty()) throw ParseError(line_no, "empty payoff row");
    current->push_back(std::move(row));
  }
  if (m_rows.empty()) throw ParseError(line_no, "missing matrix M");
  if (n_rows.empty()) throw ParseError(line_no, "missing matrix N");
  la::Matrix m = rows_to_matrix(m_rows, m_line, "M");
  la::Matrix n = rows_to_matrix(n_rows, n_line, "N");
  if (m.rows() != n.rows() || m.cols() != n.cols())
    throw ParseError(line_no, "M and N have different shapes");
  return BimatrixGame(std::move(m), std::move(n), name);
}

BimatrixGame parse_game_text(const std::string& text) {
  std::istringstream in(text);
  return parse_game(in);
}

std::string serialize_game(const BimatrixGame& game, int precision) {
  std::string out = "name: " + game.name() + "\n";
  char buf[64];
  auto emit = [&](const la::Matrix& m, const char* header) {
    out += header;
    out += "\n";
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, m(r, c));
        out += buf;
        out += (c + 1 < m.cols()) ? ' ' : '\n';
      }
    }
  };
  emit(game.payoff1(), "M:");
  emit(game.payoff2(), "N:");
  return out;
}

}  // namespace cnash::game
