#include "game/games.hpp"

namespace cnash::game {

BimatrixGame battle_of_sexes() {
  return BimatrixGame(la::Matrix{{2, 0}, {0, 1}}, la::Matrix{{1, 0}, {0, 2}},
                      "Battle of the Sexes");
}

BimatrixGame bird_game() {
  // Symmetric coordination among three nesting behaviours; behaviours 1 and 2
  // are twice as valuable as behaviour 3 when matched, all mismatches score 0.
  const la::Matrix a{{2, 0, 0},  //
                     {0, 2, 0},
                     {0, 0, 1}};
  return BimatrixGame(a, a.transposed(), "Bird Game");
}

BimatrixGame modified_prisoners_dilemma() {
  // Payoffs scaled by 10 to keep every entry an integer (hardware-friendly):
  //   actions 0..4 : cooperative ventures, pay 10 when both players focus on
  //                  the same venture, 0 against anything else;
  //   action  5    : defect — guaranteed 3 against any cooperative venture,
  //                  -10 against defect or spite;
  //   actions 6..7 : spite — always -50 (strictly dominated).
  // Defect beats cooperation spread over >= 4 ventures (10/s < 3 for s >= 4)
  // but loses to focused cooperation (10/s > 3 for s <= 3), which prunes the
  // equilibrium set to supports of size <= 3 among the ventures:
  //   C(5,1) + C(5,2) + C(5,3) = 5 + 10 + 10 = 25 equilibria.
  constexpr std::size_t kActions = 8;
  la::Matrix a(kActions, kActions, 0.0);
  for (std::size_t v = 0; v < 5; ++v) a(v, v) = 10.0;
  // Defect earns a guaranteed 1 against any cooperative venture but is never a
  // best response (even the thinnest 5-way cooperation pays 10/5 = 2 > 1),
  // and defect-vs-defect is mutually destructive; the spite actions are
  // strictly dominated. Every equilibrium therefore lives on the ventures:
  // C(5,1)+...+C(5,5) = 31 equilibria (index sum 5-10+10-5+1 = +1, consistent
  // with the index theorem — see DESIGN.md on why the paper's target of 25 is
  // not realisable by a non-degenerate game of this shape).
  for (std::size_t j = 0; j < 5; ++j) a(5, j) = 1.0;
  for (std::size_t j = 5; j < kActions; ++j) a(5, j) = -10.0;
  for (std::size_t i = 6; i < kActions; ++i)
    for (std::size_t j = 0; j < kActions; ++j) a(i, j) = -12.0;
  return BimatrixGame(a, a.transposed(), "Modified Prisoner's Dilemma");
}

BimatrixGame prisoners_dilemma() {
  // (Cooperate, Defect); payoffs are years-of-freedom style utilities.
  return BimatrixGame(la::Matrix{{3, 0}, {5, 1}}, la::Matrix{{3, 5}, {0, 1}},
                      "Prisoner's Dilemma");
}

BimatrixGame matching_pennies() {
  return BimatrixGame::zero_sum(la::Matrix{{1, -1}, {-1, 1}},
                                "Matching Pennies");
}

BimatrixGame rock_paper_scissors() {
  return BimatrixGame::zero_sum(la::Matrix{{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}},
                                "Rock-Paper-Scissors");
}

BimatrixGame chicken() {
  // (Dare, Chicken).
  return BimatrixGame(la::Matrix{{0, 7}, {2, 6}}, la::Matrix{{0, 2}, {7, 6}},
                      "Chicken");
}

BimatrixGame stag_hunt() {
  return BimatrixGame(la::Matrix{{4, 1}, {3, 3}}, la::Matrix{{4, 3}, {1, 3}},
                      "Stag Hunt");
}

BimatrixGame coordination(std::size_t n) {
  la::Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(n - i);
  return BimatrixGame(a, a.transposed(),
                      "Coordination-" + std::to_string(n));
}

std::vector<BenchmarkInstance> paper_benchmarks() {
  return {
      {battle_of_sexes(), /*intervals=*/12, /*sa_iterations=*/10000,
       /*expected_equilibria=*/3, /*paper_target=*/3},
      {bird_game(), /*intervals=*/12, /*sa_iterations=*/15000,
       /*expected_equilibria=*/7, /*paper_target=*/6},
      {modified_prisoners_dilemma(), /*intervals=*/60, /*sa_iterations=*/50000,
       /*expected_equilibria=*/31, /*paper_target=*/25},
  };
}

}  // namespace cnash::game
