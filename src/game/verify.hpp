#pragma once
// Nash-equilibrium verification. A profile (p, q) is an ε-NE when no unilateral
// pure deviation improves either player's expected payoff by more than ε:
//   max_i (Mq)_i - pᵀMq <= ε   and   max_j (Nᵀp)_j - pᵀNq <= ε.
// (The pure-deviation criterion is equivalent to the all-deviations criterion
// by linearity of expected payoff.)

#include <vector>

#include "game/game.hpp"

namespace cnash::game {

struct NashCheck {
  bool is_equilibrium;
  double regret1;  // best-response gain available to player 1
  double regret2;  // best-response gain available to player 2
};

/// Full diagnostic check.
NashCheck check_equilibrium(const BimatrixGame& game, const la::Vector& p,
                            const la::Vector& q, double epsilon = 1e-7);

/// Just the boolean.
bool is_nash_equilibrium(const BimatrixGame& game, const la::Vector& p,
                         const la::Vector& q, double epsilon = 1e-7);

/// max of the two regrets — 0 exactly at equilibria; the continuous counterpart
/// of the MAX-QUBO objective.
double equilibrium_gap(const BimatrixGame& game, const la::Vector& p,
                       const la::Vector& q);

/// A found equilibrium, tagged pure/mixed.
struct Equilibrium {
  la::Vector p;
  la::Vector q;
  bool pure;  // both strategies are point masses

  bool matches(const la::Vector& op, const la::Vector& oq, double tol) const;
};

/// True when both p and q are (numerically) point masses.
bool is_pure_profile(const la::Vector& p, const la::Vector& q,
                     double tol = 1e-7);

/// Deduplicate a list of equilibria under an infinity-norm tolerance.
std::vector<Equilibrium> dedup(std::vector<Equilibrium> eqs, double tol = 1e-6);

/// Index of the ground-truth equilibrium matched by (p,q), or npos.
std::size_t match_equilibrium(const std::vector<Equilibrium>& ground_truth,
                              const la::Vector& p, const la::Vector& q,
                              double tol = 1e-4);

inline constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

}  // namespace cnash::game
