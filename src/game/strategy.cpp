#include "game/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cnash::game {

bool is_distribution(const la::Vector& v, double tol) {
  if (v.empty()) return false;
  double s = 0.0;
  for (double x : v) {
    if (x < -tol) return false;
    s += x;
  }
  return std::abs(s - 1.0) <= tol;
}

std::vector<std::size_t> support(const la::Vector& v, double tol) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] > tol) out.push_back(i);
  return out;
}

la::Vector pure_strategy(std::size_t n, std::size_t i) {
  if (i >= n) throw std::out_of_range("pure_strategy");
  la::Vector v(n, 0.0);
  v[i] = 1.0;
  return v;
}

la::Vector uniform_on(std::size_t n, const std::vector<std::size_t>& supp) {
  if (supp.empty()) throw std::invalid_argument("uniform_on: empty support");
  la::Vector v(n, 0.0);
  for (auto i : supp) v.at(i) = 1.0 / static_cast<double>(supp.size());
  return v;
}

QuantizedStrategy::QuantizedStrategy(std::size_t num_actions,
                                     std::uint32_t intervals)
    : counts_(num_actions, 0), intervals_(intervals) {
  if (num_actions == 0) throw std::invalid_argument("QuantizedStrategy: n == 0");
  if (intervals == 0) throw std::invalid_argument("QuantizedStrategy: I == 0");
  counts_[0] = intervals;  // canonical start: all mass on action 0
}

QuantizedStrategy::QuantizedStrategy(std::vector<std::uint32_t> counts,
                                     std::uint32_t intervals)
    : counts_(std::move(counts)), intervals_(intervals) {
  if (counts_.empty()) throw std::invalid_argument("QuantizedStrategy: n == 0");
  const std::uint64_t total =
      std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
  if (total != intervals_)
    throw std::invalid_argument("QuantizedStrategy: counts must sum to I");
}

QuantizedStrategy QuantizedStrategy::from_distribution(const la::Vector& p,
                                                       std::uint32_t intervals) {
  if (!is_distribution(p, 1e-6))
    throw std::invalid_argument("from_distribution: not a distribution");
  const std::size_t n = p.size();
  // Largest-remainder (Hamilton) rounding keeps the total exactly I.
  std::vector<std::uint32_t> counts(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders(n);
  std::uint32_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = p[i] * intervals;
    const double fl = std::floor(exact + 1e-12);
    counts[i] = static_cast<std::uint32_t>(fl);
    assigned += counts[i];
    remainders[i] = {exact - fl, i};
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < intervals; ++k, ++assigned)
    ++counts[remainders[k % n].second];
  return QuantizedStrategy(std::move(counts), intervals);
}

QuantizedStrategy QuantizedStrategy::pure(std::size_t num_actions, std::size_t i,
                                          std::uint32_t intervals) {
  if (i >= num_actions) throw std::out_of_range("QuantizedStrategy::pure");
  std::vector<std::uint32_t> counts(num_actions, 0);
  counts[i] = intervals;
  return QuantizedStrategy(std::move(counts), intervals);
}

QuantizedStrategy QuantizedStrategy::random(std::size_t num_actions,
                                            std::uint32_t intervals,
                                            util::Rng& rng) {
  // Stars-and-bars: choose I items among n bins uniformly via sorted cut points.
  std::vector<std::uint32_t> counts(num_actions, 0);
  for (std::uint32_t t = 0; t < intervals; ++t)
    ++counts[rng.uniform_index(num_actions)];
  return QuantizedStrategy(std::move(counts), intervals);
}

QuantizedStrategy QuantizedStrategy::random_support(std::size_t num_actions,
                                                    std::uint32_t intervals,
                                                    util::Rng& rng) {
  const std::size_t max_support =
      std::min<std::size_t>(num_actions, intervals);
  const std::size_t s = 1 + rng.uniform_index(max_support);
  // Sample s distinct actions (partial Fisher-Yates over an index pool).
  std::vector<std::size_t> pool(num_actions);
  for (std::size_t i = 0; i < num_actions; ++i) pool[i] = i;
  for (std::size_t k = 0; k < s; ++k)
    std::swap(pool[k], pool[k + rng.uniform_index(num_actions - k)]);
  std::vector<std::uint32_t> counts(num_actions, 0);
  for (std::size_t k = 0; k < s; ++k) counts[pool[k]] = 1;
  for (std::uint32_t t = intervals - static_cast<std::uint32_t>(s); t > 0; --t)
    ++counts[pool[rng.uniform_index(s)]];
  return QuantizedStrategy(std::move(counts), intervals);
}

la::Vector QuantizedStrategy::to_distribution() const {
  la::Vector v(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i)
    v[i] = static_cast<double>(counts_[i]) / static_cast<double>(intervals_);
  return v;
}

void QuantizedStrategy::move_tick(std::size_t from, std::size_t to) {
  if (from >= counts_.size() || to >= counts_.size())
    throw std::out_of_range("move_tick");
  if (counts_[from] == 0) throw std::logic_error("move_tick: empty source");
  --counts_[from];
  ++counts_[to];
}

bool QuantizedStrategy::representable(const la::Vector& p,
                                      std::uint32_t intervals, double tol) {
  for (double x : p) {
    const double scaled = x * intervals;
    if (std::abs(scaled - std::round(scaled)) > tol) return false;
  }
  return true;
}

std::string QuantizedStrategy::to_string() const {
  std::string out = "(";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(counts_[i]) + "/" + std::to_string(intervals_);
  }
  return out + ")";
}

std::string QuantizedProfile::key() const {
  std::string k = "p";
  for (auto c : p.counts()) {
    k += ':';
    k += std::to_string(c);
  }
  k += "|q";
  for (auto c : q.counts()) {
    k += ':';
    k += std::to_string(c);
  }
  return k;
}

}  // namespace cnash::game
