#pragma once
// Support enumeration — the exact, exhaustive NE solver used as ground truth
// (the paper uses Nashpy for the same purpose). For every pair of equal-size
// supports (S1, S2) it solves the indifference system
//   (Mq)_i = v   for i in S1,   sum q = 1,  q zero off S2
//   (Nᵀp)_j = w  for j in S2,   sum p = 1,  p zero off S1
// and keeps solutions that are valid distributions and pass the best-response
// check. Non-degenerate games have all equilibria on equal-size supports
// (Wilson); for degenerate games we flag underdetermined/unequal-support
// systems so callers know the list may be incomplete or part of a continuum.

#include <vector>

#include "game/game.hpp"
#include "game/verify.hpp"

namespace cnash::game {

struct SupportEnumOptions {
  double tol = 1e-9;          // linear-solve pivot tolerance
  double verify_eps = 1e-7;   // NE verification epsilon
  bool include_unequal_supports = false;  // extended search for degenerate games
  std::size_t max_support = 0;  // 0 = unlimited
};

struct SupportEnumResult {
  std::vector<Equilibrium> equilibria;  // deduplicated
  bool degenerate_flag = false;  // saw an underdetermined/indeterminate system
  std::size_t supports_examined = 0;
};

SupportEnumResult support_enumeration(const BimatrixGame& game,
                                      const SupportEnumOptions& opts = {});

/// Convenience: just the equilibria with default options.
std::vector<Equilibrium> all_equilibria(const BimatrixGame& game);

}  // namespace cnash::game
