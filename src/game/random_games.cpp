#include "game/random_games.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cnash::game {

namespace {
la::Matrix random_matrix(std::size_t n, std::size_t m, util::Rng& rng, double lo,
                         double hi) {
  la::Matrix a(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) a(r, c) = rng.uniform(lo, hi);
  return a;
}
}  // namespace

BimatrixGame random_game(std::size_t n, std::size_t m, util::Rng& rng, double lo,
                         double hi) {
  return BimatrixGame(random_matrix(n, m, rng, lo, hi),
                      random_matrix(n, m, rng, lo, hi), "random");
}

BimatrixGame random_zero_sum_game(std::size_t n, std::size_t m, util::Rng& rng,
                                  double lo, double hi) {
  return BimatrixGame::zero_sum(random_matrix(n, m, rng, lo, hi),
                                "random-zero-sum");
}

BimatrixGame random_symmetric_game(std::size_t n, util::Rng& rng, double lo,
                                   double hi) {
  la::Matrix a = random_matrix(n, n, rng, lo, hi);
  return BimatrixGame(a, a.transposed(), "random-symmetric");
}

BimatrixGame random_coordination_game(std::size_t n, util::Rng& rng,
                                      double diag_lo, double diag_hi,
                                      double noise) {
  la::Matrix a = random_matrix(n, n, rng, -noise, noise);
  la::Matrix b = random_matrix(n, n, rng, -noise, noise);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(diag_lo, diag_hi);
    a(i, i) += d;
    b(i, i) += d;
  }
  return BimatrixGame(std::move(a), std::move(b), "random-coordination");
}

BimatrixGame random_dominance_solvable_game(std::size_t n, std::size_t m,
                                            util::Rng& rng) {
  if (n == 0 || m == 0)
    throw std::invalid_argument("random_dominance_solvable_game: empty game");

  // Elimination schedule: always remove the last surviving action of the
  // player with more actions left, so the iteration interleaves both sides.
  // cols_when_row[r] = surviving column count when row r is removed (and
  // vice versa) — dominance is enforced over exactly that set, so earlier
  // eliminations are genuinely required.
  std::vector<std::size_t> cols_when_row(n, 0), rows_when_col(m, 0);
  std::size_t rows_left = n, cols_left = m;
  while (rows_left > 1 || cols_left > 1) {
    if (rows_left > 1 && (rows_left >= cols_left || cols_left == 1)) {
      cols_when_row[rows_left - 1] = cols_left;
      --rows_left;
    } else {
      rows_when_col[cols_left - 1] = rows_left;
      --cols_left;
    }
  }

  // Headroom so the dominance chains (decrements of 1..2 per step) stay
  // non-negative: survivors anchor near the top of the range.
  const int slack = 4;
  const int top_a = 2 * static_cast<int>(n - 1) + slack;
  const int top_b = 2 * static_cast<int>(m - 1) + slack;
  la::Matrix a(n, m), b(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      a(i, j) = static_cast<double>(rng.uniform_int(0, top_a));
      b(i, j) = static_cast<double>(rng.uniform_int(0, top_b));
    }
  for (std::size_t j = 0; j < m; ++j)
    a(0, j) = static_cast<double>(rng.uniform_int(top_a - slack, top_a));
  for (std::size_t i = 0; i < n; ++i)
    b(i, 0) = static_cast<double>(rng.uniform_int(top_b - slack, top_b));

  // Pin the chains: row r is strictly dominated by row r-1 over the columns
  // surviving at its elimination step (payoffs outside that set stay
  // random), symmetrically for columns.
  for (std::size_t r = 1; r < n; ++r)
    for (std::size_t j = 0; j < cols_when_row[r]; ++j)
      a(r, j) = a(r - 1, j) - static_cast<double>(rng.uniform_int(1, 2));
  for (std::size_t c = 1; c < m; ++c)
    for (std::size_t i = 0; i < rows_when_col[c]; ++i)
      b(i, c) = b(i, c - 1) - static_cast<double>(rng.uniform_int(1, 2));

  // Chains seeded from unpinned random cells can run negative; a constant
  // shift of a player's own payoff matrix preserves every dominance relation
  // (and the equilibrium set), so lift both back to non-negative integers.
  for (la::Matrix* mat : {&a, &b}) {
    double lo = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j) lo = std::min(lo, (*mat)(i, j));
    if (lo < 0.0)
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < m; ++j) (*mat)(i, j) -= lo;
  }

  // Shuffle the action labels so the unique equilibrium is not always (0,0).
  std::vector<std::size_t> rp(n), cp(m);
  std::iota(rp.begin(), rp.end(), 0);
  std::iota(cp.begin(), cp.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(rp[i - 1], rp[rng.uniform_index(i)]);
  for (std::size_t j = m; j > 1; --j)
    std::swap(cp[j - 1], cp[rng.uniform_index(j)]);
  la::Matrix a2(n, m), b2(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      a2(rp[i], cp[j]) = a(i, j);
      b2(rp[i], cp[j]) = b(i, j);
    }
  return BimatrixGame(std::move(a2), std::move(b2), "random-dominance");
}

BimatrixGame random_covariant_game(std::size_t n, std::size_t m, double rho,
                                   util::Rng& rng) {
  if (rho < -1.0 || rho > 1.0)
    throw std::invalid_argument("random_covariant_game: rho outside [-1, 1]");
  const double ortho = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  la::Matrix a(n, m), b(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      const double z1 = rng.normal();
      const double z2 = rng.normal();
      a(i, j) = z1;
      b(i, j) = rho * z1 + ortho * z2;
    }
  return BimatrixGame(std::move(a), std::move(b),
                      "random-covariant(" + std::to_string(rho) + ")");
}

BimatrixGame random_integer_game(std::size_t n, std::size_t m, util::Rng& rng,
                                 int lo, int hi) {
  la::Matrix a(n, m);
  la::Matrix b(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) {
      a(r, c) = static_cast<double>(rng.uniform_int(lo, hi));
      b(r, c) = static_cast<double>(rng.uniform_int(lo, hi));
    }
  return BimatrixGame(std::move(a), std::move(b), "random-integer");
}

}  // namespace cnash::game
