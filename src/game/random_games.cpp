#include "game/random_games.hpp"

namespace cnash::game {

namespace {
la::Matrix random_matrix(std::size_t n, std::size_t m, util::Rng& rng, double lo,
                         double hi) {
  la::Matrix a(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) a(r, c) = rng.uniform(lo, hi);
  return a;
}
}  // namespace

BimatrixGame random_game(std::size_t n, std::size_t m, util::Rng& rng, double lo,
                         double hi) {
  return BimatrixGame(random_matrix(n, m, rng, lo, hi),
                      random_matrix(n, m, rng, lo, hi), "random");
}

BimatrixGame random_zero_sum_game(std::size_t n, std::size_t m, util::Rng& rng,
                                  double lo, double hi) {
  return BimatrixGame::zero_sum(random_matrix(n, m, rng, lo, hi),
                                "random-zero-sum");
}

BimatrixGame random_symmetric_game(std::size_t n, util::Rng& rng, double lo,
                                   double hi) {
  la::Matrix a = random_matrix(n, n, rng, lo, hi);
  return BimatrixGame(a, a.transposed(), "random-symmetric");
}

BimatrixGame random_coordination_game(std::size_t n, util::Rng& rng,
                                      double diag_lo, double diag_hi,
                                      double noise) {
  la::Matrix a = random_matrix(n, n, rng, -noise, noise);
  la::Matrix b = random_matrix(n, n, rng, -noise, noise);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = rng.uniform(diag_lo, diag_hi);
    a(i, i) += d;
    b(i, i) += d;
  }
  return BimatrixGame(std::move(a), std::move(b), "random-coordination");
}

BimatrixGame random_integer_game(std::size_t n, std::size_t m, util::Rng& rng,
                                 int lo, int hi) {
  la::Matrix a(n, m);
  la::Matrix b(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) {
      a(r, c) = static_cast<double>(rng.uniform_int(lo, hi));
      b(r, c) = static_cast<double>(rng.uniform_int(lo, hi));
    }
  return BimatrixGame(std::move(a), std::move(b), "random-integer");
}

}  // namespace cnash::game
