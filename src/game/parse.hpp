#pragma once
// Plain-text bimatrix game format, so the solver binaries can load games that
// are not compiled in:
//
//   # comment lines and blank lines are ignored
//   name: Battle of the Sexes
//   M:
//   2 0
//   0 1
//   N:
//   1 0
//   0 2
//
// Both matrices must be present and share the same shape. `serialize_game`
// writes the same format back (round-trip stable).

#include <istream>
#include <string>

#include "game/game.hpp"

namespace cnash::game {

/// Thrown with a 1-based line number on malformed input.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

BimatrixGame parse_game(std::istream& in);
BimatrixGame parse_game_text(const std::string& text);

std::string serialize_game(const BimatrixGame& game, int precision = 6);

}  // namespace cnash::game
