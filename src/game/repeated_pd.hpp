#pragma once
// Repeated Prisoner's Dilemma meta-game builder. Produces the payoff matrix of
// a tournament among deterministic memory-one strategies — an alternative
// reconstruction of an "8-action modified Prisoner's Dilemma" and a realistic
// workload for the examples (Axelrod-style).

#include <cstdint>
#include <string>
#include <vector>

#include "game/game.hpp"

namespace cnash::game {

enum class PdMove : std::uint8_t { kCooperate = 0, kDefect = 1 };

/// Stage-game payoffs (row player): T > R > P > S, 2R > T + S.
struct PdPayoffs {
  double temptation = 5.0;  // D vs C
  double reward = 3.0;      // C vs C
  double punishment = 1.0;  // D vs D
  double sucker = 0.0;      // C vs D
};

/// Deterministic memory-one strategy: first move + response to each last
/// opponent move.
struct MemoryOneStrategy {
  std::string name;
  PdMove first_move;
  PdMove reply_to_cooperate;
  PdMove reply_to_defect;
};

/// The classic deterministic memory-one roster (8 strategies): AllC, AllD,
/// Tit-for-Tat, Suspicious TFT, Grim-ish (TFT that opens D and never forgives
/// is not memory-one; we use the 8 distinct memory-one automata).
std::vector<MemoryOneStrategy> memory_one_roster();

/// Average per-round payoffs of `rounds` repetitions between two strategies.
/// Returns {payoff to a, payoff to b}.
std::pair<double, double> play_repeated(const MemoryOneStrategy& a,
                                        const MemoryOneStrategy& b,
                                        std::size_t rounds,
                                        const PdPayoffs& payoffs = {});

/// Build the meta-game: action k = committing to roster strategy k.
BimatrixGame repeated_pd_metagame(std::size_t rounds = 64,
                                  const PdPayoffs& payoffs = {});

}  // namespace cnash::game
