#pragma once
// Mixed strategies and the quantized simplex the C-Nash hardware operates on.
// A strategy is a probability vector; C-Nash quantizes each probability to a
// multiple of 1/I (Sec. 3.2, "quantified into I intervals"), so a quantized
// strategy is an integer composition of I into n parts.

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace cnash::game {

/// True when v is entry-wise >= -tol and sums to 1 within tol.
bool is_distribution(const la::Vector& v, double tol = 1e-9);

/// Indices with mass > tol.
std::vector<std::size_t> support(const la::Vector& v, double tol = 1e-9);

/// Pure strategy e_i of dimension n.
la::Vector pure_strategy(std::size_t n, std::size_t i);

/// Uniform distribution over the given support indices.
la::Vector uniform_on(std::size_t n, const std::vector<std::size_t>& supp);

/// Integer-count representation of a quantized strategy: counts[i] ticks of
/// mass 1/I on action i, with sum(counts) == I. This is exactly the row/column
/// activation pattern of the bi-crossbar mapping in Fig. 4.
class QuantizedStrategy {
 public:
  QuantizedStrategy(std::size_t num_actions, std::uint32_t intervals);
  /// From explicit tick counts (must sum to `intervals`).
  QuantizedStrategy(std::vector<std::uint32_t> counts, std::uint32_t intervals);

  /// Nearest grid point to a real distribution (largest-remainder rounding).
  static QuantizedStrategy from_distribution(const la::Vector& p,
                                             std::uint32_t intervals);
  /// Point mass on action i.
  static QuantizedStrategy pure(std::size_t num_actions, std::size_t i,
                                std::uint32_t intervals);
  /// Uniformly random grid point (uniform over compositions).
  static QuantizedStrategy random(std::size_t num_actions,
                                  std::uint32_t intervals, util::Rng& rng);

  /// Random grid point with a uniformly drawn support size: pick s in
  /// [1, num_actions], pick s actions, spread the ticks over them (each
  /// action gets at least one tick when intervals >= s). Seeds annealing
  /// runs near sparse and dense strategy profiles with equal probability.
  static QuantizedStrategy random_support(std::size_t num_actions,
                                          std::uint32_t intervals,
                                          util::Rng& rng);

  std::size_t num_actions() const { return counts_.size(); }
  std::uint32_t intervals() const { return intervals_; }
  const std::vector<std::uint32_t>& counts() const { return counts_; }
  std::uint32_t count(std::size_t i) const { return counts_.at(i); }

  /// Real-valued probability vector counts/I.
  la::Vector to_distribution() const;

  /// Move one tick of probability mass from action `from` to action `to`.
  /// Precondition: counts[from] > 0. This is the SA neighbourhood move
  /// ("randomly increment or decrement the action probabilities by the value
  /// of interval", Sec. 3.4).
  void move_tick(std::size_t from, std::size_t to);

  /// Whether a real distribution lies exactly on this grid (|p_i*I - round| < tol).
  static bool representable(const la::Vector& p, std::uint32_t intervals,
                            double tol = 1e-9);

  bool operator==(const QuantizedStrategy&) const = default;

  std::string to_string() const;

 private:
  std::vector<std::uint32_t> counts_;
  std::uint32_t intervals_;
};

/// Joint (p, q) profile on the quantized grid — the SA state of Alg. 1.
struct QuantizedProfile {
  QuantizedStrategy p;
  QuantizedStrategy q;

  bool operator==(const QuantizedProfile&) const = default;
  /// Stable key for dedup across SA runs.
  std::string key() const;
};

}  // namespace cnash::game
