#include "game/verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "game/strategy.hpp"

namespace cnash::game {

NashCheck check_equilibrium(const BimatrixGame& game, const la::Vector& p,
                            const la::Vector& q, double epsilon) {
  if (!is_distribution(p, 1e-6) || !is_distribution(q, 1e-6))
    return {false, std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  const la::Vector mq = game.row_payoffs(q);
  const la::Vector ntp = game.col_payoffs(p);
  const double f1 = la::dot(p, mq);
  const double f2 = la::dot(q, ntp);
  const double regret1 = la::max_element(mq) - f1;
  const double regret2 = la::max_element(ntp) - f2;
  return {regret1 <= epsilon && regret2 <= epsilon, regret1, regret2};
}

bool is_nash_equilibrium(const BimatrixGame& game, const la::Vector& p,
                         const la::Vector& q, double epsilon) {
  return check_equilibrium(game, p, q, epsilon).is_equilibrium;
}

double equilibrium_gap(const BimatrixGame& game, const la::Vector& p,
                       const la::Vector& q) {
  const auto chk = check_equilibrium(game, p, q, 0.0);
  return std::max(chk.regret1, chk.regret2);
}

bool Equilibrium::matches(const la::Vector& op, const la::Vector& oq,
                          double tol) const {
  if (op.size() != p.size() || oq.size() != q.size()) return false;
  return la::norm_inf(la::subtract(p, op)) <= tol &&
         la::norm_inf(la::subtract(q, oq)) <= tol;
}

bool is_pure_profile(const la::Vector& p, const la::Vector& q, double tol) {
  auto pure = [tol](const la::Vector& v) {
    std::size_t ones = 0;
    for (double x : v) {
      if (std::abs(x - 1.0) <= tol)
        ++ones;
      else if (std::abs(x) > tol)
        return false;
    }
    return ones == 1;
  };
  return pure(p) && pure(q);
}

std::vector<Equilibrium> dedup(std::vector<Equilibrium> eqs, double tol) {
  std::vector<Equilibrium> out;
  for (auto& e : eqs) {
    const bool seen = std::any_of(out.begin(), out.end(), [&](const Equilibrium& o) {
      return o.matches(e.p, e.q, tol);
    });
    if (!seen) out.push_back(std::move(e));
  }
  return out;
}

std::size_t match_equilibrium(const std::vector<Equilibrium>& ground_truth,
                              const la::Vector& p, const la::Vector& q,
                              double tol) {
  for (std::size_t i = 0; i < ground_truth.size(); ++i)
    if (ground_truth[i].matches(p, q, tol)) return i;
  return kNoMatch;
}

}  // namespace cnash::game
