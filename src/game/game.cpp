#include "game/game.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cnash::game {

BimatrixGame::BimatrixGame(la::Matrix payoff1, la::Matrix payoff2,
                           std::string name)
    : m_(std::move(payoff1)), n_(std::move(payoff2)), name_(std::move(name)) {
  if (m_.rows() == 0 || m_.cols() == 0)
    throw std::invalid_argument("BimatrixGame: empty payoff matrix");
  if (m_.rows() != n_.rows() || m_.cols() != n_.cols())
    throw std::invalid_argument("BimatrixGame: payoff shapes differ");
}

BimatrixGame BimatrixGame::zero_sum(la::Matrix payoff1, std::string name) {
  la::Matrix neg = payoff1 * -1.0;
  return BimatrixGame(std::move(payoff1), std::move(neg), std::move(name));
}

double BimatrixGame::expected_payoff1(const la::Vector& p,
                                      const la::Vector& q) const {
  return la::vmv(p, m_, q);
}

double BimatrixGame::expected_payoff2(const la::Vector& p,
                                      const la::Vector& q) const {
  return la::vmv(p, n_, q);
}

la::Vector BimatrixGame::row_payoffs(const la::Vector& q) const {
  return m_.multiply(q);
}

la::Vector BimatrixGame::col_payoffs(const la::Vector& p) const {
  return n_.multiply_transposed(p);
}

BimatrixGame BimatrixGame::shifted_non_negative(double floor) const {
  const double lo = std::min(m_.min_element(), n_.min_element());
  if (lo >= floor) return *this;
  const double shift = floor - lo;
  la::Matrix m2 = m_;
  la::Matrix n2 = n_;
  for (std::size_t r = 0; r < m2.rows(); ++r)
    for (std::size_t c = 0; c < m2.cols(); ++c) {
      m2(r, c) += shift;
      n2(r, c) += shift;
    }
  return BimatrixGame(std::move(m2), std::move(n2), name_ + " (shifted)");
}

double BimatrixGame::max_abs_payoff() const {
  double v = 0.0;
  for (double x : m_.data()) v = std::max(v, std::abs(x));
  for (double x : n_.data()) v = std::max(v, std::abs(x));
  return v;
}

std::string BimatrixGame::to_string() const {
  std::string out = "Game: " + name_ + "\nPayoff M (player 1):\n" +
                    m_.to_string() + "Payoff N (player 2):\n" + n_.to_string();
  return out;
}

}  // namespace cnash::game
