#pragma once
// Two-player bimatrix games in normal form. Player 1 (row) has n actions with
// payoff matrix M (n×m); player 2 (column) has m actions with payoff matrix N
// (n×m, payoffs to player 2). Strategies are probability vectors p (n) / q (m).
// This matches Sec. 2.1 of the C-Nash paper: f1 = pᵀMq, f2 = pᵀNq.

#include <string>

#include "la/matrix.hpp"

namespace cnash::game {

class BimatrixGame {
 public:
  /// M and N must share the same shape; rows = player-1 actions, cols = player-2.
  BimatrixGame(la::Matrix payoff1, la::Matrix payoff2, std::string name = "");

  /// Zero-sum convenience: N = -M.
  static BimatrixGame zero_sum(la::Matrix payoff1, std::string name = "");

  std::size_t num_actions1() const { return m_.rows(); }
  std::size_t num_actions2() const { return m_.cols(); }

  const la::Matrix& payoff1() const { return m_; }
  const la::Matrix& payoff2() const { return n_; }
  const std::string& name() const { return name_; }

  /// Expected payoffs f1 = pᵀMq, f2 = pᵀNq.
  double expected_payoff1(const la::Vector& p, const la::Vector& q) const;
  double expected_payoff2(const la::Vector& p, const la::Vector& q) const;

  /// Row payoff vector Mq (player 1's payoff per pure action, given q).
  la::Vector row_payoffs(const la::Vector& q) const;
  /// Column payoff vector Nᵀp (player 2's payoff per pure action, given p).
  la::Vector col_payoffs(const la::Vector& p) const;

  /// A positive-offset copy: adds a constant to both payoff matrices so every
  /// entry is >= `floor`. NE sets are invariant under constant shifts; the
  /// hardware mapping needs non-negative integer-codeable entries.
  BimatrixGame shifted_non_negative(double floor = 0.0) const;

  /// Largest payoff magnitude across both matrices (scaling for encodings).
  double max_abs_payoff() const;

  std::string to_string() const;

 private:
  la::Matrix m_;
  la::Matrix n_;
  std::string name_;
};

}  // namespace cnash::game
