#pragma once
// Random game generators for property-based tests and scaling studies.

#include <cstdint>

#include "game/game.hpp"
#include "util/rng.hpp"

namespace cnash::game {

/// Uniform i.i.d. payoffs in [lo, hi] for both players.
BimatrixGame random_game(std::size_t n, std::size_t m, util::Rng& rng,
                         double lo = -1.0, double hi = 1.0);

/// Random zero-sum game.
BimatrixGame random_zero_sum_game(std::size_t n, std::size_t m, util::Rng& rng,
                                  double lo = -1.0, double hi = 1.0);

/// Random symmetric game (N = Mᵀ), n actions per player.
BimatrixGame random_symmetric_game(std::size_t n, util::Rng& rng,
                                   double lo = -1.0, double hi = 1.0);

/// Random coordination-flavoured game: strong diagonal + weak noise, which
/// yields many pure and mixed equilibria (stress test for enumeration).
BimatrixGame random_coordination_game(std::size_t n, util::Rng& rng,
                                      double diag_lo = 1.0, double diag_hi = 3.0,
                                      double noise = 0.1);

/// Random integer-payoff game (payoffs in [lo, hi] ∩ Z) — hardware-mappable.
BimatrixGame random_integer_game(std::size_t n, std::size_t m, util::Rng& rng,
                                 int lo = 0, int hi = 7);

/// Random game solvable by ITERATED strict dominance: the elimination
/// schedule interleaves both players (each removed action is strictly
/// dominated only over the opponent actions still surviving at its step, so
/// the full iteration is genuinely required), collapsing to a unique pure
/// equilibrium at a uniformly shuffled action pair. Payoffs are small
/// non-negative integers (range O(n + m)) — hardware-mappable.
BimatrixGame random_dominance_solvable_game(std::size_t n, std::size_t m,
                                            util::Rng& rng);

/// Random covariant game (GAMUT-style): each cell's payoff pair is bivariate
/// standard normal with correlation rho, sweeping zero-sum (rho = -1)
/// through uncorrelated (0) to common-interest (rho = +1).
BimatrixGame random_covariant_game(std::size_t n, std::size_t m, double rho,
                                   util::Rng& rng);

}  // namespace cnash::game
