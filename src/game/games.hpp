#pragma once
// The benchmark game library.
//
// The C-Nash paper evaluates three instances taken from Khan et al. [8]:
// "Battle of the Sexes" (2 actions), "Bird Game" (3 actions) and "Modified
// Prisoner's Dilemma" (8 actions). Only Battle of the Sexes is fully specified
// by the open literature; the other two payoff matrices are reconstructed here
// (see DESIGN.md, Substitutions) with the published action counts and a rich
// set of pure *and* mixed equilibria, all representable on the I=12
// quantization grid so the C-Nash hardware can express them exactly.
//
// Classic 2x2/3x3 games are included for unit tests and examples.

#include <cstdint>
#include <vector>

#include "game/game.hpp"

namespace cnash::game {

/// One evaluation instance: game + solver parameters used in Sec. 4.2.
struct BenchmarkInstance {
  BimatrixGame game;
  std::uint32_t intervals;        // quantization I such that all NE on grid
  std::size_t sa_iterations;       // paper: 10000 / 15000 / 50000
  std::size_t expected_equilibria; // ground-truth count (ours)
  std::size_t paper_target_equilibria;  // count reported in the paper (Fig. 9)
};

/// Battle of the Sexes: M=[[2,0],[0,1]], N=[[1,0],[0,2]].
/// 3 NE: two pure coordination outcomes + mixed ((2/3,1/3),(1/3,2/3)).
BimatrixGame battle_of_sexes();

/// Bird Game (reconstructed): two birds choosing among three nesting
/// behaviours with coordination payoffs diag(2,2,1). 7 NE: 3 pure, 3 pairwise
/// mixed, 1 full-support mixed — all with denominators dividing 12.
/// (Paper target is 6 solutions; see DESIGN.md.)
BimatrixGame bird_game();

/// Modified Prisoner's Dilemma (reconstructed, 8 actions): five cooperative
/// ventures that pay off only when both players focus on the same one, a
/// "defect" action with a small guaranteed payoff against cooperation (the PD
/// temptation, never quite enough to beat coordinated cooperation), and two
/// spiteful actions that are strictly dominated. 31 NE: 5 pure + 26 mixed
/// (uniform on every venture subset), all with denominators dividing 60.
/// (Paper target is 25 solutions; an index-theorem argument shows 25 cannot
/// be realised by a non-degenerate game of the paper's flavour — DESIGN.md.)
BimatrixGame modified_prisoners_dilemma();

// -- Classic games for tests/examples ---------------------------------------

/// Prisoner's Dilemma: unique pure NE (Defect, Defect).
BimatrixGame prisoners_dilemma();
/// Matching Pennies: zero-sum, unique mixed NE (1/2,1/2)x(1/2,1/2).
BimatrixGame matching_pennies();
/// Rock-Paper-Scissors: zero-sum, unique mixed NE uniform(3).
BimatrixGame rock_paper_scissors();
/// Chicken / Hawk-Dove: 2 pure + 1 mixed NE.
BimatrixGame chicken();
/// Stag Hunt: 2 pure + 1 mixed NE.
BimatrixGame stag_hunt();
/// Pure coordination of size n with distinct diagonal payoffs (n, n-1, ..., 1).
BimatrixGame coordination(std::size_t n);

/// The three paper instances with their Sec. 4.2 parameters.
std::vector<BenchmarkInstance> paper_benchmarks();

}  // namespace cnash::game
