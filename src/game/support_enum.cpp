#include "game/support_enum.hpp"

#include <algorithm>
#include <cmath>

#include "game/strategy.hpp"
#include "la/solve.hpp"

namespace cnash::game {

namespace {

/// Enumerate all k-subsets of {0..n-1}, invoking fn(subset).
template <typename Fn>
void for_each_subset(std::size_t n, std::size_t k, Fn&& fn) {
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    fn(idx);
    // next combination
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) break;
      if (i == 0) return;
    }
    if (idx[i] == i + n - k) return;
    ++idx[i];
    for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

/// Solve the one-player indifference system: find strategy `x` of the opponent
/// (supported on `opp_support`, |opp_support| unknowns + payoff level v) such
/// that all actions in `own_support` are exactly indifferent:
///   (A x)_i = v for i in own_support, sum(x) = 1.
/// A is the payoff matrix of the player whose support is own_support, applied
/// to the opponent's strategy (i.e. M for player 1 / Nᵀ for player 2).
struct IndifferenceSolution {
  la::Vector x;  // full-length opponent strategy
  double value;
  bool underdetermined = false;
};

std::optional<IndifferenceSolution> solve_indifference(
    const la::Matrix& a,  // own payoff rows × opp actions
    const std::vector<std::size_t>& own_support,
    const std::vector<std::size_t>& opp_support, std::size_t opp_actions,
    double tol) {
  const std::size_t rows = own_support.size() + 1;
  const std::size_t cols = opp_support.size() + 1;  // x on support + v
  la::Matrix sys(rows, cols, 0.0);
  la::Vector rhs(rows, 0.0);
  for (std::size_t r = 0; r < own_support.size(); ++r) {
    for (std::size_t c = 0; c < opp_support.size(); ++c)
      sys(r, c) = a(own_support[r], opp_support[c]);
    sys(r, opp_support.size()) = -1.0;  // -v
  }
  for (std::size_t c = 0; c < opp_support.size(); ++c)
    sys(own_support.size(), c) = 1.0;  // sum x = 1
  rhs[own_support.size()] = 1.0;

  const auto res = la::solve_general(sys, rhs, tol);
  if (res.status == la::SolveStatus::kInconsistent) return std::nullopt;

  IndifferenceSolution sol;
  sol.underdetermined = (res.status == la::SolveStatus::kUnderdetermined);
  sol.x.assign(opp_actions, 0.0);
  for (std::size_t c = 0; c < opp_support.size(); ++c)
    sol.x[opp_support[c]] = res.x[c];
  sol.value = res.x[opp_support.size()];
  return sol;
}

bool non_negative_on_support(const la::Vector& x, double tol) {
  return std::all_of(x.begin(), x.end(), [tol](double v) { return v >= -tol; });
}

}  // namespace

SupportEnumResult support_enumeration(const BimatrixGame& game,
                                      const SupportEnumOptions& opts) {
  SupportEnumResult result;
  const std::size_t n = game.num_actions1();
  const std::size_t m = game.num_actions2();
  const la::Matrix& payoff1 = game.payoff1();
  const la::Matrix nt = game.payoff2().transposed();  // player 2's own-payoff rows

  const std::size_t kmax1 = opts.max_support ? std::min(opts.max_support, n) : n;
  const std::size_t kmax2 = opts.max_support ? std::min(opts.max_support, m) : m;

  auto try_support_pair = [&](const std::vector<std::size_t>& s1,
                              const std::vector<std::size_t>& s2) {
    ++result.supports_examined;
    // q makes player 1 indifferent across s1; p makes player 2 indifferent
    // across s2.
    const auto q_sol =
        solve_indifference(payoff1, s1, s2, m, opts.tol);
    if (!q_sol) return;
    const auto p_sol = solve_indifference(nt, s2, s1, n, opts.tol);
    if (!p_sol) return;
    if (q_sol->underdetermined || p_sol->underdetermined)
      result.degenerate_flag = true;
    if (!non_negative_on_support(q_sol->x, opts.tol) ||
        !non_negative_on_support(p_sol->x, opts.tol))
      return;
    // Clamp tiny negatives, renormalise.
    la::Vector p = p_sol->x;
    la::Vector q = q_sol->x;
    for (auto& v : p) v = std::max(v, 0.0);
    for (auto& v : q) v = std::max(v, 0.0);
    const double sp = la::sum(p);
    const double sq = la::sum(q);
    if (sp <= 0.0 || sq <= 0.0) return;
    for (auto& v : p) v /= sp;
    for (auto& v : q) v /= sq;

    if (!is_nash_equilibrium(game, p, q, opts.verify_eps)) return;
    result.equilibria.push_back(
        {p, q, is_pure_profile(p, q, opts.verify_eps)});
  };

  for (std::size_t k1 = 1; k1 <= kmax1; ++k1) {
    const std::size_t k2_lo = opts.include_unequal_supports ? 1 : k1;
    const std::size_t k2_hi = opts.include_unequal_supports ? kmax2
                                                            : std::min(k1, kmax2);
    for (std::size_t k2 = k2_lo; k2 <= k2_hi; ++k2) {
      if (k2 > m || k1 > n) continue;
      for_each_subset(n, k1, [&](const std::vector<std::size_t>& s1) {
        for_each_subset(m, k2, [&](const std::vector<std::size_t>& s2) {
          try_support_pair(s1, s2);
        });
      });
    }
  }

  result.equilibria = dedup(std::move(result.equilibria), 1e-6);
  return result;
}

std::vector<Equilibrium> all_equilibria(const BimatrixGame& game) {
  return support_enumeration(game).equilibria;
}

}  // namespace cnash::game
