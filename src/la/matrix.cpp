#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace cnash::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  return data_[r * cols_ + c];
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
    throw std::invalid_argument("Matrix -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix *: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& x : data_) x *= s;
  return *this;
}

Vector Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::min_element() const {
  if (data_.empty()) throw std::logic_error("Matrix::min_element on empty");
  return *std::min_element(data_.begin(), data_.end());
}

double Matrix::max_element() const {
  if (data_.empty()) throw std::logic_error("Matrix::max_element on empty");
  return *std::max_element(data_.begin(), data_.end());
}

Vector Matrix::multiply(const Vector& v) const {
  Vector out;
  multiply_into(v, out);
  return out;
}

void Matrix::multiply_into(const Vector& v, Vector& out) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::multiply: size");
  out.resize(rows_);
  const double* m = data_.data();
  const double* x = v.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row = m + r * cols_;
    // Four independent accumulators hide the FP-add latency and let the
    // compiler vectorise the dot product.
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t c = 0;
    for (; c + 4 <= cols_; c += 4) {
      a0 += row[c] * x[c];
      a1 += row[c + 1] * x[c + 1];
      a2 += row[c + 2] * x[c + 2];
      a3 += row[c + 3] * x[c + 3];
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; c < cols_; ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
}

Vector Matrix::multiply_transposed(const Vector& v) const {
  Vector out;
  multiply_transposed_into(v, out);
  return out;
}

void Matrix::multiply_transposed_into(const Vector& v, Vector& out) const {
  if (v.size() != rows_) {
    throw std::invalid_argument("Matrix::multiply_transposed: size");
  }
  out.assign(cols_, 0.0);
  const double* m = data_.data();
  double* y = out.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double* row = m + r * cols_;
    std::size_t c = 0;
    for (; c + 4 <= cols_; c += 4) {
      y[c] += vr * row[c];
      y[c + 1] += vr * row[c + 1];
      y[c + 2] += vr * row[c + 2];
      y[c + 3] += vr * row[c + 3];
    }
    for (; c < cols_; ++c) y[c] += vr * row[c];
  }
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof buf, "%.*f ", precision, (*this)(r, c));
      out += buf;
    }
    out += "]\n";
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  return std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
}

Vector add(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector subtract(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& a, double s) {
  Vector out(a);
  for (auto& x : out) x *= s;
  return out;
}

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

double norm2(const Vector& a) {
  return std::sqrt(std::inner_product(a.begin(), a.end(), a.begin(), 0.0));
}

double sum(const Vector& a) { return std::accumulate(a.begin(), a.end(), 0.0); }

double max_element(const Vector& a) {
  if (a.empty()) throw std::logic_error("max_element on empty vector");
  return *std::max_element(a.begin(), a.end());
}

std::size_t argmax(const Vector& a) {
  if (a.empty()) throw std::logic_error("argmax on empty vector");
  return static_cast<std::size_t>(
      std::distance(a.begin(), std::max_element(a.begin(), a.end())));
}

double vmv(const Vector& v, const Matrix& m, const Vector& w) {
  if (v.size() != m.rows() || w.size() != m.cols())
    throw std::invalid_argument("vmv: size mismatch");
  // Single pass, no temporary Mw vector: rows with v_r == 0 are skipped
  // entirely (quantized strategies are sparse on the simplex).
  const double* md = m.data().data();
  const std::size_t cols = m.cols();
  double total = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double vr = v[r];
    if (vr == 0.0) continue;
    const double* row = md + r * cols;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t c = 0;
    for (; c + 4 <= cols; c += 4) {
      a0 += row[c] * w[c];
      a1 += row[c + 1] * w[c + 1];
      a2 += row[c + 2] * w[c + 2];
      a3 += row[c + 3] * w[c + 3];
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; c < cols; ++c) acc += row[c] * w[c];
    total += vr * acc;
  }
  return total;
}

}  // namespace cnash::la
