#include "la/solve.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace cnash::la {

namespace {

/// Row-echelon reduction of the augmented matrix [A | b]; records pivot columns.
struct Echelon {
  Matrix aug;                       // reduced augmented matrix
  std::vector<std::size_t> pivot_cols;
  double scale;                     // magnitude reference for tolerance checks
};

Echelon reduce(const Matrix& a, const Vector& b, double tol) {
  if (b.size() != a.rows()) throw std::invalid_argument("solve: b size mismatch");
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  Matrix aug(n, m + 1);
  double scale = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      aug(r, c) = a(r, c);
      scale = std::max(scale, std::abs(a(r, c)));
    }
    aug(r, m) = b[r];
    scale = std::max(scale, std::abs(b[r]));
  }
  if (scale == 0.0) scale = 1.0;
  const double threshold = tol * scale;

  std::vector<std::size_t> pivot_cols;
  std::size_t pr = 0;  // pivot row
  for (std::size_t pc = 0; pc < m && pr < n; ++pc) {
    // Partial pivot: pick the largest |entry| in this column at/below pr.
    std::size_t best = pr;
    for (std::size_t r = pr + 1; r < n; ++r)
      if (std::abs(aug(r, pc)) > std::abs(aug(best, pc))) best = r;
    if (std::abs(aug(best, pc)) <= threshold) continue;  // no pivot here
    if (best != pr)
      for (std::size_t c = 0; c <= m; ++c) std::swap(aug(best, c), aug(pr, c));
    const double pivot = aug(pr, pc);
    for (std::size_t c = pc; c <= m; ++c) aug(pr, c) /= pivot;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == pr) continue;
      const double f = aug(r, pc);
      if (f == 0.0) continue;
      for (std::size_t c = pc; c <= m; ++c) aug(r, c) -= f * aug(pr, c);
    }
    pivot_cols.push_back(pc);
    ++pr;
  }
  return {std::move(aug), std::move(pivot_cols), scale};
}

}  // namespace

SolveResult solve_general(const Matrix& a, const Vector& b, double tol) {
  const std::size_t n = a.rows();
  const std::size_t m = a.cols();
  Echelon e = reduce(a, b, tol);
  const std::size_t r = e.pivot_cols.size();
  const double threshold = tol * e.scale;

  // Inconsistency: a zero row of A with nonzero rhs.
  for (std::size_t row = r; row < n; ++row) {
    if (std::abs(e.aug(row, m)) > threshold)
      return {SolveStatus::kInconsistent, {}, r};
  }

  // Particular solution: pivot variables from rhs, free variables = 0.
  Vector x(m, 0.0);
  for (std::size_t i = 0; i < r; ++i) x[e.pivot_cols[i]] = e.aug(i, m);

  const SolveStatus status =
      (r == m) ? SolveStatus::kUnique : SolveStatus::kUnderdetermined;
  return {status, std::move(x), r};
}

std::optional<Vector> solve_unique(const Matrix& a, const Vector& b, double tol) {
  auto res = solve_general(a, b, tol);
  if (res.status != SolveStatus::kUnique) return std::nullopt;
  return res.x;
}

std::size_t rank(const Matrix& a, double tol) {
  Vector zero(a.rows(), 0.0);
  return reduce(a, zero, tol).pivot_cols.size();
}

double determinant(Matrix a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("determinant: not square");
  const std::size_t n = a.rows();
  double det = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = k;
    for (std::size_t r = k + 1; r < n; ++r)
      if (std::abs(a(r, k)) > std::abs(a(best, k))) best = r;
    if (a(best, k) == 0.0) return 0.0;
    if (best != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(best, c), a(k, c));
      det = -det;
    }
    det *= a(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = a(r, k) / a(k, k);
      for (std::size_t c = k; c < n; ++c) a(r, c) -= f * a(k, c);
    }
  }
  return det;
}

std::optional<Matrix> inverse(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) throw std::invalid_argument("inverse: not square");
  const std::size_t n = a.rows();
  Matrix aug(n, 2 * n);
  double scale = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      aug(r, c) = a(r, c);
      scale = std::max(scale, std::abs(a(r, c)));
    }
    aug(r, n + r) = 1.0;
  }
  if (scale == 0.0) return std::nullopt;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t best = k;
    for (std::size_t r = k + 1; r < n; ++r)
      if (std::abs(aug(r, k)) > std::abs(aug(best, k))) best = r;
    if (std::abs(aug(best, k)) <= tol * scale) return std::nullopt;
    if (best != k)
      for (std::size_t c = 0; c < 2 * n; ++c) std::swap(aug(best, c), aug(k, c));
    const double pivot = aug(k, k);
    for (std::size_t c = 0; c < 2 * n; ++c) aug(k, c) /= pivot;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == k) continue;
      const double f = aug(r, k);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < 2 * n; ++c) aug(r, c) -= f * aug(k, c);
    }
  }
  Matrix inv(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) inv(r, c) = aug(r, n + c);
  return inv;
}

}  // namespace cnash::la
