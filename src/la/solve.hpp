#pragma once
// Linear system solving for the support-enumeration indifference systems.
// Gaussian elimination with partial pivoting plus rank / consistency reporting —
// degenerate games produce singular or inconsistent systems and the game layer
// needs to distinguish "no solution" from "continuum of solutions".

#include <optional>

#include "la/matrix.hpp"

namespace cnash::la {

enum class SolveStatus {
  kUnique,        // full-rank square system, one solution returned
  kInconsistent,  // no solution exists
  kUnderdetermined  // infinitely many; a particular solution is returned
};

struct SolveResult {
  SolveStatus status;
  Vector x;        // valid unless kInconsistent
  std::size_t rank = 0;
};

/// Solve A x = b for a general (possibly non-square / rank-deficient) A via
/// row-reduction with partial pivoting. `tol` is the pivot threshold relative to
/// the largest row entry.
SolveResult solve_general(const Matrix& a, const Vector& b, double tol = 1e-10);

/// Convenience: unique solution or nullopt (square systems).
std::optional<Vector> solve_unique(const Matrix& a, const Vector& b,
                                   double tol = 1e-10);

/// Rank of A under relative tolerance `tol`.
std::size_t rank(const Matrix& a, double tol = 1e-10);

/// Determinant via LU (square only).
double determinant(Matrix a);

/// Inverse via Gauss-Jordan; nullopt when singular.
std::optional<Matrix> inverse(const Matrix& a, double tol = 1e-12);

}  // namespace cnash::la
