#pragma once
// Small dense linear algebra tailored to bimatrix games and QUBO matrices.
// Row-major, value-semantic. Sizes are modest (n,m <= a few hundred), so there
// is no blocking, but the matrix-vector kernels are pointer-based, unrolled
// and allocation-free (multiply_into / multiply_transposed_into) — they sit on
// the per-iteration path of the annealer.

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace cnash::la {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Build from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);
  static Matrix diagonal(const Vector& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }

  Matrix transposed() const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  bool operator==(const Matrix& rhs) const = default;

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;
  double min_element() const;
  double max_element() const;

  /// M * v (v has cols() entries).
  Vector multiply(const Vector& v) const;
  /// Mᵀ * v (v has rows() entries) without materialising the transpose.
  Vector multiply_transposed(const Vector& v) const;

  /// Allocation-free variants for hot loops: `out` is resized to fit and
  /// overwritten. `out` must not alias `v`.
  void multiply_into(const Vector& v, Vector& out) const;
  void multiply_transposed_into(const Vector& v, Vector& out) const;

  std::string to_string(int precision = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// -- Vector helpers (free functions on la::Vector) ---------------------------

double dot(const Vector& a, const Vector& b);
Vector add(const Vector& a, const Vector& b);
Vector subtract(const Vector& a, const Vector& b);
Vector scale(const Vector& a, double s);
double norm_inf(const Vector& a);
double norm2(const Vector& a);
double sum(const Vector& a);
double max_element(const Vector& a);
std::size_t argmax(const Vector& a);

/// vᵀ M w — the paper's VMV primitive in exact arithmetic.
double vmv(const Vector& v, const Matrix& m, const Vector& w);

}  // namespace cnash::la
