#include "serve/canonical.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

namespace cnash::serve {

void KeyBuilder::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    digest_ ^= p[i];
    digest_ *= 1099511628211ULL;  // FNV prime
  }
  blob_.append(reinterpret_cast<const char*>(data), size);
}

void KeyBuilder::u32(std::uint32_t v) { bytes(&v, sizeof v); }
void KeyBuilder::u64(std::uint64_t v) { bytes(&v, sizeof v); }

void KeyBuilder::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void KeyBuilder::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

namespace {

using Pair = std::pair<double, double>;

/// (M, N) entry pair at (r, c) — the unit the canonical order is built from.
Pair entry(const game::BimatrixGame& g, std::size_t r, std::size_t c) {
  return {g.payoff1()(r, c), g.payoff2()(r, c)};
}

/// Canonical action order of a game (see header for the three sorting
/// passes). Returns {row_perm, col_perm} with canonical index i ← original
/// index perm[i].
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
canonical_order(const game::BimatrixGame& g) {
  const std::size_t n = g.num_actions1(), m = g.num_actions2();

  // Pass 1: rank rows by a column-order-invariant signature.
  std::vector<std::vector<Pair>> row_sig(n);
  for (std::size_t r = 0; r < n; ++r) {
    row_sig[r].reserve(m);
    for (std::size_t c = 0; c < m; ++c) row_sig[r].push_back(entry(g, r, c));
    std::sort(row_sig[r].begin(), row_sig[r].end());
  }
  std::vector<std::uint32_t> row_perm(n);
  std::iota(row_perm.begin(), row_perm.end(), 0u);
  std::stable_sort(row_perm.begin(), row_perm.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return row_sig[a] < row_sig[b];
                   });

  // Pass 2: sort columns lexicographically under the pass-1 row order.
  auto col_less = [&](std::uint32_t a, std::uint32_t b) {
    for (std::size_t i = 0; i < n; ++i) {
      const Pair ea = entry(g, row_perm[i], a), eb = entry(g, row_perm[i], b);
      if (ea != eb) return ea < eb;
    }
    return false;
  };
  std::vector<std::uint32_t> col_perm(m);
  std::iota(col_perm.begin(), col_perm.end(), 0u);
  std::stable_sort(col_perm.begin(), col_perm.end(), col_less);

  // Pass 3: re-sort rows lexicographically under the fixed column order
  // (resolves pass-1 signature ties deterministically).
  auto row_less = [&](std::uint32_t a, std::uint32_t b) {
    for (std::size_t j = 0; j < m; ++j) {
      const Pair ea = entry(g, a, col_perm[j]), eb = entry(g, b, col_perm[j]);
      if (ea != eb) return ea < eb;
    }
    return false;
  };
  std::stable_sort(row_perm.begin(), row_perm.end(), row_less);

  return {std::move(row_perm), std::move(col_perm)};
}

game::BimatrixGame permuted_game(const game::BimatrixGame& g,
                                 const std::vector<std::uint32_t>& row_perm,
                                 const std::vector<std::uint32_t>& col_perm) {
  const std::size_t n = g.num_actions1(), m = g.num_actions2();
  la::Matrix pm(n, m), pn(n, m);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < m; ++c) {
      pm(r, c) = g.payoff1()(row_perm[r], col_perm[c]);
      pn(r, c) = g.payoff2()(row_perm[r], col_perm[c]);
    }
  return game::BimatrixGame(std::move(pm), std::move(pn), "");
}

GameKey request_key(const core::SolveRequest& req) {
  KeyBuilder kb;
  // Version salt: bump when the key schema (or anything that changes solver
  // results for identical key bytes) changes, so stale processes never mix
  // cache entries across schemas.
  kb.str("cnash-gamekey-v2");
  kb.str(req.backend);
  kb.u64(req.runs);
  kb.u64(req.seed);
  kb.u32(req.intervals);
  // SA schedule.
  kb.u64(req.sa.iterations);
  kb.u32(static_cast<std::uint32_t>(req.sa.init));
  kb.f64(req.sa.t_start_rel);
  kb.f64(req.sa.t_end_rel);
  kb.f64(req.sa.both_players_prob);
  // SA mode: replica-exchange knobs change results, so they key the cache.
  // batch_lanes is deliberately absent — lockstep batching is byte-identical
  // to the unbatched sweep for any lane count (see SaPreparedJob).
  kb.u32(static_cast<std::uint32_t>(req.sa.mode));
  kb.u64(req.sa.replicas);
  kb.u64(req.sa.exchange_interval);
  kb.f64(req.sa.ladder_ratio);
  kb.u32(req.report_best ? 1u : 0u);
  kb.f64(req.nash_eps);
  // Hardware-model knobs exposed through the protocol. (max_parallelism is
  // deliberately absent: it is guaranteed not to change results.)
  kb.f64(req.hardware.value_scale);
  kb.u32(req.hardware.adc_bits);
  kb.f64(req.hardware.adc_noise_rel);
  kb.u32(req.hardware.cells_per_element);
  kb.u32(req.hardware.levels_per_cell);
  kb.u32(req.hardware.incremental ? 1u : 0u);
  kb.u64(req.hardware.refresh_interval);
  // Chip / tiling knobs.
  kb.u64(req.chip.tile_rows);
  kb.u64(req.chip.tile_cols);
  kb.u32(static_cast<std::uint32_t>(req.chip.readout));
  kb.f64(req.chip.aggregation_noise_rel);
  // Robustness knobs. The deadline keys the cache even though degraded
  // reports are never inserted: a pending (coalescable) solve's result set
  // depends on it, so two requests differing only in deadline must never
  // coalesce. The fault plan changes which units fall back; delay knobs key
  // too (they shift wall time, and keeping all solver-side fields keyed is
  // cheaper than reasoning about which are observable).
  kb.f64(req.deadline_s);
  kb.str(req.resilient_primary);
  kb.u64(req.fault.seed);
  kb.f64(req.fault.unit_failure_rate);
  kb.f64(req.fault.tile_failure_rate);
  kb.f64(req.fault.unit_delay_rate);
  kb.f64(req.fault.unit_delay_s);
  // Canonical payoffs last (the big part).
  kb.u64(req.game.num_actions1());
  kb.u64(req.game.num_actions2());
  for (const double v : req.game.payoff1().data()) kb.f64(v);
  for (const double v : req.game.payoff2().data()) kb.f64(v);

  GameKey key;
  key.digest = kb.digest();
  key.blob = kb.take_blob();
  return key;
}

la::Vector unpermute(const la::Vector& v,
                     const std::vector<std::uint32_t>& perm) {
  la::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[perm[i]] = v[i];
  return out;
}

game::QuantizedStrategy unpermute(const game::QuantizedStrategy& s,
                                  const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> counts(s.counts().size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[perm[i]] = s.counts()[i];
  return game::QuantizedStrategy(std::move(counts), s.intervals());
}

bool is_identity(const std::vector<std::uint32_t>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] != i) return false;
  return true;
}

}  // namespace

CanonicalRequest canonicalize(core::SolveRequest request) {
  ReportMapping mapping;
  mapping.original_name = request.game.name();
  auto [row_perm, col_perm] = canonical_order(request.game);
  request.game = permuted_game(request.game, row_perm, col_perm);
  mapping.row_perm = std::move(row_perm);
  mapping.col_perm = std::move(col_perm);
  GameKey key = request_key(request);
  return CanonicalRequest{std::move(request), std::move(mapping),
                          std::move(key)};
}

core::SolveReport map_to_original(const ReportMapping& mapping,
                                  core::SolveReport report) {
  report.game_name = mapping.original_name;
  if (is_identity(mapping.row_perm) && is_identity(mapping.col_perm))
    return report;
  for (core::SolveSample& s : report.samples) {
    s.p = unpermute(s.p, mapping.row_perm);
    s.q = unpermute(s.q, mapping.col_perm);
    if (s.profile)
      s.profile = game::QuantizedProfile{
          unpermute(s.profile->p, mapping.row_perm),
          unpermute(s.profile->q, mapping.col_perm)};
  }
  return report;
}

}  // namespace cnash::serve
