#pragma once
// serve — content-addressed solution cache. Maps a GameKey (canonical game +
// solve parameters, see canonical.hpp) to the canonical SolveReport produced
// the first time that solve ran. Replay is deterministic by construction: the
// stored report is returned as-is — including the modeled architecture timing
// and the original measured wall clock — so a cache hit renders byte-for-byte
// the same response as the solve that populated it.
//
// Eviction is least-recently-used under a byte budget (reports dominate:
// samples × (p + q + quantized profile) + the key blob). Entries larger than
// the whole budget are never admitted. All counters are exposed for the
// `stats` wire method and the serving bench.
//
// Not thread-safe by itself: the gateway guards it (together with admission
// and the coalescing registry) with one "gate" mutex shared by its worker
// loops. Stored reports are shared_ptr<const ...> so a hit can be rendered
// after the gate is released — eviction never invalidates a reader.
//
// Tier 2 (optional, attach_store): a persistent store::SolutionStore under
// the RAM tier. insert() writes the canonical report JSON through to disk
// (the round-trip is lossless, so a disk hit replays byte-identically); a
// RAM miss consults the store and a disk hit is promoted back into the LRU.
// RAM eviction does NOT touch the store — evicted entries live on on disk,
// which is the point of the tier. The caller decides what is persistable:
// the gateway never insert()s degraded or fallback reports, so the
// never-cache rule extends to never-persist for free.

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "serve/canonical.hpp"

namespace cnash::store {
class SolutionStore;
}

namespace cnash::serve {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  /// Reports too large for the whole budget, dropped at insert().
  std::size_t oversize_rejects = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t byte_budget = 0;
};

/// Approximate resident size of a report (heap payload + bookkeeping).
std::size_t report_footprint(const core::SolveReport& report);

class SolutionCache {
 public:
  explicit SolutionCache(std::size_t byte_budget);

  /// Attach the persistent tier-2 store (non-owning; must outlive the
  /// cache). From then on insert() writes through and lookup() falls back to
  /// disk on a RAM miss.
  void attach_store(store::SolutionStore* store) { store_ = store; }

  /// RAM hit: bumps the entry to most-recently-used and returns its
  /// canonical report (shared ownership — stays valid across later inserts
  /// and evictions). RAM miss with a tier-2 store attached: the store is
  /// consulted (full-key compare) and a disk hit is decoded and promoted
  /// into the LRU. Miss everywhere: nullptr. CacheStats counts the RAM tier
  /// only (misses includes disk hits — they did miss RAM); the store keeps
  /// its own counters, so tier-1 vs tier-2 hit rates stay distinguishable.
  std::shared_ptr<const core::SolveReport> lookup(const GameKey& key);

  /// Insert (or refresh) the canonical report for `key`, then evict from the
  /// LRU tail until the byte budget holds. With a tier-2 store attached the
  /// report is also serialised and written through — even when it is too
  /// large for the RAM budget (the disk budget is the store's own affair).
  void insert(const GameKey& key,
              std::shared_ptr<const core::SolveReport> report);

  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    GameKey key;
    std::shared_ptr<const core::SolveReport> report;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  LruList::iterator find(const GameKey& key);
  void erase(LruList::iterator it);
  /// The RAM-tier insert (no write-through): shared by insert() and the
  /// promote-on-disk-hit path.
  void insert_local(const GameKey& key,
                    std::shared_ptr<const core::SolveReport> report);

  store::SolutionStore* store_ = nullptr;  // tier 2, optional
  LruList lru_;  // front = most recently used
  /// digest → entries with that digest (collisions resolved by blob compare).
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> index_;
  CacheStats stats_;
};

}  // namespace cnash::serve
