#pragma once
// serve — content-addressed solution cache. Maps a GameKey (canonical game +
// solve parameters, see canonical.hpp) to the canonical SolveReport produced
// the first time that solve ran. Replay is deterministic by construction: the
// stored report is returned as-is — including the modeled architecture timing
// and the original measured wall clock — so a cache hit renders byte-for-byte
// the same response as the solve that populated it.
//
// Eviction is least-recently-used under a byte budget (reports dominate:
// samples × (p + q + quantized profile) + the key blob). Entries larger than
// the whole budget are never admitted. All counters are exposed for the
// `stats` wire method and the serving bench.
//
// Not thread-safe by itself: the gateway guards it (together with admission
// and the coalescing registry) with one "gate" mutex shared by its worker
// loops. Stored reports are shared_ptr<const ...> so a hit can be rendered
// after the gate is released — eviction never invalidates a reader.

#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/backend.hpp"
#include "serve/canonical.hpp"

namespace cnash::serve {

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  /// Reports too large for the whole budget, dropped at insert().
  std::size_t oversize_rejects = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  std::size_t byte_budget = 0;
};

/// Approximate resident size of a report (heap payload + bookkeeping).
std::size_t report_footprint(const core::SolveReport& report);

class SolutionCache {
 public:
  explicit SolutionCache(std::size_t byte_budget);

  /// Hit: bumps the entry to most-recently-used and returns its canonical
  /// report (shared ownership — stays valid across later inserts and
  /// evictions). Miss: nullptr. Counts hits/misses.
  std::shared_ptr<const core::SolveReport> lookup(const GameKey& key);

  /// Insert (or refresh) the canonical report for `key`, then evict from the
  /// LRU tail until the byte budget holds.
  void insert(const GameKey& key,
              std::shared_ptr<const core::SolveReport> report);

  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    GameKey key;
    std::shared_ptr<const core::SolveReport> report;
    std::size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  LruList::iterator find(const GameKey& key);
  void erase(LruList::iterator it);

  LruList lru_;  // front = most recently used
  /// digest → entries with that digest (collisions resolved by blob compare).
  std::unordered_map<std::uint64_t, std::vector<LruList::iterator>> index_;
  CacheStats stats_;
};

}  // namespace cnash::serve
