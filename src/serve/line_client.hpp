#pragma once
// serve::LineClient — a minimal blocking client for the gateway, speaking
// either of its framings: newline-delimited JSON (send one line, receive one
// line) or the length-prefixed binary frames of protocol.hpp (send_frame /
// recv_frame). Shared by examples/nash_client.cpp,
// bench/bench_serve_throughput.cpp and tests/test_serve.cpp so the framing
// (and its EINTR/partial-send handling) exists exactly once. Header-only —
// it is client-side convenience, not part of the server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace cnash::serve {

/// Client-side wait before retrying a shed ("overloaded") or rejected
/// ("draining") solve: the server's retry_after_s hint doubled per attempt
/// (attempt 0 waits the hint itself), capped at `cap_s`, with deterministic
/// ±25% jitter keyed on (key, attempt) so a fleet of clients retrying the
/// same hint decorrelates without shared state — and so tests can assert the
/// exact schedule.
inline double retry_backoff_s(double retry_after_s, std::size_t attempt,
                              std::uint64_t key, double cap_s = 2.0) {
  double base = retry_after_s > 0.0 ? retry_after_s : 0.05;
  for (std::size_t a = 0; a < attempt && base < cap_s; ++a) base *= 2.0;
  if (base > cap_s) base = cap_s;
  std::uint64_t state =
      key ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt + 1));
  const double unit =
      static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  return base * (0.75 + 0.5 * unit);
}

class LineClient {
 public:
  LineClient() = default;
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(LineClient&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  LineClient& operator=(LineClient&& other) noexcept {
    if (this != &other) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// False on failure (errno is left describing the failing call).
  bool connect_to(const std::string& host, unsigned short port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      errno = EINVAL;
      return false;
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) < 0)
      return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
  }
  bool connect_to(unsigned short port) { return connect_to("127.0.0.1", port); }

  /// Appends the newline terminator itself. False on a lost connection.
  bool send_line(std::string line) {
    line += '\n';
    return send_raw(line.data(), line.size());
  }

  /// Raw bytes, no framing — partial-request and slow-writer (chaos) tests.
  bool send_raw(const char* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const ssize_t sent = ::send(fd_, data + off, size - off, MSG_NOSIGNAL);
      if (sent < 0 && errno == EINTR) continue;
      if (sent <= 0) return false;
      off += static_cast<std::size_t>(sent);
    }
    return true;
  }

  /// One response line without its terminator; false on EOF or error.
  bool recv_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[16384];
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  // ---- Binary framing (protocol.hpp) ---------------------------------------
  // The first frame a connection sends switches the server to binary mode;
  // don't mix send_line and send_frame on one connection.

  /// One request frame: the JSON body (method implied by `type`).
  bool send_frame(unsigned char type, const std::string& body) {
    std::string wire;
    encode_frame(type, body, wire);
    return send_raw(wire.data(), wire.size());
  }

  /// One response frame: fills `type` (kFrameFinal / kFrameProgress /
  /// kFrameError) and the JSON `body`. False on EOF, error or a malformed
  /// header (a desynchronised stream cannot be resynchronised).
  bool recv_frame(unsigned char& type, std::string& body) {
    for (;;) {
      if (buffer_.size() >= kFrameHeaderSize) {
        const auto* b = reinterpret_cast<const unsigned char*>(buffer_.data());
        if (b[0] != kFrameMagic0 || b[1] != kFrameMagic1 ||
            b[2] != kFrameVersion)
          return false;
        const std::uint32_t length = static_cast<std::uint32_t>(b[4]) |
                                     (static_cast<std::uint32_t>(b[5]) << 8) |
                                     (static_cast<std::uint32_t>(b[6]) << 16) |
                                     (static_cast<std::uint32_t>(b[7]) << 24);
        if (buffer_.size() >= kFrameHeaderSize + length) {
          type = b[3];
          body.assign(buffer_, kFrameHeaderSize, length);
          buffer_.erase(0, kFrameHeaderSize + length);
          return true;
        }
      }
      char chunk[16384];
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace cnash::serve
