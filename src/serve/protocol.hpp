#pragma once
// serve — the newline-delimited JSON wire protocol of the Nash-serving
// gateway. One request per line, one response per line; requests carry an
// optional "id" echoed verbatim so pipelining clients can correlate
// out-of-order completions.
//
// Methods:
//   {"method":"solve","id":1,"game_text":"name: g\nM:\n...","backend":"...",
//    "runs":32,"iterations":2000,"intervals":12,"seed":51966,"scale":1.0,
//    "tile_rows":64,"tile_cols":1024,"report_best":false,"no_cache":false}
//     — `game_text` is the solve_file text format; alternatively
//       "game":{"name":"g","m":[[...]],"n":[[...]]} with row-major payoff
//       matrices. Every parameter except the game is optional.
//     → {"ok":true,"id":1,"cached":false,"report":{...}}   (report_json.hpp)
//   {"method":"status"}       → queue depths, drain flag, connection count
//   {"method":"stats"}        → cache / admission / store / served counters
//     — "cache" is the RAM tier (hits/misses/insertions/evictions/
//       oversize_rejects/entries/bytes/byte_budget), "store" the persistent
//       tier-2 disk store (enabled, hits/misses/appends/tombstones/
//       evictions/oversize_rejects/compactions, entries/segments,
//       live_raw_bytes/live_stored_bytes/dead_stored_bytes, codec split,
//       recovery counters, byte_budget, compression_ratio; all-zero with
//       "enabled":false when the gateway runs without --store-dir). A RAM
//       miss that the store answers counts as cache.misses + store.hits, so
//       tier-1 vs tier-2 hit ratios are directly observable.
//   {"method":"list-backends"}→ registered backend keys + descriptions
//   {"method":"metrics"}      → full instrument registry snapshot (counters,
//     gauges, histogram quantiles) as {"metrics":{...}}; with
//     {"format":"text"} the response instead carries the Prometheus text
//     exposition as {"metrics_text":"..."}. Safe to scrape while solves run.
//
// Errors are structured, never a closed connection:
//   {"ok":false,"id":1,"error":{"code":"bad_request","message":"..."}}
//   codes: bad_request   malformed JSON / schema / game / solve parameters
//          overloaded    admission shed; response carries "retry_after_s"
//          draining      server is shutting down; carries "retry_after_s"
//          internal      solver-side failure
//
// A second, length-prefixed binary framing carries the same JSON bodies with
// the method lifted into a one-byte frame type (see "Binary framing" below);
// a solve with "progress":true additionally streams interim progress frames
// before the final one (anytime serving).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/backend.hpp"
#include "core/service.hpp"
#include "util/json.hpp"

namespace cnash::serve {

/// Schema violation (or unsupported method) while parsing a request line.
/// Carries the request's echoed id when the enclosing JSON object parsed far
/// enough to yield one, so even error responses honour the id-echo contract.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }
  const util::Json& id() const { return id_; }
  void set_id(util::Json id) { id_ = std::move(id); }

 private:
  std::string code_;
  util::Json id_;  // null unless the request carried one
};

/// One parsed request line.
struct WireRequest {
  std::string method;
  util::Json id;  // echoed verbatim; null when absent
  bool no_cache = false;
  /// Solve only: client opted into interim best-so-far `progress` frames
  /// (wire field `"progress":true`). The final frame always follows.
  bool progress = false;
  /// Metrics only: {"format":"text"} → Prometheus text exposition instead of
  /// the JSON instrument snapshot.
  bool metrics_text = false;
  /// Present iff method == "solve".
  std::optional<core::SolveRequest> solve;
};

/// Per-connection parse/render state reused across requests (the QATzip
/// QzSession pattern): memoized backend resolution — repeat requests for the
/// connection's usual backend skip the registry lookup — plus a recycled
/// render buffer, so steady-state request handling allocates for the report,
/// not the plumbing.
struct ParseSession {
  /// Registry to resolve backend keys against; nullptr = global().
  const core::SolverRegistry* registry = nullptr;
  /// Backend memo: key and resolution of this connection's last solve.
  std::string backend_key;
  const core::SolverBackend* backend = nullptr;
  /// Scratch for the render_*_body helpers (cleared, then filled).
  std::string body;
};

/// Parse + validate one request line. Throws ProtocolError (code
/// "bad_request") on malformed JSON, schema violations, malformed games or
/// invalid solve parameters. Solve parameter defaults are sized for an
/// interactive gateway (32 runs × 2000 iterations), not the paper's batch
/// sweeps. `session` (optional) memoizes backend resolution across calls.
WireRequest parse_request(const std::string& line,
                          ParseSession* session = nullptr);

// ---- Binary framing --------------------------------------------------------
//
// 8-byte header, then the payload:
//
//   offset  0     1     2         3       4..7
//           0xCE  0x4E  version   type    payload length (u32 LE)
//
// The payload is the same compact JSON body as the JSON-lines framing minus
// the trailing newline; request frames imply the method by type, so a
// "method" field in the payload is ignored. Framing is negotiated per
// connection on the first byte received — 0xCE can never start a JSON-lines
// request, so existing clients keep working unchanged.

inline constexpr unsigned char kFrameMagic0 = 0xCE;
inline constexpr unsigned char kFrameMagic1 = 0x4E;  // 'N'
inline constexpr unsigned char kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 8;

enum FrameType : unsigned char {
  // Requests (client → server), mirroring the JSON "method" values.
  kFrameSolve = 0x01,
  kFrameStatus = 0x02,
  kFrameStats = 0x03,
  kFrameListBackends = 0x04,
  kFrameMetrics = 0x05,
  // Responses (server → client); the high bit distinguishes final / interim /
  // error without parsing the payload.
  kFrameFinal = 0x81,
  kFrameProgress = 0x82,
  kFrameError = 0x83,
};

/// A connection speaks binary iff its first byte is the frame magic.
inline bool looks_binary(unsigned char first_byte) {
  return first_byte == kFrameMagic0;
}

/// Decoded frame header.
struct FrameHeader {
  unsigned char type = 0;
  std::uint32_t length = 0;  // payload bytes following the header
};

/// Decode the frame header at the front of `buf`. Returns nullopt when fewer
/// than kFrameHeaderSize bytes are buffered; throws ProtocolError
/// ("bad_request") on bad magic, unsupported version, or a payload length
/// above `max_payload`.
std::optional<FrameHeader> peek_frame(const std::string& buf,
                                      std::size_t max_payload);

/// Append one complete frame (header + payload) to `out`.
void encode_frame(unsigned char type, std::string_view payload,
                  std::string& out);

/// JSON "method" equivalent of a request frame type; nullptr when `type` is
/// not a request frame.
const char* frame_method(unsigned char type);

/// Parse + validate one binary request frame's payload (requests only).
/// Errors as parse_request; an empty payload is an empty object (the natural
/// encoding for status/stats/list-backends).
WireRequest parse_frame_request(unsigned char type, const std::string& payload,
                                ParseSession* session = nullptr);

// ---- Response rendering ----------------------------------------------------
//
// The *_body variants render the compact JSON body with no trailing newline
// into `body` (cleared first), so a connection reuses one buffer and wraps it
// in its negotiated framing: JSON-lines appends '\n', binary wraps it in a
// frame. The string-returning forms are JSON-lines convenience wrappers.

void render_solve_ok_body(std::string& body, const util::Json& id, bool cached,
                          const core::SolveReport& report);
/// Interim anytime frame: {"ok":true,"id":...,"progress":{units_total,
/// units_completed, nash_count, valid_count, best_objective, elapsed_s}}.
/// best_objective is null until the first valid sample.
void render_progress_body(std::string& body, const util::Json& id,
                          const core::ProgressSnapshot& snapshot);
void render_error_body(std::string& body, const util::Json& id,
                       const std::string& code, const std::string& message,
                       std::optional<double> retry_after_s = std::nullopt);
void render_ok_body(std::string& body, const util::Json& id,
                    const std::string& key, util::Json payload);

std::string render_solve_ok(const util::Json& id, bool cached,
                            const core::SolveReport& report);
std::string render_progress(const util::Json& id,
                            const core::ProgressSnapshot& snapshot);
std::string render_error(const util::Json& id, const std::string& code,
                         const std::string& message,
                         std::optional<double> retry_after_s = std::nullopt);
/// Generic success envelope: {"ok":true,"id":...,<key>:<payload>}.
std::string render_ok(const util::Json& id, const std::string& key,
                      util::Json payload);

}  // namespace cnash::serve
