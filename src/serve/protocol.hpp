#pragma once
// serve — the newline-delimited JSON wire protocol of the Nash-serving
// gateway. One request per line, one response per line; requests carry an
// optional "id" echoed verbatim so pipelining clients can correlate
// out-of-order completions.
//
// Methods:
//   {"method":"solve","id":1,"game_text":"name: g\nM:\n...","backend":"...",
//    "runs":32,"iterations":2000,"intervals":12,"seed":51966,"scale":1.0,
//    "tile_rows":64,"tile_cols":1024,"report_best":false,"no_cache":false}
//     — `game_text` is the solve_file text format; alternatively
//       "game":{"name":"g","m":[[...]],"n":[[...]]} with row-major payoff
//       matrices. Every parameter except the game is optional.
//     → {"ok":true,"id":1,"cached":false,"report":{...}}   (report_json.hpp)
//   {"method":"status"}       → queue depths, drain flag, connection count
//   {"method":"stats"}        → cache / admission / served counters
//   {"method":"list-backends"}→ registered backend keys + descriptions
//
// Errors are structured, never a closed connection:
//   {"ok":false,"id":1,"error":{"code":"bad_request","message":"..."}}
//   codes: bad_request   malformed JSON / schema / game / solve parameters
//          overloaded    admission shed; response carries "retry_after_s"
//          draining      server is shutting down; carries "retry_after_s"
//          internal      solver-side failure

#include <optional>
#include <string>

#include "core/backend.hpp"
#include "util/json.hpp"

namespace cnash::serve {

/// Schema violation (or unsupported method) while parsing a request line.
/// Carries the request's echoed id when the enclosing JSON object parsed far
/// enough to yield one, so even error responses honour the id-echo contract.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }
  const util::Json& id() const { return id_; }
  void set_id(util::Json id) { id_ = std::move(id); }

 private:
  std::string code_;
  util::Json id_;  // null unless the request carried one
};

/// One parsed request line.
struct WireRequest {
  std::string method;
  util::Json id;  // echoed verbatim; null when absent
  bool no_cache = false;
  /// Present iff method == "solve".
  std::optional<core::SolveRequest> solve;
};

/// Parse + validate one request line. Throws ProtocolError (code
/// "bad_request") on malformed JSON, schema violations, malformed games or
/// invalid solve parameters. Solve parameter defaults are sized for an
/// interactive gateway (32 runs × 2000 iterations), not the paper's batch
/// sweeps.
WireRequest parse_request(const std::string& line);

// ---- Response rendering (compact single-line JSON + '\n') ------------------

std::string render_solve_ok(const util::Json& id, bool cached,
                            const core::SolveReport& report);
std::string render_error(const util::Json& id, const std::string& code,
                         const std::string& message,
                         std::optional<double> retry_after_s = std::nullopt);
/// Generic success envelope: {"ok":true,"id":...,<key>:<payload>}.
std::string render_ok(const util::Json& id, const std::string& key,
                      util::Json payload);

}  // namespace cnash::serve
