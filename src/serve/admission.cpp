#include "serve/admission.hpp"

namespace cnash::serve {

AdmissionController::Verdict AdmissionController::admit(
    std::size_t global_in_flight, std::size_t connection_in_flight) {
  if (connection_in_flight >= options_.per_connection_inflight) {
    stats_.shed_connection_cap++;
    return Verdict::kShedConnectionCap;
  }
  if (global_in_flight >= options_.max_queue_depth) {
    stats_.shed_queue_full++;
    return Verdict::kShedQueueFull;
  }
  stats_.admitted++;
  return Verdict::kAdmit;
}

double AdmissionController::retry_after_s(std::size_t global_in_flight) const {
  const double base = options_.retry_after_s;
  if (options_.max_queue_depth == 0) return base;
  // base at an empty queue, 2×base at the watermark (the deepest backlog the
  // controller ever admits), growing linearly in between — a fleet of shed
  // clients backs off harder the fuller the queue they were shed from.
  const double backlog = static_cast<double>(global_in_flight) /
                         static_cast<double>(options_.max_queue_depth);
  return base * (1.0 + backlog);
}

}  // namespace cnash::serve
