#include "serve/protocol.hpp"

#include <cmath>
#include <utility>

#include "core/report_json.hpp"
#include "game/parse.hpp"

namespace cnash::serve {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw ProtocolError("bad_request", message);
}

double number_field(const util::Json& obj, const char* key, double fallback) {
  const util::Json* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_number()) bad(std::string("\"") + key + "\" must be a number");
  return v->as_number();
}

std::size_t size_field(const util::Json& obj, const char* key,
                       std::size_t fallback) {
  // 2^53: the largest range in which every integer has an exact double
  // representation — the documented wire limit for seeds and counts.
  constexpr double kMaxExactInteger = 9007199254740992.0;
  const double v = number_field(obj, key, static_cast<double>(fallback));
  if (v < 0.0 || v != std::floor(v) || v > kMaxExactInteger)
    bad(std::string("\"") + key + "\" must be a non-negative integer <= 2^53");
  return static_cast<std::size_t>(v);
}

bool bool_field(const util::Json& obj, const char* key, bool fallback) {
  const util::Json* v = obj.find(key);
  if (!v) return fallback;
  if (!v->is_bool()) bad(std::string("\"") + key + "\" must be a boolean");
  return v->as_bool();
}

la::Matrix matrix_field(const util::Json& game, const char* key) {
  const util::Json* rows = game.find(key);
  if (!rows || !rows->is_array() || rows->size() == 0)
    bad(std::string("game.") + key + " must be a non-empty array of rows");
  const std::size_t n = rows->size();
  const util::Json& first = rows->at(std::size_t{0});
  if (!first.is_array() || first.size() == 0)
    bad(std::string("game.") + key + " rows must be non-empty number arrays");
  const std::size_t m = first.size();
  la::Matrix out(n, m);
  for (std::size_t r = 0; r < n; ++r) {
    const util::Json& row = rows->at(r);
    if (!row.is_array() || row.size() != m)
      bad(std::string("game.") + key + " rows must all have the same length");
    for (std::size_t c = 0; c < m; ++c) {
      const util::Json& cell = row.at(c);
      if (!cell.is_number())
        bad(std::string("game.") + key + " entries must be numbers");
      out(r, c) = cell.as_number();
    }
  }
  return out;
}

game::BimatrixGame game_from_request(const util::Json& root) {
  const util::Json* text = root.find("game_text");
  const util::Json* obj = root.find("game");
  if (text && obj) bad("pass either \"game_text\" or \"game\", not both");
  try {
    if (text) {
      if (!text->is_string()) bad("\"game_text\" must be a string");
      return game::parse_game_text(text->as_string());
    }
    if (obj) {
      if (!obj->is_object()) bad("\"game\" must be an object");
      std::string name;
      if (const util::Json* n = obj->find("name")) name = n->as_string();
      return game::BimatrixGame(matrix_field(*obj, "m"),
                                matrix_field(*obj, "n"), name);
    }
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    bad(std::string("invalid game: ") + e.what());
  }
  bad("solve needs a game: \"game_text\" (solve_file text format) or "
      "\"game\" {name, m, n}");
}

core::SolveRequest solve_from_request(const util::Json& root,
                                      ParseSession* session) {
  core::SolveRequest req(game_from_request(root));
  if (const util::Json* b = root.find("backend")) {
    if (!b->is_string()) bad("\"backend\" must be a string");
    req.backend = b->as_string();
  }
  req.runs = size_field(root, "runs", 32);
  req.sa.iterations = size_field(root, "iterations", 2000);
  const std::size_t intervals = size_field(root, "intervals", 12);
  if (intervals == 0 || intervals > 4096) bad("\"intervals\" must be in [1, 4096]");
  req.intervals = static_cast<std::uint32_t>(intervals);
  // Seeds are full uint64 in core; JSON numbers are doubles, so the wire
  // loses precision beyond 2^53 — fine for a backoff/cache key as long as
  // clients are told (README). Negative seeds are rejected.
  req.seed = static_cast<std::uint64_t>(
      size_field(root, "seed", static_cast<std::size_t>(0xC0FFEE)));
  const double scale = number_field(root, "scale", 1.0);
  if (!(scale > 0.0) || !std::isfinite(scale))
    bad("\"scale\" must be a positive number");
  req.hardware.value_scale = scale;
  req.chip.tile_rows = size_field(root, "tile_rows", req.chip.tile_rows);
  req.chip.tile_cols = size_field(root, "tile_cols", req.chip.tile_cols);
  req.report_best = bool_field(root, "report_best", false);
  // SA mode knobs (SA backends only; others ignore them, like `iterations`).
  if (const util::Json* m = root.find("sa_mode")) {
    if (!m->is_string()) bad("\"sa_mode\" must be a string");
    const std::string mode = m->as_string();
    if (mode == "independent") {
      req.sa.mode = core::SaMode::kIndependent;
    } else if (mode == "replica-exchange") {
      req.sa.mode = core::SaMode::kReplicaExchange;
    } else {
      bad("\"sa_mode\" must be \"independent\" or \"replica-exchange\"");
    }
  }
  req.sa.batch_lanes = size_field(root, "batch_lanes", req.sa.batch_lanes);
  req.sa.replicas = size_field(root, "replicas", req.sa.replicas);
  req.sa.exchange_interval =
      size_field(root, "exchange_interval", req.sa.exchange_interval);
  const double ladder =
      number_field(root, "ladder_ratio", req.sa.ladder_ratio);
  if (!std::isfinite(ladder) || !(ladder > 0.0))
    bad("\"ladder_ratio\" must be a positive number");
  req.sa.ladder_ratio = ladder;
  // Robustness knobs (PR 7): anytime deadline, resilient-primary selection
  // and the deterministic fault plan. Absent fields leave the defaults (no
  // deadline, no faults); range/backend compatibility checks live in
  // validate_request below, which this parser maps to bad_request.
  if (const util::Json* d = root.find("deadline_s")) {
    if (!d->is_number()) bad("\"deadline_s\" must be a number");
    const double deadline = d->as_number();
    if (!std::isfinite(deadline) || !(deadline > 0.0))
      bad("\"deadline_s\" must be a positive number");
    req.deadline_s = deadline;
  }
  if (const util::Json* p = root.find("primary")) {
    if (!p->is_string()) bad("\"primary\" must be a string");
    req.resilient_primary = p->as_string();
  }
  if (const util::Json* f = root.find("fault")) {
    if (!f->is_object()) bad("\"fault\" must be an object");
    req.fault.seed = static_cast<std::uint64_t>(size_field(*f, "seed", 0));
    req.fault.unit_failure_rate = number_field(*f, "unit_rate", 0.0);
    req.fault.tile_failure_rate = number_field(*f, "tile_rate", 0.0);
    req.fault.unit_delay_rate = number_field(*f, "delay_rate", 0.0);
    req.fault.unit_delay_s = number_field(*f, "delay_s", 0.0);
  }
  try {
    // Resolve the backend key up front (at() throws naming the registered
    // keys) so an unknown backend is a bad_request here, not an "internal"
    // failure after it consumed an admission slot and a solver job. A
    // session memoizes the resolution: a connection's usual backend skips
    // the registry map on every request after the first.
    if (!session || !session->backend || session->backend_key != req.backend) {
      const core::SolverRegistry& registry =
          (session && session->registry) ? *session->registry
                                         : core::SolverRegistry::global();
      const core::SolverBackend* resolved = &registry.at(req.backend);
      if (session) {
        session->backend_key = req.backend;
        session->backend = resolved;
      }
    }
    core::validate_request(req);
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    bad(e.what());
  }
  return req;
}

/// Shared tail of both framings: `root` is the parsed request object,
/// `forced_method` non-null when the method came from a frame type.
WireRequest request_from_json(const util::Json& root,
                              const char* forced_method,
                              ParseSession* session) {
  WireRequest req;
  if (const util::Json* id = root.find("id")) req.id = *id;
  try {
    if (forced_method) {
      req.method = forced_method;
    } else {
      const util::Json* method = root.find("method");
      if (!method || !method->is_string())
        bad("request needs a string \"method\"");
      req.method = method->as_string();
    }

    if (req.method == "solve") {
      req.no_cache = bool_field(root, "no_cache", false);
      req.progress = bool_field(root, "progress", false);
      req.solve = solve_from_request(root, session);
    } else if (req.method == "metrics") {
      if (const util::Json* fmt = root.find("format")) {
        if (!fmt->is_string() ||
            (fmt->as_string() != "json" && fmt->as_string() != "text"))
          bad("metrics \"format\" must be \"json\" or \"text\"");
        req.metrics_text = fmt->as_string() == "text";
      }
    } else if (req.method != "status" && req.method != "stats" &&
               req.method != "list-backends") {
      bad("unknown method \"" + req.method +
          "\" (expected solve, status, stats, list-backends or metrics)");
    }
  } catch (ProtocolError& e) {
    e.set_id(req.id);  // the id parsed fine; echo it on the error
    throw;
  }
  return req;
}

}  // namespace

WireRequest parse_request(const std::string& line, ParseSession* session) {
  util::Json root;
  try {
    root = util::Json::parse(line);
  } catch (const util::JsonError& e) {
    bad(e.what());
  }
  if (!root.is_object()) bad("request must be a JSON object");
  return request_from_json(root, nullptr, session);
}

// ---- Binary framing --------------------------------------------------------

std::optional<FrameHeader> peek_frame(const std::string& buf,
                                      std::size_t max_payload) {
  if (buf.size() < kFrameHeaderSize) return std::nullopt;
  const auto* b = reinterpret_cast<const unsigned char*>(buf.data());
  if (b[0] != kFrameMagic0 || b[1] != kFrameMagic1) bad("bad frame magic");
  if (b[2] != kFrameVersion)
    bad("unsupported frame version " + std::to_string(b[2]) + " (expected " +
        std::to_string(kFrameVersion) + ")");
  FrameHeader header;
  header.type = b[3];
  header.length = static_cast<std::uint32_t>(b[4]) |
                  (static_cast<std::uint32_t>(b[5]) << 8) |
                  (static_cast<std::uint32_t>(b[6]) << 16) |
                  (static_cast<std::uint32_t>(b[7]) << 24);
  if (header.length > max_payload)
    bad("frame payload of " + std::to_string(header.length) +
        " bytes exceeds the " + std::to_string(max_payload) + "-byte limit");
  return header;
}

void encode_frame(unsigned char type, std::string_view payload,
                  std::string& out) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  const char header[kFrameHeaderSize] = {
      static_cast<char>(kFrameMagic0),
      static_cast<char>(kFrameMagic1),
      static_cast<char>(kFrameVersion),
      static_cast<char>(type),
      static_cast<char>(n & 0xFF),
      static_cast<char>((n >> 8) & 0xFF),
      static_cast<char>((n >> 16) & 0xFF),
      static_cast<char>((n >> 24) & 0xFF),
  };
  out.append(header, kFrameHeaderSize);
  out.append(payload.data(), payload.size());
}

const char* frame_method(unsigned char type) {
  switch (type) {
    case kFrameSolve: return "solve";
    case kFrameStatus: return "status";
    case kFrameStats: return "stats";
    case kFrameListBackends: return "list-backends";
    case kFrameMetrics: return "metrics";
    default: return nullptr;
  }
}

WireRequest parse_frame_request(unsigned char type, const std::string& payload,
                                ParseSession* session) {
  const char* method = frame_method(type);
  if (!method)
    bad("unknown request frame type " + std::to_string(type) +
        " (expected 0x01 solve, 0x02 status, 0x03 stats, 0x04 list-backends, "
        "0x05 metrics)");
  util::Json root = util::Json::object();
  if (!payload.empty()) {
    try {
      root = util::Json::parse(payload);
    } catch (const util::JsonError& e) {
      bad(e.what());
    }
    if (!root.is_object()) bad("frame payload must be a JSON object");
  }
  return request_from_json(root, method, session);
}

void render_solve_ok_body(std::string& body, const util::Json& id, bool cached,
                          const core::SolveReport& report) {
  util::Json out = util::Json::object();
  out.set("ok", true);
  out.set("id", id);
  out.set("cached", cached);
  out.set("report", core::report_to_json(report));
  body.clear();
  body += out.dump();
}

void render_progress_body(std::string& body, const util::Json& id,
                          const core::ProgressSnapshot& snapshot) {
  util::Json out = util::Json::object();
  out.set("ok", true);
  out.set("id", id);
  util::Json p = util::Json::object();
  p.set("units_total", static_cast<double>(snapshot.units_total));
  p.set("units_completed", static_cast<double>(snapshot.units_completed));
  p.set("nash_count", static_cast<double>(snapshot.nash_count));
  p.set("valid_count", static_cast<double>(snapshot.valid_count));
  p.set("best_objective", snapshot.best_objective);  // NaN dumps as null
  p.set("elapsed_s", snapshot.elapsed_s);
  out.set("progress", std::move(p));
  body.clear();
  body += out.dump();
}

void render_error_body(std::string& body, const util::Json& id,
                       const std::string& code, const std::string& message,
                       std::optional<double> retry_after_s) {
  util::Json out = util::Json::object();
  out.set("ok", false);
  out.set("id", id);
  util::Json err = util::Json::object();
  err.set("code", code);
  err.set("message", message);
  out.set("error", std::move(err));
  if (retry_after_s) out.set("retry_after_s", *retry_after_s);
  body.clear();
  body += out.dump();
}

void render_ok_body(std::string& body, const util::Json& id,
                    const std::string& key, util::Json payload) {
  util::Json out = util::Json::object();
  out.set("ok", true);
  out.set("id", id);
  out.set(key, std::move(payload));
  body.clear();
  body += out.dump();
}

std::string render_solve_ok(const util::Json& id, bool cached,
                            const core::SolveReport& report) {
  std::string body;
  render_solve_ok_body(body, id, cached, report);
  return body + "\n";
}

std::string render_progress(const util::Json& id,
                            const core::ProgressSnapshot& snapshot) {
  std::string body;
  render_progress_body(body, id, snapshot);
  return body + "\n";
}

std::string render_error(const util::Json& id, const std::string& code,
                         const std::string& message,
                         std::optional<double> retry_after_s) {
  std::string body;
  render_error_body(body, id, code, message, retry_after_s);
  return body + "\n";
}

std::string render_ok(const util::Json& id, const std::string& key,
                      util::Json payload) {
  std::string body;
  render_ok_body(body, id, key, std::move(payload));
  return body + "\n";
}

}  // namespace cnash::serve
