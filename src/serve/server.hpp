#pragma once
// serve::NashServer — the Nash-serving gateway: a single-threaded, poll-based
// TCP front end (newline-delimited JSON, see protocol.hpp) multiplexing many
// client connections onto one SolverService worker pool. Three layers:
//
//   canonicalize → cache → admit → solve
//
//   * Requests are canonicalized (serve/canonical.hpp) and looked up in the
//     content-addressed SolutionCache — a repeated solve is answered from the
//     cache with a byte-identical response and never reaches the solver.
//   * Identical solves already in flight are coalesced: the duplicate waits
//     on the running job instead of submitting a second one.
//   * The AdmissionController bounds queued work (global watermark +
//     per-connection in-flight cap) and sheds the rest with a structured
//     "overloaded" response carrying a retry_after_s hint.
//
// The poll loop owns every data structure — no locks; concurrency lives in
// the SolverService pool behind std::future. request_stop() (async-signal-
// safe; the nash_serve binary calls it from its SIGTERM/SIGINT handler)
// triggers a graceful drain: stop accepting connections, answer new solves
// with "draining", finish every in-flight job, flush, then drain the solver
// pool and return from run().

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/service.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "util/fault.hpp"

namespace cnash::serve {

struct ServeOptions {
  /// Loopback by default; the gateway speaks a trusting plain-text protocol.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  std::uint16_t port = 0;
  /// SolverService pool size (0 = one worker per hardware thread).
  std::size_t service_threads = 0;
  AdmissionOptions admission;
  std::size_t cache_bytes = 64u << 20;
  /// A connection whose buffered request line exceeds this is answered with
  /// an error and closed (protocol-abuse guard).
  std::size_t max_line_bytes = 8u << 20;
  /// A connection whose buffered (unflushed) output exceeds this is aborted —
  /// the slow-reader guard: a peer that never drains its responses cannot
  /// grow the server's memory without bound.
  std::size_t max_output_bytes = 16u << 20;
  /// Server-side fault injection (write_stall_rate / disconnect_rate / seed;
  /// nash_serve populates it from CNASH_FAULT_* env vars). Disabled by
  /// default; solver-side fields are ignored here — they ride in on
  /// SolveRequests instead.
  util::FaultPlan fault;
  /// Print "LISTENING <port>" on stdout once bound (smoke scripts wait for
  /// this line to learn an ephemeral port).
  bool announce = false;
};

/// Counters for the `stats` wire method.
struct ServedStats {
  std::size_t lines = 0;          // request lines parsed (incl. malformed)
  std::size_t solves_ok = 0;      // successful solve responses (all paths)
  std::size_t cache_hits = 0;     // ... of which answered from the cache
  std::size_t coalesced = 0;      // ... of which attached to an in-flight job
  std::size_t errors = 0;         // error responses of any code
  std::size_t jobs_submitted = 0; // jobs actually handed to the SolverService
  std::size_t write_stalls = 0;   // injected short writes (fault plan)
  std::size_t injected_disconnects = 0;  // injected mid-response aborts
  std::size_t overflow_closed = 0;  // connections aborted at max_output_bytes
  std::size_t uncached_reports = 0;  // degraded/fallback reports not cached
};

class NashServer {
 public:
  explicit NashServer(ServeOptions options = {});
  ~NashServer();
  NashServer(const NashServer&) = delete;
  NashServer& operator=(const NashServer&) = delete;

  /// Bind + listen. Throws std::runtime_error (with errno text) on failure.
  void start();
  /// Bound port; valid after start().
  std::uint16_t port() const { return port_; }

  /// Blocking poll loop; returns once a requested stop has fully drained.
  /// Call start() first.
  void run();

  /// Async-signal-safe drain trigger (callable from a signal handler or
  /// another thread).
  void request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  // Post-run introspection for tests and benches. NOT synchronised with a
  // concurrently running poll loop — read these only before run() starts or
  // after it returns (while running, use the `stats` wire method).
  const CacheStats& cache_stats() const { return cache_.stats(); }
  const AdmissionStats& admission_stats() const { return admission_.stats(); }
  const ServedStats& served_stats() const { return served_; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;  // the conns_ key (fault-roll index base)
    std::string in;   // unparsed request bytes
    std::string out;  // unflushed response bytes
    std::size_t inflight = 0;  // solve responses owed (queued + coalesced)
    std::uint64_t write_seq = 0;  // flush attempts (fault-roll index)
    bool close_after_flush = false;
    /// Hard-dead (injected disconnect or output overflow): buffered I/O is
    /// dropped and the poll loop reaps the fd without waiting on inflight.
    bool aborted = false;
  };

  /// One job on the solver pool plus every response waiting on it.
  struct PendingSolve {
    std::future<core::SolveReport> future;
    GameKey key;
    bool store_in_cache = true;
    struct Waiter {
      std::uint64_t conn_id;
      util::Json id;
      ReportMapping mapping;  // slim: perms + name, not the payoff matrices
    };
    std::vector<Waiter> waiters;
  };

  void accept_ready();
  void read_ready(std::uint64_t conn_id);
  void handle_line(std::uint64_t conn_id, const std::string& line);
  void dispatch(std::uint64_t conn_id, WireRequest request);
  void handle_solve(std::uint64_t conn_id, WireRequest request);
  void poll_pending();
  util::Json status_payload() const;
  util::Json stats_payload() const;
  void respond(std::uint64_t conn_id, std::string text, bool is_error);
  void flush(Connection& conn);
  void close_connection(std::uint64_t conn_id);
  void begin_drain();

  ServeOptions options_;
  core::SolverService service_;
  SolutionCache cache_;
  AdmissionController admission_;
  ServedStats served_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, Connection> conns_;
  std::vector<PendingSolve> pending_;

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
};

}  // namespace cnash::serve
