#pragma once
// serve::NashServer — the Nash-serving gateway: an epoll-based, multi-threaded
// TCP front end (JSON-lines or length-prefixed binary framing, negotiated per
// connection — see protocol.hpp) multiplexing many client connections onto
// one SolverService worker pool. Three layers per solve:
//
//   canonicalize → cache → admit → solve
//
//   * Requests are canonicalized (serve/canonical.hpp) and looked up in the
//     content-addressed SolutionCache — a repeated solve is answered from the
//     cache with a byte-identical response and never reaches the solver.
//   * Identical solves already in flight are coalesced: the duplicate waits
//     on the running job instead of submitting a second one.
//   * The AdmissionController bounds queued work (global watermark +
//     per-connection in-flight cap) and sheds the rest with a structured
//     "overloaded" response carrying a retry_after_s hint.
//
// Threading model: the run() thread accepts and shards connections
// round-robin across `serve_threads` event loops. Each loop owns an epoll
// instance, an eventfd, and its connections' buffers and parse sessions —
// connection state is touched only by its owning loop thread. The loops share
// exactly one mutex (the "gate") guarding the cache, the admission controller
// and the in-flight solve registry; solves run on the SolverService pool and
// complete through callbacks that post a delivery to the owning loop's inbox
// and wake its eventfd — no blocking futures, no polling.
//
// Anytime serving: a solve with "progress":true streams interim best-so-far
// progress frames (one per completed work unit) before its final frame; with
// deadline_s set the final frame arrives within the deadline plus one unit
// (the service stops scheduling units at the deadline and reports degraded).
//
// request_stop() (async-signal-safe; the nash_serve binary calls it from its
// SIGTERM/SIGINT handler) triggers a graceful drain: stop accepting
// connections, answer new solves with "draining", finish every in-flight job
// across all loops, flush, then drain the solver pool and return from run().

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "store/store.hpp"
#include "util/fault.hpp"

namespace cnash::serve {

struct ServeOptions {
  /// Loopback by default; the gateway speaks a trusting plain-text protocol.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  std::uint16_t port = 0;
  /// Event-loop (gateway) threads; connections are sharded across them.
  /// 0 is treated as 1.
  std::size_t serve_threads = 1;
  /// SolverService pool size (0 = one worker per hardware thread).
  std::size_t service_threads = 0;
  AdmissionOptions admission;
  std::size_t cache_bytes = 64u << 20;
  /// Tier-2 persistent solution store directory (created on demand). Empty =
  /// RAM cache only. Solved reports are written through to disk and survive
  /// restarts: a warm hit after a restart replays byte-identically with zero
  /// solver jobs. Degraded/fallback reports are never persisted (they are
  /// never cache-inserted in the first place).
  std::string store_dir;
  /// Byte budget of the live records in the tier-2 store.
  std::size_t store_budget_bytes = 256u << 20;
  /// A connection whose buffered request (line or frame payload) exceeds this
  /// is answered with an error and closed (protocol-abuse guard).
  std::size_t max_line_bytes = 8u << 20;
  /// A connection whose buffered (unflushed) output exceeds this is aborted —
  /// the slow-reader guard: a peer that never drains its responses cannot
  /// grow the server's memory without bound.
  std::size_t max_output_bytes = 16u << 20;
  /// Fairness bound: requests one connection may dequeue per readiness
  /// wakeup. A pipelined batch beyond this is deferred to the loop's backlog
  /// (counted in ServedStats::fair_deferrals), so one connection cannot
  /// starve its loop's other connections.
  std::size_t max_requests_per_wakeup = 16;
  /// Server-side fault injection (write_stall_rate / disconnect_rate / seed;
  /// nash_serve populates it from CNASH_FAULT_* env vars). Disabled by
  /// default; solver-side fields are ignored here — they ride in on
  /// SolveRequests instead.
  util::FaultPlan fault;
  /// Print "LISTENING <port>" on stdout once bound (smoke scripts wait for
  /// this line to learn an ephemeral port).
  bool announce = false;
  /// Non-empty: enable per-request pipeline tracing and write the run's
  /// Chrome trace-event JSON (Perfetto-loadable) to this path when run()
  /// returns. Empty (default): tracing is disabled and its call sites cost
  /// one relaxed atomic load each.
  std::string trace_out;
};

/// Counters for the `stats` wire method.
struct ServedStats {
  std::size_t lines = 0;          // requests parsed, both framings (incl. malformed)
  std::size_t solves_ok = 0;      // successful solve responses (all paths)
  std::size_t cache_hits = 0;     // ... of which answered from the cache
  std::size_t coalesced = 0;      // ... of which attached to an in-flight job
  std::size_t errors = 0;         // error responses of any code
  std::size_t jobs_submitted = 0; // jobs actually handed to the SolverService
  std::size_t progress_frames = 0;  // interim anytime frames written
  std::size_t fair_deferrals = 0;   // pipelined batches cut off at the fairness bound
  std::size_t write_stalls = 0;   // injected short writes (fault plan)
  std::size_t injected_disconnects = 0;  // injected mid-response aborts
  std::size_t overflow_closed = 0;  // connections aborted at max_output_bytes
  std::size_t uncached_reports = 0;  // degraded/fallback reports not cached
};

class NashServer {
 public:
  explicit NashServer(ServeOptions options = {});
  ~NashServer();
  NashServer(const NashServer&) = delete;
  NashServer& operator=(const NashServer&) = delete;

  /// Bind + listen. Throws std::runtime_error (with errno text) on failure.
  void start();
  /// Bound port; valid after start().
  std::uint16_t port() const { return port_; }

  /// Blocking accept loop; spawns the event loops and returns once a
  /// requested stop has fully drained. Call start() first.
  void run();

  /// Async-signal-safe drain trigger (callable from a signal handler or
  /// another thread).
  void request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  // Introspection for tests, benches and the `metrics` wire method — all
  // safe while loops are running: cache_stats() / admission_stats() snapshot
  // by value under the gate, served_stats() is an atomic-counter snapshot.
  CacheStats cache_stats() const {
    std::lock_guard<std::mutex> lock(gate_);
    return cache_.stats();
  }
  AdmissionStats admission_stats() const {
    std::lock_guard<std::mutex> lock(gate_);
    return admission_.stats();
  }
  ServedStats served_stats() const;
  /// The server's instrument registry (the `metrics` wire method renders
  /// it). Scrapes are safe at any time; collect callbacks take the gate.
  obs::Registry& metrics_registry() { return registry_; }
  /// The trace recorder (enabled iff options.trace_out was set).
  obs::TraceRecorder& trace_recorder() { return trace_; }
  /// Tier-2 store (nullptr when store_dir was empty). The store is
  /// internally synchronised — its stats() are safe at any time.
  const store::SolutionStore* store() const { return store_.get(); }

 private:
  struct Loop;
  struct Connection;
  struct Delivery;

  /// One job on the solver pool plus every response waiting on it. Guarded by
  /// gate_; the raw pointer is captured by the job's service callbacks (its
  /// address is stable and outlives the job: the entry is only freed by
  /// complete_solve, which runs exactly once).
  struct InFlight {
    GameKey key;
    bool store_in_cache = true;
    struct Waiter {
      Loop* loop;
      std::uint64_t conn_id;
      util::Json id;
      ReportMapping mapping;  // slim: perms + name, not the payoff matrices
      bool progress = false;  // wants interim frames
      std::uint64_t trace_id = 0;  // span correlation of the waiter's request
    };
    std::vector<Waiter> waiters;
  };

  /// All ServedStats counters as relaxed atomics — bumped from loop threads
  /// and service callbacks alike; served_stats() snapshots them.
  struct Counters {
    std::atomic<std::size_t> lines{0}, solves_ok{0}, cache_hits{0},
        coalesced{0}, errors{0}, jobs_submitted{0}, progress_frames{0},
        fair_deferrals{0}, write_stalls{0}, injected_disconnects{0},
        overflow_closed{0}, uncached_reports{0};
  };

  void accept_ready(std::size_t& next_loop);
  void begin_drain();
  bool pending_empty();
  void shutdown_loops();
  util::Json status_payload();
  util::Json stats_payload();
  /// Register the stage instruments and the scrape-time mirror collector.
  void init_telemetry();
  /// Collect callback: mirror the lock-guarded aggregate stats (cache,
  /// admission, store, served, service depth) into registry instruments.
  void collect_mirrors();
  core::ServiceOptions service_options();

  // Request handling (called on a loop thread, for that loop's connection).
  void handle_request(Loop& loop, Connection& conn, WireRequest request,
                      std::uint64_t trace_id);
  void handle_solve(Loop& loop, Connection& conn, WireRequest request,
                    std::uint64_t trace_id);
  // Solve callbacks (called on a service worker thread — or inline on a loop
  // thread for a submission that resolves immediately).
  void complete_solve(InFlight* entry, core::SolveReport&& report,
                      std::exception_ptr error);
  void deliver_progress(InFlight* entry,
                        const core::ProgressSnapshot& snapshot);
  /// Push a delivery onto `loop`'s inbox and wake its eventfd. Lock order:
  /// gate_ (optional, caller's) → inbox mutex.
  static void post(Loop& loop, Delivery delivery);

  ServeOptions options_;
  /// Tier-2 persistent store; declared before cache_ (which holds a raw
  /// pointer into it) so it is destroyed after.
  std::unique_ptr<store::SolutionStore> store_;
  mutable SolutionCache cache_;        // guarded by gate_
  mutable AdmissionController admission_;  // guarded by gate_
  std::vector<std::unique_ptr<InFlight>> pending_;  // guarded by gate_
  /// The one cross-loop mutex: cache + admission + in-flight registry.
  /// mutable: the by-value stats snapshots are const reads.
  mutable std::mutex gate_;
  Counters counters_;

  /// Telemetry. Declared before service_ (which holds pointers into both) so
  /// they outlive the worker pool. Stage histogram/counter pointers are
  /// cached here so the per-request path never takes the registry mutex.
  obs::Registry registry_;
  obs::TraceRecorder trace_;
  std::chrono::steady_clock::time_point started_;
  obs::Histogram* stage_parse_ = nullptr;
  obs::Histogram* stage_canonicalize_ = nullptr;
  obs::Histogram* stage_cache_lookup_ = nullptr;
  obs::Histogram* stage_admit_ = nullptr;
  obs::Histogram* stage_render_ = nullptr;
  obs::Histogram* stage_flush_ = nullptr;
  obs::Histogram* stage_request_ = nullptr;
  obs::Histogram* solve_wall_ = nullptr;
  obs::Counter* re_swap_proposals_ = nullptr;
  obs::Counter* re_swap_accepts_ = nullptr;
  obs::Counter* fallback_samples_ = nullptr;
  obs::Counter* degraded_reports_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t next_conn_id_ = 1;  // accept thread only
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> connections_{0};

  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> draining_{false};
  /// Tells the event loops to finish up (drain inbox, flush, close, exit);
  /// set only after the in-flight registry is empty.
  std::atomic<bool> loops_stop_{false};

  /// Declared last: destroyed (and therefore drained) first, so no service
  /// callback can touch the gate, cache or loops during teardown.
  core::SolverService service_;
};

}  // namespace cnash::serve
