#pragma once
// serve — request canonicalization + content addressing for the solution
// cache. Two requests that describe the same solve (same payoffs up to action
// relabeling, same backend, same solve parameters) should land on the same
// cache entry, so the gateway never re-solves work it has already done:
//
//   1. The game is brought to a *canonical action order* (canonicalize):
//      rows are first ranked by a column-order-invariant signature (the
//      sorted multiset of their (M, N) entries), columns are then sorted
//      lexicographically under that row order, and rows are finally re-sorted
//      lexicographically under the fixed column order. Any row/column
//      relabeling of a game maps to the same canonical form whenever the
//      row signatures are distinct (generic games); ties only reduce the hit
//      rate, never correctness, because lookups compare the full canonical
//      payoff bytes, not just the digest.
//   2. The canonical payoff bytes plus every result-affecting solve parameter
//      (backend key, runs, seed, intervals, SA schedule, hardware and chip
//      knobs — but NOT max_parallelism, which is guaranteed not to change
//      results) are serialised into a binary blob and digested with FNV-1a 64
//      (GameKey). The blob is kept alongside the digest so a digest collision
//      can never serve a wrong report.
//
// The gateway solves the *canonical* request and caches the canonical report;
// map_to_original() permutes a report's strategy vectors (and quantized
// profiles) back into the caller's action order. For an already-canonical
// request the mapping is the identity, so a cached replay is byte-identical
// to the first response.

#include <cstdint>
#include <string>
#include <vector>

#include "core/backend.hpp"

namespace cnash::serve {

/// FNV-1a 64-bit accumulator over a parallel byte blob. The blob is the
/// authoritative key; the digest is its hash-map address.
class KeyBuilder {
 public:
  void bytes(const void* data, std::size_t size);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Bit pattern of the double (distinguishes -0.0 from 0.0 and every NaN
  /// payload — near-identical games must hash differently).
  void f64(double v);
  void str(const std::string& s);  // length-prefixed

  std::uint64_t digest() const { return digest_; }
  std::string take_blob() { return std::move(blob_); }

 private:
  std::uint64_t digest_ = 1469598103934665603ULL;  // FNV offset basis
  std::string blob_;
};

/// Content address of one canonical solve: 64-bit digest + the exact key
/// bytes it was computed from.
struct GameKey {
  std::uint64_t digest = 0;
  std::string blob;

  bool operator==(const GameKey& rhs) const {
    return digest == rhs.digest && blob == rhs.blob;
  }
};

/// Everything needed to rebase a canonical-order report onto the caller's
/// action order — deliberately slim (two permutation vectors + the name), so
/// a waiter on an in-flight solve does not retain the payoff matrices.
struct ReportMapping {
  /// Canonical row i is original row row_perm[i]; likewise for columns.
  std::vector<std::uint32_t> row_perm;
  std::vector<std::uint32_t> col_perm;
  /// The caller's game name, restored on mapped-back reports.
  std::string original_name;
};

/// A solve request rebased onto the canonical action order of its game.
struct CanonicalRequest {
  /// The request to actually solve: canonical game, name cleared (names do
  /// not affect results and must not split cache entries).
  core::SolveRequest request;
  ReportMapping mapping;
  GameKey key;
};

/// Canonicalize a request and compute its content address. Takes the request
/// by value: move it in to avoid a payoff-matrix copy (the canonical game
/// replaces the original in place).
CanonicalRequest canonicalize(core::SolveRequest request);

/// Rebase a canonical-order report onto the original action order: permutes
/// every sample's p/q (and quantized profile) and restores the game name.
/// Objectives, validity, ε-Nash verdicts, regrets and timing are invariant
/// under action relabeling and are carried through unchanged.
core::SolveReport map_to_original(const ReportMapping& mapping,
                                  core::SolveReport report);

}  // namespace cnash::serve
