#pragma once
// serve — admission control. The gateway sits between an unbounded number of
// clients and a fixed solver pool, so it must bound the work it is willing to
// queue and tell shed clients when to come back instead of letting the queue
// (and every client's latency) grow without limit. Two limits apply to each
// `solve`:
//
//   * a global watermark on solve jobs queued + in flight on the service
//     (`max_queue_depth`) — overload protection for the whole process;
//   * a per-connection in-flight cap (`per_connection_inflight`) — one
//     pipelining client cannot monopolise the queue.
//
// A shed request is answered immediately with `"code": "overloaded"` and a
// `retry_after_s` hint that grows linearly with the backlog, so a fleet of
// retrying clients naturally spreads out instead of thundering back at once.
//
// Not thread-safe: driven from the gateway's single poll-loop thread.

#include <cstddef>

namespace cnash::serve {

struct AdmissionOptions {
  /// Global watermark: solve jobs queued or in flight before shedding.
  std::size_t max_queue_depth = 64;
  /// Per-connection in-flight solve cap.
  std::size_t per_connection_inflight = 8;
  /// Base retry hint; scaled by backlog at shed time.
  double retry_after_s = 0.25;
};

struct AdmissionStats {
  /// Requests admitted past admission control — new jobs and coalesced
  /// attachments alike (the latter are also counted in `coalesced`).
  std::size_t admitted = 0;
  std::size_t shed_queue_full = 0;
  std::size_t shed_connection_cap = 0;
  /// Admissions answered by an already in-flight identical solve (coalesced
  /// onto the running job instead of submitting a duplicate).
  std::size_t coalesced = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  enum class Verdict { kAdmit, kShedQueueFull, kShedConnectionCap };

  /// Decide on one solve given the current global backlog and the posting
  /// connection's in-flight count. Counts the verdict.
  Verdict admit(std::size_t global_in_flight, std::size_t connection_in_flight);

  /// A duplicate request was attached to an in-flight job (no new work).
  void note_coalesced() { stats_.coalesced++; }

  /// Backoff hint for a shed response: base × (1 + backlog/watermark) — the
  /// base hint at an empty queue, twice that at the watermark.
  double retry_after_s(std::size_t global_in_flight) const;

  const AdmissionOptions& options() const { return options_; }
  const AdmissionStats& stats() const { return stats_; }

 private:
  AdmissionOptions options_;
  AdmissionStats stats_;
};

}  // namespace cnash::serve
