#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace cnash::serve {

namespace {

[[noreturn]] void sys_fail(const char* what) {
  throw std::runtime_error(std::string("serve: ") + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

}  // namespace

NashServer::NashServer(ServeOptions options)
    : options_(options),
      service_(core::ServiceOptions{options.service_threads, nullptr}),
      cache_(options.cache_bytes),
      admission_(options.admission) {}

NashServer::~NashServer() {
  for (auto& [id, conn] : conns_)
    if (conn.fd >= 0) ::close(conn.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void NashServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: invalid host address " + options_.host);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0)
    sys_fail("bind");
  if (::listen(listen_fd_, 64) < 0) sys_fail("listen");
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    sys_fail("getsockname");
  port_ = ntohs(bound.sin_port);

  if (options_.announce) {
    std::printf("LISTENING %u\n", static_cast<unsigned>(port_));
    std::fflush(stdout);
  }
}

void NashServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: the pending connection stays queued and the
        // listener stays readable, so back off briefly instead of letting
        // the poll loop busy-spin on a failure that cannot clear itself.
        ::poll(nullptr, 0, 50);
        return;
      }
      return;  // transient accept failure (e.g. ECONNABORTED); keep serving
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_;
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

void NashServer::read_ready(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  char buf[16384];
  for (;;) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof buf, 0);
    if (got > 0) {
      conn.in.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (got < 0 && errno == EINTR) continue;
    // Peer closed (or hard error): serve what was already buffered, then
    // close once owed responses are flushed.
    conn.close_after_flush = true;
    break;
  }

  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn.in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn.in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    handle_line(conn_id, line);
    // handle_line may have closed the connection.
    it = conns_.find(conn_id);
    if (it == conns_.end()) return;
  }
  Connection& c = it->second;
  c.in.erase(0, start);
  if (c.in.size() > options_.max_line_bytes) {
    respond(conn_id,
            render_error(util::Json(), "bad_request",
                         "request line exceeds " +
                             std::to_string(options_.max_line_bytes) +
                             " bytes"),
            /*is_error=*/true);
    c.in.clear();
    c.close_after_flush = true;
  }
}

void NashServer::handle_line(std::uint64_t conn_id, const std::string& line) {
  served_.lines++;
  WireRequest request;
  try {
    request = parse_request(line);
  } catch (const ProtocolError& e) {
    respond(conn_id, render_error(e.id(), e.code(), e.what()), true);
    return;
  } catch (const std::exception& e) {
    // Defensive: nothing may escape the poll loop.
    respond(conn_id, render_error(util::Json(), "internal", e.what()), true);
    return;
  }

  try {
    dispatch(conn_id, std::move(request));
  } catch (const std::exception& e) {
    respond(conn_id, render_error(util::Json(), "internal", e.what()), true);
  }
}

void NashServer::dispatch(std::uint64_t conn_id, WireRequest request) {
  if (request.method == "solve") {
    handle_solve(conn_id, std::move(request));
  } else if (request.method == "status") {
    respond(conn_id, render_ok(request.id, "status", status_payload()), false);
  } else if (request.method == "stats") {
    respond(conn_id, render_ok(request.id, "stats", stats_payload()), false);
  } else {  // list-backends (parse_request rejected everything else)
    util::Json backends = util::Json::array();
    const core::SolverRegistry& registry = core::SolverRegistry::global();
    for (const std::string& name : registry.names()) {
      util::Json& b = backends.push();
      b.set("name", name);
      b.set("description", registry.at(name).describe());
    }
    respond(conn_id, render_ok(request.id, "backends", std::move(backends)),
            false);
  }
}

void NashServer::handle_solve(std::uint64_t conn_id, WireRequest request) {
  if (draining_) {
    respond(conn_id,
            render_error(request.id, "draining",
                         "server is draining and accepts no new solves",
                         admission_.options().retry_after_s),
            true);
    return;
  }

  CanonicalRequest canonical = canonicalize(std::move(*request.solve));

  // Layer 1: the content-addressed cache. Replay is deterministic — the
  // stored canonical report (modeled timing included) is mapped back to the
  // caller's action order; for an identical request that mapping is the
  // identity and the response is byte-identical to the first one.
  if (!request.no_cache) {
    if (const core::SolveReport* hit = cache_.lookup(canonical.key)) {
      served_.solves_ok++;
      served_.cache_hits++;
      respond(conn_id,
              render_solve_ok(request.id, /*cached=*/true,
                              map_to_original(canonical.mapping, *hit)),
              false);
      return;
    }

    // Layer 1b: coalesce onto an identical in-flight solve — the duplicate
    // costs a waiter slot, not a solver job. Waiters hold a response slot
    // and buffered output, so they still count against the connection's
    // in-flight cap (only the global job watermark does not apply).
    for (PendingSolve& pending : pending_) {
      if (pending.store_in_cache && pending.key == canonical.key) {
        Connection& conn = conns_.at(conn_id);
        if (admission_.admit(/*global_in_flight=*/0, conn.inflight) !=
            AdmissionController::Verdict::kAdmit) {
          respond(conn_id,
                  render_error(request.id, "overloaded",
                               "connection in-flight cap reached",
                               admission_.retry_after_s(pending_.size())),
                  true);
          return;
        }
        admission_.note_coalesced();
        served_.coalesced++;
        conn.inflight++;
        pending.waiters.push_back(
            {conn_id, request.id, std::move(canonical.mapping)});
        return;
      }
    }
  }

  // Layer 2: admission control.
  Connection& conn = conns_.at(conn_id);
  const AdmissionController::Verdict verdict =
      admission_.admit(pending_.size(), conn.inflight);
  if (verdict != AdmissionController::Verdict::kAdmit) {
    const bool queue_full =
        verdict == AdmissionController::Verdict::kShedQueueFull;
    respond(conn_id,
            render_error(request.id, "overloaded",
                         queue_full
                             ? "solve queue is at its watermark"
                             : "connection in-flight cap reached",
                         admission_.retry_after_s(pending_.size())),
            true);
    return;
  }

  // Layer 3: the solver pool.
  PendingSolve pending;
  pending.key = std::move(canonical.key);
  pending.store_in_cache = !request.no_cache;
  pending.future = service_.submit(std::move(canonical.request));
  served_.jobs_submitted++;
  conn.inflight++;
  pending.waiters.push_back(
      {conn_id, request.id, std::move(canonical.mapping)});
  pending_.push_back(std::move(pending));
}

void NashServer::poll_pending() {
  for (std::size_t i = 0; i < pending_.size();) {
    PendingSolve& pending = pending_[i];
    if (pending.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      ++i;
      continue;
    }

    core::SolveReport report;
    std::string failure;
    bool service_draining = false;
    try {
      report = pending.future.get();
    } catch (const core::ServiceDrainingError& e) {
      // The submit raced the solver pool's drain (admitted before the drain,
      // enqueued after): a retryable condition, not a server bug.
      failure = e.what();
      service_draining = true;
    } catch (const std::exception& e) {
      failure = e.what();
    }

    for (PendingSolve::Waiter& waiter : pending.waiters) {
      const auto conn = conns_.find(waiter.conn_id);
      if (conn != conns_.end() && conn->second.inflight > 0)
        conn->second.inflight--;
      if (conn == conns_.end()) continue;  // client went away; drop response
      if (!failure.empty()) {
        if (service_draining) {
          respond(waiter.conn_id,
                  render_error(waiter.id, "draining", failure,
                               admission_.options().retry_after_s),
                  true);
        } else {
          respond(waiter.conn_id,
                  render_error(waiter.id, "internal", failure), true);
        }
      } else {
        served_.solves_ok++;
        respond(waiter.conn_id,
                render_solve_ok(waiter.id, /*cached=*/false,
                                map_to_original(waiter.mapping, report)),
                false);
      }
    }
    // Degraded (deadline-truncated) and fallback-containing reports are
    // deliberately never cached: they are request-circumstance artefacts, and
    // a later identical request deserves the full-quality answer.
    if (failure.empty() && pending.store_in_cache) {
      if (!report.degraded && report.fallback_count == 0)
        cache_.insert(pending.key, std::move(report));
      else
        served_.uncached_reports++;
    }

    if (i + 1 != pending_.size()) pending_[i] = std::move(pending_.back());
    pending_.pop_back();
  }
}

util::Json NashServer::status_payload() const {
  util::Json status = util::Json::object();
  status.set("draining", draining_);
  status.set("connections", conns_.size());
  status.set("pending_solves", pending_.size());
  status.set("queue_limit", admission_.options().max_queue_depth);
  status.set("per_connection_inflight",
             admission_.options().per_connection_inflight);
  const core::SolverService::QueueDepth depth = service_.queue_depth();
  util::Json svc = util::Json::object();
  svc.set("threads", service_.threads());
  svc.set("jobs", depth.jobs);
  svc.set("queued_units", depth.queued_units);
  svc.set("in_flight_units", depth.in_flight_units);
  status.set("service", std::move(svc));
  return status;
}

util::Json NashServer::stats_payload() const {
  util::Json stats = util::Json::object();

  util::Json cache = util::Json::object();
  const CacheStats& cs = cache_.stats();
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("insertions", cs.insertions);
  cache.set("evictions", cs.evictions);
  cache.set("oversize_rejects", cs.oversize_rejects);
  cache.set("entries", cs.entries);
  cache.set("bytes", cs.bytes);
  cache.set("byte_budget", cs.byte_budget);
  stats.set("cache", std::move(cache));

  util::Json admission = util::Json::object();
  const AdmissionStats& as = admission_.stats();
  admission.set("admitted", as.admitted);
  admission.set("shed_queue_full", as.shed_queue_full);
  admission.set("shed_connection_cap", as.shed_connection_cap);
  admission.set("coalesced", as.coalesced);
  stats.set("admission", std::move(admission));

  util::Json served = util::Json::object();
  served.set("lines", served_.lines);
  served.set("solves_ok", served_.solves_ok);
  served.set("cache_hits", served_.cache_hits);
  served.set("coalesced", served_.coalesced);
  served.set("errors", served_.errors);
  served.set("jobs_submitted", served_.jobs_submitted);
  served.set("write_stalls", served_.write_stalls);
  served.set("injected_disconnects", served_.injected_disconnects);
  served.set("overflow_closed", served_.overflow_closed);
  served.set("uncached_reports", served_.uncached_reports);
  stats.set("served", std::move(served));
  return stats;
}

void NashServer::respond(std::uint64_t conn_id, std::string text,
                         bool is_error) {
  if (is_error) served_.errors++;
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.aborted) return;
  it->second.out += text;
  // Slow-reader guard: a peer that stops draining responses while issuing
  // more requests cannot grow `out` past the cap — the connection is
  // aborted instead (buffered output dropped, fd reaped by the poll loop).
  if (it->second.out.size() > options_.max_output_bytes) {
    it->second.out.clear();
    it->second.aborted = true;
    served_.overflow_closed++;
    return;
  }
  flush(it->second);
}

void NashServer::flush(Connection& conn) {
  if (conn.aborted) return;
  // Injected transport faults, rolled per flush attempt: a disconnect aborts
  // the connection mid-response; a write stall delivers at most one byte and
  // leaves the rest buffered for POLLOUT — downstream of both, the server
  // must behave exactly as it does for a genuinely broken or slow peer.
  if (!conn.out.empty() && options_.fault.server_faults()) {
    using Scope = util::FaultPlan::Scope;
    const std::uint64_t roll_index = (conn.id << 20) ^ conn.write_seq++;
    if (options_.fault.roll(Scope::kDisconnect, roll_index,
                            options_.fault.disconnect_rate)) {
      conn.out.clear();
      conn.aborted = true;
      served_.injected_disconnects++;
      return;
    }
    if (options_.fault.roll(Scope::kWriteStall, roll_index,
                            options_.fault.write_stall_rate)) {
      const ssize_t sent = ::send(conn.fd, conn.out.data(), 1, MSG_NOSIGNAL);
      if (sent > 0) conn.out.erase(0, static_cast<std::size_t>(sent));
      served_.write_stalls++;
      return;  // rest stays buffered; POLLOUT resumes it
    }
  }
  while (!conn.out.empty()) {
    const ssize_t sent =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      // Short writes are normal under O_NONBLOCK: loop until EAGAIN, the
      // remainder stays in `out` and poll() watches POLLOUT.
      conn.out.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent < 0 && errno == EINTR) continue;
    conn.out.clear();  // broken pipe: drop buffered output, close below
    conn.close_after_flush = true;
    return;
  }
}

void NashServer::close_connection(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
}

void NashServer::begin_drain() {
  draining_ = true;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void NashServer::run() {
  if (listen_fd_ < 0 && !draining_)
    throw std::runtime_error("serve: run() before start()");

  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = listener)

  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed) && !draining_)
      begin_drain();
    if (draining_ && pending_.empty()) break;

    fds.clear();
    fd_conn.clear();
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int timeout_ms = pending_.empty() ? 200 : 2;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) sys_fail("poll");

    if (ready > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents == 0) continue;
        if (fd_conn[i] == 0) {
          accept_ready();
          continue;
        }
        const std::uint64_t conn_id = fd_conn[i];
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
          read_ready(conn_id);
        const auto it = conns_.find(conn_id);
        if (it != conns_.end() && (fds[i].revents & POLLOUT))
          flush(it->second);
      }
    }

    poll_pending();

    // Reap connections that are done: aborted (injected disconnect / output
    // overflow — no goodbyes owed), or flushed + flagged with nothing owed.
    // An aborted connection's pending waiters resolve against a missing conn
    // id and are dropped, exactly like a genuine mid-request disconnect.
    std::vector<std::uint64_t> dead;
    for (const auto& [id, conn] : conns_)
      if (conn.aborted ||
          (conn.close_after_flush && conn.out.empty() && conn.inflight == 0))
        dead.push_back(id);
    for (const std::uint64_t id : dead) close_connection(id);
  }

  // Drained: give sockets a bounded grace period to take the final bytes.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool outstanding = false;
    for (auto& [id, conn] : conns_) {
      flush(conn);
      if (!conn.out.empty()) outstanding = true;
    }
    if (!outstanding || std::chrono::steady_clock::now() > deadline) break;
    ::poll(nullptr, 0, 10);
  }
  std::vector<std::uint64_t> all;
  for (const auto& [id, conn] : conns_) all.push_back(id);
  for (const std::uint64_t id : all) close_connection(id);

  service_.drain();
}

}  // namespace cnash::serve
