#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "simd/simd.hpp"
#include "util/build_info.hpp"

namespace cnash::serve {

namespace {

[[noreturn]] void sys_fail(const char* what) {
  throw std::runtime_error(std::string("serve: ") + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

/// Is a complete (or detectably malformed / oversize — both of which the
/// extractor reports as an error the moment it sees them) binary frame
/// buffered? Used for the fairness-backlog decision, so it must never say
/// "yes" for a frame that is merely still arriving.
bool frame_actionable(const std::string& in, std::size_t max_payload) {
  if (in.size() < kFrameHeaderSize) return false;
  const auto* b = reinterpret_cast<const unsigned char*>(in.data());
  if (b[0] != kFrameMagic0 || b[1] != kFrameMagic1 || b[2] != kFrameVersion)
    return true;  // malformed header: actionable (produces an error)
  const std::uint32_t length = static_cast<std::uint32_t>(b[4]) |
                               (static_cast<std::uint32_t>(b[5]) << 8) |
                               (static_cast<std::uint32_t>(b[6]) << 16) |
                               (static_cast<std::uint32_t>(b[7]) << 24);
  if (length > max_payload) return true;  // oversize: actionable error
  return in.size() >= kFrameHeaderSize + length;
}

/// One pipeline stage: times its scope into a histogram (always, when one is
/// given) and emits a trace span (only while tracing is enabled). Inert —
/// zero clock reads — when neither sink wants the sample, which is how the
/// disabled-telemetry path stays under the <2% overhead budget.
class Stage {
 public:
  Stage(obs::TraceRecorder& trace, const char* name, std::uint64_t trace_id,
        obs::Histogram* hist)
      : trace_(trace), name_(name), trace_id_(trace_id), hist_(hist) {
    active_ = hist_ != nullptr || trace_.enabled();
    if (active_) begin_ = obs::TraceRecorder::Clock::now();
  }
  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;
  ~Stage() {
    if (!active_) return;
    const auto end = obs::TraceRecorder::Clock::now();
    if (hist_)
      hist_->record(std::chrono::duration<double>(end - begin_).count());
    trace_.record(name_, "gateway", begin_, end, trace_id_);
  }

 private:
  obs::TraceRecorder& trace_;
  const char* name_;
  std::uint64_t trace_id_;
  obs::Histogram* hist_;
  bool active_ = false;
  obs::TraceRecorder::Clock::time_point begin_{};
};

}  // namespace

// ---- Per-connection and cross-thread structures ----------------------------

struct NashServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;  // process-wide (fault-roll index base)
  std::string in;   // unparsed request bytes (reused across requests)
  std::string out;  // unflushed response bytes (reused across responses)
  std::string scratch;  // current request line / frame payload (reused)
  ParseSession session;  // backend memo + render buffer (reused)
  std::size_t inflight = 0;  // solve responses owed (queued + coalesced)
  std::uint64_t write_seq = 0;  // flush attempts (fault-roll index)
  enum Framing { kUndecided, kJsonLines, kBinary };
  Framing framing = kUndecided;  // negotiated on the first byte received
  bool want_write = false;  // epoll interest currently includes EPOLLOUT
  bool close_after_flush = false;
  /// Hard-dead (injected disconnect or output overflow): buffered I/O is
  /// dropped and the loop reaps the fd without waiting on inflight.
  bool aborted = false;
};

/// A cross-thread handoff into an event loop: a freshly accepted connection
/// from the accept thread, or a solve outcome from a service callback.
struct NashServer::Delivery {
  enum Kind { kNewConn, kFinal, kError, kProgress };
  Kind kind = kNewConn;
  std::uint64_t conn_id = 0;
  int fd = -1;  // kNewConn
  // kFinal: the canonical report (shared with the cache when stored).
  std::shared_ptr<const core::SolveReport> report;
  ReportMapping mapping;
  // kError
  std::string code;
  std::string message;
  std::optional<double> retry_after_s;
  // kProgress
  core::ProgressSnapshot snapshot;
  util::Json id;  // response correlation id (kFinal/kError/kProgress)
  std::uint64_t trace_id = 0;  // span correlation of the originating request
};

/// One event loop: an epoll instance plus the connections sharded onto it.
/// Everything except `inbox` is touched only by the owning thread; the inbox
/// is the single cross-thread entry point (push under inbox_mutex, then wake
/// the eventfd).
struct NashServer::Loop {
  NashServer* server = nullptr;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::unordered_map<std::uint64_t, Connection> conns;
  /// Connections with complete requests still buffered past the fairness
  /// bound; resumed next round without waiting for new socket data.
  std::deque<std::uint64_t> backlog;

  std::mutex inbox_mutex;
  std::vector<Delivery> inbox;

  ~Loop() {
    for (auto& [id, conn] : conns)
      if (conn.fd >= 0) ::close(conn.fd);
    if (event_fd >= 0) ::close(event_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  void open() {
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) sys_fail("epoll_create1");
    event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd < 0) sys_fail("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // 0 = the eventfd (connection ids start at 1)
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, event_fd, &ev) < 0)
      sys_fail("epoll_ctl(eventfd)");
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof one);
  }

  /// Keep EPOLLOUT interest in sync with buffered output.
  void update_interest(Connection& conn) {
    const bool want = !conn.out.empty() && !conn.aborted;
    if (want == conn.want_write) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0);
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void flush(Connection& conn);
  void send_body(Connection& conn, unsigned char frame_type, bool is_error);
  void read_ready(std::uint64_t conn_id);
  void process_input(std::uint64_t conn_id);
  void process_inbox();
  void process_backlog();
  void reap();
  void close_connection(std::uint64_t conn_id);
  void run();
  void final_flush_and_close();
};

// ---- Construction / listen -------------------------------------------------

NashServer::NashServer(ServeOptions options)
    : options_(options),
      cache_(options.cache_bytes),
      admission_(options.admission),
      // service_options() reads registry_/trace_; both are declared (hence
      // initialized) before service_, and init_telemetry() below registers
      // the same instruments the options point at.
      service_(service_options()) {
  if (!options_.store_dir.empty()) {
    store::StoreOptions store_options;
    store_options.byte_budget = options_.store_budget_bytes;
    store_ = std::make_unique<store::SolutionStore>(options_.store_dir,
                                                    store_options);
    cache_.attach_store(store_.get());
  }
  init_telemetry();
}

core::ServiceOptions NashServer::service_options() {
  if (!options_.trace_out.empty()) trace_.enable();
  core::ServiceOptions svc;
  svc.threads = options_.service_threads;
  svc.telemetry.prepare_seconds =
      &registry_.histogram("cnash_stage_prepare_seconds");
  svc.telemetry.unit_seconds = &registry_.histogram("cnash_stage_unit_seconds");
  svc.telemetry.queue_wait_seconds =
      &registry_.histogram("cnash_stage_queue_wait_seconds");
  svc.telemetry.trace = &trace_;
  return svc;
}

void NashServer::init_telemetry() {
  started_ = std::chrono::steady_clock::now();
  stage_parse_ = &registry_.histogram("cnash_stage_parse_seconds");
  stage_canonicalize_ =
      &registry_.histogram("cnash_stage_canonicalize_seconds");
  stage_cache_lookup_ =
      &registry_.histogram("cnash_stage_cache_lookup_seconds");
  stage_admit_ = &registry_.histogram("cnash_stage_admit_seconds");
  stage_render_ = &registry_.histogram("cnash_stage_render_seconds");
  stage_flush_ = &registry_.histogram("cnash_stage_flush_seconds");
  stage_request_ = &registry_.histogram("cnash_request_handle_seconds");
  solve_wall_ = &registry_.histogram("cnash_solve_wall_seconds");
  re_swap_proposals_ = &registry_.counter("cnash_re_swap_proposals_total");
  re_swap_accepts_ = &registry_.counter("cnash_re_swap_accepts_total");
  fallback_samples_ = &registry_.counter("cnash_fallback_samples_total");
  degraded_reports_ = &registry_.counter("cnash_degraded_reports_total");
  registry_.on_collect([this] { collect_mirrors(); });
}

void NashServer::collect_mirrors() {
  CacheStats cs;
  AdmissionStats as;
  std::size_t pending = 0;
  {
    std::lock_guard<std::mutex> lock(gate_);
    cs = cache_.stats();
    as = admission_.stats();
    pending = pending_.size();
  }
  registry_.counter("cnash_cache_hits_total").set(cs.hits);
  registry_.counter("cnash_cache_misses_total").set(cs.misses);
  registry_.counter("cnash_cache_insertions_total").set(cs.insertions);
  registry_.counter("cnash_cache_evictions_total").set(cs.evictions);
  registry_.counter("cnash_cache_oversize_rejects_total")
      .set(cs.oversize_rejects);
  registry_.gauge("cnash_cache_entries").set(static_cast<double>(cs.entries));
  registry_.gauge("cnash_cache_bytes").set(static_cast<double>(cs.bytes));
  registry_.gauge("cnash_cache_byte_budget_bytes")
      .set(static_cast<double>(cs.byte_budget));

  registry_.counter("cnash_admission_admitted_total").set(as.admitted);
  registry_.counter("cnash_admission_shed_queue_full_total")
      .set(as.shed_queue_full);
  registry_.counter("cnash_admission_shed_connection_cap_total")
      .set(as.shed_connection_cap);
  registry_.counter("cnash_admission_coalesced_total").set(as.coalesced);

  // The tier-2 store keeps its own mutex: snapshot outside the gate. The
  // instruments exist (all-zero) even without --store-dir so the exposition
  // schema is stable.
  const store::StoreStats sts = store_ ? store_->stats() : store::StoreStats{};
  registry_.gauge("cnash_store_enabled").set(store_ ? 1.0 : 0.0);
  registry_.counter("cnash_store_hits_total").set(sts.hits);
  registry_.counter("cnash_store_misses_total").set(sts.misses);
  registry_.counter("cnash_store_appends_total").set(sts.appends);
  registry_.counter("cnash_store_evictions_total").set(sts.evictions);
  registry_.counter("cnash_store_compactions_total").set(sts.compactions);
  registry_.gauge("cnash_store_entries").set(static_cast<double>(sts.entries));
  registry_.gauge("cnash_store_segments")
      .set(static_cast<double>(sts.segments));
  registry_.gauge("cnash_store_live_stored_bytes")
      .set(static_cast<double>(sts.live_stored_bytes));

  const ServedStats ss = served_stats();
  registry_.counter("cnash_requests_total").set(ss.lines);
  registry_.counter("cnash_served_solves_ok_total").set(ss.solves_ok);
  registry_.counter("cnash_served_cache_hits_total").set(ss.cache_hits);
  registry_.counter("cnash_served_coalesced_total").set(ss.coalesced);
  registry_.counter("cnash_served_errors_total").set(ss.errors);
  registry_.counter("cnash_served_jobs_submitted_total")
      .set(ss.jobs_submitted);
  registry_.counter("cnash_served_progress_frames_total")
      .set(ss.progress_frames);
  registry_.counter("cnash_served_fair_deferrals_total")
      .set(ss.fair_deferrals);
  registry_.counter("cnash_served_write_stalls_total").set(ss.write_stalls);
  registry_.counter("cnash_served_injected_disconnects_total")
      .set(ss.injected_disconnects);
  registry_.counter("cnash_served_overflow_closed_total")
      .set(ss.overflow_closed);
  registry_.counter("cnash_served_uncached_reports_total")
      .set(ss.uncached_reports);

  const core::SolverService::QueueDepth depth = service_.queue_depth();
  registry_.gauge("cnash_service_threads")
      .set(static_cast<double>(service_.threads()));
  registry_.gauge("cnash_service_jobs").set(static_cast<double>(depth.jobs));
  registry_.gauge("cnash_service_queued_units")
      .set(static_cast<double>(depth.queued_units));
  registry_.gauge("cnash_service_in_flight_units")
      .set(static_cast<double>(depth.in_flight_units));

  registry_.gauge("cnash_pending_solves").set(static_cast<double>(pending));
  registry_.gauge("cnash_connections")
      .set(static_cast<double>(
          connections_.load(std::memory_order_relaxed)));
  registry_.gauge("cnash_uptime_seconds")
      .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
               .count());

  // Derived Earl & Deem observable: the replica-exchange acceptance rate.
  const std::uint64_t props = re_swap_proposals_->value();
  registry_.gauge("cnash_re_swap_accept_rate")
      .set(props ? static_cast<double>(re_swap_accepts_->value()) /
                       static_cast<double>(props)
                 : 0.0);
}

NashServer::~NashServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  // loops_ destructor closes any remaining fds; service_ (declared last) is
  // destroyed before either, draining its callbacks first.
}

void NashServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("serve: invalid host address " + options_.host);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0)
    sys_fail("bind");
  if (::listen(listen_fd_, 256) < 0) sys_fail("listen");
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0)
    sys_fail("getsockname");
  port_ = ntohs(bound.sin_port);

  if (options_.announce) {
    std::printf("LISTENING %u\n", static_cast<unsigned>(port_));
    std::fflush(stdout);
  }
}

// ---- Accept thread ----------------------------------------------------------

void NashServer::accept_ready(std::size_t& next_loop) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: the pending connection stays queued and the
        // listener stays readable, so back off briefly instead of letting
        // the accept loop busy-spin on a failure that cannot clear itself.
        ::poll(nullptr, 0, 50);
        return;
      }
      return;  // transient accept failure (e.g. ECONNABORTED); keep serving
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Delivery d;
    d.kind = Delivery::kNewConn;
    d.fd = fd;
    d.conn_id = next_conn_id_++;
    connections_.fetch_add(1, std::memory_order_relaxed);
    Loop& loop = *loops_[next_loop++ % loops_.size()];
    post(loop, std::move(d));
  }
}

void NashServer::post(Loop& loop, Delivery delivery) {
  {
    std::lock_guard<std::mutex> lock(loop.inbox_mutex);
    loop.inbox.push_back(std::move(delivery));
  }
  loop.wake();
}

void NashServer::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool NashServer::pending_empty() {
  std::lock_guard<std::mutex> lock(gate_);
  return pending_.empty();
}

void NashServer::shutdown_loops() {
  loops_stop_.store(true, std::memory_order_release);
  for (auto& loop : loops_)
    if (loop->thread.joinable()) loop->wake();
  for (auto& loop : loops_)
    if (loop->thread.joinable()) loop->thread.join();
}

void NashServer::run() {
  if (listen_fd_ < 0 && !draining_.load(std::memory_order_relaxed))
    throw std::runtime_error("serve: run() before start()");

  loops_.clear();
  loops_stop_.store(false, std::memory_order_relaxed);
  const std::size_t n_loops = std::max<std::size_t>(1, options_.serve_threads);
  for (std::size_t i = 0; i < n_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->server = this;
    loop->open();
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_)
    loop->thread = std::thread([l = loop.get()] { l->run(); });

  try {
    std::size_t next_loop = 0;
    for (;;) {
      if (stop_requested_.load(std::memory_order_relaxed) &&
          !draining_.load(std::memory_order_relaxed))
        begin_drain();
      // Exit once draining and every in-flight solve has resolved. Its
      // callback posted all deliveries under the gate before removing the
      // registry entry, so observing an empty registry here means every
      // final frame is already in a loop inbox — the loops' shutdown path
      // writes and flushes them before closing.
      if (draining_.load(std::memory_order_relaxed) && pending_empty()) break;

      if (listen_fd_ >= 0) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 50);
        if (ready < 0 && errno != EINTR) sys_fail("poll(listen)");
        if (ready > 0) accept_ready(next_loop);
      } else {
        ::poll(nullptr, 0, 5);  // draining: just watch the registry
      }
    }
  } catch (...) {
    shutdown_loops();
    throw;
  }

  shutdown_loops();
  service_.drain();
  // Make the drain a durability point: every report persisted during this
  // run is on stable storage before run() returns.
  if (store_) store_->sync();
  // All loops and workers are parked, so the event buffer is quiescent:
  // write the Chrome trace (Perfetto-loadable) in one shot.
  if (!options_.trace_out.empty())
    trace_.write_chrome_trace(options_.trace_out);
}

// ---- Event loop -------------------------------------------------------------

void NashServer::Loop::run() {
  std::vector<epoll_event> events(64);
  while (!server->loops_stop_.load(std::memory_order_acquire)) {
    const int timeout_ms = backlog.empty() ? 200 : 0;
    const int n =
        ::epoll_wait(epoll_fd, events.data(), static_cast<int>(events.size()),
                     timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; shut this loop down
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == 0) {
        std::uint64_t drained;
        while (::read(event_fd, &drained, sizeof drained) > 0) {
        }
        process_inbox();
        continue;
      }
      const std::uint64_t conn_id = events[i].data.u64;
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR))
        read_ready(conn_id);
      const auto it = conns.find(conn_id);
      if (it != conns.end() && (events[i].events & EPOLLOUT)) {
        flush(it->second);
        update_interest(it->second);
      }
    }
    process_backlog();
    reap();
  }
  final_flush_and_close();
}

void NashServer::Loop::process_inbox() {
  std::vector<Delivery> batch;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex);
    batch.swap(inbox);
  }
  for (Delivery& d : batch) {
    if (d.kind == Delivery::kNewConn) {
      Connection conn;
      conn.fd = d.fd;
      conn.id = d.conn_id;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = d.conn_id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, d.fd, &ev) < 0) {
        ::close(d.fd);
        server->connections_.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      conns.emplace(d.conn_id, std::move(conn));
      continue;
    }

    const auto it = conns.find(d.conn_id);
    // Solve bookkeeping mirrors a client that went away: the owed-response
    // count is irrelevant once the connection is gone, and the response is
    // dropped exactly like a genuine mid-request disconnect.
    if (d.kind == Delivery::kFinal || d.kind == Delivery::kError) {
      if (it != conns.end() && it->second.inflight > 0) it->second.inflight--;
    }
    if (it == conns.end()) continue;
    Connection& conn = it->second;

    switch (d.kind) {
      case Delivery::kFinal: {
        server->counters_.solves_ok.fetch_add(1, std::memory_order_relaxed);
        {
          Stage stage(server->trace_, "render", d.trace_id,
                      server->stage_render_);
          render_solve_ok_body(conn.session.body, d.id, /*cached=*/false,
                               map_to_original(d.mapping, *d.report));
        }
        Stage stage(server->trace_, "flush", d.trace_id, server->stage_flush_);
        send_body(conn, kFrameFinal, /*is_error=*/false);
        break;
      }
      case Delivery::kError:
        render_error_body(conn.session.body, d.id, d.code, d.message,
                          d.retry_after_s);
        send_body(conn, kFrameError, /*is_error=*/true);
        break;
      case Delivery::kProgress:
        if (!conn.aborted) {
          server->counters_.progress_frames.fetch_add(
              1, std::memory_order_relaxed);
          render_progress_body(conn.session.body, d.id, d.snapshot);
          send_body(conn, kFrameProgress, /*is_error=*/false);
        }
        break;
      case Delivery::kNewConn:
        break;  // handled above
    }
  }
}

void NashServer::Loop::read_ready(std::uint64_t conn_id) {
  const auto it = conns.find(conn_id);
  if (it == conns.end()) return;
  Connection& conn = it->second;
  {
    // Trace-only span (no request id yet — bytes may span many requests).
    Stage stage(server->trace_, "read", /*trace_id=*/0, /*hist=*/nullptr);
    char buf[16384];
    for (;;) {
      const ssize_t got = ::recv(conn.fd, buf, sizeof buf, 0);
      if (got > 0) {
        conn.in.append(buf, static_cast<std::size_t>(got));
        continue;
      }
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (got < 0 && errno == EINTR) continue;
      // Peer closed (or hard error): serve what was already buffered, then
      // close once owed responses are flushed.
      conn.close_after_flush = true;
      break;
    }
  }
  process_input(conn_id);
}

void NashServer::Loop::process_input(std::uint64_t conn_id) {
  auto it = conns.find(conn_id);
  if (it == conns.end()) return;
  Connection& conn = it->second;

  if (conn.framing == Connection::kUndecided && !conn.in.empty())
    conn.framing =
        looks_binary(static_cast<unsigned char>(conn.in.front()))
            ? Connection::kBinary
            : Connection::kJsonLines;

  const std::size_t cap = std::max<std::size_t>(
      1, server->options_.max_requests_per_wakeup);
  std::size_t handled = 0;
  while (handled < cap && !conn.aborted && !conn.close_after_flush) {
    if (conn.framing == Connection::kBinary) {
      std::optional<FrameHeader> header;
      try {
        header = peek_frame(conn.in, server->options_.max_line_bytes);
      } catch (const ProtocolError& e) {
        // A broken frame header desynchronises the stream — answer and close.
        server->counters_.lines.fetch_add(1, std::memory_order_relaxed);
        render_error_body(conn.session.body, util::Json(), e.code(), e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
        conn.in.clear();
        conn.close_after_flush = true;
        break;
      }
      if (!header || conn.in.size() < kFrameHeaderSize + header->length) break;
      conn.scratch.assign(conn.in, kFrameHeaderSize, header->length);
      conn.in.erase(0, kFrameHeaderSize + header->length);
      handled++;
      server->counters_.lines.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t tid =
          server->trace_.enabled() ? server->trace_.new_trace_id() : 0;
      Stage request_stage(server->trace_, "request", tid,
                          server->stage_request_);
      WireRequest request;
      try {
        Stage parse_stage(server->trace_, "parse", tid, server->stage_parse_);
        request = parse_frame_request(header->type, conn.scratch,
                                      &conn.session);
      } catch (const ProtocolError& e) {
        render_error_body(conn.session.body, e.id(), e.code(), e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
        continue;
      } catch (const std::exception& e) {
        render_error_body(conn.session.body, util::Json(), "internal",
                          e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
        continue;
      }
      try {
        server->handle_request(*this, conn, std::move(request), tid);
      } catch (const std::exception& e) {
        // Defensive: nothing may escape the event loop.
        render_error_body(conn.session.body, util::Json(), "internal",
                          e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
      }
    } else {
      const std::size_t nl = conn.in.find('\n');
      if (nl == std::string::npos) break;
      conn.scratch.assign(conn.in, 0, nl);
      conn.in.erase(0, nl + 1);
      if (!conn.scratch.empty() && conn.scratch.back() == '\r')
        conn.scratch.pop_back();
      if (conn.scratch.empty()) continue;
      handled++;
      server->counters_.lines.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t tid =
          server->trace_.enabled() ? server->trace_.new_trace_id() : 0;
      Stage request_stage(server->trace_, "request", tid,
                          server->stage_request_);
      WireRequest request;
      try {
        Stage parse_stage(server->trace_, "parse", tid, server->stage_parse_);
        request = parse_request(conn.scratch, &conn.session);
      } catch (const ProtocolError& e) {
        render_error_body(conn.session.body, e.id(), e.code(), e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
        continue;
      } catch (const std::exception& e) {
        // Defensive: nothing may escape the event loop.
        render_error_body(conn.session.body, util::Json(), "internal",
                          e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
        continue;
      }
      try {
        server->handle_request(*this, conn, std::move(request), tid);
      } catch (const std::exception& e) {
        render_error_body(conn.session.body, util::Json(), "internal",
                          e.what());
        send_body(conn, kFrameError, /*is_error=*/true);
      }
    }
  }
  if (conn.aborted) return;

  // Protocol-abuse guard: an unterminated request longer than the limit.
  if (conn.framing != Connection::kBinary &&
      conn.in.size() > server->options_.max_line_bytes) {
    render_error_body(conn.session.body, util::Json(), "bad_request",
                      "request line exceeds " +
                          std::to_string(server->options_.max_line_bytes) +
                          " bytes");
    send_body(conn, kFrameError, /*is_error=*/true);
    conn.in.clear();
    conn.close_after_flush = true;
    return;
  }

  // Fairness: a pipelined batch beyond the per-wakeup bound is resumed from
  // the backlog next round instead of here, so the loop's other connections
  // get a turn first.
  const bool more =
      !conn.close_after_flush &&
      (conn.framing == Connection::kBinary
           ? frame_actionable(conn.in, server->options_.max_line_bytes)
           : conn.in.find('\n') != std::string::npos);
  if (more) {
    backlog.push_back(conn_id);
    server->counters_.fair_deferrals.fetch_add(1, std::memory_order_relaxed);
  }
}

void NashServer::Loop::process_backlog() {
  // One pass over the connections queued at entry; process_input re-queues
  // any that still exceed the bound, for the next round.
  std::size_t n = backlog.size();
  while (n-- > 0) {
    const std::uint64_t conn_id = backlog.front();
    backlog.pop_front();
    process_input(conn_id);
  }
}

void NashServer::Loop::reap() {
  // Connections that are done: aborted (injected disconnect / output
  // overflow — no goodbyes owed), or flushed + flagged with nothing owed.
  // An aborted connection's pending deliveries resolve against a missing
  // conn id and are dropped, exactly like a genuine mid-request disconnect.
  std::vector<std::uint64_t> dead;
  for (const auto& [id, conn] : conns)
    if (conn.aborted ||
        (conn.close_after_flush && conn.out.empty() && conn.inflight == 0))
      dead.push_back(id);
  for (const std::uint64_t id : dead) close_connection(id);
}

void NashServer::Loop::close_connection(std::uint64_t conn_id) {
  const auto it = conns.find(conn_id);
  if (it == conns.end()) return;
  ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  conns.erase(it);
  server->connections_.fetch_sub(1, std::memory_order_relaxed);
}

void NashServer::Loop::final_flush_and_close() {
  // The in-flight registry was empty before loops_stop_ was set, so every
  // final delivery is already in the inbox: write those responses, then give
  // sockets a bounded grace period to take the last bytes.
  process_inbox();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    bool outstanding = false;
    for (auto& [id, conn] : conns) {
      flush(conn);
      if (!conn.aborted && !conn.out.empty()) outstanding = true;
    }
    if (!outstanding || std::chrono::steady_clock::now() > deadline) break;
    ::poll(nullptr, 0, 10);
  }
  std::vector<std::uint64_t> all;
  for (const auto& [id, conn] : conns) all.push_back(id);
  for (const std::uint64_t id : all) close_connection(id);
}

// ---- Response writing -------------------------------------------------------

void NashServer::Loop::send_body(Connection& conn, unsigned char frame_type,
                                 bool is_error) {
  if (is_error)
    server->counters_.errors.fetch_add(1, std::memory_order_relaxed);
  if (conn.aborted) return;
  if (conn.framing == Connection::kBinary) {
    encode_frame(frame_type, conn.session.body, conn.out);
  } else {
    conn.out += conn.session.body;
    conn.out += '\n';
  }
  // Slow-reader guard: a peer that stops draining responses while issuing
  // more requests cannot grow `out` past the cap — the connection is
  // aborted instead (buffered output dropped, fd reaped by the loop).
  if (conn.out.size() > server->options_.max_output_bytes) {
    conn.out.clear();
    conn.aborted = true;
    server->counters_.overflow_closed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  flush(conn);
  update_interest(conn);
}

void NashServer::Loop::flush(Connection& conn) {
  if (conn.aborted) return;
  // Injected transport faults, rolled per flush attempt: a disconnect aborts
  // the connection mid-response; a write stall delivers at most one byte and
  // leaves the rest buffered for EPOLLOUT — downstream of both, the server
  // must behave exactly as it does for a genuinely broken or slow peer.
  const util::FaultPlan& fault = server->options_.fault;
  if (!conn.out.empty() && fault.server_faults()) {
    using Scope = util::FaultPlan::Scope;
    const std::uint64_t roll_index = (conn.id << 20) ^ conn.write_seq++;
    if (fault.roll(Scope::kDisconnect, roll_index, fault.disconnect_rate)) {
      conn.out.clear();
      conn.aborted = true;
      server->counters_.injected_disconnects.fetch_add(
          1, std::memory_order_relaxed);
      return;
    }
    if (fault.roll(Scope::kWriteStall, roll_index, fault.write_stall_rate)) {
      const ssize_t sent = ::send(conn.fd, conn.out.data(), 1, MSG_NOSIGNAL);
      if (sent > 0) conn.out.erase(0, static_cast<std::size_t>(sent));
      server->counters_.write_stalls.fetch_add(1, std::memory_order_relaxed);
      return;  // rest stays buffered; EPOLLOUT resumes it
    }
  }
  while (!conn.out.empty()) {
    const ssize_t sent =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      // Short writes are normal under O_NONBLOCK: loop until EAGAIN, the
      // remainder stays in `out` and epoll watches EPOLLOUT.
      conn.out.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (sent < 0 && errno == EINTR) continue;
    conn.out.clear();  // broken pipe: drop buffered output, close on reap
    conn.close_after_flush = true;
    return;
  }
}

// ---- Request handling -------------------------------------------------------

void NashServer::handle_request(Loop& loop, Connection& conn,
                                WireRequest request, std::uint64_t trace_id) {
  if (request.method == "solve") {
    handle_solve(loop, conn, std::move(request), trace_id);
  } else if (request.method == "status") {
    render_ok_body(conn.session.body, request.id, "status", status_payload());
    loop.send_body(conn, kFrameFinal, /*is_error=*/false);
  } else if (request.method == "stats") {
    render_ok_body(conn.session.body, request.id, "stats", stats_payload());
    loop.send_body(conn, kFrameFinal, /*is_error=*/false);
  } else if (request.method == "metrics") {
    // Scrape path: the registry's collect callback takes the gate (briefly)
    // to mirror the aggregate stats; we hold no lock here, so scraping is
    // safe — and non-blocking for other loops — while solves run.
    if (request.metrics_text)
      render_ok_body(conn.session.body, request.id, "metrics_text",
                     util::Json::string(registry_.text_exposition()));
    else
      render_ok_body(conn.session.body, request.id, "metrics",
                     registry_.to_json());
    loop.send_body(conn, kFrameFinal, /*is_error=*/false);
  } else {  // list-backends (the parser rejected everything else)
    util::Json backends = util::Json::array();
    const core::SolverRegistry& registry = core::SolverRegistry::global();
    for (const std::string& name : registry.names()) {
      util::Json& b = backends.push();
      b.set("name", name);
      b.set("description", registry.at(name).describe());
    }
    render_ok_body(conn.session.body, request.id, "backends",
                   std::move(backends));
    loop.send_body(conn, kFrameFinal, /*is_error=*/false);
  }
}

void NashServer::handle_solve(Loop& loop, Connection& conn,
                              WireRequest request, std::uint64_t trace_id) {
  if (draining_.load(std::memory_order_relaxed)) {
    render_error_body(conn.session.body, request.id, "draining",
                      "server is draining and accepts no new solves",
                      admission_.options().retry_after_s);
    loop.send_body(conn, kFrameError, /*is_error=*/true);
    return;
  }

  CanonicalRequest canonical = [&] {
    Stage stage(trace_, "canonicalize", trace_id, stage_canonicalize_);
    return canonicalize(std::move(*request.solve));
  }();

  // Everything the loops share sits behind the gate: cache, coalescing
  // registry and admission. The verdict is computed under the lock; the
  // response (and the submit) happens after it is released — rendering a
  // report or running the solver under the gate would serialise the loops.
  enum class Outcome { kHit, kCoalesced, kShed, kSubmit };
  Outcome outcome;
  std::shared_ptr<const core::SolveReport> hit;
  std::string shed_message;
  double shed_retry = 0.0;
  InFlight* entry = nullptr;
  bool want_progress = request.progress;
  {
    std::lock_guard<std::mutex> lock(gate_);
    outcome = Outcome::kSubmit;
    if (!request.no_cache) {
      // Layer 1: the content-addressed cache. Replay is deterministic — the
      // stored canonical report (modeled timing included) is mapped back to
      // the caller's action order; for an identical request that mapping is
      // the identity and the response is byte-identical to the first one.
      {
        Stage stage(trace_, "cache", trace_id, stage_cache_lookup_);
        hit = cache_.lookup(canonical.key);
      }
      if (hit) {
        counters_.solves_ok.fetch_add(1, std::memory_order_relaxed);
        counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
        outcome = Outcome::kHit;
      } else {
        // Layer 1b: coalesce onto an identical in-flight solve — the
        // duplicate costs a waiter slot, not a solver job. Waiters hold a
        // response slot and buffered output, so they still count against the
        // connection's in-flight cap (only the global watermark does not).
        for (auto& pending : pending_) {
          if (!pending->store_in_cache || !(pending->key == canonical.key))
            continue;
          if (admission_.admit(/*global_in_flight=*/0, conn.inflight) !=
              AdmissionController::Verdict::kAdmit) {
            outcome = Outcome::kShed;
            shed_message = "connection in-flight cap reached";
            shed_retry = admission_.retry_after_s(pending_.size());
          } else {
            admission_.note_coalesced();
            counters_.coalesced.fetch_add(1, std::memory_order_relaxed);
            conn.inflight++;
            pending->waiters.push_back({&loop, conn.id, request.id,
                                        std::move(canonical.mapping),
                                        request.progress, trace_id});
            outcome = Outcome::kCoalesced;
          }
          break;
        }
      }
    }
    if (outcome == Outcome::kSubmit) {
      // Layer 2: admission control.
      Stage stage(trace_, "admit", trace_id, stage_admit_);
      const AdmissionController::Verdict verdict =
          admission_.admit(pending_.size(), conn.inflight);
      if (verdict != AdmissionController::Verdict::kAdmit) {
        outcome = Outcome::kShed;
        shed_message =
            verdict == AdmissionController::Verdict::kShedQueueFull
                ? "solve queue is at its watermark"
                : "connection in-flight cap reached";
        shed_retry = admission_.retry_after_s(pending_.size());
      } else {
        // Layer 3: the solver pool (submitted below, outside the gate).
        auto owned = std::make_unique<InFlight>();
        entry = owned.get();
        entry->key = std::move(canonical.key);
        entry->store_in_cache = !request.no_cache;
        entry->waiters.push_back({&loop, conn.id, request.id,
                                  std::move(canonical.mapping),
                                  request.progress, trace_id});
        pending_.push_back(std::move(owned));
        conn.inflight++;
        counters_.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  switch (outcome) {
    case Outcome::kHit: {
      {
        Stage stage(trace_, "render", trace_id, stage_render_);
        render_solve_ok_body(conn.session.body, request.id, /*cached=*/true,
                             map_to_original(canonical.mapping, *hit));
      }
      Stage stage(trace_, "flush", trace_id, stage_flush_);
      loop.send_body(conn, kFrameFinal, /*is_error=*/false);
      return;
    }
    case Outcome::kCoalesced:
      return;  // the in-flight job's completion answers this waiter
    case Outcome::kShed:
      render_error_body(conn.session.body, request.id, "overloaded",
                        shed_message, shed_retry);
      loop.send_body(conn, kFrameError, /*is_error=*/true);
      return;
    case Outcome::kSubmit:
      break;
  }

  // Per-backend solve counts, labeled Prometheus-style. Interned once per
  // backend key; outside the gate (the registry has its own mutex).
  registry_
      .counter("cnash_solve_jobs_total{backend=\"" +
               canonical.request.backend + "\"}")
      .add(1);

  // Submit outside the gate: an immediately-resolved submission (service
  // draining) runs on_complete inline on this thread, and on_complete takes
  // the gate. Progress streaming is wired iff the submitting request asked
  // for it — a later coalescer onto a job without the hook gets the final
  // frame only.
  core::JobHooks hooks;
  hooks.trace_id = trace_id;
  if (want_progress)
    hooks.on_progress = [this, entry](const core::ProgressSnapshot& snapshot) {
      deliver_progress(entry, snapshot);
    };
  hooks.on_complete = [this, entry](core::SolveReport&& report,
                                    std::exception_ptr error) {
    complete_solve(entry, std::move(report), error);
  };
  service_.submit_async(std::move(canonical.request), std::move(hooks));
}

// ---- Solve callbacks (service worker threads) -------------------------------

void NashServer::deliver_progress(InFlight* entry,
                                  const core::ProgressSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(gate_);
  // Only deliver while the job is still registered: a snapshot racing the
  // final report (posted when the entry is removed) is dropped, so a waiter
  // never sees progress after its final frame. The pointer is compared, not
  // dereferenced, until the entry is known live.
  const auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [entry](const std::unique_ptr<InFlight>& p) { return p.get() == entry; });
  if (it == pending_.end()) return;
  for (const InFlight::Waiter& waiter : entry->waiters) {
    if (!waiter.progress) continue;
    Delivery d;
    d.kind = Delivery::kProgress;
    d.conn_id = waiter.conn_id;
    d.id = waiter.id;
    d.snapshot = snapshot;
    post(*waiter.loop, std::move(d));
  }
}

void NashServer::complete_solve(InFlight* entry, core::SolveReport&& report,
                                std::exception_ptr error) {
  std::string failure;
  bool service_draining = false;
  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const core::ServiceDrainingError& e) {
      // The submit raced the solver pool's drain (admitted before the drain,
      // enqueued after): a retryable condition, not a server bug.
      failure = e.what();
      service_draining = true;
    } catch (const std::exception& e) {
      failure = e.what();
    }
  }
  std::shared_ptr<const core::SolveReport> shared;
  if (!error) {
    shared = std::make_shared<const core::SolveReport>(std::move(report));
    // Solve-outcome instruments (relaxed atomics; no lock needed, and kept
    // off the gate on purpose — one bump per completed job, not per waiter).
    solve_wall_->record(shared->wall_clock_s);
    if (shared->re_swap_proposals)
      re_swap_proposals_->add(shared->re_swap_proposals);
    if (shared->re_swap_accepts) re_swap_accepts_->add(shared->re_swap_accepts);
    if (shared->fallback_count) fallback_samples_->add(shared->fallback_count);
    if (shared->degraded) degraded_reports_->add(1);
  }

  std::lock_guard<std::mutex> lock(gate_);
  const auto it = std::find_if(
      pending_.begin(), pending_.end(),
      [entry](const std::unique_ptr<InFlight>& p) { return p.get() == entry; });
  std::vector<InFlight::Waiter> waiters = std::move(entry->waiters);
  const bool store_in_cache = entry->store_in_cache;
  GameKey key = std::move(entry->key);
  pending_.erase(it);  // frees the entry; `entry` is dead past this line

  if (!error && store_in_cache) {
    // Degraded (deadline-truncated) and fallback-containing reports are
    // deliberately never cached: they are request-circumstance artefacts,
    // and a later identical request deserves the full-quality answer.
    if (!shared->degraded && shared->fallback_count == 0)
      cache_.insert(key, shared);
    else
      counters_.uncached_reports.fetch_add(1, std::memory_order_relaxed);
  }

  for (InFlight::Waiter& waiter : waiters) {
    Delivery d;
    d.conn_id = waiter.conn_id;
    d.id = std::move(waiter.id);
    d.trace_id = waiter.trace_id;
    if (error) {
      d.kind = Delivery::kError;
      d.code = service_draining ? "draining" : "internal";
      d.message = failure;
      if (service_draining) d.retry_after_s = admission_.options().retry_after_s;
    } else {
      d.kind = Delivery::kFinal;
      d.report = shared;
      d.mapping = std::move(waiter.mapping);
    }
    post(*waiter.loop, std::move(d));
  }
}

// ---- Introspection ----------------------------------------------------------

ServedStats NashServer::served_stats() const {
  ServedStats s;
  s.lines = counters_.lines.load(std::memory_order_relaxed);
  s.solves_ok = counters_.solves_ok.load(std::memory_order_relaxed);
  s.cache_hits = counters_.cache_hits.load(std::memory_order_relaxed);
  s.coalesced = counters_.coalesced.load(std::memory_order_relaxed);
  s.errors = counters_.errors.load(std::memory_order_relaxed);
  s.jobs_submitted = counters_.jobs_submitted.load(std::memory_order_relaxed);
  s.progress_frames =
      counters_.progress_frames.load(std::memory_order_relaxed);
  s.fair_deferrals = counters_.fair_deferrals.load(std::memory_order_relaxed);
  s.write_stalls = counters_.write_stalls.load(std::memory_order_relaxed);
  s.injected_disconnects =
      counters_.injected_disconnects.load(std::memory_order_relaxed);
  s.overflow_closed =
      counters_.overflow_closed.load(std::memory_order_relaxed);
  s.uncached_reports =
      counters_.uncached_reports.load(std::memory_order_relaxed);
  return s;
}

util::Json NashServer::status_payload() {
  util::Json status = util::Json::object();
  status.set("draining", draining_.load(std::memory_order_relaxed));
  status.set("connections",
             connections_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(gate_);
    status.set("pending_solves", pending_.size());
  }
  status.set("serve_threads", loops_.size());
  status.set("queue_limit", admission_.options().max_queue_depth);
  status.set("per_connection_inflight",
             admission_.options().per_connection_inflight);
  const core::SolverService::QueueDepth depth = service_.queue_depth();
  util::Json svc = util::Json::object();
  svc.set("threads", service_.threads());
  svc.set("jobs", depth.jobs);
  svc.set("queued_units", depth.queued_units);
  svc.set("in_flight_units", depth.in_flight_units);
  status.set("service", std::move(svc));
  // Deployment identity: which build is this, with which kernels, for how
  // long — the fields an operator checks before blaming anything else.
  status.set("git_sha", util::build_git_sha());
  status.set("simd_level", simd::level_name(simd::active_level()));
  status.set("store_enabled", store_ != nullptr);
  status.set("uptime_s",
             std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           started_)
                 .count());
  return status;
}

util::Json NashServer::stats_payload() {
  util::Json stats = util::Json::object();

  {
    std::lock_guard<std::mutex> lock(gate_);
    util::Json cache = util::Json::object();
    const CacheStats& cs = cache_.stats();
    cache.set("hits", cs.hits);
    cache.set("misses", cs.misses);
    cache.set("insertions", cs.insertions);
    cache.set("evictions", cs.evictions);
    cache.set("oversize_rejects", cs.oversize_rejects);
    cache.set("entries", cs.entries);
    cache.set("bytes", cs.bytes);
    cache.set("byte_budget", cs.byte_budget);
    stats.set("cache", std::move(cache));

    util::Json admission = util::Json::object();
    const AdmissionStats& as = admission_.stats();
    admission.set("admitted", as.admitted);
    admission.set("shed_queue_full", as.shed_queue_full);
    admission.set("shed_connection_cap", as.shed_connection_cap);
    admission.set("coalesced", as.coalesced);
    stats.set("admission", std::move(admission));
  }

  // The tier-2 store keeps its own mutex, so its snapshot is taken outside
  // the gate. The object is always present (all-zero when disabled) so
  // dashboards can rely on the schema.
  util::Json store = util::Json::object();
  store.set("enabled", store_ != nullptr);
  const store::StoreStats sts = store_ ? store_->stats() : store::StoreStats{};
  store.set("hits", sts.hits);
  store.set("misses", sts.misses);
  store.set("appends", sts.appends);
  store.set("tombstones", sts.tombstones);
  store.set("evictions", sts.evictions);
  store.set("oversize_rejects", sts.oversize_rejects);
  store.set("compactions", sts.compactions);
  store.set("entries", sts.entries);
  store.set("segments", sts.segments);
  store.set("live_raw_bytes", sts.live_raw_bytes);
  store.set("live_value_bytes", sts.live_value_bytes);
  store.set("live_stored_bytes", sts.live_stored_bytes);
  store.set("dead_stored_bytes", sts.dead_stored_bytes);
  store.set("compressed_records", sts.compressed_records);
  store.set("stored_records", sts.stored_records);
  store.set("corrupt_records_skipped", sts.corrupt_records_skipped);
  store.set("torn_tail_truncations", sts.torn_tail_truncations);
  store.set("byte_budget", sts.byte_budget);
  store.set("compression_ratio", sts.compression_ratio());
  stats.set("store", std::move(store));

  const ServedStats ss = served_stats();
  util::Json served = util::Json::object();
  served.set("lines", ss.lines);
  served.set("solves_ok", ss.solves_ok);
  served.set("cache_hits", ss.cache_hits);
  served.set("coalesced", ss.coalesced);
  served.set("errors", ss.errors);
  served.set("jobs_submitted", ss.jobs_submitted);
  served.set("progress_frames", ss.progress_frames);
  served.set("fair_deferrals", ss.fair_deferrals);
  served.set("write_stalls", ss.write_stalls);
  served.set("injected_disconnects", ss.injected_disconnects);
  served.set("overflow_closed", ss.overflow_closed);
  served.set("uncached_reports", ss.uncached_reports);
  stats.set("served", std::move(served));
  return stats;
}

}  // namespace cnash::serve
