#include "serve/cache.hpp"

#include <algorithm>
#include <utility>

#include "core/report_json.hpp"
#include "store/store.hpp"
#include "util/json.hpp"

namespace cnash::serve {

std::size_t report_footprint(const core::SolveReport& report) {
  std::size_t bytes = sizeof(core::SolveReport) + report.backend.size() +
                      report.game_name.size();
  for (const core::SolveSample& s : report.samples) {
    bytes += sizeof(core::SolveSample);
    bytes += (s.p.size() + s.q.size()) * sizeof(double);
    if (s.profile)
      bytes += (s.profile->p.counts().size() + s.profile->q.counts().size()) *
               sizeof(std::uint32_t);
  }
  return bytes;
}

SolutionCache::SolutionCache(std::size_t byte_budget) {
  stats_.byte_budget = byte_budget;
}

SolutionCache::LruList::iterator SolutionCache::find(const GameKey& key) {
  const auto bucket = index_.find(key.digest);
  if (bucket == index_.end()) return lru_.end();
  for (const LruList::iterator it : bucket->second)
    if (it->key.blob == key.blob) return it;
  return lru_.end();
}

void SolutionCache::erase(LruList::iterator it) {
  auto bucket = index_.find(it->key.digest);
  auto& entries = bucket->second;
  entries.erase(std::find(entries.begin(), entries.end(), it));
  if (entries.empty()) index_.erase(bucket);
  stats_.bytes -= it->bytes;
  stats_.entries--;
  lru_.erase(it);
}

std::shared_ptr<const core::SolveReport> SolutionCache::lookup(
    const GameKey& key) {
  const LruList::iterator it = find(key);
  if (it != lru_.end()) {
    stats_.hits++;
    lru_.splice(lru_.begin(), lru_, it);  // bump to most-recently-used
    return it->report;
  }
  stats_.misses++;
  if (!store_) return nullptr;

  // Tier 2: the persistent store holds the canonical report JSON. A hit is
  // decoded and promoted into the RAM tier so the next lookup is a RAM hit.
  const auto bytes = store_->get(key.digest, key.blob);
  if (!bytes) return nullptr;
  std::shared_ptr<const core::SolveReport> report;
  try {
    report = std::make_shared<const core::SolveReport>(
        core::report_from_json(util::Json::parse(*bytes)));
  } catch (const std::exception&) {
    // CRC-intact bytes that do not parse back into a report mean a writer
    // bug, not a reader problem; serve a miss instead of an exception.
    return nullptr;
  }
  insert_local(key, report);
  return report;
}

void SolutionCache::insert(const GameKey& key,
                           std::shared_ptr<const core::SolveReport> report) {
  if (store_)
    store_->put(key.digest, key.blob,
                core::report_to_json(*report).dump());
  insert_local(key, std::move(report));
}

void SolutionCache::insert_local(
    const GameKey& key, std::shared_ptr<const core::SolveReport> report) {
  const std::size_t bytes =
      report_footprint(*report) + key.blob.size() + sizeof(Entry);
  if (bytes > stats_.byte_budget) {
    stats_.oversize_rejects++;
    return;
  }
  const LruList::iterator existing = find(key);
  if (existing != lru_.end()) erase(existing);  // refresh (coalesced double insert)

  lru_.push_front(Entry{key, std::move(report), bytes});
  index_[key.digest].push_back(lru_.begin());
  stats_.bytes += bytes;
  stats_.entries++;
  stats_.insertions++;

  while (stats_.bytes > stats_.byte_budget && stats_.entries > 1) {
    erase(std::prev(lru_.end()));
    stats_.evictions++;
  }
}

}  // namespace cnash::serve
