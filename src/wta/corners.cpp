#include "wta/corners.hpp"

namespace cnash::wta {

std::string_view corner_name(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::kTT:
      return "tt";
    case ProcessCorner::kSS:
      return "ss";
    case ProcessCorner::kFF:
      return "ff";
    case ProcessCorner::kSNFP:
      return "snfp";
    case ProcessCorner::kFNSP:
      return "fnsp";
  }
  return "?";
}

CornerFactors corner_factors(ProcessCorner corner) {
  switch (corner) {
    case ProcessCorner::kTT:
      return {1.00, 1.00, 1.000};
    case ProcessCorner::kSS:
      return {1.35, 1.20, 0.995};
    case ProcessCorner::kFF:
      return {0.78, 1.10, 1.005};
    case ProcessCorner::kSNFP:
      return {1.12, 1.45, 0.997};
    case ProcessCorner::kFNSP:
      return {0.92, 1.45, 1.003};
  }
  return {1.0, 1.0, 1.0};
}

}  // namespace cnash::wta
