#pragma once
// MOSFET process corners for the analog WTA periphery (the paper evaluates
// ss, snfp, fnsp, ff and tt at TSMC 28 nm). Behaviourally a corner scales the
// cell's settle latency and its output offset.

#include <array>
#include <string_view>

namespace cnash::wta {

enum class ProcessCorner { kTT, kSS, kFF, kSNFP, kFNSP };

inline constexpr std::array<ProcessCorner, 5> kAllCorners = {
    ProcessCorner::kTT, ProcessCorner::kSS, ProcessCorner::kFF,
    ProcessCorner::kSNFP, ProcessCorner::kFNSP};

std::string_view corner_name(ProcessCorner corner);

struct CornerFactors {
  double latency_scale;   // relative to tt
  double offset_scale;    // relative to tt
  double current_gain;    // mirror gain error factor (≈1)
};

/// Behavioural scaling factors per corner (slow corners settle later; skewed
/// corners add systematic mirror offset).
CornerFactors corner_factors(ProcessCorner corner);

}  // namespace cnash::wta
