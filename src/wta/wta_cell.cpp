#include "wta/wta_cell.hpp"

#include <algorithm>
#include <cmath>

namespace cnash::wta {

WtaCell::WtaCell(WtaCellParams params, util::Rng* rng)
    : params_(params), factors_(corner_factors(params.corner)) {
  const double sigma = params_.offset_sigma * factors_.offset_scale;
  static_offset_ = rng ? rng->normal(0.0, sigma) : sigma;
}

double WtaCell::output(double i1, double i2, util::Rng* rng) const {
  const double exact = std::max(i1, i2);
  double out = exact * factors_.current_gain * (1.0 + static_offset_);
  if (rng != nullptr && params_.read_noise_rel > 0.0)
    out += rng->normal(0.0, params_.read_noise_rel * exact);
  return std::max(0.0, out);
}

double WtaCell::latency_s() const {
  return params_.latency_s * factors_.latency_scale;
}

double WtaCell::transient(double i1, double i2, double t_s) const {
  if (t_s <= 0.0) return 0.0;
  const double settled = output(i1, i2, nullptr);
  // First-order settle: 95 % at latency -> tau = latency / 3.
  const double tau = latency_s() / 3.0;
  return settled * (1.0 - std::exp(-t_s / tau));
}

}  // namespace cnash::wta
