#pragma once
// Behavioural 2-input winner-takes-all cell (Fig. 5(b)).
//
// The circuit mirrors both input currents through a high-swing self-biased
// cascode mirror; the cross-coupled PMOS pair conducts the "extra" |I1-I2|
// current, and the output recombines I_max = min(I1,I2) + |I1-I2| = max(I1,I2)
// (Eq. 10). Behaviourally the cell computes an exact max and applies:
//   * a STATIC relative output offset from mirror mismatch, sampled once per
//     physical cell (paper: 0.25 % at tt) — mismatch is a fabrication
//     artefact, not per-read noise;
//   * a small per-read noise term (thermal/flicker);
//   * a corner-dependent gain error and a first-order settle transient with
//     0.08 ns latency at tt (Fig. 5(c)).

#include "util/rng.hpp"
#include "wta/corners.hpp"

namespace cnash::wta {

struct WtaCellParams {
  double offset_sigma = 0.0025;     // static mismatch sigma (0.25 % at tt)
  double read_noise_rel = 0.0002;   // per-read noise sigma / output
  double latency_s = 0.08e-9;       // settle latency to 95 % (tt)
  ProcessCorner corner = ProcessCorner::kTT;
};

class WtaCell {
 public:
  /// Samples the cell's static mismatch from `rng`; without an rng the
  /// deterministic worst case (+offset_sigma) is frozen in instead.
  explicit WtaCell(WtaCellParams params = {}, util::Rng* rng = nullptr);

  const WtaCellParams& params() const { return params_; }
  /// The frozen static mismatch of this physical cell (relative).
  double static_offset() const { return static_offset_; }

  /// Settled output current; `rng` (optional) adds per-read noise.
  double output(double i1, double i2, util::Rng* rng = nullptr) const;

  /// Settle latency for this corner.
  double latency_s() const;

  /// Transient output at time t after the inputs step to (i1, i2) — a
  /// first-order exponential whose 95 % point hits latency_s() (Fig. 5(c)).
  double transient(double i1, double i2, double t_s) const;

 private:
  WtaCellParams params_;
  CornerFactors factors_;
  double static_offset_;
};

}  // namespace cnash::wta
