#pragma once
// WTA reduction tree (Fig. 5(a)): ceil(log2 D) levels of 2-input cells compute
// the maximum of D input currents. For D inputs the cell count is
// 2^K - 1 with K = ceil(log2 D) (Sec. 3.3); odd nodes bypass a level. Each
// tree node is a distinct physical cell with its own frozen static mismatch.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"
#include "wta/wta_cell.hpp"

namespace cnash::wta {

class WtaTree {
 public:
  /// `rng` samples each node's static mismatch; nullptr freezes the
  /// deterministic worst case in every node.
  WtaTree(std::size_t num_inputs, WtaCellParams cell_params = {},
          util::Rng* rng = nullptr);

  std::size_t num_inputs() const { return num_inputs_; }
  /// Number of physical 2-input cells: 2^K - 1, K = ceil(log2 D).
  std::size_t num_cells() const;
  std::size_t depth() const;  // K

  /// Reduce the input currents to the (behavioural) maximum. Static node
  /// offsets apply always; pass an rng for the per-read noise on top.
  double reduce(const std::vector<double>& inputs, util::Rng* rng = nullptr) const;

  /// Allocation-free reduce for hot loops: identical cell order and noise
  /// draws as the vector overload; `scratch` is resized and clobbered.
  double reduce(const double* inputs, std::size_t count, util::Rng* rng,
                std::vector<double>& scratch) const;

  /// Index of the winning input (argmax through the noisy pairwise cells).
  std::size_t winner(const std::vector<double>& inputs,
                     util::Rng* rng = nullptr) const;

  /// Total settle latency: depth × cell latency.
  double latency_s() const;

  const WtaCell& cell(std::size_t index) const { return cells_.at(index); }

 private:
  std::size_t num_inputs_;
  WtaCellParams params_;
  std::vector<WtaCell> cells_;  // used in level order during reduction
};

}  // namespace cnash::wta
