#include "wta/wta_tree.hpp"

#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"

namespace cnash::wta {

WtaTree::WtaTree(std::size_t num_inputs, WtaCellParams cell_params,
                 util::Rng* rng)
    : num_inputs_(num_inputs), params_(cell_params) {
  if (num_inputs == 0) throw std::invalid_argument("WtaTree: zero inputs");
  cells_.reserve(num_cells());
  for (std::size_t c = 0; c < num_cells(); ++c)
    cells_.emplace_back(params_, rng);
}

std::size_t WtaTree::depth() const { return util::ceil_log2(num_inputs_); }

std::size_t WtaTree::num_cells() const {
  // 2^K - 1 per Sec. 3.3 (the tree is built out to the full power of two).
  return (static_cast<std::size_t>(1) << depth()) - 1;
}

double WtaTree::reduce(const std::vector<double>& inputs,
                       util::Rng* rng) const {
  std::vector<double> scratch;
  return reduce(inputs.data(), inputs.size(), rng, scratch);
}

double WtaTree::reduce(const double* inputs, std::size_t count, util::Rng* rng,
                       std::vector<double>& scratch) const {
  if (count != num_inputs_)
    throw std::invalid_argument("WtaTree::reduce: input arity mismatch");
  // Levels collapse in place: pair k/k+1 writes slot k/2, an odd tail
  // bypasses — same cell order and rng draw sequence as a per-level copy.
  scratch.assign(inputs, inputs + count);
  std::size_t len = count;
  std::size_t cell_idx = 0;
  while (len > 1) {
    std::size_t next = 0;
    for (std::size_t k = 0; k + 1 < len; k += 2)
      scratch[next++] = cells_[cell_idx++].output(scratch[k], scratch[k + 1], rng);
    if (len % 2 == 1) scratch[next++] = scratch[len - 1];  // bypass
    len = next;
  }
  return scratch.front();
}

std::size_t WtaTree::winner(const std::vector<double>& inputs,
                            util::Rng* rng) const {
  if (inputs.size() != num_inputs_)
    throw std::invalid_argument("WtaTree::winner: input arity mismatch");
  struct Node {
    double current;
    std::size_t index;
  };
  std::vector<Node> level;
  level.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) level.push_back({inputs[i], i});
  std::size_t cell_idx = 0;
  while (level.size() > 1) {
    std::vector<Node> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
      const WtaCell& cell = cells_[cell_idx++];
      // The losing branch's mirror is starved; selection follows the cell's
      // (mismatch-perturbed) comparison of the two input copies.
      const double a = cell.output(level[k].current, 0.0, rng);
      const double b = cell.output(level[k + 1].current, 0.0, rng);
      const Node& win = (a >= b) ? level[k] : level[k + 1];
      next.push_back({cell.output(level[k].current, level[k + 1].current, rng),
                      win.index});
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level.front().index;
}

double WtaTree::latency_s() const {
  return static_cast<double>(depth()) * WtaCell(params_).latency_s();
}

}  // namespace cnash::wta
