#include "store/log.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace cnash::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

/// Sanity bound on record payloads: a single solve report or key blob past
/// this is not something this store ever writes, so a larger length field is
/// corruption, not data (it also keeps a bit-flipped length from making the
/// scan read gigabytes).
constexpr std::uint32_t kMaxFieldLen = 1u << 30;

/// Find the next occurrence of the record magic at or after `from`.
std::size_t find_magic(std::string_view bytes, std::size_t from) {
  unsigned char magic[4];
  magic[0] = kRecordMagic & 0xFF;
  magic[1] = (kRecordMagic >> 8) & 0xFF;
  magic[2] = (kRecordMagic >> 16) & 0xFF;
  magic[3] = (kRecordMagic >> 24) & 0xFF;
  const std::string_view needle(reinterpret_cast<const char*>(magic), 4);
  return bytes.find(needle, from);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void encode_record(const RecordHeader& header, std::string_view key,
                   std::string_view value, std::string& out) {
  const std::size_t start = out.size();
  put_u32(out, kRecordMagic);
  put_u32(out, 0);  // crc placeholder
  out.push_back(static_cast<char>(header.flags));
  out.push_back(static_cast<char>(header.codec));
  put_u32(out, static_cast<std::uint32_t>(key.size()));
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  put_u32(out, header.raw_len);
  put_u64(out, header.digest);
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());

  const std::uint32_t crc =
      crc32(out.data() + start + 8, out.size() - start - 8);
  out[start + 4] = static_cast<char>(crc & 0xFF);
  out[start + 5] = static_cast<char>((crc >> 8) & 0xFF);
  out[start + 6] = static_cast<char>((crc >> 16) & 0xFF);
  out[start + 7] = static_cast<char>((crc >> 24) & 0xFF);
}

SegmentScan scan_segment(std::string_view bytes) {
  SegmentScan scan;
  if (bytes.size() < kSegmentHeaderSize ||
      std::memcmp(bytes.data(), kSegmentHeader, kSegmentHeaderSize) != 0)
    return scan;  // header_ok == false: not one of ours
  scan.header_ok = true;

  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t pos = kSegmentHeaderSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kRecordHeaderSize) {
      // Too short even for a header: a crash mid-append. Torn tail.
      scan.torn_bytes = bytes.size() - pos;
      break;
    }
    const unsigned char* p = base + pos;
    if (get_u32(p) != kRecordMagic) {
      // Garbage where a record should start: resynchronise on the next
      // magic. No further magic means the rest of the file is noise.
      const std::size_t next = find_magic(bytes, pos + 1);
      const std::size_t skip_to =
          next == std::string_view::npos ? bytes.size() : next;
      scan.corrupt_bytes += skip_to - pos;
      scan.corrupt_records++;
      pos = skip_to;
      continue;
    }
    RecordHeader header;
    const std::uint32_t crc_stored = get_u32(p + 4);
    header.flags = p[8];
    header.codec = p[9];
    header.key_len = get_u32(p + 10);
    header.value_len = get_u32(p + 14);
    header.raw_len = get_u32(p + 18);
    header.digest = get_u64(p + 22);
    if (header.key_len > kMaxFieldLen || header.value_len > kMaxFieldLen) {
      // A length no writer produces: corrupt header, resynchronise.
      const std::size_t next = find_magic(bytes, pos + 1);
      const std::size_t skip_to =
          next == std::string_view::npos ? bytes.size() : next;
      scan.corrupt_bytes += skip_to - pos;
      scan.corrupt_records++;
      pos = skip_to;
      continue;
    }
    const std::size_t total =
        kRecordHeaderSize + header.key_len + header.value_len;
    if (pos + total > bytes.size()) {
      // The payload runs past EOF. With no later record magic this is the
      // classic crash mid-append (torn tail, repaired by truncation); if a
      // magic does follow, the length field itself was corrupted and the
      // records after it are still salvageable — resynchronise instead.
      const std::size_t next = find_magic(bytes, pos + 4);
      if (next == std::string_view::npos) {
        scan.torn_bytes = bytes.size() - pos;
        break;
      }
      scan.corrupt_bytes += next - pos;
      scan.corrupt_records++;
      pos = next;
      continue;
    }
    if (crc32(p + 8, total - 8) != crc_stored) {
      const std::size_t next = find_magic(bytes, pos + 4);
      const std::size_t skip_to =
          next == std::string_view::npos ? bytes.size() : next;
      scan.corrupt_bytes += skip_to - pos;
      scan.corrupt_records++;
      pos = skip_to;
      continue;
    }
    scan.records.push_back({header, pos});
    pos += total;
  }
  return scan;
}

std::string segment_file_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "segment-%06llu.log",
                static_cast<unsigned long long>(id));
  return buf;
}

bool parse_segment_file_name(const std::string& name, std::uint64_t& id) {
  // segment-NNNNNN.log, at least six digits.
  constexpr char kPrefix[] = "segment-";
  constexpr char kSuffix[] = ".log";
  if (name.size() < sizeof(kPrefix) - 1 + 6 + sizeof(kSuffix) - 1) return false;
  if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  if (name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0)
    return false;
  std::uint64_t v = 0;
  const std::size_t digits_end = name.size() - (sizeof(kSuffix) - 1);
  for (std::size_t i = sizeof(kPrefix) - 1; i < digits_end; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  id = v;
  return true;
}

}  // namespace cnash::store
