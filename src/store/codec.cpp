#include "store/codec.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cnash::store {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 0x7F + kMinMatch;  // 131
constexpr std::size_t kMaxLiteralRun = 128;
constexpr std::size_t kMaxOffset = 0xFFFF;
constexpr std::size_t kHashBits = 14;

class LzCodec final : public Codec {
 public:
  const char* name() const override { return "lz"; }
  unsigned char tag() const override { return kCodecLz; }

  bool compress(std::string_view input, std::string& output) const override {
    output.clear();
    const std::size_t n = input.size();
    if (n < kMinMatch + 2) return false;  // no room for a match to win
    output.reserve(n);
    const auto* src = reinterpret_cast<const unsigned char*>(input.data());

    // Single-slot hash table over 4-byte prefixes: the most recent position
    // that hashed there. Greedy parse — good enough for JSON-shaped data and
    // one pass with no backtracking.
    std::vector<std::uint32_t> table(std::size_t{1} << kHashBits, kEmpty);
    const auto hash4 = [src](std::size_t pos) {
      std::uint32_t v;
      std::memcpy(&v, src + pos, 4);
      return (v * 2654435761u) >> (32 - kHashBits);
    };

    std::size_t literal_start = 0;
    const auto flush_literals = [&](std::size_t end) {
      for (std::size_t pos = literal_start; pos < end;) {
        const std::size_t run = std::min(kMaxLiteralRun, end - pos);
        output.push_back(static_cast<char>(run - 1));
        output.append(input.data() + pos, run);
        pos += run;
      }
    };

    std::size_t pos = 0;
    while (pos + kMinMatch <= n) {
      const std::uint32_t h = hash4(pos);
      const std::uint32_t cand = table[h];
      table[h] = static_cast<std::uint32_t>(pos);
      if (cand != kEmpty && pos - cand <= kMaxOffset &&
          std::memcmp(src + cand, src + pos, kMinMatch) == 0) {
        std::size_t len = kMinMatch;
        const std::size_t max_len = std::min(n - pos, kMaxMatch);
        while (len < max_len && src[cand + len] == src[pos + len]) ++len;
        flush_literals(pos);
        const std::size_t offset = pos - cand;
        output.push_back(static_cast<char>(0x80 | (len - kMinMatch)));
        output.push_back(static_cast<char>(offset & 0xFF));
        output.push_back(static_cast<char>((offset >> 8) & 0xFF));
        pos += len;
        literal_start = pos;
        if (output.size() >= n) return false;  // already losing: store raw
      } else {
        ++pos;
      }
    }
    flush_literals(n);
    return output.size() < n;
  }

  void decompress(std::string_view input, std::size_t expected_size,
                  std::string& output) const override {
    output.clear();
    output.reserve(expected_size);
    const std::size_t n = input.size();
    std::size_t pos = 0;
    while (pos < n) {
      const auto control = static_cast<unsigned char>(input[pos++]);
      if (control < 0x80) {
        const std::size_t run = std::size_t{control} + 1;
        if (pos + run > n) throw CodecError("literal run past end of stream");
        if (output.size() + run > expected_size)
          throw CodecError("literal run overruns declared size");
        output.append(input.data() + pos, run);
        pos += run;
      } else {
        const std::size_t len = std::size_t{control & 0x7Fu} + kMinMatch;
        if (pos + 2 > n) throw CodecError("match offset past end of stream");
        const std::size_t offset =
            static_cast<unsigned char>(input[pos]) |
            (std::size_t{static_cast<unsigned char>(input[pos + 1])} << 8);
        pos += 2;
        if (offset == 0 || offset > output.size())
          throw CodecError("match offset outside produced output");
        if (output.size() + len > expected_size)
          throw CodecError("match overruns declared size");
        // Byte-at-a-time on purpose: offsets < len overlap and replicate.
        std::size_t from = output.size() - offset;
        for (std::size_t i = 0; i < len; ++i)
          output.push_back(output[from + i]);
      }
    }
    if (output.size() != expected_size)
      throw CodecError("decoded size does not match record header");
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
};

}  // namespace

const Codec& lz_codec() {
  static const LzCodec codec;
  return codec;
}

}  // namespace cnash::store
