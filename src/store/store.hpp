#pragma once
// store::SolutionStore — the persistent tier under the serving cache: a
// content-addressed, crash-safe key/value store for solved games. Keys are
// the full GameKey bytes (the 64-bit digest addresses the in-memory index;
// the blob is compared on every hit, so a digest collision can never serve a
// wrong report). Values are opaque byte strings — the serve layer stores the
// canonical report JSON, whose round-trip is lossless, so a disk hit replays
// byte-identically.
//
// On disk the store is a directory of append-only log segments (format in
// log.hpp). Mutations are appends: a put writes a new record (superseding
// any older record with the same key), a budget eviction writes a tombstone.
// open() rebuilds the index by scanning every segment in id order —
// newest-wins — truncating a torn tail (crash mid-append) and skipping
// CRC-corrupt records; the intact remainder stays servable. compact()
// rewrites the live records into fresh segments and deletes the old ones
// (oldest first, so a crash mid-compact can only leave duplicates, never
// resurrect a tombstoned key), reclaiming superseded/evicted space; it also
// runs automatically once dead bytes pass half the budget.
//
// Values go through the block codec (codec.hpp) on the way in: compressed
// when that wins, stored raw when it does not — the QATzip-style transparent
// fallback. The record header carries the codec tag and decoded size, so
// reads never guess.
//
// Thread-safe behind one internal mutex: the gateway calls it from event-loop
// threads under its own gate, and nash_store / tests call it directly.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/log.hpp"

namespace cnash::store {

/// Unrecoverable environment failures (directory not creatable, I/O errors).
/// Data-level damage is NEVER an exception — it is repaired or skipped on
/// open and reported in the stats/fsck counters.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& message)
      : std::runtime_error("store: " + message) {}
};

struct StoreOptions {
  /// Budget over live record bytes on disk (headers + keys + stored values).
  /// Exceeding it evicts oldest-written entries via tombstones.
  std::size_t byte_budget = 256u << 20;
  /// Rotate the active segment once it grows past this.
  std::size_t segment_bytes = 8u << 20;
  /// Compact automatically when dead (superseded/evicted/tombstone) bytes
  /// exceed half the budget.
  bool auto_compact = true;
  /// Disable to store every value raw (benchmarks the codec's worth).
  bool use_compression = true;
};

struct StoreStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t appends = 0;      // put records written (this process)
  std::size_t tombstones = 0;   // eviction records written (this process)
  std::size_t evictions = 0;    // entries dropped for the byte budget
  std::size_t oversize_rejects = 0;  // puts larger than the whole budget
  std::size_t compactions = 0;
  std::size_t entries = 0;      // live keys
  std::size_t segments = 0;
  std::size_t live_raw_bytes = 0;     // live values before the codec
  std::size_t live_value_bytes = 0;   // live values after the codec
  std::size_t live_stored_bytes = 0;  // live record bytes on disk (hdr+key+value)
  std::size_t dead_stored_bytes = 0;  // awaiting compaction
  std::size_t compressed_records = 0;  // live records that took the codec
  std::size_t stored_records = 0;      // live records stored raw
  std::size_t corrupt_records_skipped = 0;  // found by the last open()
  std::size_t torn_tail_truncations = 0;    // repaired by the last open()
  std::size_t byte_budget = 0;

  /// Live value bytes before vs after the codec; 1.0 when empty. Record
  /// framing (header + key) is deliberately excluded — it is paid either
  /// way, so including it would punish the codec for key size.
  double compression_ratio() const {
    const std::size_t stored = live_value_bytes;
    return stored == 0 ? 1.0
                       : static_cast<double>(live_raw_bytes) /
                             static_cast<double>(stored);
  }
};

/// Read-only integrity report (nash_store fsck; never modifies the files).
struct FsckReport {
  struct Segment {
    std::string file;
    bool header_ok = false;
    std::size_t file_bytes = 0;
    std::size_t records = 0;
    std::size_t torn_bytes = 0;
    std::size_t corrupt_bytes = 0;
    std::size_t corrupt_records = 0;
  };
  std::vector<Segment> segments;
  std::size_t live_entries = 0;  // after newest-wins replay
  std::size_t records = 0;
  std::size_t torn_segments = 0;
  std::size_t corrupt_records = 0;
  bool clean() const {
    if (torn_segments != 0 || corrupt_records != 0) return false;
    for (const Segment& s : segments)
      if (!s.header_ok) return false;
    return true;
  }
};

class SolutionStore {
 public:
  /// Opens (creating the directory if needed) and recovers: scans every
  /// segment, truncates torn tails, skips corrupt records, rebuilds the
  /// index. Throws StoreError only on environment failures.
  explicit SolutionStore(std::string dir, StoreOptions options = {});
  ~SolutionStore();
  SolutionStore(const SolutionStore&) = delete;
  SolutionStore& operator=(const SolutionStore&) = delete;

  /// Full-key lookup: digest addresses the index, the stored key bytes are
  /// compared against `key` before anything is served. Returns the decoded
  /// value bytes, or nullopt.
  std::optional<std::string> get(std::uint64_t digest, std::string_view key);

  /// Insert or supersede. The value is compressed when that wins. A record
  /// larger than the whole budget is rejected (oversize_rejects); otherwise
  /// oldest entries are evicted until the budget holds.
  void put(std::uint64_t digest, std::string_view key, std::string_view value);

  /// Rewrite live records into fresh segments, delete the old ones.
  void compact();

  /// fdatasync the active segment (appends are write()s — crash-consistent
  /// via recovery, durable only after a sync).
  void sync();

  StoreStats stats() const;
  const std::string& dir() const { return dir_; }

  /// Read-only scan of a store directory (works on a directory another
  /// process is serving from; sees whatever has been written so far).
  static FsckReport fsck(const std::string& dir);

 private:
  struct IndexEntry {
    std::uint64_t segment = 0;
    std::size_t offset = 0;  // of the record start
    RecordHeader header;
  };

  void open_and_recover();
  int segment_fd(std::uint64_t id);
  int create_segment(std::uint64_t id);
  void append_active(std::string_view bytes);
  void rotate_if_needed(std::size_t incoming);
  std::string read_record_key(const IndexEntry& entry);
  std::string read_record_value(const IndexEntry& entry);  // decoded
  bool erase_live(std::uint64_t digest, std::string_view key,
                  IndexEntry* erased);
  void evict_until_within_budget();
  void maybe_auto_compact();
  void compact_locked();
  static std::size_t record_bytes(const RecordHeader& header) {
    return kRecordHeaderSize + header.key_len + header.value_len;
  }

  std::string dir_;
  StoreOptions options_;
  mutable std::mutex mutex_;

  /// digest → live entries with that digest (collisions resolved by reading
  /// and comparing the stored key bytes).
  std::unordered_map<std::uint64_t, std::vector<IndexEntry>> index_;
  /// Live entries in log order (oldest first) for budget eviction; entries
  /// whose (segment, offset) no longer matches the index are stale and
  /// skipped lazily.
  std::deque<std::pair<std::uint64_t, IndexEntry>> eviction_order_;
  /// Open fd per segment (readers pread these; the active one also appends).
  std::map<std::uint64_t, int> fds_;
  std::uint64_t active_segment_ = 0;
  std::size_t active_size_ = 0;
  std::uint64_t next_segment_id_ = 1;
  StoreStats stats_;
  std::string scratch_;  // codec/encode buffer reused across puts
};

}  // namespace cnash::store
