#pragma once
// store — the block codec that sits between a record's value bytes and the
// log segment they are written to. Mirrors the QATzip pattern of a
// transparent compression layer with a software fallback: compress() is
// best-effort — when the encoded form would not be strictly smaller than the
// input, the caller stores the raw bytes instead and tags the record
// kCodecStored. Decoding therefore never guesses: the record header says
// which method produced the value bytes and what size they decode to.
//
// The one real codec is an LZ77-style byte codec (lz_codec()) chosen for
// zero dependencies and unambiguous decoding, not for ratio records. Its
// stream is a sequence of ops, each introduced by one control byte:
//
//   0x00..0x7F  literal run: (byte + 1) literal bytes follow (1..128)
//   0x80..0xFF  match: length = (byte & 0x7F) + 4 (4..131), followed by a
//               16-bit little-endian back-offset (1..65535) into the output
//               produced so far; offsets smaller than the length overlap and
//               replicate (RLE falls out for free)
//
// Solve reports are JSON with heavily repeated member names and digit
// patterns, so this comfortably clears 2x on the serving workload while
// decompressing with a branch per op and no tables.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cnash::store {

/// Thrown by decompress() on a malformed or truncated stream (a CRC-valid
/// record can still be undecodable if the writer was buggy; the store treats
/// this the same as a corrupt record — skip, never crash).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& message)
      : std::runtime_error("store codec: " + message) {}
};

/// Method tags recorded in each record header.
inline constexpr unsigned char kCodecStored = 0;  // value bytes are raw
inline constexpr unsigned char kCodecLz = 1;      // lz_codec() stream

class Codec {
 public:
  virtual ~Codec() = default;
  virtual const char* name() const = 0;
  virtual unsigned char tag() const = 0;

  /// Encode `input` into `output` (cleared first). Returns false when the
  /// encoded form is not strictly smaller than the input — the caller then
  /// stores the raw bytes with tag kCodecStored (`output` is unspecified).
  virtual bool compress(std::string_view input, std::string& output) const = 0;

  /// Decode into `output` (cleared first); `expected_size` comes from the
  /// record header and the result must match it exactly. Throws CodecError.
  virtual void decompress(std::string_view input, std::size_t expected_size,
                          std::string& output) const = 0;
};

/// The process-wide LZ codec instance (stateless, thread-safe).
const Codec& lz_codec();

}  // namespace cnash::store
