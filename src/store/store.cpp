#include "store/store.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "store/codec.hpp"

namespace cnash::store {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw StoreError(what + ": " + std::strerror(errno));
}

/// mkdir -p: create every missing component, tolerate the existing ones.
void make_dirs(const std::string& path) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos < path.size()) {
    const std::size_t next = path.find('/', pos);
    const std::size_t end = next == std::string::npos ? path.size() : next;
    prefix.assign(path, 0, end);
    pos = end + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) < 0 && errno != EEXIST)
      sys_fail("mkdir " + prefix);
  }
}

/// All segment ids present in `dir`, sorted ascending.
std::vector<std::uint64_t> list_segments(const std::string& dir) {
  std::vector<std::uint64_t> ids;
  DIR* d = ::opendir(dir.c_str());
  if (!d) sys_fail("opendir " + dir);
  while (dirent* e = ::readdir(d)) {
    std::uint64_t id = 0;
    if (parse_segment_file_name(e->d_name, id)) ids.push_back(id);
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::string read_whole_file(int fd, const std::string& name) {
  struct stat st;
  if (::fstat(fd, &st) < 0) sys_fail("fstat " + name);
  std::string bytes(static_cast<std::size_t>(st.st_size), '\0');
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t got = ::pread(fd, bytes.data() + done, bytes.size() - done,
                                static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      sys_fail("pread " + name);
    }
    if (got == 0) {  // concurrently truncated: scan what we have
      bytes.resize(done);
      break;
    }
    done += static_cast<std::size_t>(got);
  }
  return bytes;
}

}  // namespace

// ---- Open / recovery --------------------------------------------------------

SolutionStore::SolutionStore(std::string dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {
  stats_.byte_budget = options_.byte_budget;
  make_dirs(dir_);
  open_and_recover();
}

SolutionStore::~SolutionStore() {
  sync();
  for (auto& [id, fd] : fds_) ::close(fd);
}

int SolutionStore::segment_fd(std::uint64_t id) {
  const auto it = fds_.find(id);
  if (it != fds_.end()) return it->second;
  const std::string path = dir_ + "/" + segment_file_name(id);
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) sys_fail("open " + path);
  fds_[id] = fd;
  return fd;
}

int SolutionStore::create_segment(std::uint64_t id) {
  const std::string path = dir_ + "/" + segment_file_name(id);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) sys_fail("open " + path);
  fds_[id] = fd;
  std::size_t done = 0;
  while (done < kSegmentHeaderSize) {
    const ssize_t put = ::pwrite(
        fd, reinterpret_cast<const char*>(kSegmentHeader) + done,
        kSegmentHeaderSize - done, static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      sys_fail("pwrite " + path);
    }
    done += static_cast<std::size_t>(put);
  }
  return fd;
}

void SolutionStore::open_and_recover() {
  const std::vector<std::uint64_t> ids = list_segments(dir_);
  std::size_t total_payload_bytes = 0;  // segment bytes past the headers
  std::uint64_t max_seen_id = 0;

  for (const std::uint64_t id : ids) {
    max_seen_id = std::max(max_seen_id, id);
    const int fd = segment_fd(id);
    const std::string image = read_whole_file(fd, segment_file_name(id));
    SegmentScan scan = scan_segment(image);
    if (!scan.header_ok) {
      // A destroyed segment header: nothing in the file can be trusted.
      // Deregister it (it must never become the active segment — appends to
      // a headerless file would be unreadable on the next open) but leave
      // the bytes on disk for fsck to name.
      ::close(fd);
      fds_.erase(id);
      stats_.corrupt_records_skipped++;
      continue;
    }
    if (scan.torn_bytes > 0) {
      // Crash mid-append: amputate the torn tail so the next append starts
      // at a record boundary.
      const std::size_t keep = image.size() - scan.torn_bytes;
      const std::string path = dir_ + "/" + segment_file_name(id);
      if (::ftruncate(fd, static_cast<off_t>(keep)) < 0)
        sys_fail("ftruncate " + path);
      stats_.torn_tail_truncations++;
    }
    stats_.corrupt_records_skipped += scan.corrupt_records;
    total_payload_bytes +=
        image.size() - scan.torn_bytes - kSegmentHeaderSize;

    // Replay in log order: a later put supersedes, a tombstone kills.
    for (const ScannedRecord& rec : scan.records) {
      const std::string_view key(image.data() + rec.offset + kRecordHeaderSize,
                                 rec.header.key_len);
      IndexEntry erased;
      if (erase_live(rec.header.digest, key, &erased)) {
        stats_.live_stored_bytes -= record_bytes(erased.header);
        stats_.live_raw_bytes -= erased.header.raw_len;
        stats_.live_value_bytes -= erased.header.value_len;
        if (erased.header.codec == kCodecStored)
          stats_.stored_records--;
        else
          stats_.compressed_records--;
        stats_.entries--;
      }
      if (rec.header.flags == kRecordTombstone) continue;
      const IndexEntry entry{id, rec.offset, rec.header};
      index_[rec.header.digest].push_back(entry);
      eviction_order_.emplace_back(rec.header.digest, entry);
      stats_.live_stored_bytes += record_bytes(rec.header);
      stats_.live_raw_bytes += rec.header.raw_len;
      stats_.live_value_bytes += rec.header.value_len;
      if (rec.header.codec == kCodecStored)
        stats_.stored_records++;
      else
        stats_.compressed_records++;
      stats_.entries++;
    }
  }

  if (fds_.empty()) {
    active_segment_ = max_seen_id + 1;  // never clobber a rejected file
    create_segment(active_segment_);
    active_size_ = kSegmentHeaderSize;
    next_segment_id_ = active_segment_ + 1;
  } else {
    active_segment_ = fds_.rbegin()->first;
    struct stat st;
    if (::fstat(fds_.rbegin()->second, &st) < 0) sys_fail("fstat active");
    active_size_ = static_cast<std::size_t>(st.st_size);
    next_segment_id_ = std::max(active_segment_, max_seen_id) + 1;
  }
  // Whatever payload bytes the live records do not account for is dead
  // weight (superseded records, tombstones, corrupt stretches) that only
  // compaction reclaims.
  stats_.dead_stored_bytes = total_payload_bytes - stats_.live_stored_bytes;
  stats_.segments = fds_.size();
}

// ---- Appends ----------------------------------------------------------------

void SolutionStore::append_active(std::string_view bytes) {
  const int fd = fds_.at(active_segment_);
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t put = ::pwrite(fd, bytes.data() + done, bytes.size() - done,
                                 static_cast<off_t>(active_size_ + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      sys_fail("pwrite " + segment_file_name(active_segment_));
    }
    done += static_cast<std::size_t>(put);
  }
  active_size_ += bytes.size();
}

void SolutionStore::rotate_if_needed(std::size_t incoming) {
  if (active_size_ <= kSegmentHeaderSize) return;  // never rotate when empty
  if (active_size_ + incoming <= options_.segment_bytes) return;
  const int fd = fds_.at(active_segment_);
  ::fdatasync(fd);  // a sealed segment is never written again
  active_segment_ = next_segment_id_++;
  create_segment(active_segment_);
  active_size_ = kSegmentHeaderSize;
  stats_.segments = fds_.size();
}

bool SolutionStore::erase_live(std::uint64_t digest, std::string_view key,
                               IndexEntry* erased) {
  const auto bucket = index_.find(digest);
  if (bucket == index_.end()) return false;
  auto& entries = bucket->second;
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->header.key_len != key.size()) continue;
    if (read_record_key(*it) != key) continue;
    *erased = *it;
    entries.erase(it);
    if (entries.empty()) index_.erase(bucket);
    return true;
  }
  return false;
}

std::string SolutionStore::read_record_key(const IndexEntry& entry) {
  const int fd = fds_.at(entry.segment);
  std::string key(entry.header.key_len, '\0');
  std::size_t done = 0;
  const off_t base =
      static_cast<off_t>(entry.offset + kRecordHeaderSize);
  while (done < key.size()) {
    const ssize_t got =
        ::pread(fd, key.data() + done, key.size() - done,
                base + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      sys_fail("pread key");
    }
    if (got == 0) throw StoreError("record key truncated under us");
    done += static_cast<std::size_t>(got);
  }
  return key;
}

std::string SolutionStore::read_record_value(const IndexEntry& entry) {
  const int fd = fds_.at(entry.segment);
  std::string stored(entry.header.value_len, '\0');
  std::size_t done = 0;
  const off_t base = static_cast<off_t>(entry.offset + kRecordHeaderSize +
                                        entry.header.key_len);
  while (done < stored.size()) {
    const ssize_t got = ::pread(fd, stored.data() + done, stored.size() - done,
                                base + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      sys_fail("pread value");
    }
    if (got == 0) throw StoreError("record value truncated under us");
    done += static_cast<std::size_t>(got);
  }
  if (entry.header.codec == kCodecStored) return stored;
  std::string raw;
  lz_codec().decompress(stored, entry.header.raw_len, raw);
  return raw;
}

// ---- Public API -------------------------------------------------------------

std::optional<std::string> SolutionStore::get(std::uint64_t digest,
                                              std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto bucket = index_.find(digest);
  if (bucket != index_.end()) {
    for (const IndexEntry& entry : bucket->second) {
      if (entry.header.key_len != key.size()) continue;
      if (read_record_key(entry) != key) continue;
      try {
        std::string value = read_record_value(entry);
        stats_.hits++;
        return value;
      } catch (const CodecError&) {
        // CRC said the bytes were intact at open, the codec disagrees now:
        // treat as a miss rather than crash the gateway; compaction or a
        // fresh put will paper over it.
        break;
      }
    }
  }
  stats_.misses++;
  return std::nullopt;
}

void SolutionStore::put(std::uint64_t digest, std::string_view key,
                        std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);

  RecordHeader header;
  header.flags = kRecordPut;
  header.digest = digest;
  header.raw_len = static_cast<std::uint32_t>(value.size());
  std::string_view stored = value;
  if (options_.use_compression && lz_codec().compress(value, scratch_)) {
    header.codec = lz_codec().tag();
    stored = scratch_;
  } else {
    header.codec = kCodecStored;
  }
  // encode_record takes the lengths from the spans it writes; mirror them
  // into the header we index, or in-memory lookups would compare against 0.
  header.key_len = static_cast<std::uint32_t>(key.size());
  header.value_len = static_cast<std::uint32_t>(stored.size());

  std::string record;
  encode_record(header, key, stored, record);
  if (record.size() > options_.byte_budget) {
    stats_.oversize_rejects++;
    return;
  }

  IndexEntry old;
  if (erase_live(digest, key, &old)) {
    // Superseded in place: the old record is dead weight until compaction.
    stats_.live_stored_bytes -= record_bytes(old.header);
    stats_.live_raw_bytes -= old.header.raw_len;
    stats_.live_value_bytes -= old.header.value_len;
    stats_.dead_stored_bytes += record_bytes(old.header);
    if (old.header.codec == kCodecStored)
      stats_.stored_records--;
    else
      stats_.compressed_records--;
    stats_.entries--;
  }

  rotate_if_needed(record.size());
  const IndexEntry entry{active_segment_, active_size_, header};
  append_active(record);
  index_[digest].push_back(entry);
  eviction_order_.emplace_back(digest, entry);
  stats_.live_stored_bytes += record.size();
  stats_.live_raw_bytes += value.size();
  stats_.live_value_bytes += stored.size();
  if (header.codec == kCodecStored)
    stats_.stored_records++;
  else
    stats_.compressed_records++;
  stats_.entries++;
  stats_.appends++;

  evict_until_within_budget();
  maybe_auto_compact();
}

void SolutionStore::evict_until_within_budget() {
  while (stats_.live_stored_bytes > options_.byte_budget &&
         stats_.entries > 1 && !eviction_order_.empty()) {
    auto [digest, at] = eviction_order_.front();
    eviction_order_.pop_front();
    // Stale (superseded or already evicted) entries are skipped lazily.
    const auto bucket = index_.find(digest);
    if (bucket == index_.end()) continue;
    const auto it = std::find_if(
        bucket->second.begin(), bucket->second.end(),
        [&at](const IndexEntry& e) {
          return e.segment == at.segment && e.offset == at.offset;
        });
    if (it == bucket->second.end()) continue;

    const std::string key = read_record_key(*it);
    const IndexEntry victim = *it;
    bucket->second.erase(it);
    if (bucket->second.empty()) index_.erase(bucket);

    RecordHeader tomb;
    tomb.flags = kRecordTombstone;
    tomb.codec = kCodecStored;
    tomb.digest = digest;
    std::string record;
    encode_record(tomb, key, {}, record);
    rotate_if_needed(record.size());
    append_active(record);

    stats_.live_stored_bytes -= record_bytes(victim.header);
    stats_.live_raw_bytes -= victim.header.raw_len;
    stats_.live_value_bytes -= victim.header.value_len;
    stats_.dead_stored_bytes += record_bytes(victim.header) + record.size();
    if (victim.header.codec == kCodecStored)
      stats_.stored_records--;
    else
      stats_.compressed_records--;
    stats_.entries--;
    stats_.evictions++;
    stats_.tombstones++;
  }
}

void SolutionStore::maybe_auto_compact() {
  if (!options_.auto_compact) return;
  if (stats_.dead_stored_bytes > options_.byte_budget / 2) compact_locked();
}

void SolutionStore::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  compact_locked();
}

void SolutionStore::compact_locked() {
  // Live records in age order (skipping stale eviction refs), copied
  // verbatim — content and CRC are unchanged, only the address moves.
  std::vector<std::pair<std::uint64_t, IndexEntry>> live;
  live.reserve(stats_.entries);
  for (const auto& [digest, at] : eviction_order_) {
    const auto bucket = index_.find(digest);
    if (bucket == index_.end()) continue;
    const bool is_live = std::any_of(
        bucket->second.begin(), bucket->second.end(),
        [&at](const IndexEntry& e) {
          return e.segment == at.segment && e.offset == at.offset;
        });
    if (is_live) live.emplace_back(digest, at);
  }

  const std::vector<std::uint64_t> old_ids = [this] {
    std::vector<std::uint64_t> ids;
    ids.reserve(fds_.size());
    for (const auto& [id, fd] : fds_) ids.push_back(id);
    return ids;
  }();

  // Write the survivors into fresh segments (ids keep increasing: replay
  // order stays correct even if a crash leaves both copies on disk).
  active_segment_ = next_segment_id_++;
  create_segment(active_segment_);
  active_size_ = kSegmentHeaderSize;

  std::unordered_map<std::uint64_t, std::vector<IndexEntry>> new_index;
  std::deque<std::pair<std::uint64_t, IndexEntry>> new_order;
  std::string record;
  for (auto& [digest, at] : live) {
    const std::size_t size = record_bytes(at.header);
    record.resize(size);
    const int fd = fds_.at(at.segment);
    std::size_t done = 0;
    while (done < size) {
      const ssize_t got = ::pread(fd, record.data() + done, size - done,
                                  static_cast<off_t>(at.offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        sys_fail("pread compact");
      }
      if (got == 0) throw StoreError("record truncated during compact");
      done += static_cast<std::size_t>(got);
    }
    rotate_if_needed(size);
    const IndexEntry entry{active_segment_, active_size_, at.header};
    append_active(record);
    new_index[digest].push_back(entry);
    new_order.emplace_back(digest, entry);
  }
  ::fdatasync(fds_.at(active_segment_));

  // Drop the old segments, oldest first: a put is always older than its
  // tombstone, so a crash part-way through cannot resurrect a dead key.
  for (const std::uint64_t id : old_ids) {
    const auto it = fds_.find(id);
    ::close(it->second);
    fds_.erase(it);
    const std::string path = dir_ + "/" + segment_file_name(id);
    if (::unlink(path.c_str()) < 0) sys_fail("unlink " + path);
  }

  index_ = std::move(new_index);
  eviction_order_ = std::move(new_order);
  stats_.dead_stored_bytes = 0;
  stats_.segments = fds_.size();
  stats_.compactions++;
}

void SolutionStore::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = fds_.find(active_segment_);
  if (it != fds_.end()) ::fdatasync(it->second);
}

StoreStats SolutionStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ---- fsck -------------------------------------------------------------------

FsckReport SolutionStore::fsck(const std::string& dir) {
  FsckReport report;
  const std::vector<std::uint64_t> ids = list_segments(dir);

  // Newest-wins replay to count live entries; collisions resolved by the
  // actual key bytes (all in memory here — fsck is offline tooling).
  std::unordered_map<std::uint64_t, std::vector<std::string>> live;
  std::size_t live_count = 0;

  for (const std::uint64_t id : ids) {
    const std::string path = dir + "/" + segment_file_name(id);
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) sys_fail("open " + path);
    std::string image;
    try {
      image = read_whole_file(fd, path);
    } catch (...) {
      ::close(fd);
      throw;
    }
    ::close(fd);

    const SegmentScan scan = scan_segment(image);
    FsckReport::Segment seg;
    seg.file = segment_file_name(id);
    seg.header_ok = scan.header_ok;
    seg.file_bytes = image.size();
    seg.records = scan.records.size();
    seg.torn_bytes = scan.torn_bytes;
    seg.corrupt_bytes = scan.corrupt_bytes;
    seg.corrupt_records = scan.corrupt_records;
    report.segments.push_back(seg);
    report.records += scan.records.size();
    report.corrupt_records += scan.corrupt_records;
    if (scan.torn_bytes > 0) report.torn_segments++;

    for (const ScannedRecord& rec : scan.records) {
      std::string key(image, rec.offset + kRecordHeaderSize,
                      rec.header.key_len);
      auto& keys = live[rec.header.digest];
      const auto it = std::find(keys.begin(), keys.end(), key);
      if (rec.header.flags == kRecordTombstone) {
        if (it != keys.end()) {
          keys.erase(it);
          live_count--;
        }
      } else if (it == keys.end()) {
        keys.push_back(std::move(key));
        live_count++;
      }
    }
  }
  report.live_entries = live_count;
  return report;
}

}  // namespace cnash::store
