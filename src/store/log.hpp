#pragma once
// store — the on-disk log format shared by the SolutionStore, its recovery
// scan and the offline fsck. One segment file is:
//
//   +--------------------------------+
//   | segment header  "CNSG1\n\0\0"  |  8 bytes
//   +--------------------------------+
//   | record | record | record | ... |  appended, never rewritten in place
//   +--------------------------------+
//
// and one record is:
//
//   offset  size  field
//        0     4  record magic 0x4C4E5343 ("CSNL", little-endian)
//        4     4  crc32 (IEEE) over bytes [8, 30 + key_len + value_len)
//        8     1  flags: 1 = put, 2 = tombstone
//        9     1  codec tag: 0 = stored, 1 = lz (see codec.hpp)
//       10     4  key_len    (bytes of GameKey blob)
//       14     4  value_len  (bytes as stored on disk, post-codec)
//       18     4  raw_len    (bytes after decoding; == value_len when stored)
//       22     8  key digest (FNV-1a 64 of the key blob — the index address)
//       30     *  key bytes, then value bytes
//
// All integers are little-endian, written explicitly (the format is a file,
// not a struct dump). The CRC covers everything after itself, so a torn or
// bit-flipped record can never replay: recovery truncates an incomplete
// record at the tail (a crash mid-append) and resynchronises on the record
// magic past a CRC failure mid-file, keeping every intact record after it.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cnash::store {

/// Plain table-driven CRC32 (IEEE 802.3 polynomial, the zlib/ethernet one).
std::uint32_t crc32(const void* data, std::size_t size);

inline constexpr std::uint32_t kRecordMagic = 0x4C4E5343u;  // "CSNL"
inline constexpr std::size_t kSegmentHeaderSize = 8;
inline constexpr std::size_t kRecordHeaderSize = 30;
inline constexpr unsigned char kSegmentHeader[kSegmentHeaderSize] = {
    'C', 'N', 'S', 'G', '1', '\n', '\0', '\0'};

enum RecordFlags : unsigned char {
  kRecordPut = 1,
  /// Budget eviction: key only, value_len == raw_len == 0. On replay the key
  /// is removed from the index (a put is always older than its tombstone, so
  /// compaction may delete segments oldest-first without resurrecting keys).
  kRecordTombstone = 2,
};

struct RecordHeader {
  unsigned char flags = kRecordPut;
  unsigned char codec = 0;
  std::uint32_t key_len = 0;
  std::uint32_t value_len = 0;
  std::uint32_t raw_len = 0;
  std::uint64_t digest = 0;
};

/// Append one framed record (magic + crc computed here) to `out`.
void encode_record(const RecordHeader& header, std::string_view key,
                   std::string_view value, std::string& out);

/// One intact record found by scan_segment; offsets are into the segment
/// file, so key bytes start at offset + kRecordHeaderSize.
struct ScannedRecord {
  RecordHeader header;
  std::size_t offset = 0;
};

struct SegmentScan {
  bool header_ok = false;  // false: not a segment file, nothing salvaged
  std::vector<ScannedRecord> records;
  /// Bytes of an incomplete record at EOF (crash mid-append). Repair is
  /// truncation to file_size - torn_bytes.
  std::size_t torn_bytes = 0;
  /// Bytes skipped mid-file to resynchronise past CRC failures or garbage.
  /// Not repaired in place — compaction rewrites the survivors.
  std::size_t corrupt_bytes = 0;
  /// Records dropped to corruption (CRC mismatches detected).
  std::size_t corrupt_records = 0;
};

/// Scan one whole segment image. Never throws: every anomaly is reported in
/// the result so the caller (recovery or fsck) decides what to do with it.
SegmentScan scan_segment(std::string_view bytes);

/// Segment file name for an id: "segment-000042.log".
std::string segment_file_name(std::uint64_t id);
/// Inverse; returns false unless `name` matches the pattern exactly.
bool parse_segment_file_name(const std::string& name, std::uint64_t& id);

}  // namespace cnash::store
