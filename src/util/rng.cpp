#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cnash::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  // Lemire's multiply-shift rejection method: unbiased.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p_true) { return uniform() < p_true; }

Rng Rng::split() {
  std::uint64_t sm = (*this)();
  return Rng(splitmix64(sm));
}

Rng Rng::split(std::uint64_t key) const {
  // Fold the full 256-bit state and the key through two splitmix64 rounds so
  // nearby keys (0, 1, 2, ...) land in unrelated streams.
  std::uint64_t sm = s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  sm ^= 0x9e3779b97f4a7c15ULL * (key + 1);
  std::uint64_t seed = splitmix64(sm);
  seed ^= splitmix64(sm);
  return Rng(seed);
}

}  // namespace cnash::util
