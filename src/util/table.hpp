#pragma once
// Minimal aligned-table / CSV emitter. Every bench binary regenerating a paper
// table or figure prints through this so outputs share one format.

#include <string>
#include <vector>

namespace cnash::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Aligned, boxed, human-readable rendering.
  std::string pretty() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cnash::util
