#pragma once
// Streaming statistics and simple histograms used by Monte-Carlo device sweeps
// (Fig. 2/7) and by the solver metrics (success rates, distributions).

#include <cstddef>
#include <string>
#include <vector>

namespace cnash::util {

/// Welford online accumulator: numerically stable mean/variance in one pass.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance() const;
  /// Sample variance (divide by n-1).
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins; values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t i) const;
  /// Fraction of samples in bin i (0 when empty).
  double density(std::size_t i) const;
  /// Simple fixed-width ASCII rendering, one line per bin.
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile of a copy of `xs` (linear interpolation). p in [0,100].
double percentile(std::vector<double> xs, double p);

}  // namespace cnash::util
