#pragma once
// util — build identity. The short git SHA is baked into this one
// translation unit at configure time (CNASH_GIT_SHA, see CMakeLists.txt) so
// the `status` wire method and archived bench artifacts can attribute a
// running server to a commit without rebuilding the whole library whenever
// HEAD moves.

namespace cnash::util {

/// Short (12-hex) git SHA of the build, or "unknown" outside a git checkout.
const char* build_git_sha();

}  // namespace cnash::util
