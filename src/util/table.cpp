#include "util/table.hpp"

#include <cstdio>
#include <stdexcept>

namespace cnash::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need >= 1 header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pretty() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ' + row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
      line += '|';
    }
    return line + '\n';
  };

  std::string rule = "+";
  for (auto w : widths) {
    rule.append(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule + emit_row(headers_) + rule;
  for (const auto& row : rows_) out += emit_row(row);
  out += rule;
  return out;
}

std::string Table::csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    return q + '"';
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += quote(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace cnash::util
