#include "util/build_info.hpp"

#ifndef CNASH_GIT_SHA
#define CNASH_GIT_SHA "unknown"
#endif

namespace cnash::util {

const char* build_git_sha() { return CNASH_GIT_SHA; }

}  // namespace cnash::util
