#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cnash::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(n_);
  const double n_b = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_ab = n_a + n_b;
  mean_ += delta * n_b / n_ab;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n_ab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::density(std::size_t i) const {
  return total_ ? static_cast<double>(counts_.at(i)) / static_cast<double>(total_)
                : 0.0;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / max_count;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%10.4g | ", bin_center(i));
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace cnash::util
