#pragma once
// Deterministic, fast pseudo-random number generation for all stochastic parts of
// the simulator (SA moves, Monte-Carlo device sampling, random game generation).
//
// xoshiro256++ (Blackman & Vigna) seeded through splitmix64. Deterministic across
// platforms, unlike std::default_random_engine; every experiment in the repo is
// reproducible from a single 64-bit seed.

#include <array>
#include <cstdint>

namespace cnash::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second draw).
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p_true);

  /// Split off an independent stream (jump-free; reseeds via splitmix of state).
  /// Advances this generator by one draw.
  Rng split();

  /// Counter-derived keyed split: an independent stream addressed by `key`,
  /// WITHOUT advancing this generator. The same (state, key) pair always
  /// yields the same stream, so a pool of workers can reproduce the exact
  /// per-run streams of a serial sweep regardless of which worker picks up
  /// which run — the basis of the SolverEngine's thread-count-invariant
  /// determinism.
  Rng split(std::uint64_t key) const;

 private:
  std::array<std::uint64_t, 4> s_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cnash::util
