#pragma once
// Small shared bit arithmetic.

#include <cstddef>

namespace cnash::util {

/// ceil(log2(x)) for x >= 1 (0 for x <= 1): the stage depth of a binary
/// reduction tree (WTA tree, H-tree adder) over x inputs.
inline std::size_t ceil_log2(std::size_t x) {
  std::size_t depth = 0;
  for (std::size_t span = 1; span < x; span <<= 1) ++depth;
  return depth;
}

}  // namespace cnash::util
