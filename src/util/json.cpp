#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cnash::util {

namespace {

constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Round-trip precision without noise: prefer the shortest of %.17g / %g
  // that parses back to the same double, so integers and short decimals stay
  // readable in golden files and on the wire.
  char shorter[40];
  std::snprintf(shorter, sizeof shorter, "%g", v);
  if (std::strtod(shorter, nullptr) == v)
    out += shorter;
  else
    out += buf;
}

/// Recursive-descent parser over [text, text+size). Throws JsonError.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json run() {
    Json v = value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonError(pos_, message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Json value(int depth) {
    if (depth > kMaxDepth) fail("nesting depth limit exceeded");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return Json::string(string());
      case 't':
        if (consume("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume("null")) return Json::null();
        fail("invalid literal");
      default: return number();
    }
  }

  Json object(int depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.set(key, value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json array(int depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push(value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  unsigned hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9')
        code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  std::string string() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape sequence");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const unsigned low = hex4();
              if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              fail("unpaired surrogate in \\u escape");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      pos_ = start;
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    return Json::number(std::strtod(text_.c_str() + start, nullptr));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonError::JsonError(std::size_t offset, const std::string& message)
    : std::runtime_error("json: " + message + " (offset " +
                         std::to_string(offset) + ")"),
      offset_(offset) {}

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.flag_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::parse(const std::string& text) { return Parser(text).run(); }

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw JsonError(0, "expected a boolean");
  return flag_;
}

double Json::as_number() const {
  if (type_ == Type::kNull) return std::nan("");  // null ↔ NaN round-trip
  if (type_ != Type::kNumber) throw JsonError(0, "expected a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw JsonError(0, "expected a string");
  return str_;
}

std::size_t Json::size() const {
  return (type_ == Type::kArray || type_ == Type::kObject) ? children_.size()
                                                           : 0;
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) throw JsonError(0, "expected an array");
  if (index >= children_.size()) throw JsonError(0, "array index out of range");
  return children_[index].second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& kv : children_)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw JsonError(0, "missing field \"" + key + "\"");
  return *v;
}

Json& Json::set(const std::string& key, Json v) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw JsonError(0, "set() on a non-object");
  for (auto& kv : children_)
    if (kv.first == key) {
      kv.second = std::move(v);
      return *this;
    }
  children_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw JsonError(0, "push() on a non-array");
  children_.emplace_back(std::string(), std::move(v));
  return children_.back().second;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += flag_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, num_); return;
    case Type::kString: append_escaped(out, str_); return;
    case Type::kArray:
    case Type::kObject: {
      const bool is_obj = type_ == Type::kObject;
      out += is_obj ? '{' : '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ',';
        if (indent > 0) {
          out += '\n';
          out.append(static_cast<std::size_t>((depth + 1) * indent), ' ');
        }
        if (is_obj) {
          append_escaped(out, children_[i].first);
          out += ':';
          if (indent > 0) out += ' ';
        }
        children_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent > 0 && !children_.empty()) {
        out += '\n';
        out.append(static_cast<std::size_t>(depth * indent), ' ');
      }
      out += is_obj ? '}' : ']';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::pretty(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace cnash::util
