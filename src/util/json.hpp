#pragma once
// util::Json — a minimal ordered JSON document: parse, build, dump. Shared by
// the core SolveReport serializer, the serve/ wire protocol and the CLI
// drivers, so every JSON line the repo emits or accepts goes through one
// implementation. Objects keep insertion order (rendering is deterministic —
// the serving cache relies on byte-identical replay of a response), numbers
// are doubles printed with round-trip precision, and non-finite numbers dump
// as null (JSON has no NaN/Inf; parse maps null back to NaN where the schema
// expects a number).
//
// The parser is defensive — it fronts a TCP server: depth-limited recursion,
// exact offsets in errors, no exceptions other than JsonError.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace cnash::util {

/// Thrown on malformed input with the 0-based byte offset of the failure.
class JsonError : public std::runtime_error {
 public:
  JsonError(std::size_t offset, const std::string& message);
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Parse one complete JSON document (trailing whitespace allowed, trailing
  /// garbage is an error). Throws JsonError.
  static Json parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError(0, ...) on a type mismatch so protocol
  /// handlers surface schema errors uniformly.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  /// Array / object size (0 for scalars).
  std::size_t size() const;

  /// Array element access (throws on range/type errors).
  const Json& at(std::size_t index) const;

  /// Object member lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  /// find() or throw JsonError naming the missing key.
  const Json& at(const std::string& key) const;

  /// Object members / array elements in document order. Array elements carry
  /// empty keys.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return children_;
  }

  // ---- Builders (turn *this into an object/array as needed) ----------------
  Json& set(const std::string& key, Json v);
  Json& set(const std::string& key, double v) { return set(key, number(v)); }
  Json& set(const std::string& key, int v) {
    return set(key, number(static_cast<double>(v)));
  }
  Json& set(const std::string& key, std::size_t v) {
    return set(key, number(static_cast<double>(v)));
  }
  Json& set(const std::string& key, bool v) { return set(key, boolean(v)); }
  Json& set(const std::string& key, const char* v) {
    return set(key, string(v));
  }
  Json& set(const std::string& key, const std::string& v) {
    return set(key, string(v));
  }
  /// Appends to an array (turns a null into an array first) and returns the
  /// appended element.
  Json& push(Json v);
  Json& push() { return push(Json()); }

  /// Compact single-line rendering (the wire format).
  std::string dump() const;
  /// Indented rendering (golden files, human inspection).
  std::string pretty(int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool flag_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> children_;
};

}  // namespace cnash::util
