#pragma once
// util::FaultPlan — deterministic fault injection for the failure-containment
// layer. One plan describes WHICH faults to inject and at what rate; WHERE
// they land is decided by keyed-RNG rolls addressed by (scope, index), so an
// injection site fires identically for a given plan no matter which worker
// thread, pool size or scheduling order reaches it — faulty runs are exactly
// as reproducible as fault-free ones.
//
// A disabled plan (all rates zero — the default) performs no RNG work at all:
// roll() short-circuits before constructing a generator, so the bit-exactness
// contract of every backend is untouched when injection is off.
//
// Solver-side faults (unit_failure/tile_failure/unit_delay) flow through
// SolveRequest and are only accepted by the "resilient" meta-backend
// (core/resilient); server-side socket faults (write_stall/disconnect) are
// read from CNASH_FAULT_* environment knobs by the nash_serve binary and
// drive the chaos harness.

#include <cstdint>

namespace cnash::util {

struct FaultPlan {
  /// Root of every injection roll; two plans with equal rates and seeds
  /// inject identical fault sets.
  std::uint64_t seed = 0;

  // ---- Solver-side (SolveRequest.fault; "resilient" backend only) ----------
  /// Probability that a solve unit throws before its primary backend runs.
  double unit_failure_rate = 0.0;
  /// Probability that a modeled chip tile is declared dead at program time
  /// (hardware-sa-tiled primaries; detected by the TiledCrossbar read-back).
  double tile_failure_rate = 0.0;
  /// Probability that a solve unit sleeps unit_delay_s before running.
  double unit_delay_rate = 0.0;
  double unit_delay_s = 0.0;

  // ---- Server-side (CNASH_FAULT_* env; nash_serve socket loop) -------------
  /// Probability that a flush event sends at most one byte (short write to a
  /// slow peer; the buffered output drains via POLLOUT).
  double write_stall_rate = 0.0;
  /// Probability that a flush event tears the connection down mid-response.
  double disconnect_rate = 0.0;

  /// Independent roll families; a (scope, index) pair addresses one
  /// injection site.
  enum class Scope : std::uint64_t {
    kUnit = 1,        // index = unit index
    kTile = 2,        // index = instance-scoped tile index
    kDelay = 3,       // index = unit index
    kWriteStall = 4,  // index = connection-scoped write sequence
    kDisconnect = 5,  // index = connection-scoped write sequence
  };

  bool solver_faults() const {
    return unit_failure_rate > 0.0 || tile_failure_rate > 0.0 ||
           unit_delay_rate > 0.0;
  }
  bool server_faults() const {
    return write_stall_rate > 0.0 || disconnect_rate > 0.0;
  }

  /// Deterministic Bernoulli(rate) addressed by (seed, scope, index).
  /// rate <= 0 returns false without touching any RNG; rate >= 1 always fires.
  bool roll(Scope scope, std::uint64_t index, double rate) const;

  /// The same plan re-keyed for a per-run evaluator instance, so tile rolls
  /// are independent across the Monte-Carlo chip instances of a job while
  /// staying deterministic in (plan seed, instance key).
  FaultPlan for_instance(std::uint64_t instance_key) const;
};

/// Server-side plan from CNASH_FAULT_{SEED, UNIT_RATE, TILE_RATE, DELAY_RATE,
/// DELAY_S, WRITE_STALL, DISCONNECT}. Unset/invalid variables keep defaults.
FaultPlan fault_plan_from_env();

}  // namespace cnash::util
