#include "util/fault.hpp"

#include <cstdlib>
#include <string>

#include "util/rng.hpp"

namespace cnash::util {

bool FaultPlan::roll(Scope scope, std::uint64_t index, double rate) const {
  if (!(rate > 0.0)) return false;
  if (rate >= 1.0) return true;
  // A keyed split of Rng(seed) per (scope, index): the same site fires for
  // the same plan regardless of evaluation order. Scopes occupy the top key
  // bits so the same index in different scopes rolls independently.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(scope) << 58) ^ index;
  return Rng(seed).split(key).uniform() < rate;
}

FaultPlan FaultPlan::for_instance(std::uint64_t instance_key) const {
  FaultPlan sub = *this;
  std::uint64_t state = seed ^ (instance_key * 0x9e3779b97f4a7c15ULL);
  sub.seed = splitmix64(state);
  return sub;
}

namespace {

double env_rate(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || parsed < 0.0) return fallback;
  return parsed;
}

}  // namespace

FaultPlan fault_plan_from_env() {
  FaultPlan plan;
  if (const char* v = std::getenv("CNASH_FAULT_SEED"))
    plan.seed = std::strtoull(v, nullptr, 0);
  plan.unit_failure_rate = env_rate("CNASH_FAULT_UNIT_RATE", 0.0);
  plan.tile_failure_rate = env_rate("CNASH_FAULT_TILE_RATE", 0.0);
  plan.unit_delay_rate = env_rate("CNASH_FAULT_DELAY_RATE", 0.0);
  plan.unit_delay_s = env_rate("CNASH_FAULT_DELAY_S", 0.0);
  plan.write_stall_rate = env_rate("CNASH_FAULT_WRITE_STALL", 0.0);
  plan.disconnect_rate = env_rate("CNASH_FAULT_DISCONNECT", 0.0);
  return plan;
}

}  // namespace cnash::util
