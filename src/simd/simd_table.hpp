#pragma once
// Internal: the per-ISA kernel function table. Each ISA translation unit
// (simd_scalar.cpp / simd_avx2.cpp / simd_avx512.cpp) compiles the shared
// kernel bodies from kernels.inc into its own namespace and exports one
// KernelTable; simd.cpp selects the table at runtime.

#include <cstddef>

#include "simd/simd.hpp"

namespace cnash::simd {

struct KernelTable {
  void (*accumulate)(double*, const double*, std::size_t);
  void (*add_diff)(double*, const double*, const double*, std::size_t);
  void (*add_scaled_diff)(double*, const double*, const double*, double,
                          std::size_t);
  void (*axpy)(double*, double, const double*, std::size_t);
  void (*axpy_skip)(double*, double, const double*, std::size_t, std::size_t);
  double (*dot)(const double*, const double*, std::size_t);
  double (*max_value)(const double*, std::size_t);
  void (*normal_pairs)(const std::uint64_t*, double*, std::size_t);
  void (*off_cell_accumulate)(double*, const double*, std::size_t, double,
                              double);
  void (*on_cell_accumulate)(double*, const double*, const double*,
                             const double*, std::size_t, const OnCellParams&);
};

namespace scalar_isa {
extern const KernelTable kTable;
}
#if defined(CNASH_SIMD_ISA)
namespace avx2_isa {
extern const KernelTable kTable;
}
namespace avx512_isa {
extern const KernelTable kTable;
}
#endif

}  // namespace cnash::simd
