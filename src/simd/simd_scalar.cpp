// Baseline kernel variant: compiled with the project's default architecture
// flags (plus -ffp-contract=off) — runs on any x86-64 and is the reference
// the AVX variants must match bit-for-bit.

#include <bit>
#include <cmath>

#include "simd/simd_table.hpp"

#define CNASH_SIMD_NS scalar_isa
#include "simd/kernels.inc"
