// AVX2 kernel variant: same source as simd_scalar.cpp, compiled with -mavx2
// -ffp-contract=off (see CMakeLists.txt). Only built when CNASH_SIMD=ON.

#include <bit>
#include <cmath>

#include "simd/simd_table.hpp"

#define CNASH_SIMD_NS avx2_isa
#include "simd/kernels.inc"
