#pragma once
// simd:: — runtime-dispatched vector kernels for the hot per-iteration loops
// (exact MAX-QUBO delta updates, crossbar delta/accumulate reads, QUBO
// annealer field updates) and for bulk device sampling (batched Box-Muller
// normals, subthreshold exp10).
//
// Dispatch model: every kernel has one C++ definition (simd/kernels.inc)
// compiled into three translation units — baseline (scalar/SSE2), AVX2 and
// AVX-512 — that differ only in the -m flags handed to the compiler. All
// kernels are element-wise or use a fixed 8-lane reduction tree, and every TU
// is built with -ffp-contract=off, so the three variants are BIT-IDENTICAL:
// the auto-vectorizer may reorder independent element operations but never
// the dependency chain of any single element, and no variant may fuse a
// mul+add into an fma. The active variant is picked once at startup from
// CPUID, and can be pinned for debugging:
//
//   * environment: CNASH_FORCE_SCALAR=1 selects the baseline variant;
//   * programmatic: force_level() (tests / benches compare variants).
//
// Building with -DCNASH_SIMD=OFF omits the AVX TUs entirely (the scalar
// fallback is the only variant); that configuration must run the same —
// bit-identically — on any x86-64, which the CI -mno-avx2 job checks.

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace cnash::simd {

enum class IsaLevel : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Human-readable level name ("scalar", "avx2", "avx512").
const char* level_name(IsaLevel level);

/// Best level this build + CPU supports (env overrides NOT applied).
IsaLevel max_supported_level();

/// The level all kernels currently dispatch to. Resolved once from
/// max_supported_level() and CNASH_FORCE_SCALAR on first use.
IsaLevel active_level();

/// Pin dispatch to `level` (tests/benches). Returns false — leaving the
/// active level unchanged — when the build or CPU cannot run `level`.
bool force_level(IsaLevel level);

// ---- Element-wise kernels (identical bits at every level) -------------------

/// y[i] += x[i]
void accumulate(double* y, const double* x, std::size_t n);

/// y[i] += a[i] - b[i]
void add_diff(double* y, const double* a, const double* b, std::size_t n);

/// y[i] += (a[i] - b[i]) * t — the exact MAX-QUBO row/column delta update.
void add_scaled_diff(double* y, const double* a, const double* b, double t,
                     std::size_t n);

/// y[i] += s * x[i]
void axpy(double* y, double s, const double* x, std::size_t n);

/// y[i] += s * x[i] for i != skip (skip >= n applies to all i) — the QUBO
/// annealer's accepted-flip field update.
void axpy_skip(double* y, double s, const double* x, std::size_t n,
               std::size_t skip);

// ---- Reductions -------------------------------------------------------------

/// Dot product over a FIXED 8-accumulator reduction tree (lane l sums
/// elements with index ≡ l mod 8, lanes folded pairwise, sequential tail) so
/// the result is identical no matter which vector width executes it.
double dot(const double* a, const double* b, std::size_t n);

/// max(x[0..n)) with std::max_element semantics (first maximum wins). n >= 1.
double max_value(const double* x, std::size_t n);

// ---- Bulk device sampling ---------------------------------------------------

/// Fills out[0..n) with standard normals via batched Box-Muller on its own
/// polynomial log/sin/cos (bit-identical at every level — unlike libm).
/// Consumes exactly 2*ceil(n/2) raw 64-bit draws from `rng`, in order.
/// NOTE: this is a different (but equally exact) variate stream than repeated
/// util::Rng::normal() calls.
void fill_normals(util::Rng& rng, double* out, std::size_t n);

/// sum[i] += i_off0 * 10^(c * zv[i]) — OFF-cell subthreshold leakage of a
/// batch of cells with V_TH offsets sigma_vth*zv (c folds sigma and slope).
void off_cell_accumulate(double* sum, const double* zv, std::size_t n,
                         double i_off0, double c);

/// Linearised ON/intermediate-level cell currents accumulated into `sum`:
///   vth = sigma_vth * zv[i]
///   rel = clamp(sigma_r_rel * zr[i], ±3*sigma_r_rel)
///   on  = max(0, i_on0 + don_dvth*vth + don_dr*(r_nominal*rel))
///   cur = frac * on;  if (mlc_sigma > 0) cur *= 1 + mlc_sigma*zm[i]
///   sum[i] += max(0, cur)
/// zm may be null when mlc_sigma == 0.
struct OnCellParams {
  double i_on0;
  double don_dvth;
  double don_dr;
  double sigma_vth;
  double sigma_r_rel;
  double r_nominal;
  double frac;
  double mlc_sigma;
};
void on_cell_accumulate(double* sum, const double* zv, const double* zr,
                        const double* zm, std::size_t n,
                        const OnCellParams& p);

}  // namespace cnash::simd
