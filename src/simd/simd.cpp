// Runtime dispatch for the simd:: kernels: pick the widest ISA variant the
// CPU supports (unless CNASH_FORCE_SCALAR or force_level() pins one) and
// route every public kernel through a function-pointer table. Because all
// variants are bit-identical, switching levels never changes results — only
// throughput.

#include "simd/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "simd/simd_table.hpp"

namespace cnash::simd {
namespace {

const KernelTable* table_for(IsaLevel level) {
#if defined(CNASH_SIMD_ISA)
  switch (level) {
    case IsaLevel::kAvx512:
      return &avx512_isa::kTable;
    case IsaLevel::kAvx2:
      return &avx2_isa::kTable;
    case IsaLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return &scalar_isa::kTable;
}

IsaLevel detect_max_level() {
#if defined(CNASH_SIMD_ISA) && (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl"))
    return IsaLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
#endif
  return IsaLevel::kScalar;
}

IsaLevel initial_level() {
  const char* force = std::getenv("CNASH_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0')
    return IsaLevel::kScalar;
  return detect_max_level();
}

struct Dispatch {
  std::atomic<const KernelTable*> table;
  std::atomic<int> level;
  Dispatch() {
    const IsaLevel l = initial_level();
    level.store(static_cast<int>(l), std::memory_order_relaxed);
    table.store(table_for(l), std::memory_order_relaxed);
  }
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

const KernelTable& active() {
  return *dispatch().table.load(std::memory_order_acquire);
}

}  // namespace

const char* level_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx512:
      return "avx512";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kScalar:
      break;
  }
  return "scalar";
}

IsaLevel max_supported_level() {
  static const IsaLevel level = detect_max_level();
  return level;
}

IsaLevel active_level() {
  return static_cast<IsaLevel>(
      dispatch().level.load(std::memory_order_acquire));
}

bool force_level(IsaLevel level) {
  if (static_cast<int>(level) > static_cast<int>(max_supported_level()))
    return false;
  Dispatch& d = dispatch();
  d.level.store(static_cast<int>(level), std::memory_order_release);
  d.table.store(table_for(level), std::memory_order_release);
  return true;
}

void accumulate(double* y, const double* x, std::size_t n) {
  active().accumulate(y, x, n);
}

void add_diff(double* y, const double* a, const double* b, std::size_t n) {
  active().add_diff(y, a, b, n);
}

void add_scaled_diff(double* y, const double* a, const double* b, double t,
                     std::size_t n) {
  active().add_scaled_diff(y, a, b, t, n);
}

void axpy(double* y, double s, const double* x, std::size_t n) {
  active().axpy(y, s, x, n);
}

void axpy_skip(double* y, double s, const double* x, std::size_t n,
               std::size_t skip) {
  active().axpy_skip(y, s, x, n, skip);
}

double dot(const double* a, const double* b, std::size_t n) {
  return active().dot(a, b, n);
}

double max_value(const double* x, std::size_t n) {
  return active().max_value(x, n);
}

void fill_normals(util::Rng& rng, double* out, std::size_t n) {
  // Draw raw uniforms serially (the generator is inherently sequential),
  // then hand whole chunks of pairs to the vectorized Box-Muller kernel.
  constexpr std::size_t kPairChunk = 128;
  std::uint64_t raw[2 * kPairChunk];
  double vals[2 * kPairChunk];
  const KernelTable& k = active();
  std::size_t produced = 0;
  while (produced < n) {
    const std::size_t want = n - produced;
    const std::size_t pairs = std::min(kPairChunk, (want + 1) / 2);
    for (std::size_t t = 0; t < 2 * pairs; ++t) raw[t] = rng();
    k.normal_pairs(raw, vals, pairs);
    const std::size_t take = std::min(want, 2 * pairs);
    std::copy_n(vals, take, out + produced);
    produced += take;
  }
}

void off_cell_accumulate(double* sum, const double* zv, std::size_t n,
                         double i_off0, double c) {
  active().off_cell_accumulate(sum, zv, n, i_off0, c);
}

void on_cell_accumulate(double* sum, const double* zv, const double* zr,
                        const double* zm, std::size_t n,
                        const OnCellParams& p) {
  active().on_cell_accumulate(sum, zv, zr, zm, n, p);
}

}  // namespace cnash::simd
