// AVX-512 kernel variant: same source as simd_scalar.cpp, compiled with
// -mavx512f -mavx512dq -mavx512vl -ffp-contract=off (see CMakeLists.txt).
// -ffp-contract=off is load-bearing here: AVX-512 implies FMA and GCC would
// otherwise contract a*b+c, changing bits versus the scalar variant. Only
// built when CNASH_SIMD=ON.

#include <bit>
#include <cmath>

#include "simd/simd_table.hpp"

#define CNASH_SIMD_NS avx512_isa
#include "simd/kernels.inc"
