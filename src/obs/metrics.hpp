#pragma once
// obs — lock-cheap metrics registry: named counters, gauges and log-linear
// histograms with exact-count percentile extraction, rendered as ordered JSON
// (the `metrics` wire method) and Prometheus-style text exposition.
//
// Hot-path cost model: every instrument update is a handful of relaxed
// atomic operations — no locks, no allocation — so instruments can sit on
// the gateway's per-request path and inside SolverService workers without
// perturbing what they measure. The registry's mutex guards only
// registration and scrape-time iteration (both rare); callers cache the
// returned instrument reference, whose address is stable for the registry's
// lifetime.
//
// Histogram design: log-linear buckets — each power-of-two octave is split
// into kSubBuckets equal-width linear sub-buckets, giving a worst-case
// relative resolution of 1/kSubBuckets (6.25%) across ~24 decades, in a
// fixed ~10 KiB footprint. percentile(q) returns the LOWER BOUND of the
// bucket holding the rank-⌈q·n⌉ sample, so samples recorded exactly at
// bucket boundaries reproduce exactly (the unit tests pin this down). count
// and sum are exact; merge() is associative (bucket-wise addition), so
// per-thread histograms can be combined without loss.
//
// Mirrored stats: subsystems that already keep their own aggregate structs
// under their own locks (cache, admission, store, ServedStats) register a
// collect callback; the registry runs all callbacks at the top of a scrape
// so those instruments are refreshed consistently. Callbacks run outside
// the registry mutex and may take subsystem locks.

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace cnash::obs {

/// Monotonic event counter. add() is the hot-path entry; set() overwrites —
/// it exists for instruments mirroring an externally-maintained monotonic
/// total (CacheStats::hits et al.) at scrape time.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, resident bytes, uptime).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Everything a scrape needs from one histogram, taken in one pass.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::quiet_NaN();
  double max = std::numeric_limits<double>::quiet_NaN();
  double p50 = std::numeric_limits<double>::quiet_NaN();
  double p95 = std::numeric_limits<double>::quiet_NaN();
  double p99 = std::numeric_limits<double>::quiet_NaN();
};

class Histogram {
 public:
  /// Octave split: 16 linear sub-buckets per power of two.
  static constexpr int kSubBuckets = 16;
  /// frexp exponents covered: values in [2^(kMinExp-1), 2^kMaxExp).
  /// [-40, 40] spans ~9e-13 .. ~1e12 — nanoseconds to wall-clock hours with
  /// generous margin either side.
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  /// [0] underflow (incl. zero/negative/non-finite), [last] overflow.
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets + 2;

  /// O(1), lock-free, allocation-free.
  void record(double value);

  /// Bucket index for a value and the lower bound of bucket `index`
  /// (index 0 → 0.0). Exposed for the boundary unit tests.
  static int bucket_index(double value);
  static double bucket_lower_bound(int index);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (exact, not bucketed); NaN when empty.
  double min() const;
  double max() const;

  /// Lower bound of the bucket holding the rank-⌈q·count⌉ sample (1-based
  /// rank over the recorded distribution). NaN when empty. Values that fell
  /// in the underflow bucket resolve to the exact recorded min.
  double percentile(double q) const;

  HistogramSnapshot snapshot() const;

  /// Bucket-wise addition of `other` into *this (count/sum/min/max too).
  /// Associative and commutative — (a+b)+c == a+(b+c) bucket-for-bucket.
  void merge(const Histogram& other);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// Bit patterns of the running min/max; +inf/-inf sentinels when empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Named instrument registry. Instrument names follow Prometheus convention
/// (`cnash_cache_hits_total`); an optional label set may be embedded in the
/// name (`cnash_solve_jobs_total{backend="hardware-sa"}`) — the text
/// exposition emits one TYPE line per base name.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Run `fn` at the top of every scrape (to_json / text_exposition), before
  /// instruments are read — the hook for mirroring lock-guarded aggregate
  /// structs into registry instruments. Runs outside the registry mutex.
  void on_collect(std::function<void()> fn);

  /// {"counters":{name:value},"gauges":{...},"histograms":{name:{count,sum,
  /// min,max,p50,p95,p99}}} — names in registration order.
  util::Json to_json() const;

  /// Prometheus text exposition: counters/gauges verbatim, histograms as
  /// summaries (quantile="0.5|0.95|0.99" + _sum + _count).
  std::string text_exposition() const;

 private:
  void run_collectors() const;

  mutable std::mutex mutex_;
  // Registration order is the exposition order; unique_ptr keeps instrument
  // addresses stable across rehash/regrowth.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace cnash::obs
