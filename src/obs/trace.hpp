#pragma once
// obs — per-request pipeline tracing. A TraceRecorder collects closed spans
// (Chrome trace-event "X" complete events) from the gateway's event loops
// and the SolverService workers; `nash_serve --trace-out <file>` writes the
// run's trace as Chrome trace-event JSON, loadable in Perfetto / about:tracing.
//
// Cost contract: when disabled (the default) a Span construction is one
// relaxed atomic load and a couple of pointer stores — no clock reads, no
// locks — so the instrumentation can stay compiled into the hot path.
// Enabled recording takes a mutex per closed span; tracing is a diagnostic
// mode, not a production default.
//
// Span names/categories are `const char*` and must point at static storage
// (string literals at every call site) — the recorder stores the pointers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace cnash::obs {

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// Spans recorded beyond this are counted but dropped (memory bound for
  /// long soak runs).
  static constexpr std::size_t kMaxEvents = 1u << 20;

  TraceRecorder() : epoch_(Clock::now()) {}

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fresh correlation id threading one request's spans together (gateway
  /// pipeline stages and the service units it fans out to share the id).
  std::uint64_t new_trace_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Append one closed span. `name`/`cat` must be string literals.
  void record(const char* name, const char* cat, Clock::time_point begin,
              Clock::time_point end, std::uint64_t trace_id);

  std::size_t event_count() const;
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// {"traceEvents":[...]} with events sorted by timestamp; ts/dur in
  /// microseconds relative to the recorder's construction.
  util::Json chrome_trace() const;

  /// Write chrome_trace() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    double ts_us;
    double dur_us;
    int tid;
    std::uint64_t trace_id;
  };

  int tid_for_locked(std::thread::id id);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> dropped_{0};
  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  /// Thread ids in first-seen order → small stable tids for the trace view.
  std::vector<std::thread::id> threads_;
};

/// RAII span: clocks its scope and reports to the recorder on destruction
/// (or an explicit finish()). A Span built from a disabled/null recorder is
/// inert and costs two pointer stores plus one relaxed load.
class Span {
 public:
  Span() = default;
  Span(TraceRecorder* recorder, const char* name, const char* cat,
       std::uint64_t trace_id)
      : recorder_(recorder && recorder->enabled() ? recorder : nullptr),
        name_(name),
        cat_(cat),
        trace_id_(trace_id) {
    if (recorder_) begin_ = TraceRecorder::Clock::now();
  }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      recorder_ = other.recorder_;
      name_ = other.name_;
      cat_ = other.cat_;
      trace_id_ = other.trace_id_;
      begin_ = other.begin_;
      other.recorder_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  void finish() {
    if (recorder_) {
      recorder_->record(name_, cat_, begin_, TraceRecorder::Clock::now(),
                        trace_id_);
      recorder_ = nullptr;
    }
  }

  bool active() const { return recorder_ != nullptr; }

 private:
  TraceRecorder* recorder_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t trace_id_ = 0;
  TraceRecorder::Clock::time_point begin_{};
};

}  // namespace cnash::obs
