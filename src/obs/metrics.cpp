#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cnash::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Raise an atomic-min / atomic-max watermark with a CAS loop.
void relax_min(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void relax_max(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---- Histogram --------------------------------------------------------------

int Histogram::bucket_index(double value) {
  if (!std::isfinite(value) || !(value > 0.0)) return 0;
  int exp = 0;
  const double mant = std::frexp(value, &exp);  // value = mant·2^exp, mant∈[½,1)
  if (exp < kMinExp) return 0;
  if (exp >= kMaxExp) return kBuckets - 1;
  int sub = static_cast<int>((mant - 0.5) * 2.0 * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + (exp - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower_bound(int index) {
  if (index <= 0) return 0.0;
  if (index >= kBuckets - 1) return std::ldexp(1.0, kMaxExp - 1);
  const int linear = index - 1;
  const int exp = kMinExp + linear / kSubBuckets;
  const int sub = linear % kSubBuckets;
  // 2^(exp-1) · (1 + sub/kSubBuckets); the power-of-two scale is exact, so
  // values recorded at a lower bound land back in the same bucket.
  return std::ldexp(0.5 + sub / (2.0 * kSubBuckets), exp);
}

void Histogram::record(double value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(value)) {
    sum_.fetch_add(value, std::memory_order_relaxed);
    relax_min(min_, value);
    relax_max(max_, value);
  }
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? kNaN : v;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? kNaN : v;
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp<std::uint64_t>(rank, 1, n);
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      if (i == 0) {
        // Underflow bucket (zero / sub-range values): the exact recorded
        // minimum is a strictly better answer than the bound 0.0.
        const double m = min();
        return std::isnan(m) ? 0.0 : m;
      }
      return bucket_lower_bound(i);
    }
  }
  // Concurrent recorders can make count_ run ahead of the bucket array for a
  // moment; fall back to the high watermark.
  return max();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const double omin = other.min_.load(std::memory_order_relaxed);
  const double omax = other.max_.load(std::memory_order_relaxed);
  if (std::isfinite(omin)) relax_min(min_, omin);
  if (std::isfinite(omax)) relax_max(max_, omax);
}

// ---- Registry ---------------------------------------------------------------

namespace {

/// Scan-or-append in a name→instrument vector (registration is rare; callers
/// cache the reference, so linear scan beats a map plus pointer chasing).
template <class T>
T& intern(std::vector<std::pair<std::string, std::unique_ptr<T>>>& slots,
          const std::string& name) {
  for (auto& [n, slot] : slots)
    if (n == name) return *slot;
  slots.emplace_back(name, std::make_unique<T>());
  return *slots.back().second;
}

/// `name{a="b"}` → base `name`, labels `a="b"` (empty when unlabeled).
void split_labels(const std::string& name, std::string& base,
                  std::string& labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  const auto close = name.rfind('}');
  labels = name.substr(brace + 1,
                       close == std::string::npos ? std::string::npos
                                                  : close - brace - 1);
}

std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void type_line(std::string& out, const std::string& base, const char* type,
               std::string& last_base) {
  if (base == last_base) return;
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

std::string labeled(const std::string& base, const std::string& labels,
                    const std::string& extra = {}) {
  std::string joined = labels;
  if (!extra.empty()) {
    if (!joined.empty()) joined += ',';
    joined += extra;
  }
  if (joined.empty()) return base;
  return base + '{' + joined + '}';
}

}  // namespace

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return intern(counters_, name);
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return intern(gauges_, name);
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return intern(histograms_, name);
}

void Registry::on_collect(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(fn));
}

void Registry::run_collectors() const {
  std::vector<std::function<void()>> fns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fns = collectors_;
  }
  // Outside the registry mutex: collectors take subsystem locks (the
  // gateway's gate, the store's mutex) and re-enter instrument setters.
  for (const auto& fn : fns) fn();
}

util::Json Registry::to_json() const {
  run_collectors();
  std::lock_guard<std::mutex> lock(mutex_);
  util::Json doc = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, static_cast<double>(c->value()));
  doc.set("counters", std::move(counters));
  util::Json gauges = util::Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, g->value());
  doc.set("gauges", std::move(gauges));
  util::Json histograms = util::Json::object();
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot s = h->snapshot();
    util::Json j = util::Json::object();
    j.set("count", static_cast<double>(s.count));
    j.set("sum", s.sum);
    j.set("min", s.min);
    j.set("max", s.max);
    j.set("p50", s.p50);
    j.set("p95", s.p95);
    j.set("p99", s.p99);
    histograms.set(name, std::move(j));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

std::string Registry::text_exposition() const {
  run_collectors();
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string base, labels, last_base;
  for (const auto& [name, c] : counters_) {
    split_labels(name, base, labels);
    type_line(out, base, "counter", last_base);
    out += labeled(base, labels);
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, g] : gauges_) {
    split_labels(name, base, labels);
    type_line(out, base, "gauge", last_base);
    out += labeled(base, labels);
    out += ' ';
    out += fmt_double(g->value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, h] : histograms_) {
    split_labels(name, base, labels);
    type_line(out, base, "summary", last_base);
    const HistogramSnapshot s = h->snapshot();
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", s.p50}, {"0.95", s.p95}, {"0.99", s.p99}};
    for (const auto& [q, v] : quantiles) {
      out += labeled(base, labels,
                     std::string("quantile=\"") + q + '"');
      out += ' ';
      out += fmt_double(s.count ? v : 0.0);
      out += '\n';
    }
    out += labeled(base + "_sum", labels);
    out += ' ';
    out += fmt_double(s.sum);
    out += '\n';
    out += labeled(base + "_count", labels);
    out += ' ';
    out += std::to_string(s.count);
    out += '\n';
  }
  return out;
}

}  // namespace cnash::obs
