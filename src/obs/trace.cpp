#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>

namespace cnash::obs {

namespace {

double micros_between(TraceRecorder::Clock::time_point a,
                      TraceRecorder::Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

int TraceRecorder::tid_for_locked(std::thread::id id) {
  for (std::size_t i = 0; i < threads_.size(); ++i)
    if (threads_[i] == id) return static_cast<int>(i + 1);
  threads_.push_back(id);
  return static_cast<int>(threads_.size());
}

void TraceRecorder::record(const char* name, const char* cat,
                           Clock::time_point begin, Clock::time_point end,
                           std::uint64_t trace_id) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_us = micros_between(epoch_, begin);
  ev.dur_us = micros_between(begin, end);
  ev.tid = tid_for_locked(std::this_thread::get_id());
  ev.trace_id = trace_id;
  events_.push_back(ev);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

util::Json TraceRecorder::chrome_trace() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_us < b.ts_us;
                   });
  util::Json doc = util::Json::object();
  util::Json list = util::Json::array();
  for (const Event& ev : events) {
    util::Json j = util::Json::object();
    j.set("name", ev.name);
    j.set("cat", ev.cat);
    j.set("ph", "X");
    j.set("ts", ev.ts_us);
    j.set("dur", ev.dur_us);
    j.set("pid", 1);
    j.set("tid", ev.tid);
    if (ev.trace_id) {
      util::Json args = util::Json::object();
      args.set("request", static_cast<double>(ev.trace_id));
      j.set("args", std::move(args));
    }
    list.push(std::move(j));
  }
  doc.set("traceEvents", std::move(list));
  if (const std::size_t d = dropped())
    doc.set("droppedEvents", static_cast<double>(d));
  return doc;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_trace().dump() << '\n';
  return static_cast<bool>(out);
}

}  // namespace cnash::obs
