#pragma once
// Architecture-level latency / time-to-solution models (Fig. 10).
//
// C-Nash: one SA iteration = Phase-1 analog path (crossbar settle + WTA tree
// + ADC) and Phase-2 analog path (crossbar settle + ADC), pipelined behind the
// digital SA controller cycle. The paper derives times from the operational
// frequency of the FeFET crossbar arrays of [29] scaled to 1-bit/1-bit
// precision; calibrated here to a 1 MHz controller cycle, which reproduces the
// paper's ~10 ms-scale runs for 10k-iteration problems.
//
// D-Wave proxy: a job = programming overhead + num_reads × per-sample time.
// Time-to-solution for all solvers: expected wall clock until the first
// successful run, i.e. job_time / success_rate.

#include <cstddef>

#include "xbar/mapping.hpp"
#include "xbar/parasitics.hpp"

namespace cnash::core {

struct CNashTimingParams {
  double controller_period_s = 1e-6;  // digital SA logic cycle (1 MHz)
  double adc_time_s = 10e-9;          // per conversion
  double wta_cell_latency_s = 0.08e-9;
  /// Per-stage latency of the H-tree adder merging tile outputs (multi-tile
  /// chip model).
  double htree_adder_latency_s = 0.15e-9;
  xbar::WireParams wire;
};

/// Shape of a tile grid for the tiled latency path: fixed physical tile
/// dimensions (line lengths bound the per-tile settle) and the grid size
/// (bounds the H-tree aggregation depth).
struct TileGridTiming {
  std::size_t tile_rows;   // physical word lines per tile
  std::size_t tile_cols;   // physical bit/data lines per tile
  std::size_t grid_rows;
  std::size_t grid_cols;
  std::size_t wta_inputs;  // aggregated row outputs feeding the WTA tree
  std::size_t num_tiles() const { return grid_rows * grid_cols; }
};

class CNashTimingModel {
 public:
  explicit CNashTimingModel(CNashTimingParams params = {});

  const CNashTimingParams& params() const { return params_; }

  /// Analog path latency of one two-phase evaluation over the given array
  /// geometry (both phases, ADCs included).
  double analog_path_s(const xbar::MappingGeometry& geom) const;

  /// Full iteration latency: analog path bounded below by the controller.
  double iteration_s(const xbar::MappingGeometry& geom) const;

  /// Wall clock of one SA run.
  double run_time_s(const xbar::MappingGeometry& geom,
                    std::size_t iterations) const;

  /// Tiled-chip analog path: tiles settle concurrently (short fixed-length
  /// lines), then the H-tree adder stage merges grid_cols partials per row
  /// (Phase 1) / the whole grid (Phase 2) before WTA + ADC. For large games
  /// this beats the monolithic path, whose line settle grows with the full
  /// array dimensions.
  double tiled_analog_path_s(const TileGridTiming& grid) const;
  double tiled_iteration_s(const TileGridTiming& grid) const;
  double tiled_run_time_s(const TileGridTiming& grid,
                          std::size_t iterations) const;

  /// Expected time until the first successful run.
  double time_to_solution_s(const xbar::MappingGeometry& geom,
                            std::size_t iterations, double success_rate) const;

 private:
  CNashTimingParams params_;
};

struct DWaveTimingParams {
  double programming_s;
  double per_sample_s;
  std::size_t reads_per_job;
};

/// Calibrated to the published per-generation sampling pipelines.
DWaveTimingParams dwave_2000q6_timing();
DWaveTimingParams dwave_advantage41_timing();

class DWaveTimingModel {
 public:
  explicit DWaveTimingModel(DWaveTimingParams params);

  double job_time_s() const;
  double time_to_solution_s(double success_rate) const;

  const DWaveTimingParams& params() const { return params_; }

 private:
  DWaveTimingParams params_;
};

}  // namespace cnash::core
