#include "core/metrics.hpp"

#include <cstdio>

#include "game/strategy.hpp"

namespace cnash::core {

double SolverReport::success_rate() const {
  return runs ? static_cast<double>(successes()) / static_cast<double>(runs)
              : 0.0;
}

double SolverReport::pure_fraction() const {
  return runs ? static_cast<double>(pure_successes) / static_cast<double>(runs)
              : 0.0;
}

double SolverReport::mixed_fraction() const {
  return runs ? static_cast<double>(mixed_successes) / static_cast<double>(runs)
              : 0.0;
}

double SolverReport::error_fraction() const {
  return runs ? static_cast<double>(errors) / static_cast<double>(runs) : 0.0;
}

std::size_t SolverReport::distinct_found() const {
  std::size_t d = 0;
  for (auto h : hits)
    if (h > 0) ++d;
  return d;
}

SolverReport classify(const game::BimatrixGame& game,
                      const std::vector<game::Equilibrium>& ground_truth,
                      const std::vector<CandidateSolution>& candidates,
                      double nash_eps, double match_tol) {
  SolverReport report;
  report.hits.assign(ground_truth.size(), 0);
  for (const auto& c : candidates) {
    ++report.runs;
    const bool valid = game::is_distribution(c.p, 1e-6) &&
                       game::is_distribution(c.q, 1e-6) &&
                       c.p.size() == game.num_actions1() &&
                       c.q.size() == game.num_actions2();
    const bool nash =
        valid && game::is_nash_equilibrium(game, c.p, c.q, nash_eps);
    if (!nash) {
      ++report.errors;
      continue;
    }
    if (game::is_pure_profile(c.p, c.q))
      ++report.pure_successes;
    else
      ++report.mixed_successes;
    const std::size_t idx =
        game::match_equilibrium(ground_truth, c.p, c.q, match_tol);
    if (idx != game::kNoMatch) ++report.hits[idx];
  }
  return report;
}

std::string percent(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", precision, fraction * 100.0);
  return buf;
}

}  // namespace cnash::core
