#pragma once
// The two-phase hardware evaluation of the MAX-QUBO objective (Fig. 6).
//
// Phase 1: both crossbars are read in matrix-vector mode (the other player's
//          input fixed to the all-ones vector) producing the analog vectors
//          Mq and Nᵀp; the WTA trees reduce them to max(Mq) and max(Nᵀp),
//          which are digitised and recorded by the SA logic.
// Phase 2: the crossbars are read in vector-matrix-vector mode giving pᵀMq
//          and pᵀNq (the WTA trees are bypassed); the SA logic combines
//          f = max(Mq) + max(Nᵀp) − pᵀMq − pᵀNq.
//
// The evaluator owns two programmed crossbars (M and Nᵀ), two WTA trees and
// the ADCs, so every SA iteration experiences device variability, WTA offset
// and ADC quantization exactly as the architecture would.
//
// Incremental fast path (propose/commit protocol): a single SA tick move
// changes one entry of p or q by ±1/I, so the architecture only re-drives one
// word line / column group. The evaluator mirrors that: it carries the
// committed analog state (Phase-1 line currents, Phase-2 total currents) and
// updates it per move through the crossbars' O(n)/O(m) delta kernels instead
// of a full O(n·m) re-read. WTA reduction, per-read noise and ADC conversion
// are applied to the *updated analog currents* on every proposal, so fidelity
// semantics (and rng draw order) are identical to the full-read path; a full
// re-read every `refresh_interval` commits bounds floating-point drift.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/maxqubo.hpp"
#include "util/rng.hpp"
#include "wta/wta_tree.hpp"
#include "xbar/adc.hpp"
#include "xbar/array.hpp"

namespace cnash::core {

struct TwoPhaseConfig {
  xbar::ArrayConfig array;
  wta::WtaCellParams wta;
  unsigned adc_bits = 10;
  double adc_noise_rel = 0.0005;  // input-referred noise / full-scale
  /// Multiplier applied to payoffs (after the non-negativity shift) before
  /// integer coding; 1.0 when the shifted payoffs are already integers.
  double value_scale = 1.0;
  /// Explicit cells-per-element override (0 = derived from the max shifted
  /// payoff and the cell level count).
  std::uint32_t cells_per_element = 0;
  /// Conductance levels per cell: 2 = binary (paper default); > 2 enables the
  /// multi-level-cell FeFET extension ([29]), shrinking the array at the cost
  /// of intermediate-level programming spread.
  std::uint32_t levels_per_cell = 2;
  /// Expose the incremental propose/commit fast path to the SA loop. Off, the
  /// annealer falls back to a full crossbar re-read per iteration.
  bool incremental = true;
  /// Commits between full crossbar re-reads on the incremental path (bounds
  /// accumulated floating-point drift of the analog state).
  std::size_t refresh_interval = 1024;
};

class TwoPhaseEvaluator final : public ObjectiveEvaluator,
                                public IncrementalEvaluator {
 public:
  /// Programs both crossbars from the game. `intervals` is the strategy
  /// quantization I; `rng` drives the one-time device sampling and the
  /// per-read noise afterwards.
  TwoPhaseEvaluator(game::BimatrixGame game, std::uint32_t intervals,
                    const TwoPhaseConfig& config, util::Rng rng);

  double evaluate(const game::QuantizedProfile& profile) override;
  const game::BimatrixGame& game() const override { return game_; }
  IncrementalEvaluator* incremental() override {
    return config_.incremental ? this : nullptr;
  }

  // IncrementalEvaluator protocol: O(m+n) per tick move, same noise/ADC
  // semantics and rng draw sequence per scoring as evaluate().
  void reset(const game::QuantizedProfile& profile) override;
  double propose(const TickMove* moves, std::size_t count) override;
  void commit() override;

  /// Full crossbar re-reads performed by the incremental path since reset()
  /// (drift refreshes; excludes the priming read of reset() itself).
  std::size_t refresh_count() const { return refresh_count_; }

  /// Phase observables of the last evaluate()/propose() call, in payoff units.
  struct PhaseReadout {
    double max_mq;
    double max_ntp;
    double vmv_m;
    double vmv_n;
  };
  const PhaseReadout& last_readout() const { return last_; }

  std::uint32_t intervals() const { return intervals_; }
  const xbar::ProgrammedCrossbar& crossbar_m() const { return *xbar_m_; }
  const xbar::ProgrammedCrossbar& crossbar_nt() const { return *xbar_nt_; }
  const wta::WtaTree& wta_rows() const { return *wta_rows_; }
  const wta::WtaTree& wta_cols() const { return *wta_cols_; }
  const xbar::Adc& adc() const { return *adc_m_; }

 private:
  /// Analog observables of one profile, before WTA/noise/ADC: the Phase-1
  /// source-line current vectors and the Phase-2 total array currents.
  struct AnalogState {
    std::vector<double> mv_m;   // n line currents of the M array
    std::vector<double> mv_nt;  // m line currents of the Nᵀ array
    double vmv_m = 0.0;         // total M-array current (pᵀMq)
    double vmv_nt = 0.0;        // total Nᵀ-array current (qᵀNᵀp = pᵀNq)
  };

  void full_read(AnalogState& st, const std::vector<std::uint32_t>& p_counts,
                 const std::vector<std::uint32_t>& q_counts) const;
  /// One tick move applied to the analog state and the scratch counts.
  void apply_move_analog(AnalogState& st, const TickMove& mv);
  /// WTA + noise + ADC on the analog state; updates last_ and returns f.
  double digitize(const AnalogState& st);

  game::BimatrixGame game_;       // original payoffs
  std::uint32_t intervals_;
  TwoPhaseConfig config_;
  util::Rng rng_;
  double value_scale_;
  std::unique_ptr<xbar::ProgrammedCrossbar> xbar_m_;   // stores shifted M
  std::unique_ptr<xbar::ProgrammedCrossbar> xbar_nt_;  // stores shifted Nᵀ
  std::unique_ptr<wta::WtaTree> wta_rows_;  // max over n row payoffs
  std::unique_ptr<wta::WtaTree> wta_cols_;  // max over m column payoffs
  std::unique_ptr<xbar::Adc> adc_m_;
  std::unique_ptr<xbar::Adc> adc_nt_;
  PhaseReadout last_{};

  // Incremental state: committed counts + analog observables, their scratch
  // copies for the outstanding proposal, and reusable workspaces.
  std::vector<std::uint32_t> p_counts_, q_counts_;    // committed
  std::vector<std::uint32_t> p_scratch_, q_scratch_;  // proposal
  AnalogState committed_, scratch_;
  AnalogState eval_state_;  // evaluate()'s workspace, independent of proposals
  std::vector<double> wta_scratch_;
  bool primed_ = false;
  bool proposal_outstanding_ = false;
  std::size_t commits_since_refresh_ = 0;
  std::size_t refresh_count_ = 0;
};

}  // namespace cnash::core
