#pragma once
// The two-phase hardware evaluation of the MAX-QUBO objective (Fig. 6).
//
// Phase 1: both crossbars are read in matrix-vector mode (the other player's
//          input fixed to the all-ones vector) producing the analog vectors
//          Mq and Nᵀp; the WTA trees reduce them to max(Mq) and max(Nᵀp),
//          which are digitised and recorded by the SA logic.
// Phase 2: the crossbars are read in vector-matrix-vector mode giving pᵀMq
//          and pᵀNq (the WTA trees are bypassed); the SA logic combines
//          f = max(Mq) + max(Nᵀp) − pᵀMq − pᵀNq.
//
// The evaluator owns two programmed crossbars (M and Nᵀ), two WTA trees and
// the ADCs, so every SA iteration experiences device variability, WTA offset
// and ADC quantization exactly as the architecture would.

#include <cstdint>
#include <memory>

#include "core/maxqubo.hpp"
#include "util/rng.hpp"
#include "wta/wta_tree.hpp"
#include "xbar/adc.hpp"
#include "xbar/array.hpp"

namespace cnash::core {

struct TwoPhaseConfig {
  xbar::ArrayConfig array;
  wta::WtaCellParams wta;
  unsigned adc_bits = 10;
  double adc_noise_rel = 0.0005;  // input-referred noise / full-scale
  /// Multiplier applied to payoffs (after the non-negativity shift) before
  /// integer coding; 1.0 when the shifted payoffs are already integers.
  double value_scale = 1.0;
  /// Explicit cells-per-element override (0 = derived from the max shifted
  /// payoff and the cell level count).
  std::uint32_t cells_per_element = 0;
  /// Conductance levels per cell: 2 = binary (paper default); > 2 enables the
  /// multi-level-cell FeFET extension ([29]), shrinking the array at the cost
  /// of intermediate-level programming spread.
  std::uint32_t levels_per_cell = 2;
};

class TwoPhaseEvaluator final : public ObjectiveEvaluator {
 public:
  /// Programs both crossbars from the game. `intervals` is the strategy
  /// quantization I; `rng` drives the one-time device sampling and the
  /// per-read noise afterwards.
  TwoPhaseEvaluator(game::BimatrixGame game, std::uint32_t intervals,
                    const TwoPhaseConfig& config, util::Rng rng);

  double evaluate(const game::QuantizedProfile& profile) override;
  const game::BimatrixGame& game() const override { return game_; }

  /// Phase observables of the last evaluate() call, in payoff units.
  struct PhaseReadout {
    double max_mq;
    double max_ntp;
    double vmv_m;
    double vmv_n;
  };
  const PhaseReadout& last_readout() const { return last_; }

  std::uint32_t intervals() const { return intervals_; }
  const xbar::ProgrammedCrossbar& crossbar_m() const { return *xbar_m_; }
  const xbar::ProgrammedCrossbar& crossbar_nt() const { return *xbar_nt_; }
  const wta::WtaTree& wta_rows() const { return *wta_rows_; }
  const wta::WtaTree& wta_cols() const { return *wta_cols_; }
  const xbar::Adc& adc() const { return *adc_m_; }

 private:
  game::BimatrixGame game_;       // original payoffs
  std::uint32_t intervals_;
  TwoPhaseConfig config_;
  util::Rng rng_;
  double value_scale_;
  std::unique_ptr<xbar::ProgrammedCrossbar> xbar_m_;   // stores shifted M
  std::unique_ptr<xbar::ProgrammedCrossbar> xbar_nt_;  // stores shifted Nᵀ
  std::unique_ptr<wta::WtaTree> wta_rows_;  // max over n row payoffs
  std::unique_ptr<wta::WtaTree> wta_cols_;  // max over m column payoffs
  std::unique_ptr<xbar::Adc> adc_m_;
  std::unique_ptr<xbar::Adc> adc_nt_;
  PhaseReadout last_{};
};

}  // namespace cnash::core
