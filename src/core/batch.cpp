#include "core/batch.hpp"

#include <stdexcept>

namespace cnash::core {

LaneBatchedEvaluator::LaneBatchedEvaluator(
    std::vector<std::unique_ptr<ObjectiveEvaluator>> lanes)
    : lanes_(std::move(lanes)) {
  if (lanes_.empty())
    throw std::invalid_argument("LaneBatchedEvaluator: zero lanes");
  for (const auto& l : lanes_)
    if (!l) throw std::invalid_argument("LaneBatchedEvaluator: null lane");
}

BatchedExactMaxQubo::BatchedExactMaxQubo(
    std::shared_ptr<const ExactMaxQubo::Shared> shared, std::size_t lanes) {
  if (!shared)
    throw std::invalid_argument("BatchedExactMaxQubo: null shared block");
  if (lanes == 0)
    throw std::invalid_argument("BatchedExactMaxQubo: zero lanes");
  lanes_.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) lanes_.emplace_back(shared);
}

}  // namespace cnash::core
