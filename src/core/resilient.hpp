#pragma once
// core "resilient" backend — transparent software fallback for the modeled
// hardware path (ROADMAP item 3). It wraps a primary hardware backend
// (request.resilient_primary: "hardware-sa" or "hardware-sa-tiled") and the
// "exact-sa" ablation backend, preparing BOTH for the same request: the two
// jobs share the SaPreparedJob unit partitioning (same runs / batch_lanes /
// SA mode), so when a primary unit fails — an injected unit fault, or a chip
// fault detected by the TiledCrossbar program-time read-back — the SAME unit
// index is re-run on the exact objective and its samples are flagged
// `fallback`, counted as SolveReport::fallback_count.
//
// With the request's FaultPlan disabled and a healthy chip, the primary path
// runs exactly as the wrapped backend would — sample-for-sample bit-identical
// output (only report.backend reads "resilient"). Fallback results are
// deliberately excluded from the gateway's solution cache (serve/server).

#include <memory>

#include "core/backend.hpp"

namespace cnash::core {

/// The registry entry ("resilient"); registered by SolverRegistry::global().
std::unique_ptr<SolverBackend> make_resilient_backend();

}  // namespace cnash::core
