#pragma once
// The lossless MAX-QUBO transformation (Sec. 3.1).
//
// The Mangasarian–Stone quadratic program (Eq. 3-4) is converted — without
// slack variables — by replacing the inequality constraints with
//   α = max(Mq),  β = max(Nᵀp)                           (Eq. 7, 8)
// giving the objective
//   min_{p,q} f(p,q) = max(Mq) + max(Nᵀp) − pᵀ(M+N)q      (Eq. 9).
// Key properties (proved in the tests):
//   * f(p,q) >= 0 on the product of simplices;
//   * f(p,q) == 0  ⇔  (p,q) is a Nash equilibrium;
//   * f is invariant to adding a constant to both payoff matrices.

#include <memory>

#include "game/game.hpp"
#include "game/strategy.hpp"

namespace cnash::core {

/// Evaluation interface shared by the exact software path and the
/// hardware-modelled two-phase path, so Alg. 1 runs unchanged on either.
class ObjectiveEvaluator {
 public:
  virtual ~ObjectiveEvaluator() = default;
  /// MAX-QUBO objective for a quantized strategy profile, in payoff units.
  virtual double evaluate(const game::QuantizedProfile& profile) = 0;
  virtual const game::BimatrixGame& game() const = 0;
};

/// Exact floating-point evaluation of Eq. 9.
class ExactMaxQubo final : public ObjectiveEvaluator {
 public:
  explicit ExactMaxQubo(game::BimatrixGame game);

  double evaluate(const game::QuantizedProfile& profile) override;
  const game::BimatrixGame& game() const override { return game_; }

  /// Continuous-strategy evaluation (tests / analysis).
  double evaluate_continuous(const la::Vector& p, const la::Vector& q) const;

  /// The three components of Eq. 9 (Phase 1 + Phase 2 observables).
  struct Components {
    double max_mq;
    double max_ntp;
    double vmv;  // pᵀ(M+N)q
    double objective() const { return max_mq + max_ntp - vmv; }
  };
  Components components(const la::Vector& p, const la::Vector& q) const;

 private:
  game::BimatrixGame game_;
};

}  // namespace cnash::core
