#pragma once
// The lossless MAX-QUBO transformation (Sec. 3.1).
//
// The Mangasarian–Stone quadratic program (Eq. 3-4) is converted — without
// slack variables — by replacing the inequality constraints with
//   α = max(Mq),  β = max(Nᵀp)                           (Eq. 7, 8)
// giving the objective
//   min_{p,q} f(p,q) = max(Mq) + max(Nᵀp) − pᵀ(M+N)q      (Eq. 9).
// Key properties (proved in the tests):
//   * f(p,q) >= 0 on the product of simplices;
//   * f(p,q) == 0  ⇔  (p,q) is a Nash equilibrium;
//   * f is invariant to adding a constant to both payoff matrices.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "game/game.hpp"
#include "game/strategy.hpp"

namespace cnash::core {

/// A single 1/I probability-tick transfer of one player — the SA
/// neighbourhood move of Alg. 1 expressed as data, so an evaluator can score
/// a candidate from the committed state plus a short move list instead of a
/// full profile.
struct TickMove {
  enum class Player : std::uint8_t { kRow, kCol };
  Player player;
  std::uint32_t from;
  std::uint32_t to;
};

/// Optional propose/commit protocol for evaluators with an incremental fast
/// path. Usage: reset(initial) primes the committed state; propose(moves)
/// scores the committed profile with the moves applied (without committing);
/// commit() adopts the last proposal. A propose() without a following
/// commit() is a rejection — the next propose() starts again from the
/// committed state. Instances are stateful and therefore thread-confined.
class IncrementalEvaluator {
 public:
  virtual ~IncrementalEvaluator() = default;
  virtual void reset(const game::QuantizedProfile& profile) = 0;
  virtual double propose(const TickMove* moves, std::size_t count) = 0;
  virtual void commit() = 0;
};

/// Evaluation interface shared by the exact software path and the
/// hardware-modelled two-phase path, so Alg. 1 runs unchanged on either.
class ObjectiveEvaluator {
 public:
  virtual ~ObjectiveEvaluator() = default;
  /// MAX-QUBO objective for a quantized strategy profile, in payoff units.
  virtual double evaluate(const game::QuantizedProfile& profile) = 0;
  virtual const game::BimatrixGame& game() const = 0;
  /// Non-null when the evaluator supports the incremental propose/commit
  /// protocol; the SA loop then skips the full per-iteration re-evaluation.
  virtual IncrementalEvaluator* incremental() { return nullptr; }
};

/// Exact floating-point evaluation of Eq. 9, with an O(m+n) incremental
/// fast path for single-tick SA moves: the committed state carries the four
/// products Mq, Nq, Mᵀp, Nᵀp plus the scalars pᵀMq, pᵀNq, so a tick move
/// updates two vectors (one matrix row/column difference) and two scalars
/// instead of recomputing full matrix-vector products. The state is
/// refreshed from scratch periodically to bound floating-point drift.
class ExactMaxQubo final : public ObjectiveEvaluator,
                           public IncrementalEvaluator {
 public:
  /// Read-only payoff block: the game plus the transposed copies used by
  /// column tick moves. Lockstep run-batches share one instance across all
  /// lanes (structure-of-arrays across runs: the big immutable slabs exist
  /// once, only the per-lane delta states are replicated).
  struct Shared {
    explicit Shared(game::BimatrixGame g)
        : game(std::move(g)),
          mt(game.payoff1().transposed()),
          nt(game.payoff2().transposed()) {}
    game::BimatrixGame game;
    la::Matrix mt, nt;  // M^T, N^T
  };

  explicit ExactMaxQubo(game::BimatrixGame game);
  explicit ExactMaxQubo(std::shared_ptr<const Shared> shared);

  double evaluate(const game::QuantizedProfile& profile) override;
  const game::BimatrixGame& game() const override { return shared_->game; }
  IncrementalEvaluator* incremental() override { return this; }

  // IncrementalEvaluator protocol.
  void reset(const game::QuantizedProfile& profile) override;
  double propose(const TickMove* moves, std::size_t count) override;
  void commit() override;

  /// Continuous-strategy evaluation (tests / analysis).
  double evaluate_continuous(const la::Vector& p, const la::Vector& q) const;

  /// The three components of Eq. 9 (Phase 1 + Phase 2 observables).
  struct Components {
    double max_mq;
    double max_ntp;
    double vmv;  // pᵀ(M+N)q
    double objective() const { return max_mq + max_ntp - vmv; }
  };
  Components components(const la::Vector& p, const la::Vector& q) const;

 private:
  /// The cached products defining Eq. 9 at one profile.
  struct DeltaState {
    la::Vector mq, nq;    // Mq, Nq       (length n)
    la::Vector mtp, ntp;  // Mᵀp, Nᵀp     (length m)
    double ptmq = 0.0;    // pᵀMq
    double ptnq = 0.0;    // pᵀNq
    double objective() const;
  };
  void recompute(DeltaState& st) const;
  void apply_move(DeltaState& st, const TickMove& mv, double tick) const;

  // The game plus transposed payoff copies (column tick moves update against
  // contiguous rows — same values as the strided column walk, SIMD-friendly
  // layout). Possibly shared with other lanes of a run-batch.
  std::shared_ptr<const Shared> shared_;

  // Incremental state: committed profile counts, committed/scratch products,
  // and the moves of the outstanding proposal.
  std::uint32_t intervals_ = 0;
  std::vector<std::uint32_t> p_counts_, q_counts_;
  DeltaState committed_, scratch_;
  mutable la::Vector dist_p_, dist_q_;  // recompute() workspaces
  std::vector<TickMove> pending_;
  bool proposal_outstanding_ = false;
  std::size_t commits_since_refresh_ = 0;
};

}  // namespace cnash::core
