#pragma once
// Lockstep run-batching: K concurrent SA runs stepped as lanes of one batch.
//
// A BatchedEvaluator owns K thread-confined evaluator lanes that the batched
// SA drivers (core/anneal.hpp) advance in lockstep — iteration-major,
// lane-minor. Every lane is a full ObjectiveEvaluator whose arithmetic and
// RNG consumption are EXACTLY those of a standalone instance with the same
// instance key, so a K-lane batch byte-reproduces K independent scalar runs
// for any K (the bit-exactness contract the batched tests pin down).
//
// Two implementations:
//   * LaneBatchedEvaluator — generic: K independent instances (the hardware
//     two-phase lanes each program their own crossbar/WTA/ADC stack);
//   * BatchedExactMaxQubo  — exact objective: all lanes share one read-only
//     payoff block (game + transposed copies) and replicate only the O(m+n)
//     per-lane delta states — structure-of-arrays across runs.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/maxqubo.hpp"

namespace cnash::core {

/// K evaluator lanes stepped in lockstep by the batched SA drivers.
/// Lane instances are stateful and thread-confined; a batch must only be
/// driven from one thread at a time.
class BatchedEvaluator {
 public:
  virtual ~BatchedEvaluator() = default;
  virtual std::size_t lanes() const = 0;
  virtual ObjectiveEvaluator& lane(std::size_t l) = 0;
  /// All lanes evaluate the same game.
  const game::BimatrixGame& game() { return lane(0).game(); }
};

/// Generic fallback: K independent evaluator instances.
class LaneBatchedEvaluator final : public BatchedEvaluator {
 public:
  explicit LaneBatchedEvaluator(
      std::vector<std::unique_ptr<ObjectiveEvaluator>> lanes);
  std::size_t lanes() const override { return lanes_.size(); }
  ObjectiveEvaluator& lane(std::size_t l) override { return *lanes_[l]; }

 private:
  std::vector<std::unique_ptr<ObjectiveEvaluator>> lanes_;
};

/// Exact-objective batch: one shared immutable payoff block, K per-lane
/// delta states. Each lane IS an ExactMaxQubo, so lane arithmetic is
/// byte-identical to the scalar path by construction.
class BatchedExactMaxQubo final : public BatchedEvaluator {
 public:
  BatchedExactMaxQubo(std::shared_ptr<const ExactMaxQubo::Shared> shared,
                      std::size_t lanes);
  std::size_t lanes() const override { return lanes_.size(); }
  ObjectiveEvaluator& lane(std::size_t l) override { return lanes_[l]; }

 private:
  std::vector<ExactMaxQubo> lanes_;
};

}  // namespace cnash::core
