#include "core/timing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/bits.hpp"

namespace cnash::core {

CNashTimingModel::CNashTimingModel(CNashTimingParams params)
    : params_(params) {}

double CNashTimingModel::analog_path_s(
    const xbar::MappingGeometry& geom) const {
  const xbar::WireModel wires(params_.wire);
  // Word lines span the array columns and data lines span the rows; the
  // slower of the two bounds the array settle.
  const double settle = std::max(wires.settle_time(geom.total_cols()),
                                 wires.settle_time(geom.total_rows()));
  // WTA tree depth over the per-action outputs (phase 1 only).
  const std::size_t depth = util::ceil_log2(geom.n);
  const double phase1 =
      settle + static_cast<double>(depth) * params_.wta_cell_latency_s +
      params_.adc_time_s;
  const double phase2 = settle + params_.adc_time_s;
  return phase1 + phase2;
}

double CNashTimingModel::iteration_s(const xbar::MappingGeometry& geom) const {
  return std::max(analog_path_s(geom), params_.controller_period_s);
}

double CNashTimingModel::tiled_analog_path_s(const TileGridTiming& grid) const {
  const xbar::WireModel wires(params_.wire);
  // All tiles settle concurrently; line lengths are the fixed tile
  // dimensions, not the logical array's.
  const double settle = std::max(wires.settle_time(grid.tile_cols),
                                 wires.settle_time(grid.tile_rows));
  const double wta =
      static_cast<double>(util::ceil_log2(grid.wta_inputs)) *
      params_.wta_cell_latency_s;
  const double phase1 = settle +
                        static_cast<double>(util::ceil_log2(grid.grid_cols)) *
                            params_.htree_adder_latency_s +
                        wta + params_.adc_time_s;
  const double phase2 = settle +
                        static_cast<double>(util::ceil_log2(grid.num_tiles())) *
                            params_.htree_adder_latency_s +
                        params_.adc_time_s;
  return phase1 + phase2;
}

double CNashTimingModel::tiled_iteration_s(const TileGridTiming& grid) const {
  return std::max(tiled_analog_path_s(grid), params_.controller_period_s);
}

double CNashTimingModel::tiled_run_time_s(const TileGridTiming& grid,
                                          std::size_t iterations) const {
  return tiled_iteration_s(grid) * static_cast<double>(iterations);
}

double CNashTimingModel::run_time_s(const xbar::MappingGeometry& geom,
                                    std::size_t iterations) const {
  return iteration_s(geom) * static_cast<double>(iterations);
}

double CNashTimingModel::time_to_solution_s(const xbar::MappingGeometry& geom,
                                            std::size_t iterations,
                                            double success_rate) const {
  if (success_rate <= 0.0) return std::numeric_limits<double>::infinity();
  return run_time_s(geom, iterations) / success_rate;
}

DWaveTimingParams dwave_2000q6_timing() {
  // ~300 us per read end-to-end (anneal + readout + thermalisation) plus one
  // programming cycle per job of 5000 reads.
  return {/*programming_s=*/0.08, /*per_sample_s=*/300e-6,
          /*reads_per_job=*/5000};
}

DWaveTimingParams dwave_advantage41_timing() {
  return {/*programming_s=*/0.04, /*per_sample_s=*/150e-6,
          /*reads_per_job=*/5000};
}

DWaveTimingModel::DWaveTimingModel(DWaveTimingParams params) : params_(params) {
  if (params_.reads_per_job == 0)
    throw std::invalid_argument("DWaveTimingModel: zero reads per job");
}

double DWaveTimingModel::job_time_s() const {
  return params_.programming_s +
         params_.per_sample_s * static_cast<double>(params_.reads_per_job);
}

double DWaveTimingModel::time_to_solution_s(double success_rate) const {
  if (success_rate <= 0.0) return std::numeric_limits<double>::infinity();
  return job_time_s() / success_rate;
}

}  // namespace cnash::core
