#pragma once
// core::SolverBackend — one SolveRequest → SolveReport contract for every
// solver family the paper compares (Table 1 / Fig. 10), behind a string-keyed
// registry:
//
//   "hardware-sa"       two-phase SA on the full FeFET crossbar/WTA/ADC model
//   "hardware-sa-tiled" two-phase SA on the multi-tile chip model (chip/)
//   "exact-sa"          two-phase SA on the exact MAX-QUBO objective (ablation)
//   "dwave-2000q6"      S-QUBO annealer proxy, 2000 Q6 flavour
//   "dwave-advantage41" S-QUBO annealer proxy, Advantage 4.1 flavour
//   "lemke-howson"      complementary pivoting from every initial label
//   "support-enum"      exhaustive support enumeration (ground truth)
//   "resilient"         hardware-sa[-tiled] with transparent per-unit
//                       exact-sa fallback on chip failure (core/resilient)
//
// A backend prepares a request into a PreparedJob: per-job immutable state
// (programmed crossbars, S-QUBO models) plus a count of independent work
// units (SA runs, annealer reads, pivot labels). Units are scheduled
// run-granularly by core::SolverService across concurrent jobs; every unit u
// derives its RNG streams from keyed splits of the job's root seed, so a
// job's report is bit-identical for any worker count and any submission
// interleaving. Every sample is ε-Nash-verified via game::verify, and every
// report carries the architecture-model wall clock from core::timing.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chip/chip_config.hpp"
#include "core/anneal.hpp"
#include "core/engine.hpp"
#include "core/sample.hpp"
#include "core/two_phase.hpp"
#include "game/game.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace cnash::core {

/// A solve job description, normalised across all solver families. Fields a
/// backend does not use are ignored (documented per field).
struct SolveRequest {
  explicit SolveRequest(game::BimatrixGame g) : game(std::move(g)) {}

  game::BimatrixGame game;
  /// Registry key of the backend that should solve this game.
  std::string backend = "hardware-sa";
  /// Independent sample units: SA runs (hardware-sa / exact-sa) or annealer
  /// reads (dwave-*). Ignored by the exhaustive exact solvers.
  std::size_t runs = 1;
  /// Per-job root seed: every unit derives its streams from keyed splits of
  /// this value, independent of scheduling. Ignored by the exact solvers.
  std::uint64_t seed = 0xC0FFEE;
  std::uint32_t intervals = 12;  // strategy quantization I (SA backends)
  SaOptions sa;                  // SA schedule (SA backends)
  TwoPhaseConfig hardware;       // hardware model knobs (hardware-sa[-tiled])
  chip::ChipConfig chip;         // tile grid knobs (hardware-sa-tiled)
  /// Report the best profile seen during a run instead of the final accepted
  /// one (SA backends).
  bool report_best = false;
  /// ε for the per-sample Nash verification recorded in every SolveSample.
  double nash_eps = 1e-7;
  /// Cap on this job's units simultaneously in flight on the service pool
  /// (0 = no cap). Changes wall-clock only, never results.
  std::size_t max_parallelism = 0;
  /// Anytime-degradation deadline in seconds (0 = none). Once a SolverService
  /// job exceeds it, remaining units are skipped and the best-so-far report
  /// is returned flagged degraded=true; in-flight units still complete, so
  /// the bound is deadline + one unit's wall time. Ignored by the
  /// synchronous SolverBackend::solve() path.
  double deadline_s = 0.0;
  /// "resilient" backend only: the primary hardware backend it wraps
  /// ("hardware-sa" or "hardware-sa-tiled").
  std::string resilient_primary = "hardware-sa";
  /// Deterministic fault injection, OFF by default. Solver-side rates are
  /// only accepted by the "resilient" backend (validate_request rejects them
  /// elsewhere); a disabled plan leaves every backend bit-identical to a
  /// request without one.
  util::FaultPlan fault;
};

/// The normalised result of one job.
struct SolveReport {
  std::string backend;
  std::string game_name;
  /// All samples, ordered by unit index (deterministic for a fixed request).
  std::vector<SolveSample> samples;
  std::size_t nash_count = 0;   // samples with is_nash
  std::size_t valid_count = 0;  // samples satisfying the simplex constraints
  /// Minimum backend-native objective over the valid samples (NaN if none).
  double best_objective = 0.0;
  /// Architecture-model wall clock (core/timing): SA run time × runs for
  /// hardware-sa, programming + reads × per-sample time for the D-Wave
  /// proxies, 0 for the pure-software solvers.
  double modeled_time_s = 0.0;
  /// Measured host wall clock from submission to completion. Scheduling-
  /// dependent — the only report field excluded from the determinism
  /// guarantee.
  double wall_clock_s = 0.0;
  /// Anytime degradation: true when the request deadline expired before
  /// every unit ran — samples cover only units_completed of units_total.
  /// Degraded reports are never stored in the gateway's solution cache.
  bool degraded = false;
  /// Runs-completed accounting: scheduled work units vs. units that actually
  /// produced samples (equal unless degraded).
  std::size_t units_total = 0;
  std::size_t units_completed = 0;
  /// Samples produced by the "resilient" backend's exact-sa fallback path
  /// after a primary hardware failure (0 for every other backend). Reports
  /// with fallbacks are never cached either.
  std::size_t fallback_count = 0;
  /// Replica-exchange telemetry, summed over the report's ensembles (0 for
  /// independent-mode SA and every non-SA backend): temperature-swap
  /// proposals and accepts. accepts/proposals is the observable Earl & Deem
  /// tune ladder spacing against; the gateway mirrors the totals into its
  /// metrics registry.
  std::size_t re_swap_proposals = 0;
  std::size_t re_swap_accepts = 0;

  std::size_t runs() const { return samples.size(); }
  double nash_rate() const;
};

/// A request bound to its per-job immutable state (programmed proxy models,
/// evaluator factories). Work units run concurrently on service workers, so
/// run_unit must be safe to call concurrently on a const instance and
/// deterministic in the unit index alone.
class PreparedJob {
 public:
  virtual ~PreparedJob() = default;
  virtual std::size_t num_units() const = 0;
  /// Unit u's samples (one per SA run / annealer read, zero or more for the
  /// exact solvers), ε-Nash-verified.
  virtual std::vector<SolveSample> run_unit(std::size_t unit) const = 0;
  /// Report post-processing once all units are assembled in unit order
  /// (e.g. cross-label dedup for lemke-howson). Aggregate counts are
  /// recomputed afterwards.
  virtual void finalize(SolveReport&) const {}

  // Report metadata, filled when the job is prepared.
  std::string backend_name;
  std::string game_name;
  double modeled_time_s = 0.0;
  std::size_t max_parallelism = 0;
};

class SolverBackend {
 public:
  virtual ~SolverBackend() = default;
  /// Registry key.
  virtual const std::string& name() const = 0;
  /// One-line human description of the mechanism and its config knobs.
  virtual std::string describe() const = 0;
  virtual std::unique_ptr<PreparedJob> prepare(
      const SolveRequest& request) const = 0;
  /// Synchronous convenience path: prepare + run every unit inline on the
  /// calling thread. Same report as a SolverService submission (modulo
  /// wall_clock_s).
  SolveReport solve(const SolveRequest& request) const;
};

/// Submit-time request validation: throws std::invalid_argument with a clear
/// message for requests that could only fail later on a worker thread
/// (zero sample units, degenerate game payoffs). Backend-key resolution is
/// validated separately by the registry lookup.
void validate_request(const SolveRequest& request);

/// ε-Nash verification of freshly produced samples: sets is_nash and regret
/// from game::check_equilibrium (invalid samples get regret = NaN).
void verify_samples(const game::BimatrixGame& game, double nash_eps,
                    std::vector<SolveSample>& samples);

/// Recompute a report's aggregate fields from its samples.
void summarize(SolveReport& report);

/// Assemble a report from per-unit sample slots: concatenates in unit order,
/// applies the job's finalize() hook, recomputes aggregates. wall_clock_s is
/// left to the caller.
SolveReport assemble_report(const PreparedJob& job,
                            std::vector<std::vector<SolveSample>> slots);

/// String-keyed backend registry. Reads are lock-free; registration is not
/// thread-safe and should happen before concurrent use.
class SolverRegistry {
 public:
  /// Registers under backend->name(). Throws std::invalid_argument on a
  /// duplicate key.
  void add(std::unique_ptr<SolverBackend> backend);
  /// nullptr when unknown.
  const SolverBackend* find(const std::string& name) const;
  /// find() or throw std::invalid_argument listing the registered keys.
  const SolverBackend& at(const std::string& name) const;
  /// Registration order.
  std::vector<std::string> names() const;

  /// Process-wide registry preloaded with the built-in backends.
  static SolverRegistry& global();

 private:
  std::vector<std::unique_ptr<SolverBackend>> backends_;
};

/// The SA job shared by the hardware-sa / exact-sa backends and the
/// SolverEngine.
///
/// Independent mode: runs are grouped into lockstep batches of
/// sa.batch_lanes lanes; unit u covers runs [u*K, u*K + lanes). Run r keeps
/// the scalar key scheme — evaluator instance key 2r, SA stream key 2r + 1
/// (even/odd keys can never alias across runs) — so the report is
/// byte-identical for ANY batch_lanes value, including the unbatched K = 1.
///
/// Replica-exchange mode: unit u is ONE ensemble of sa.replicas lockstep
/// replicas producing one sample (the winning replica). Ensemble e uses a
/// key stride of (replicas + 1): replica l takes instance key
/// 2*(e*(R+1) + l) and SA stream key 2*(e*(R+1) + l) + 1, and the swap
/// proposals draw from stream key 2*(e*(R+1) + R) + 1 — all distinct within
/// and across ensembles.
class SaPreparedJob final : public PreparedJob {
 public:
  SaPreparedJob(std::shared_ptr<const EvaluatorFactory> factory,
                std::uint32_t intervals, SaOptions sa, bool report_best,
                std::uint64_t seed, std::size_t num_runs,
                std::uint64_t base_run = 0, double nash_eps = 1e-7);

  std::size_t num_units() const override;
  std::vector<SolveSample> run_unit(std::size_t unit) const override;

 private:
  std::vector<SolveSample> run_batch_unit(std::size_t unit) const;
  std::vector<SolveSample> run_ensemble_unit(std::size_t unit) const;

  std::shared_ptr<const EvaluatorFactory> factory_;
  std::uint32_t intervals_;
  SaOptions sa_;
  bool report_best_;
  util::Rng root_;  // keyed splits only — never advanced
  std::uint64_t base_run_;
  std::size_t num_runs_;
  double nash_eps_;
};

}  // namespace cnash::core
