#pragma once
// Algorithm 1: the two-phase simulated annealing controller of C-Nash.
// The SA state is a quantized strategy pair; the neighbourhood move shifts one
// 1/I probability tick per player ("randomly increment or decrement the
// action probabilities by the value of interval", Sec. 3.4); the objective is
// evaluated by an ObjectiveEvaluator (exact or hardware-backed two-phase).

#include <cstdint>
#include <vector>

#include "core/batch.hpp"
#include "core/maxqubo.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace cnash::core {

enum class SaInit {
  kRandomComposition,  // uniform over all grid points
  kRandomSupport       // uniform over support sizes, then over that face
};

/// How a work unit's lanes relate to each other.
enum class SaMode : std::uint8_t {
  /// Lanes are independent runs batched for locality; results are
  /// byte-identical to unbatched scalar runs for any batch_lanes value.
  kIndependent,
  /// Lanes are replicas of ONE run at a geometric temperature ladder with
  /// periodic lockstep swap proposals (parallel tempering) — hard games
  /// converge in fewer iterations, not just faster iterations. On the analog
  /// fabric the replicas occupy concurrent crossbar banks, so a unit's
  /// modeled time is that of a single run.
  kReplicaExchange
};

struct SaOptions {
  std::size_t iterations = 10000;
  /// Initial strategy-pair generation (Alg. 1 line 1 leaves this free).
  /// Support-biased starts give every equilibrium class a comparable basin.
  SaInit init = SaInit::kRandomSupport;
  /// Start/end temperature as a fraction of the game's payoff range. The
  /// endpoint must sit well below the objective change of a single 1/I
  /// probability tick or the walk keeps wandering off the equilibrium; the
  /// start is kept low as well (warm restarts from diverse support-biased
  /// initial pairs cover the equilibrium classes far better than hot anneals,
  /// which always cool into the large-support centre of the simplex).
  double t_start_rel = 0.01;
  double t_end_rel = 0.0005;
  /// Probability that a proposal also perturbs the second player (the first
  /// perturbed player is always chosen at random).
  double both_players_prob = 0.5;

  // ---- Run-batching / replica-exchange knobs --------------------------------
  SaMode mode = SaMode::kIndependent;
  /// Lockstep lanes per work unit in kIndependent mode (0 behaves as 1).
  /// Never changes results — only scheduling grain and locality.
  std::size_t batch_lanes = 8;
  /// Ladder size in kReplicaExchange mode (>= 2).
  std::size_t replicas = 8;
  /// Iterations between lockstep swap-proposal rounds (>= 1).
  std::size_t exchange_interval = 16;
  /// Geometric ladder spacing: replica at ladder position k anneals at
  /// base_T * ladder_ratio^k (> 1).
  double ladder_ratio = 1.5;
};

struct SaRunResult {
  game::QuantizedProfile final_profile;
  double final_objective;
  game::QuantizedProfile best_profile;
  double best_objective;
  std::size_t accepted = 0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  /// Replica-exchange only (zero otherwise): temperature-swap proposals this
  /// run took part in and how many were accepted. The ensemble totals are
  /// attributed to EVERY replica's result identically (a swap involves two
  /// replicas; per-ensemble rates are what ladder_ratio tuning needs), so
  /// the caller reads them off whichever replica wins.
  std::size_t swap_proposals = 0;
  std::size_t swap_accepts = 0;
};

/// One annealing run from a random initial profile.
SaRunResult simulated_annealing(ObjectiveEvaluator& objective,
                                std::uint32_t intervals, const SaOptions& opts,
                                util::Rng& rng);

/// One annealing run from an explicit initial profile.
SaRunResult simulated_annealing_from(ObjectiveEvaluator& objective,
                                     game::QuantizedProfile initial,
                                     const SaOptions& opts, util::Rng& rng);

/// K INDEPENDENT runs advanced in lockstep (iteration-major, lane-minor).
/// Lane l draws from lane_rngs[l] in exactly the scalar per-run sequence, so
/// the result vector byte-matches K simulated_annealing() calls on the same
/// evaluators and streams — for any lane count, including K = 1.
std::vector<SaRunResult> simulated_annealing_batch(BatchedEvaluator& batch,
                                                   std::uint32_t intervals,
                                                   const SaOptions& opts,
                                                   util::Rng* lane_rngs);

/// One replica-exchange (parallel tempering) ensemble: batch.lanes() replicas
/// anneal in lockstep at a geometric temperature ladder; every
/// opts.exchange_interval iterations adjacent ladder positions propose a
/// temperature swap through `swap_rng` (exactly one uniform per proposal,
/// accepted or not — fixed draw count keeps the schedule deterministic).
/// Returns the per-replica results; the caller picks the winning replica.
std::vector<SaRunResult> simulated_annealing_replica_exchange(
    BatchedEvaluator& batch, std::uint32_t intervals, const SaOptions& opts,
    util::Rng* lane_rngs, util::Rng& swap_rng);

}  // namespace cnash::core
