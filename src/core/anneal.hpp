#pragma once
// Algorithm 1: the two-phase simulated annealing controller of C-Nash.
// The SA state is a quantized strategy pair; the neighbourhood move shifts one
// 1/I probability tick per player ("randomly increment or decrement the
// action probabilities by the value of interval", Sec. 3.4); the objective is
// evaluated by an ObjectiveEvaluator (exact or hardware-backed two-phase).

#include <cstdint>

#include "core/maxqubo.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace cnash::core {

enum class SaInit {
  kRandomComposition,  // uniform over all grid points
  kRandomSupport       // uniform over support sizes, then over that face
};

struct SaOptions {
  std::size_t iterations = 10000;
  /// Initial strategy-pair generation (Alg. 1 line 1 leaves this free).
  /// Support-biased starts give every equilibrium class a comparable basin.
  SaInit init = SaInit::kRandomSupport;
  /// Start/end temperature as a fraction of the game's payoff range. The
  /// endpoint must sit well below the objective change of a single 1/I
  /// probability tick or the walk keeps wandering off the equilibrium; the
  /// start is kept low as well (warm restarts from diverse support-biased
  /// initial pairs cover the equilibrium classes far better than hot anneals,
  /// which always cool into the large-support centre of the simplex).
  double t_start_rel = 0.01;
  double t_end_rel = 0.0005;
  /// Probability that a proposal also perturbs the second player (the first
  /// perturbed player is always chosen at random).
  double both_players_prob = 0.5;
};

struct SaRunResult {
  game::QuantizedProfile final_profile;
  double final_objective;
  game::QuantizedProfile best_profile;
  double best_objective;
  std::size_t accepted = 0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
};

/// One annealing run from a random initial profile.
SaRunResult simulated_annealing(ObjectiveEvaluator& objective,
                                std::uint32_t intervals, const SaOptions& opts,
                                util::Rng& rng);

/// One annealing run from an explicit initial profile.
SaRunResult simulated_annealing_from(ObjectiveEvaluator& objective,
                                     game::QuantizedProfile initial,
                                     const SaOptions& opts, util::Rng& rng);

}  // namespace cnash::core
