#include "core/sample.hpp"

#include <cstdio>

namespace cnash::core {

std::string SolveSample::key() const {
  if (profile) return profile->key();
  std::string out;
  char buf[32];
  auto append = [&](const la::Vector& v) {
    for (double x : v) {
      std::snprintf(buf, sizeof buf, "%.6f,", x);
      out += buf;
    }
  };
  append(p);
  out += '|';
  append(q);
  return out;
}

}  // namespace cnash::core
