#pragma once
// core — SolveReport ↔ JSON. One serialisation of the normalised solve result,
// shared by the serve/ gateway (wire responses + cached replay), the
// `solve_file --json` CLI path and the serving benches, so a report written by
// any of them parses back bit-identically (doubles are rendered with
// round-trip precision; NaN fields — regret of invalid samples, the
// best objective of an all-invalid report — map to JSON null and back).
//
// Schema (stable; bump "gamekey"/protocol versions in serve/ if it changes):
//   {
//     "backend": "hardware-sa", "game": "battle of the sexes",
//     "nash_count": 3, "valid_count": 8, "best_objective": 0.0,
//     "modeled_time_s": 1.2e-05, "wall_clock_s": 0.004,
//     "samples": [
//       {"p": [..], "q": [..], "objective": 0.0, "valid": true,
//        "is_nash": true, "regret": 0.0,
//        "profile": {"intervals": 12, "p": [..], "q": [..]}}   // SA only
//     ]
//   }

#include "core/backend.hpp"
#include "util/json.hpp"

namespace cnash::core {

util::Json report_to_json(const SolveReport& report);

/// Inverse of report_to_json. Throws util::JsonError on schema violations
/// (missing fields, wrong types, profile tick vectors that do not sum to the
/// declared interval count).
SolveReport report_from_json(const util::Json& json);

}  // namespace cnash::core
