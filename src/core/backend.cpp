#include "core/backend.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "chip/tiled_backend.hpp"
#include "core/resilient.hpp"
#include "core/timing.hpp"
#include "game/lemke_howson.hpp"
#include "game/support_enum.hpp"
#include "game/verify.hpp"
#include "qubo/dwave_proxy.hpp"

namespace cnash::core {

double SolveReport::nash_rate() const {
  if (samples.empty()) return 0.0;
  return static_cast<double>(nash_count) / static_cast<double>(samples.size());
}

void validate_request(const SolveRequest& request) {
  if (request.runs == 0)
    throw std::invalid_argument(
        "invalid solve request: runs == 0 (need at least one sample unit)");
  if (request.game.num_actions1() == 0 || request.game.num_actions2() == 0)
    throw std::invalid_argument("invalid solve request: empty game");
  if (!std::isfinite(request.deadline_s) || request.deadline_s < 0.0)
    throw std::invalid_argument(
        "invalid solve request: deadline_s must be finite and >= 0 "
        "(0 disables the deadline)");
  const auto check_rate = [](double v, const char* name) {
    if (!std::isfinite(v) || v < 0.0 || v > 1.0)
      throw std::invalid_argument(std::string("invalid solve request: fault.") +
                                  name + " must be in [0, 1]");
  };
  check_rate(request.fault.unit_failure_rate, "unit_failure_rate");
  check_rate(request.fault.tile_failure_rate, "tile_failure_rate");
  check_rate(request.fault.unit_delay_rate, "unit_delay_rate");
  if (!std::isfinite(request.fault.unit_delay_s) ||
      request.fault.unit_delay_s < 0.0)
    throw std::invalid_argument(
        "invalid solve request: fault.unit_delay_s must be finite and >= 0");
  if (request.fault.solver_faults() && request.backend != "resilient")
    throw std::invalid_argument(
        "invalid solve request: fault injection is only accepted by the "
        "\"resilient\" backend (backend \"" +
        request.backend + "\" has no fallback path)");
  if (request.backend == "resilient" &&
      request.resilient_primary != "hardware-sa" &&
      request.resilient_primary != "hardware-sa-tiled")
    throw std::invalid_argument(
        "invalid solve request: resilient primary must be \"hardware-sa\" or "
        "\"hardware-sa-tiled\", not \"" +
        request.resilient_primary + "\"");
  if (request.sa.mode == SaMode::kReplicaExchange) {
    if (request.sa.replicas < 2)
      throw std::invalid_argument(
          "invalid solve request: replica-exchange needs sa.replicas >= 2");
    if (request.sa.exchange_interval == 0)
      throw std::invalid_argument(
          "invalid solve request: sa.exchange_interval must be >= 1");
    if (!(request.sa.ladder_ratio > 1.0))
      throw std::invalid_argument(
          "invalid solve request: sa.ladder_ratio must be > 1");
  }
  for (const la::Matrix* m : {&request.game.payoff1(), &request.game.payoff2()})
    for (std::size_t r = 0; r < m->rows(); ++r)
      for (std::size_t c = 0; c < m->cols(); ++c)
        if (!std::isfinite((*m)(r, c)))
          throw std::invalid_argument(
              "invalid solve request: non-finite payoff in game \"" +
              request.game.name() + "\"");
}

void verify_samples(const game::BimatrixGame& game, double nash_eps,
                    std::vector<SolveSample>& samples) {
  for (SolveSample& s : samples) {
    if (!s.valid) {
      s.is_nash = false;
      s.regret = std::numeric_limits<double>::quiet_NaN();
      continue;
    }
    const game::NashCheck check =
        game::check_equilibrium(game, s.p, s.q, nash_eps);
    s.is_nash = check.is_equilibrium;
    s.regret = std::max(check.regret1, check.regret2);
  }
}

void summarize(SolveReport& report) {
  report.nash_count = 0;
  report.valid_count = 0;
  report.fallback_count = 0;
  report.re_swap_proposals = 0;
  report.re_swap_accepts = 0;
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const SolveSample& s : report.samples) {
    if (s.is_nash) ++report.nash_count;
    if (s.fallback) ++report.fallback_count;
    report.re_swap_proposals += s.swap_proposals;
    report.re_swap_accepts += s.swap_accepts;
    if (!s.valid) continue;
    ++report.valid_count;
    if (std::isnan(best) || s.objective < best) best = s.objective;
  }
  report.best_objective = best;
}

SolveReport assemble_report(const PreparedJob& job,
                            std::vector<std::vector<SolveSample>> slots) {
  SolveReport report;
  report.backend = job.backend_name;
  report.game_name = job.game_name;
  report.modeled_time_s = job.modeled_time_s;
  std::size_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  report.samples.reserve(total);
  for (auto& slot : slots)
    for (SolveSample& s : slot) report.samples.push_back(std::move(s));
  job.finalize(report);
  summarize(report);
  return report;
}

SolveReport SolverBackend::solve(const SolveRequest& request) const {
  const auto t0 = std::chrono::steady_clock::now();
  validate_request(request);
  const std::unique_ptr<PreparedJob> job = prepare(request);
  std::vector<std::vector<SolveSample>> slots(job->num_units());
  for (std::size_t u = 0; u < slots.size(); ++u) slots[u] = job->run_unit(u);
  SolveReport report = assemble_report(*job, std::move(slots));
  report.units_total = job->num_units();
  report.units_completed = job->num_units();
  report.wall_clock_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  return report;
}

// ---- SA backends (hardware-sa / exact-sa) -----------------------------------

SaPreparedJob::SaPreparedJob(std::shared_ptr<const EvaluatorFactory> factory,
                             std::uint32_t intervals, SaOptions sa,
                             bool report_best, std::uint64_t seed,
                             std::size_t num_runs, std::uint64_t base_run,
                             double nash_eps)
    : factory_(std::move(factory)),
      intervals_(intervals),
      sa_(sa),
      report_best_(report_best),
      root_(seed),
      base_run_(base_run),
      num_runs_(num_runs),
      nash_eps_(nash_eps) {
  if (!factory_) throw std::invalid_argument("SaPreparedJob: null factory");
  if (sa_.mode == SaMode::kReplicaExchange) {
    if (sa_.replicas < 2)
      throw std::invalid_argument("SaPreparedJob: sa.replicas must be >= 2");
    if (sa_.exchange_interval == 0)
      throw std::invalid_argument(
          "SaPreparedJob: sa.exchange_interval must be >= 1");
    if (!(sa_.ladder_ratio > 1.0))
      throw std::invalid_argument(
          "SaPreparedJob: sa.ladder_ratio must be > 1");
  }
  game_name = factory_->game().name();
}

namespace {

SolveSample sa_sample(const SaRunResult& res, bool report_best) {
  const game::QuantizedProfile& chosen =
      report_best ? res.best_profile : res.final_profile;
  SolveSample s;
  s.p = chosen.p.to_distribution();
  s.q = chosen.q.to_distribution();
  s.objective = report_best ? res.best_objective : res.final_objective;
  s.profile = chosen;
  // Zero for independent-mode runs; replica exchange stamps the ensemble
  // totals on every replica, so the winner carries them.
  s.swap_proposals = res.swap_proposals;
  s.swap_accepts = res.swap_accepts;
  return s;
}

}  // namespace

std::size_t SaPreparedJob::num_units() const {
  if (sa_.mode == SaMode::kReplicaExchange) return num_runs_;
  const std::size_t k = std::max<std::size_t>(1, sa_.batch_lanes);
  return (num_runs_ + k - 1) / k;
}

std::vector<SolveSample> SaPreparedJob::run_unit(std::size_t unit) const {
  return sa_.mode == SaMode::kReplicaExchange ? run_ensemble_unit(unit)
                                              : run_batch_unit(unit);
}

std::vector<SolveSample> SaPreparedJob::run_batch_unit(std::size_t unit) const {
  // Even keys address evaluator instances, odd keys SA streams, so the two
  // families can never alias across runs. Lanes keep the per-run keys of the
  // scalar sweep, so any K produces bit-identical reports.
  const std::size_t k = std::max<std::size_t>(1, sa_.batch_lanes);
  const std::uint64_t first = base_run_ + unit * k;
  const std::size_t count = std::min(k, num_runs_ - unit * k);
  std::vector<std::uint64_t> keys(count);
  std::vector<util::Rng> rngs;
  rngs.reserve(count);
  for (std::size_t l = 0; l < count; ++l) {
    keys[l] = 2 * (first + l);
    rngs.push_back(root_.split(2 * (first + l) + 1));
  }
  const std::unique_ptr<BatchedEvaluator> batch =
      factory_->create_batched(keys.data(), count);
  const std::vector<SaRunResult> results =
      simulated_annealing_batch(*batch, intervals_, sa_, rngs.data());
  std::vector<SolveSample> out;
  out.reserve(count);
  for (const SaRunResult& res : results)
    out.push_back(sa_sample(res, report_best_));
  verify_samples(factory_->game(), nash_eps_, out);
  return out;
}

std::vector<SolveSample> SaPreparedJob::run_ensemble_unit(
    std::size_t unit) const {
  const std::uint64_t e = base_run_ + unit;
  const std::size_t r = sa_.replicas;
  const std::uint64_t stride = static_cast<std::uint64_t>(r) + 1;
  std::vector<std::uint64_t> keys(r);
  std::vector<util::Rng> rngs;
  rngs.reserve(r);
  for (std::size_t l = 0; l < r; ++l) {
    keys[l] = 2 * (e * stride + l);
    rngs.push_back(root_.split(2 * (e * stride + l) + 1));
  }
  util::Rng swap_rng = root_.split(2 * (e * stride + r) + 1);
  const std::unique_ptr<BatchedEvaluator> batch =
      factory_->create_batched(keys.data(), r);
  const std::vector<SaRunResult> results = simulated_annealing_replica_exchange(
      *batch, intervals_, sa_, rngs.data(), swap_rng);
  // The ensemble reports its winning replica (ties to the lowest lane index
  // for determinism).
  std::size_t win = 0;
  auto score = [&](const SaRunResult& res) {
    return report_best_ ? res.best_objective : res.final_objective;
  };
  for (std::size_t l = 1; l < results.size(); ++l)
    if (score(results[l]) < score(results[win])) win = l;
  std::vector<SolveSample> out{sa_sample(results[win], report_best_)};
  verify_samples(factory_->game(), nash_eps_, out);
  return out;
}

namespace {

class SaBackend final : public SolverBackend {
 public:
  explicit SaBackend(bool hardware)
      : hardware_(hardware), name_(hardware ? "hardware-sa" : "exact-sa") {}

  const std::string& name() const override { return name_; }

  std::string describe() const override {
    return hardware_
               ? "two-phase SA on the full FeFET crossbar/WTA/ADC model "
                 "(runs, seed, intervals, sa, hardware, report_best)"
               : "two-phase SA on the exact MAX-QUBO objective, ablation "
                 "(runs, seed, intervals, sa, report_best)";
  }

  std::unique_ptr<PreparedJob> prepare(
      const SolveRequest& request) const override {
    std::shared_ptr<const EvaluatorFactory> factory;
    double modeled = 0.0;
    if (hardware_) {
      auto hw = std::make_shared<HardwareEvaluatorFactory>(
          request.game, request.intervals, request.hardware,
          util::Rng(request.seed));
      // A reserved-key probe instance supplies the mapped array geometry for
      // the latency model without perturbing any run's stream.
      const auto probe = hw->create_hardware(kProbeInstanceKey);
      modeled = CNashTimingModel().run_time_s(
                    probe->crossbar_m().mapping().geometry(),
                    request.sa.iterations) *
                static_cast<double>(request.runs);
      factory = std::move(hw);
    } else {
      factory = std::make_shared<ExactEvaluatorFactory>(request.game);
    }
    auto job = std::make_unique<SaPreparedJob>(
        std::move(factory), request.intervals, request.sa, request.report_best,
        request.seed, request.runs, /*base_run=*/0, request.nash_eps);
    job->backend_name = name_;
    job->modeled_time_s = modeled;
    job->max_parallelism = request.max_parallelism;
    return job;
  }

 private:
  bool hardware_;
  std::string name_;
};

// ---- D-Wave proxy backends --------------------------------------------------

class DWaveJob final : public PreparedJob {
 public:
  DWaveJob(const game::BimatrixGame& game, qubo::DWaveConfig config,
           std::size_t reads, std::uint64_t seed, double nash_eps)
      : proxy_(game, std::move(config)),
        root_(seed),
        reads_(reads),
        nash_eps_(nash_eps) {}

  std::size_t num_units() const override { return reads_; }

  std::vector<SolveSample> run_unit(std::size_t unit) const override {
    // One annealer read per unit on its own keyed stream, so reads are
    // reproducible regardless of which worker performs them.
    util::Rng rng = root_.split(unit);
    std::vector<SolveSample> out;
    out.push_back(proxy_.sample_one(rng));
    verify_samples(proxy_.game(), nash_eps_, out);
    return out;
  }

 private:
  qubo::DWaveProxy proxy_;
  util::Rng root_;  // keyed splits only — never advanced
  std::size_t reads_;
  double nash_eps_;
};

class DWaveBackend final : public SolverBackend {
 public:
  DWaveBackend(std::string name, qubo::DWaveConfig (*config)(),
               DWaveTimingParams (*timing)())
      : name_(std::move(name)), config_(config), timing_(timing) {}

  const std::string& name() const override { return name_; }

  std::string describe() const override {
    return config_().name +
           ": S-QUBO annealer proxy, pure strategies only "
           "(runs = reads, seed)";
  }

  std::unique_ptr<PreparedJob> prepare(
      const SolveRequest& request) const override {
    auto job = std::make_unique<DWaveJob>(request.game, config_(),
                                          request.runs, request.seed,
                                          request.nash_eps);
    const DWaveTimingParams timing = timing_();
    job->backend_name = name_;
    job->game_name = request.game.name();
    job->modeled_time_s = timing.programming_s +
                          timing.per_sample_s *
                              static_cast<double>(request.runs);
    job->max_parallelism = request.max_parallelism;
    return job;
  }

 private:
  std::string name_;
  qubo::DWaveConfig (*config_)();
  DWaveTimingParams (*timing_)();
};

// ---- Exact ground-truth backends --------------------------------------------

SolveSample equilibrium_sample(const game::BimatrixGame& game,
                               const game::Equilibrium& eq, double nash_eps) {
  SolveSample s;
  s.p = eq.p;
  s.q = eq.q;
  s.objective = game::equilibrium_gap(game, eq.p, eq.q);
  std::vector<SolveSample> one{std::move(s)};
  verify_samples(game, nash_eps, one);
  return std::move(one.front());
}

class LemkeHowsonJob final : public PreparedJob {
 public:
  LemkeHowsonJob(game::BimatrixGame game, double nash_eps)
      : game_(std::move(game)),
        labels_(game_.num_actions1() + game_.num_actions2()),
        nash_eps_(nash_eps) {}

  std::size_t num_units() const override { return labels_; }

  std::vector<SolveSample> run_unit(std::size_t unit) const override {
    const std::optional<game::Equilibrium> eq =
        game::lemke_howson(game_, unit);
    if (!eq) return {};
    return {equilibrium_sample(game_, *eq, nash_eps_)};
  }

  void finalize(SolveReport& report) const override {
    // Different initial labels often pivot to the same equilibrium; keep the
    // first occurrence in label order (deterministic).
    std::vector<SolveSample> unique;
    for (SolveSample& s : report.samples) {
      const bool seen = std::any_of(
          unique.begin(), unique.end(), [&](const SolveSample& u) {
            if (u.p.size() != s.p.size() || u.q.size() != s.q.size())
              return false;
            for (std::size_t i = 0; i < u.p.size(); ++i)
              if (std::abs(u.p[i] - s.p[i]) > 1e-6) return false;
            for (std::size_t j = 0; j < u.q.size(); ++j)
              if (std::abs(u.q[j] - s.q[j]) > 1e-6) return false;
            return true;
          });
      if (!seen) unique.push_back(std::move(s));
    }
    report.samples = std::move(unique);
  }

 private:
  game::BimatrixGame game_;
  std::size_t labels_;
  double nash_eps_;
};

class LemkeHowsonBackend final : public SolverBackend {
 public:
  const std::string& name() const override { return name_; }

  std::string describe() const override {
    return "Lemke-Howson complementary pivoting from every initial label, "
           "deduplicated (runs/seed ignored)";
  }

  std::unique_ptr<PreparedJob> prepare(
      const SolveRequest& request) const override {
    auto job = std::make_unique<LemkeHowsonJob>(request.game,
                                                request.nash_eps);
    job->backend_name = name_;
    job->game_name = request.game.name();
    job->max_parallelism = request.max_parallelism;
    return job;
  }

 private:
  std::string name_ = "lemke-howson";
};

class SupportEnumJob final : public PreparedJob {
 public:
  SupportEnumJob(game::BimatrixGame game, double nash_eps)
      : game_(std::move(game)), nash_eps_(nash_eps) {}

  std::size_t num_units() const override { return 1; }

  std::vector<SolveSample> run_unit(std::size_t) const override {
    const game::SupportEnumResult result = game::support_enumeration(game_);
    std::vector<SolveSample> out;
    out.reserve(result.equilibria.size());
    for (const game::Equilibrium& eq : result.equilibria)
      out.push_back(equilibrium_sample(game_, eq, nash_eps_));
    return out;
  }

 private:
  game::BimatrixGame game_;
  double nash_eps_;
};

class SupportEnumBackend final : public SolverBackend {
 public:
  const std::string& name() const override { return name_; }

  std::string describe() const override {
    return "exhaustive support enumeration, the ground-truth solver "
           "(runs/seed ignored)";
  }

  std::unique_ptr<PreparedJob> prepare(
      const SolveRequest& request) const override {
    auto job = std::make_unique<SupportEnumJob>(request.game,
                                                request.nash_eps);
    job->backend_name = name_;
    job->game_name = request.game.name();
    job->max_parallelism = request.max_parallelism;
    return job;
  }

 private:
  std::string name_ = "support-enum";
};

}  // namespace

// ---- Registry ---------------------------------------------------------------

void SolverRegistry::add(std::unique_ptr<SolverBackend> backend) {
  if (!backend) throw std::invalid_argument("SolverRegistry: null backend");
  if (find(backend->name()))
    throw std::invalid_argument("SolverRegistry: duplicate backend \"" +
                                backend->name() + "\"");
  backends_.push_back(std::move(backend));
}

const SolverBackend* SolverRegistry::find(const std::string& name) const {
  for (const auto& b : backends_)
    if (b->name() == name) return b.get();
  return nullptr;
}

const SolverBackend& SolverRegistry::at(const std::string& name) const {
  if (const SolverBackend* b = find(name)) return *b;
  std::string known;
  for (const auto& b : backends_) {
    if (!known.empty()) known += ", ";
    known += b->name();
  }
  throw std::invalid_argument("unknown solver backend \"" + name +
                              "\" (registered: " + known + ")");
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->name());
  return out;
}

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry;
    r->add(std::make_unique<SaBackend>(true));
    r->add(chip::make_tiled_backend());
    r->add(std::make_unique<SaBackend>(false));
    r->add(std::make_unique<DWaveBackend>(
        "dwave-2000q6", qubo::dwave_2000q6_config, dwave_2000q6_timing));
    r->add(std::make_unique<DWaveBackend>("dwave-advantage41",
                                          qubo::dwave_advantage41_config,
                                          dwave_advantage41_timing));
    r->add(std::make_unique<LemkeHowsonBackend>());
    r->add(std::make_unique<SupportEnumBackend>());
    r->add(make_resilient_backend());
    return r;
  }();
  return *registry;
}

}  // namespace cnash::core
