#include "core/engine.hpp"

#include <stdexcept>

#include "core/backend.hpp"
#include "core/service.hpp"

namespace cnash::core {

// ---- Factories --------------------------------------------------------------

std::unique_ptr<BatchedEvaluator> EvaluatorFactory::create_batched(
    const std::uint64_t* instance_keys, std::size_t lanes) const {
  std::vector<std::unique_ptr<ObjectiveEvaluator>> v;
  v.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) v.push_back(create(instance_keys[l]));
  return std::make_unique<LaneBatchedEvaluator>(std::move(v));
}

ExactEvaluatorFactory::ExactEvaluatorFactory(game::BimatrixGame game)
    : shared_(std::make_shared<const ExactMaxQubo::Shared>(std::move(game))) {}

std::unique_ptr<ObjectiveEvaluator> ExactEvaluatorFactory::create(
    std::uint64_t) const {
  return std::make_unique<ExactMaxQubo>(shared_);
}

std::unique_ptr<BatchedEvaluator> ExactEvaluatorFactory::create_batched(
    const std::uint64_t*, std::size_t lanes) const {
  return std::make_unique<BatchedExactMaxQubo>(shared_, lanes);
}

HardwareEvaluatorFactory::HardwareEvaluatorFactory(game::BimatrixGame game,
                                                   std::uint32_t intervals,
                                                   TwoPhaseConfig config,
                                                   util::Rng device_rng)
    : game_(std::move(game)),
      intervals_(intervals),
      config_(config),
      device_rng_(device_rng) {}

std::unique_ptr<ObjectiveEvaluator> HardwareEvaluatorFactory::create(
    std::uint64_t key) const {
  return create_hardware(key);
}

std::unique_ptr<TwoPhaseEvaluator> HardwareEvaluatorFactory::create_hardware(
    std::uint64_t key) const {
  return std::make_unique<TwoPhaseEvaluator>(game_, intervals_, config_,
                                             device_rng_.split(key));
}

// ---- SolverEngine -----------------------------------------------------------

SolverEngine::SolverEngine(std::shared_ptr<const EvaluatorFactory> factory,
                           EngineOptions options)
    : factory_(std::move(factory)), options_(options) {
  if (!factory_) throw std::invalid_argument("SolverEngine: null factory");
}

SolveSample SolverEngine::solve_once() { return std::move(run(1).front()); }

std::vector<SolveSample> SolverEngine::run(std::size_t num_runs) {
  const std::uint64_t base = next_run_;
  next_run_ += num_runs;
  if (num_runs == 0) return {};

  // One job on the shared service pool, capped at this engine's `threads`;
  // base_run continues the run-index sequence so consecutive batches replay
  // the exact per-run streams of one big batch.
  auto job = std::make_unique<SaPreparedJob>(
      factory_, options_.intervals, options_.sa, options_.report_best,
      options_.seed, num_runs, base);
  job->backend_name = "engine";
  job->max_parallelism = options_.threads;
  SolveReport report =
      SolverService::shared().submit_prepared(std::move(job)).get();
  return std::move(report.samples);
}

}  // namespace cnash::core
