#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

namespace cnash::core {

// ---- Factories --------------------------------------------------------------

ExactEvaluatorFactory::ExactEvaluatorFactory(game::BimatrixGame game)
    : game_(std::move(game)) {}

std::unique_ptr<ObjectiveEvaluator> ExactEvaluatorFactory::create(
    std::uint64_t) const {
  return std::make_unique<ExactMaxQubo>(game_);
}

HardwareEvaluatorFactory::HardwareEvaluatorFactory(game::BimatrixGame game,
                                                   std::uint32_t intervals,
                                                   TwoPhaseConfig config,
                                                   util::Rng device_rng)
    : game_(std::move(game)),
      intervals_(intervals),
      config_(config),
      device_rng_(device_rng) {}

std::unique_ptr<ObjectiveEvaluator> HardwareEvaluatorFactory::create(
    std::uint64_t key) const {
  return create_hardware(key);
}

std::unique_ptr<TwoPhaseEvaluator> HardwareEvaluatorFactory::create_hardware(
    std::uint64_t key) const {
  return std::make_unique<TwoPhaseEvaluator>(game_, intervals_, config_,
                                             device_rng_.split(key));
}

// ---- SolverEngine -----------------------------------------------------------

SolverEngine::SolverEngine(std::shared_ptr<const EvaluatorFactory> factory,
                           EngineOptions options)
    : factory_(std::move(factory)),
      options_(options),
      root_(options.seed) {
  if (!factory_) throw std::invalid_argument("SolverEngine: null factory");
}

std::size_t SolverEngine::resolved_threads() const {
  if (options_.threads > 0) return options_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

RunOutcome SolverEngine::run_one(std::uint64_t run_index) const {
  // Even keys address evaluator instances, odd keys SA streams, so the two
  // families can never alias across runs.
  const std::unique_ptr<ObjectiveEvaluator> evaluator =
      factory_->create(2 * run_index);
  util::Rng sa_rng = root_.split(2 * run_index + 1);
  const SaRunResult res = simulated_annealing(*evaluator, options_.intervals,
                                              options_.sa, sa_rng);
  const game::QuantizedProfile& chosen =
      options_.report_best ? res.best_profile : res.final_profile;
  const double objective =
      options_.report_best ? res.best_objective : res.final_objective;
  return RunOutcome{chosen.p.to_distribution(), chosen.q.to_distribution(),
                    objective, chosen};
}

RunOutcome SolverEngine::solve_once() { return run(1).front(); }

std::vector<RunOutcome> SolverEngine::run(std::size_t num_runs) {
  std::vector<RunOutcome> out;
  out.reserve(num_runs);
  const std::uint64_t base = next_run_;
  next_run_ += num_runs;
  if (num_runs == 0) return out;

  const std::size_t workers = std::min(resolved_threads(), num_runs);
  if (workers <= 1) {
    for (std::size_t i = 0; i < num_runs; ++i) out.push_back(run_one(base + i));
    return out;
  }

  std::vector<std::optional<RunOutcome>> slots(num_runs);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto work = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_runs) return;
      try {
        slots[i] = run_one(base + i);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
  for (std::optional<RunOutcome>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace cnash::core
