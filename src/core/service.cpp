#include "core/service.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

namespace cnash::core {

namespace {

std::size_t resolve_pool_size(std::size_t threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

/// One submitted job. All mutable state is guarded by the service mutex;
/// `prepared` is written once under the lock before any unit is dispatched,
/// so workers running units read it race-free.
struct SolverService::Job {
  // Request path (submit): resolved backend + request until prepared.
  const SolverBackend* backend = nullptr;
  std::optional<SolveRequest> request;
  bool prepare_claimed = false;

  std::unique_ptr<PreparedJob> prepared;
  std::size_t total = 0;      // num_units once prepared
  std::size_t next_unit = 0;  // next unit index to dispatch
  std::size_t in_flight = 0;  // units (or the prepare step) currently running
  std::size_t done = 0;       // units completed
  std::size_t cap = 0;        // per-job in-flight cap (0 = none)
  std::vector<std::vector<SolveSample>> slots;  // per-unit samples

  std::exception_ptr error;  // first failure; remaining units are skipped
  std::promise<SolveReport> promise;
  /// Callback-style result delivery (submit_async); when on_complete is set
  /// the promise is never touched.
  JobHooks hooks;
  /// Running best-so-far aggregates for ProgressSnapshot, updated under the
  /// service mutex as units complete (completion order, not unit order).
  std::size_t agg_nash = 0;
  std::size_t agg_valid = 0;
  double agg_best = std::numeric_limits<double>::quiet_NaN();
  std::chrono::steady_clock::time_point submitted;
  /// First step (prepare or unit) already handed to a worker — the edge that
  /// defines the job's queue-wait sample.
  bool dispatched = false;

  // Anytime degradation (request.deadline_s > 0): once `expired` is set by a
  // worker scan, no further units are dispatched; the job finishes when its
  // in-flight units drain and the report carries done < total, degraded.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline;
  bool expired = false;
};

SolverService::SolverService(ServiceOptions options)
    : registry_(options.registry ? options.registry
                                 : &SolverRegistry::global()),
      telemetry_(options.telemetry) {
  const std::size_t pool = resolve_pool_size(options.threads);
  workers_.reserve(pool);
  for (std::size_t w = 0; w < pool; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

SolverService::~SolverService() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;  // reject racing submissions during teardown
    stop_ = true;
  }
  cv_.notify_all();
  // Workers keep dispatching while any job has runnable steps, so queued work
  // is finished (not abandoned) before the pool exits — destruction is an
  // implicit drain().
  for (std::thread& t : workers_) t.join();
}

std::shared_ptr<SolverService::Job> SolverService::make_job() {
  auto job = std::make_shared<Job>();
  job->submitted = std::chrono::steady_clock::now();
  return job;
}

void SolverService::fail_now(const std::shared_ptr<Job>& job,
                             std::exception_ptr e) {
  if (job->hooks.on_complete)
    job->hooks.on_complete(SolveReport{}, e);
  else
    job->promise.set_exception(e);
}

void SolverService::enqueue(std::shared_ptr<Job> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      fail_now(job, std::make_exception_ptr(ServiceDrainingError(
                        "SolverService: draining — not accepting new jobs")));
      return;
    }
    jobs_.push_back(std::move(job));
  }
  cv_.notify_all();
}

void SolverService::submit_job(SolveRequest request, std::shared_ptr<Job> job) {
  // Submit-time validation: an unknown backend key or a request that could
  // only fail later on a worker thread resolves the job immediately with a
  // clear std::invalid_argument instead.
  const SolverBackend* backend = registry_->find(request.backend);
  std::exception_ptr invalid;
  try {
    if (!backend) registry_->at(request.backend);  // throws the known-key list
    validate_request(request);
  } catch (...) {
    invalid = std::current_exception();
  }
  if (invalid) {
    fail_now(job, invalid);
    return;
  }
  job->backend = backend;
  if (request.deadline_s > 0.0) {
    job->has_deadline = true;
    job->deadline = job->submitted + std::chrono::duration_cast<
                                         std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(
                                             request.deadline_s));
  }
  job->request = std::move(request);
  enqueue(std::move(job));
}

std::future<SolveReport> SolverService::submit(SolveRequest request) {
  auto job = make_job();
  std::future<SolveReport> future = job->promise.get_future();
  submit_job(std::move(request), std::move(job));
  return future;
}

void SolverService::submit_async(SolveRequest request, JobHooks hooks) {
  auto job = make_job();
  job->hooks = std::move(hooks);
  submit_job(std::move(request), std::move(job));
}

std::future<SolveReport> SolverService::submit_prepared(
    std::unique_ptr<PreparedJob> prepared) {
  auto job = make_job();
  std::future<SolveReport> future = job->promise.get_future();
  if (!prepared) {
    job->promise.set_exception(std::make_exception_ptr(
        std::invalid_argument("SolverService: null prepared job")));
    return future;
  }
  job->prepared = std::move(prepared);
  job->total = job->prepared->num_units();
  job->cap = job->prepared->max_parallelism;
  job->slots.resize(job->total);
  if (job->total == 0) {
    // Nothing to schedule; resolve inline.
    SolveReport report = assemble_report(*job->prepared, {});
    job->promise.set_value(std::move(report));
    return future;
  }
  enqueue(std::move(job));
  return future;
}

SolveReport SolverService::solve(SolveRequest request) {
  return submit(std::move(request)).get();
}

std::size_t SolverService::pending_jobs() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

SolverService::QueueDepth SolverService::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  QueueDepth depth;
  depth.jobs = jobs_.size();
  for (const std::shared_ptr<Job>& job : jobs_) {
    if (!job->prepared) {
      // The prepare step is the job's only known unit until it runs.
      if (!job->prepare_claimed) depth.queued_units++;
    } else {
      depth.queued_units += job->total - job->next_unit;
    }
    depth.in_flight_units += job->in_flight;
  }
  return depth;
}

void SolverService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  cv_.wait(lock, [&] { return jobs_.empty() && finishing_ == 0; });
}

bool SolverService::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void SolverService::finish(std::shared_ptr<Job> job) {
  if (job->error) {
    fail_now(job, job->error);
    return;
  }
  SolveReport report = assemble_report(*job->prepared, std::move(job->slots));
  report.units_total = job->total;
  report.units_completed = job->done;
  report.degraded = job->expired && job->done < job->total;
  report.wall_clock_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - job->submitted)
                            .count();
  if (job->hooks.on_complete)
    job->hooks.on_complete(std::move(report), nullptr);
  else
    job->promise.set_value(std::move(report));
}

void SolverService::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Scan the job list for the next dispatchable step: an unclaimed
    // prepare, or a unit of a prepared job below its cap. A job that hands
    // out a unit rotates to the tail, so concurrent jobs round-robin the
    // pool — a large job never starves a small one (results are unaffected:
    // units carry keyed streams).
    std::shared_ptr<Job> job;
    bool is_prepare = false;
    bool is_expiry_finish = false;
    bool first_dispatch = false;
    std::size_t unit = 0;
    // Deadlines are checked lazily, during scans only: `now` is read once per
    // scan and only when some job carries a deadline. No timed waits are
    // needed — a sleeping pool implies every pending non-expired job has
    // units in flight, and each completion re-runs this scan.
    std::chrono::steady_clock::time_point now;
    bool now_read = false;
    for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
      const std::shared_ptr<Job>& j = *it;
      if (j->error) continue;  // draining: no new units for failed jobs
      if (j->has_deadline && !j->expired) {
        if (!now_read) {
          now = std::chrono::steady_clock::now();
          now_read = true;
        }
        if (now >= j->deadline) j->expired = true;
      }
      if (!j->prepared) {
        // Prepare runs even past the deadline: the report is assembled from
        // the prepared job's metadata, so a degraded (0-unit) report still
        // needs it.
        if (j->prepare_claimed) continue;
        j->prepare_claimed = true;
        j->in_flight++;
        first_dispatch = !j->dispatched;
        j->dispatched = true;
        job = j;
        is_prepare = true;
        break;
      }
      if (j->expired) {
        if (j->in_flight == 0) {
          // Expiry discovered with nothing in flight (the post-unit check
          // below never saw `expired`): finish the job from the scan.
          job = j;
          is_expiry_finish = true;
          jobs_.erase(it);
          break;
        }
        continue;  // let in-flight units drain; dispatch nothing new
      }
      if (j->next_unit < j->total && (j->cap == 0 || j->in_flight < j->cap)) {
        unit = j->next_unit++;
        j->in_flight++;
        first_dispatch = !j->dispatched;
        j->dispatched = true;
        job = j;
        jobs_.splice(jobs_.end(), jobs_, it);
        break;
      }
    }
    if (is_expiry_finish) {
      finishing_++;  // drain() must not return before the promise is set
      lock.unlock();
      finish(std::move(job));
      lock.lock();
      finishing_--;
      cv_.notify_all();
      continue;
    }
    if (!job) {
      if (stop_) return;
      cv_.wait(lock);
      continue;
    }

    lock.unlock();
    const auto step_start = std::chrono::steady_clock::now();
    if (first_dispatch) {
      if (telemetry_.queue_wait_seconds)
        telemetry_.queue_wait_seconds->record(
            std::chrono::duration<double>(step_start - job->submitted)
                .count());
      if (telemetry_.trace)
        telemetry_.trace->record("queue-wait", "service", job->submitted,
                                 step_start, job->hooks.trace_id);
    }
    std::exception_ptr error;
    std::unique_ptr<PreparedJob> prepared;
    std::vector<SolveSample> samples;
    {
      obs::Span span(telemetry_.trace, is_prepare ? "prepare" : "unit",
                     "service", job->hooks.trace_id);
      try {
        if (is_prepare)
          prepared = job->backend->prepare(*job->request);
        else
          samples = job->prepared->run_unit(unit);
      } catch (...) {
        error = std::current_exception();
      }
    }
    if (obs::Histogram* h =
            is_prepare ? telemetry_.prepare_seconds : telemetry_.unit_seconds)
      h->record(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - step_start)
                    .count());
    lock.lock();

    job->in_flight--;
    if (error) {
      if (!job->error) job->error = error;
    } else if (is_prepare) {
      job->prepared = std::move(prepared);
      job->total = job->prepared->num_units();
      job->cap = job->prepared->max_parallelism;
      job->slots.resize(job->total);
      job->request.reset();  // the prepared job owns everything it needs
    } else {
      // Running best-so-far aggregates for anytime progress snapshots,
      // folded in completion order (snapshots are a live view; the final
      // report recomputes them deterministically in unit order).
      for (const SolveSample& s : samples) {
        if (s.is_nash) job->agg_nash++;
        if (!s.valid) continue;
        job->agg_valid++;
        if (std::isnan(job->agg_best) || s.objective < job->agg_best)
          job->agg_best = s.objective;
      }
      job->slots[unit] = std::move(samples);
      job->done++;
    }

    const bool finished =
        job->in_flight == 0 &&
        (job->error ||
         (job->prepared && (job->done == job->total || job->expired)));
    std::optional<ProgressSnapshot> progress;
    if (!finished && !error && !is_prepare && job->hooks.on_progress) {
      ProgressSnapshot snap;
      snap.units_total = job->total;
      snap.units_completed = job->done;
      snap.nash_count = job->agg_nash;
      snap.valid_count = job->agg_valid;
      snap.best_objective = job->agg_best;
      snap.elapsed_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - job->submitted)
                           .count();
      progress = snap;
    }
    if (finished) {
      for (auto it = jobs_.begin(); it != jobs_.end(); ++it)
        if (it->get() == job.get()) {
          jobs_.erase(it);
          break;
        }
      finishing_++;  // drain() must not return before the promise is set
      lock.unlock();
      finish(std::move(job));
      lock.lock();
      finishing_--;
    } else if (progress) {
      // The callback runs outside the lock; finishing_ keeps drain() from
      // returning (and the receiver from being torn down) while it runs.
      // Another worker may complete the job's last unit concurrently, so a
      // snapshot can reach the receiver after the final report — receivers
      // correlate by job and drop late snapshots.
      finishing_++;
      lock.unlock();
      job->hooks.on_progress(*progress);
      lock.lock();
      finishing_--;
    }
    // New units may have become dispatchable (post-prepare, freed cap slot,
    // or queue head change after completion).
    cv_.notify_all();
  }
}

SolverService& SolverService::shared() {
  // Heap-allocated so the pool (and its idle workers) outlives every static
  // destructor that might still submit work; the OS reclaims it at exit.
  static SolverService* service = new SolverService(ServiceOptions{});
  return *service;
}

}  // namespace cnash::core
