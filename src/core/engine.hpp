#pragma once
// core::SolverEngine — batched dispatch of independent two-phase SA runs
// across per-run evaluator instances.
//
// The paper's headline numbers (Table 1 success rate, Fig. 10
// time-to-solution) aggregate thousands of INDEPENDENT annealing runs, so the
// engine treats "one run" as the unit of work. Since the SolverService
// refactor the engine owns no threads of its own: each run() batch becomes
// one job on the process-wide SolverService pool (see service.hpp), scheduled
// run-granularly alongside any other in-flight jobs. Every run r derives
//   * its SA stream            from  Rng(seed).split(2r + 1)
//   * its evaluator instance   from  EvaluatorFactory::create(2r)
// Because both are keyed (counter-derived) rather than sequential, the
// outcome vector is bit-identical for ANY worker count — a serial sweep,
// 2 workers and 8 workers all reproduce the same per-run streams no matter
// which worker picks up which run. Evaluator instances are created per run
// and never shared, so the mutable hardware model (device variability, ADC
// noise draws) stays thread-confined.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/anneal.hpp"
#include "core/sample.hpp"
#include "core/two_phase.hpp"
#include "util/rng.hpp"

namespace cnash::core {

/// Stream key reserved for probe/inspection evaluator instances. Run r uses
/// keys 2r and 2r+1, so this largest odd key could only collide with run
/// index (2^64 - 2) / 2 — unreachable in practice.
inline constexpr std::uint64_t kProbeInstanceKey = ~0ULL;

/// Creates fresh, thread-confined evaluator instances for the service's
/// workers. `instance_key` addresses the instance's RNG stream
/// deterministically — the same key always yields an identically-behaving
/// instance (same sampled device variability, same noise stream).
class EvaluatorFactory {
 public:
  virtual ~EvaluatorFactory() = default;
  virtual const game::BimatrixGame& game() const = 0;
  virtual std::unique_ptr<ObjectiveEvaluator> create(
      std::uint64_t instance_key) const = 0;
  /// `lanes` lockstep lanes for the batched SA drivers: lane l behaves
  /// byte-identically to create(instance_keys[l]). The default wraps scalar
  /// instances; factories with shareable immutable state override it.
  virtual std::unique_ptr<BatchedEvaluator> create_batched(
      const std::uint64_t* instance_keys, std::size_t lanes) const;
};

/// Exact software objective (ablation backend). Instances are stateless
/// w.r.t. the key — every instance evaluates Eq. 9 identically — and share
/// one read-only payoff block (game + transposed copies) across all
/// instances and batch lanes of the factory's lifetime.
class ExactEvaluatorFactory final : public EvaluatorFactory {
 public:
  explicit ExactEvaluatorFactory(game::BimatrixGame game);
  const game::BimatrixGame& game() const override { return shared_->game; }
  std::unique_ptr<ObjectiveEvaluator> create(std::uint64_t) const override;
  std::unique_ptr<BatchedEvaluator> create_batched(
      const std::uint64_t* instance_keys, std::size_t lanes) const override;

 private:
  std::shared_ptr<const ExactMaxQubo::Shared> shared_;
};

/// Full hardware model: each instance programs its own bi-crossbar / WTA /
/// ADC stack with device variability sampled from the keyed split of
/// `device_rng` — the Monte-Carlo-over-chips view of the architecture.
class HardwareEvaluatorFactory final : public EvaluatorFactory {
 public:
  HardwareEvaluatorFactory(game::BimatrixGame game, std::uint32_t intervals,
                           TwoPhaseConfig config, util::Rng device_rng);
  const game::BimatrixGame& game() const override { return game_; }
  std::uint32_t intervals() const { return intervals_; }
  std::unique_ptr<ObjectiveEvaluator> create(std::uint64_t key) const override;
  /// Typed variant for crossbar / WTA / ADC introspection.
  std::unique_ptr<TwoPhaseEvaluator> create_hardware(std::uint64_t key) const;

 private:
  game::BimatrixGame game_;
  std::uint32_t intervals_;
  TwoPhaseConfig config_;
  util::Rng device_rng_;
};

struct EngineOptions {
  std::uint32_t intervals = 12;  // strategy quantization I
  SaOptions sa;
  /// Report the best profile seen during a run instead of the final accepted
  /// one (Alg. 1 reports the final recorded pair).
  bool report_best = false;
  std::uint64_t seed = 0xC0FFEE;
  /// Cap on this engine's runs simultaneously in flight on the shared
  /// SolverService pool; 0 = no cap (one run per pool worker). Any value
  /// produces the same outcomes — only wall-clock changes.
  std::size_t threads = 0;
};

class SolverEngine {
 public:
  SolverEngine(std::shared_ptr<const EvaluatorFactory> factory,
               EngineOptions options);

  const EvaluatorFactory& factory() const { return *factory_; }
  const EngineOptions& options() const { return options_; }

  /// `num_runs` independent SA runs, ordered by run index. The result is
  /// bit-identical for any `threads` setting given the same seed.
  /// Consecutive calls continue the run-index sequence, so run(5) twice
  /// equals run(10).
  std::vector<SolveSample> run(std::size_t num_runs);

  /// The next single run of the sequence.
  SolveSample solve_once();

  /// Rewind the run-index counter: the next batch replays from run 0.
  void rewind() { next_run_ = 0; }

 private:
  std::shared_ptr<const EvaluatorFactory> factory_;
  EngineOptions options_;
  std::uint64_t next_run_ = 0;
};

}  // namespace cnash::core
