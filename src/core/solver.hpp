#pragma once
// CNashSolver — the public facade: program the bi-crossbar once for a game,
// then launch any number of two-phase SA runs and collect strategy-pair
// solutions. The evaluator can be the hardware model (default, full device /
// WTA / ADC non-idealities) or the exact software objective (ablation).
//
// Since the SolverService refactor this is a facade over the service: runs
// dispatch as run-granular units on the process-wide SolverService pool
// (capped at `threads` in-flight units), with per-run keyed RNG streams. For
// a fixed `seed`, run() returns bit-identical outcomes for EVERY cap (1, 2,
// 8, ...) — see service.hpp / engine.hpp. request()/submit() expose the same
// configuration as a unified SolveRequest on the "hardware-sa" / "exact-sa"
// registry backends, for callers that want asynchronous futures or full
// SolveReports.

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/anneal.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/two_phase.hpp"

namespace cnash::core {

struct CNashConfig {
  std::uint32_t intervals = 12;  // strategy quantization I
  SaOptions sa;
  bool use_hardware = true;
  TwoPhaseConfig hardware;
  /// Report the best profile seen during the run instead of the final
  /// accepted one (Alg. 1 reports the final recorded pair).
  bool report_best = false;
  /// Root seed: every run r derives its SA stream and evaluator instance
  /// from keyed splits of this value, independent of thread scheduling.
  std::uint64_t seed = 0xC0FFEE;
  /// Cap on in-flight runs on the shared service pool; 0 = no cap. Any value
  /// produces the same outcomes for the same seed.
  std::size_t threads = 0;
};

class CNashSolver {
 public:
  CNashSolver(game::BimatrixGame game, CNashConfig config = {});

  const game::BimatrixGame& game() const { return game_; }
  const CNashConfig& config() const { return config_; }

  /// The engine dispatching this solver's runs onto the shared service.
  SolverEngine& engine() { return engine_; }

  /// Probe evaluator for inspection (crossbar geometry, WTA corners, ADC
  /// scale, ...). A dedicated instance addressed by a reserved stream key —
  /// runs never share it, so reading it perturbs nothing.
  ObjectiveEvaluator& evaluator() { return *probe_; }

  /// Hardware probe access (nullptr when use_hardware is false).
  const TwoPhaseEvaluator* hardware() const { return probe_hardware_; }

  /// One annealing run (continues the engine's run-index sequence).
  SolveSample solve_once();

  /// `num_runs` independent annealing runs across the service workers.
  std::vector<SolveSample> run(std::size_t num_runs);

  /// This solver's configuration as a unified SolveRequest on the
  /// "hardware-sa" / "exact-sa" registry backend.
  SolveRequest request(std::size_t num_runs) const;

  /// Asynchronous batch through the shared SolverService. Always replays
  /// from run index 0 (equivalent to run(num_runs) on a fresh solver).
  std::future<SolveReport> submit(std::size_t num_runs) const;

  /// Synchronous service path: submit + wait.
  SolveReport solve(std::size_t num_runs) const;

 private:
  game::BimatrixGame game_;
  CNashConfig config_;
  SolverEngine engine_;
  std::unique_ptr<ObjectiveEvaluator> probe_;
  TwoPhaseEvaluator* probe_hardware_ = nullptr;  // borrowed view of probe_
};

}  // namespace cnash::core
