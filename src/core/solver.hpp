#pragma once
// CNashSolver — the public facade: program the bi-crossbar once for a game,
// then launch any number of two-phase SA runs and collect strategy-pair
// solutions. The evaluator can be the hardware model (default, full device /
// WTA / ADC non-idealities) or the exact software objective (ablation).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/anneal.hpp"
#include "core/two_phase.hpp"

namespace cnash::core {

struct CNashConfig {
  std::uint32_t intervals = 12;  // strategy quantization I
  SaOptions sa;
  bool use_hardware = true;
  TwoPhaseConfig hardware;
  /// Report the best profile seen during the run instead of the final
  /// accepted one (Alg. 1 reports the final recorded pair).
  bool report_best = false;
  std::uint64_t seed = 0xC0FFEE;
};

/// One SA run's solution candidate.
struct RunOutcome {
  la::Vector p;
  la::Vector q;
  double objective;   // MAX-QUBO value as measured by the evaluator
  game::QuantizedProfile profile;
};

class CNashSolver {
 public:
  CNashSolver(game::BimatrixGame game, CNashConfig config = {});

  const game::BimatrixGame& game() const { return game_; }
  const CNashConfig& config() const { return config_; }
  ObjectiveEvaluator& evaluator() { return *evaluator_; }

  /// Hardware evaluator access (nullptr when use_hardware is false).
  const TwoPhaseEvaluator* hardware() const { return hardware_; }

  /// One annealing run.
  RunOutcome solve_once();

  /// `num_runs` independent annealing runs.
  std::vector<RunOutcome> run(std::size_t num_runs);

 private:
  game::BimatrixGame game_;
  CNashConfig config_;
  util::Rng rng_;
  std::unique_ptr<ObjectiveEvaluator> evaluator_;
  TwoPhaseEvaluator* hardware_ = nullptr;  // borrowed view of evaluator_
};

}  // namespace cnash::core
