#include "core/two_phase.hpp"

#include <cmath>
#include <stdexcept>

namespace cnash::core {

TwoPhaseEvaluator::TwoPhaseEvaluator(game::BimatrixGame game,
                                     std::uint32_t intervals,
                                     const TwoPhaseConfig& config,
                                     util::Rng rng)
    : game_(std::move(game)),
      intervals_(intervals),
      config_(config),
      rng_(rng),
      value_scale_(config.value_scale) {
  if (intervals_ == 0) throw std::invalid_argument("TwoPhaseEvaluator: I == 0");
  if (value_scale_ <= 0.0)
    throw std::invalid_argument("TwoPhaseEvaluator: value_scale <= 0");
  if (config_.refresh_interval == 0)
    throw std::invalid_argument("TwoPhaseEvaluator: refresh_interval == 0");

  // The MAX-QUBO objective is invariant to a common constant shift of both
  // payoff matrices (Σp = Σq = 1 exactly on the quantized grid), so shift to
  // non-negative and scale to integers for the unary cell coding.
  const game::BimatrixGame shifted = game_.shifted_non_negative(0.0);
  const la::Matrix m_scaled = shifted.payoff1() * value_scale_;
  const la::Matrix nt_scaled = shifted.payoff2().transposed() * value_scale_;

  xbar::CrossbarMapping map_m(m_scaled, intervals_, config_.cells_per_element,
                              config_.levels_per_cell);
  xbar::CrossbarMapping map_nt(nt_scaled, intervals_,
                               config_.cells_per_element,
                               config_.levels_per_cell);

  util::Rng rng_m = rng_.split();
  util::Rng rng_nt = rng_.split();
  xbar_m_ = std::make_unique<xbar::ProgrammedCrossbar>(std::move(map_m),
                                                       config_.array, rng_m);
  xbar_nt_ = std::make_unique<xbar::ProgrammedCrossbar>(std::move(map_nt),
                                                        config_.array, rng_nt);

  util::Rng rng_wta_rows = rng_.split();
  util::Rng rng_wta_cols = rng_.split();
  wta_rows_ = std::make_unique<wta::WtaTree>(game_.num_actions1(), config_.wta,
                                             &rng_wta_rows);
  wta_cols_ = std::make_unique<wta::WtaTree>(game_.num_actions2(), config_.wta,
                                             &rng_wta_cols);

  // Full scale: the largest possible read current of each array, with margin.
  auto make_adc = [&](const xbar::ProgrammedCrossbar& xb) {
    double max_element = 0.0;
    const auto& g = xb.mapping().geometry();
    for (std::size_t i = 0; i < g.n; ++i)
      for (std::size_t j = 0; j < g.m; ++j)
        max_element = std::max(max_element,
                               static_cast<double>(xb.mapping().element(i, j)));
    const double intervals_sq =
        static_cast<double>(intervals_) * static_cast<double>(intervals_);
    xbar::AdcConfig ac;
    ac.bits = config_.adc_bits;
    ac.full_scale_current =
        1.2 * intervals_sq * xb.unit_current() * (max_element + 1.0);
    ac.noise_sigma = config_.adc_noise_rel * ac.full_scale_current;
    return std::make_unique<xbar::Adc>(ac);
  };
  adc_m_ = make_adc(*xbar_m_);
  adc_nt_ = make_adc(*xbar_nt_);

  // Size the analog workspaces once; counts are (re)sized by reset().
  const std::size_t n = game_.num_actions1();
  const std::size_t m = game_.num_actions2();
  for (AnalogState* st : {&committed_, &scratch_, &eval_state_}) {
    st->mv_m.assign(n, 0.0);
    st->mv_nt.assign(m, 0.0);
  }
}

void TwoPhaseEvaluator::full_read(
    AnalogState& st, const std::vector<std::uint32_t>& p_counts,
    const std::vector<std::uint32_t>& q_counts) const {
  xbar_m_->read_mv_into(q_counts, st.mv_m.data());
  xbar_nt_->read_mv_into(p_counts, st.mv_nt.data());
  st.vmv_m = xbar_m_->read_vmv(p_counts, q_counts);
  st.vmv_nt = xbar_nt_->read_vmv(q_counts, p_counts);
}

double TwoPhaseEvaluator::digitize(const AnalogState& st) {
  // ---- Phase 1: WTA trees -> max(Mq), max(Nᵀp). ---------------------------
  const double max_mq_current =
      wta_rows_->reduce(st.mv_m.data(), st.mv_m.size(), &rng_, wta_scratch_);
  const double max_ntp_current =
      wta_cols_->reduce(st.mv_nt.data(), st.mv_nt.size(), &rng_, wta_scratch_);
  const double max_mq =
      xbar_m_->current_to_value(adc_m_->convert(max_mq_current, rng_));
  const double max_ntp =
      xbar_nt_->current_to_value(adc_nt_->convert(max_ntp_current, rng_));

  // ---- Phase 2: total currents (WTA bypassed) -> pᵀMq, pᵀNq. --------------
  const double vmv_m =
      xbar_m_->current_to_value(adc_m_->convert(st.vmv_m, rng_));
  const double vmv_n =
      xbar_nt_->current_to_value(adc_nt_->convert(st.vmv_nt, rng_));

  last_ = {max_mq, max_ntp, vmv_m, vmv_n};

  // Values are in shifted/scaled payoff units; the shift cancels inside f and
  // the scale divides out.
  return (max_mq + max_ntp - vmv_m - vmv_n) / value_scale_;
}

double TwoPhaseEvaluator::evaluate(const game::QuantizedProfile& profile) {
  if (profile.p.num_actions() != game_.num_actions1() ||
      profile.q.num_actions() != game_.num_actions2() ||
      profile.p.intervals() != intervals_ || profile.q.intervals() != intervals_)
    throw std::invalid_argument("TwoPhaseEvaluator: profile shape mismatch");

  full_read(eval_state_, profile.p.counts(), profile.q.counts());
  return digitize(eval_state_);
}

// ---- Incremental propose/commit protocol ------------------------------------

void TwoPhaseEvaluator::reset(const game::QuantizedProfile& profile) {
  if (profile.p.num_actions() != game_.num_actions1() ||
      profile.q.num_actions() != game_.num_actions2() ||
      profile.p.intervals() != intervals_ || profile.q.intervals() != intervals_)
    throw std::invalid_argument("TwoPhaseEvaluator::reset: shape mismatch");
  p_counts_ = profile.p.counts();
  q_counts_ = profile.q.counts();
  p_scratch_ = p_counts_;
  q_scratch_ = q_counts_;
  full_read(committed_, p_counts_, q_counts_);
  scratch_ = committed_;
  primed_ = true;
  proposal_outstanding_ = false;
  commits_since_refresh_ = 0;
  refresh_count_ = 0;
}

void TwoPhaseEvaluator::apply_move_analog(AnalogState& st, const TickMove& mv) {
  if (mv.player == TickMove::Player::kRow) {
    // p_from loses a word line of the M array / a column group of Nᵀ;
    // p_to gains one. mv_m is an all-rows read and does not depend on p.
    const std::uint32_t pf = p_scratch_[mv.from];
    const std::uint32_t pt = p_scratch_[mv.to];
    if (pf == 0 || pt >= intervals_)
      throw std::logic_error("TwoPhaseEvaluator: invalid tick move");
    st.vmv_m += xbar_m_->vmv_row_delta(mv.from, pf, pf - 1, q_scratch_) +
                xbar_m_->vmv_row_delta(mv.to, pt, pt + 1, q_scratch_);
    st.vmv_nt += xbar_nt_->vmv_group_delta(mv.from, pf, pf - 1, q_scratch_) +
                 xbar_nt_->vmv_group_delta(mv.to, pt, pt + 1, q_scratch_);
    xbar_nt_->mv_group_delta(mv.from, pf, pf - 1, st.mv_nt.data());
    xbar_nt_->mv_group_delta(mv.to, pt, pt + 1, st.mv_nt.data());
    p_scratch_[mv.from] = pf - 1;
    p_scratch_[mv.to] = pt + 1;
  } else {
    const std::uint32_t qf = q_scratch_[mv.from];
    const std::uint32_t qt = q_scratch_[mv.to];
    if (qf == 0 || qt >= intervals_)
      throw std::logic_error("TwoPhaseEvaluator: invalid tick move");
    st.vmv_m += xbar_m_->vmv_group_delta(mv.from, qf, qf - 1, p_scratch_) +
                xbar_m_->vmv_group_delta(mv.to, qt, qt + 1, p_scratch_);
    st.vmv_nt += xbar_nt_->vmv_row_delta(mv.from, qf, qf - 1, p_scratch_) +
                 xbar_nt_->vmv_row_delta(mv.to, qt, qt + 1, p_scratch_);
    xbar_m_->mv_group_delta(mv.from, qf, qf - 1, st.mv_m.data());
    xbar_m_->mv_group_delta(mv.to, qt, qt + 1, st.mv_m.data());
    q_scratch_[mv.from] = qf - 1;
    q_scratch_[mv.to] = qt + 1;
  }
}

double TwoPhaseEvaluator::propose(const TickMove* moves, std::size_t count) {
  if (!primed_)
    throw std::logic_error("TwoPhaseEvaluator::propose before reset()");
  // Rejected proposals are discarded by re-deriving scratch from the
  // committed state — O(m+n) copies, no crossbar access.
  scratch_.mv_m = committed_.mv_m;
  scratch_.mv_nt = committed_.mv_nt;
  scratch_.vmv_m = committed_.vmv_m;
  scratch_.vmv_nt = committed_.vmv_nt;
  p_scratch_ = p_counts_;
  q_scratch_ = q_counts_;
  for (std::size_t i = 0; i < count; ++i) apply_move_analog(scratch_, moves[i]);
  proposal_outstanding_ = true;
  return digitize(scratch_);
}

void TwoPhaseEvaluator::commit() {
  if (!proposal_outstanding_)
    throw std::logic_error("TwoPhaseEvaluator::commit without propose()");
  proposal_outstanding_ = false;
  p_counts_.swap(p_scratch_);
  q_counts_.swap(q_scratch_);
  committed_.mv_m.swap(scratch_.mv_m);
  committed_.mv_nt.swap(scratch_.mv_nt);
  committed_.vmv_m = scratch_.vmv_m;
  committed_.vmv_nt = scratch_.vmv_nt;
  if (++commits_since_refresh_ >= config_.refresh_interval) {
    commits_since_refresh_ = 0;
    ++refresh_count_;
    full_read(committed_, p_counts_, q_counts_);
  }
}

}  // namespace cnash::core
