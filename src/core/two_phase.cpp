#include "core/two_phase.hpp"

#include <cmath>
#include <stdexcept>

namespace cnash::core {

TwoPhaseEvaluator::TwoPhaseEvaluator(game::BimatrixGame game,
                                     std::uint32_t intervals,
                                     const TwoPhaseConfig& config,
                                     util::Rng rng)
    : game_(std::move(game)),
      intervals_(intervals),
      config_(config),
      rng_(rng),
      value_scale_(config.value_scale) {
  if (intervals_ == 0) throw std::invalid_argument("TwoPhaseEvaluator: I == 0");
  if (value_scale_ <= 0.0)
    throw std::invalid_argument("TwoPhaseEvaluator: value_scale <= 0");

  // The MAX-QUBO objective is invariant to a common constant shift of both
  // payoff matrices (Σp = Σq = 1 exactly on the quantized grid), so shift to
  // non-negative and scale to integers for the unary cell coding.
  const game::BimatrixGame shifted = game_.shifted_non_negative(0.0);
  const la::Matrix m_scaled = shifted.payoff1() * value_scale_;
  const la::Matrix nt_scaled = shifted.payoff2().transposed() * value_scale_;

  xbar::CrossbarMapping map_m(m_scaled, intervals_, config_.cells_per_element,
                              config_.levels_per_cell);
  xbar::CrossbarMapping map_nt(nt_scaled, intervals_,
                               config_.cells_per_element,
                               config_.levels_per_cell);

  util::Rng rng_m = rng_.split();
  util::Rng rng_nt = rng_.split();
  xbar_m_ = std::make_unique<xbar::ProgrammedCrossbar>(std::move(map_m),
                                                       config_.array, rng_m);
  xbar_nt_ = std::make_unique<xbar::ProgrammedCrossbar>(std::move(map_nt),
                                                        config_.array, rng_nt);

  util::Rng rng_wta_rows = rng_.split();
  util::Rng rng_wta_cols = rng_.split();
  wta_rows_ = std::make_unique<wta::WtaTree>(game_.num_actions1(), config_.wta,
                                             &rng_wta_rows);
  wta_cols_ = std::make_unique<wta::WtaTree>(game_.num_actions2(), config_.wta,
                                             &rng_wta_cols);

  // Full scale: the largest possible read current of each array, with margin.
  auto make_adc = [&](const xbar::ProgrammedCrossbar& xb) {
    double max_element = 0.0;
    const auto& g = xb.mapping().geometry();
    for (std::size_t i = 0; i < g.n; ++i)
      for (std::size_t j = 0; j < g.m; ++j)
        max_element = std::max(max_element,
                               static_cast<double>(xb.mapping().element(i, j)));
    const double intervals_sq =
        static_cast<double>(intervals_) * static_cast<double>(intervals_);
    xbar::AdcConfig ac;
    ac.bits = config_.adc_bits;
    ac.full_scale_current =
        1.2 * intervals_sq * xb.unit_current() * (max_element + 1.0);
    ac.noise_sigma = config_.adc_noise_rel * ac.full_scale_current;
    return std::make_unique<xbar::Adc>(ac);
  };
  adc_m_ = make_adc(*xbar_m_);
  adc_nt_ = make_adc(*xbar_nt_);
}

double TwoPhaseEvaluator::evaluate(const game::QuantizedProfile& profile) {
  if (profile.p.num_actions() != game_.num_actions1() ||
      profile.q.num_actions() != game_.num_actions2() ||
      profile.p.intervals() != intervals_ || profile.q.intervals() != intervals_)
    throw std::invalid_argument("TwoPhaseEvaluator: profile shape mismatch");

  const auto& p_counts = profile.p.counts();
  const auto& q_counts = profile.q.counts();

  // ---- Phase 1: MV reads + WTA trees -> max(Mq), max(Nᵀp). ----------------
  const std::vector<double> mq_currents = xbar_m_->read_mv(q_counts);
  const std::vector<double> ntp_currents = xbar_nt_->read_mv(p_counts);
  const double max_mq_current = wta_rows_->reduce(mq_currents, &rng_);
  const double max_ntp_current = wta_cols_->reduce(ntp_currents, &rng_);
  const double max_mq =
      xbar_m_->current_to_value(adc_m_->convert(max_mq_current, rng_));
  const double max_ntp =
      xbar_nt_->current_to_value(adc_nt_->convert(max_ntp_current, rng_));

  // ---- Phase 2: VMV reads (WTA bypassed) -> pᵀMq, pᵀNq. -------------------
  const double vmv_m_current = xbar_m_->read_vmv(p_counts, q_counts);
  const double vmv_nt_current = xbar_nt_->read_vmv(q_counts, p_counts);
  const double vmv_m =
      xbar_m_->current_to_value(adc_m_->convert(vmv_m_current, rng_));
  const double vmv_n =
      xbar_nt_->current_to_value(adc_nt_->convert(vmv_nt_current, rng_));

  last_ = {max_mq, max_ntp, vmv_m, vmv_n};

  // Values are in shifted/scaled payoff units; the shift cancels inside f and
  // the scale divides out.
  return (max_mq + max_ntp - vmv_m - vmv_n) / value_scale_;
}

}  // namespace cnash::core
