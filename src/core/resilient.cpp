#include "core/resilient.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/fault.hpp"

namespace cnash::core {

namespace {

/// Pairs the primary hardware job with its exact-sa shadow. Units map 1:1 —
/// both are SaPreparedJobs built from the same (runs, sa) — so unit u's
/// fallback reproduces the exact-sa samples for the very runs the primary
/// failed to deliver.
class ResilientJob final : public PreparedJob {
 public:
  ResilientJob(std::unique_ptr<PreparedJob> primary,
               std::unique_ptr<PreparedJob> fallback, util::FaultPlan plan)
      : primary_(std::move(primary)),
        fallback_(std::move(fallback)),
        plan_(plan) {
    if (primary_->num_units() != fallback_->num_units())
      throw std::logic_error(
          "resilient: primary and fallback unit partitions diverge");
  }

  std::size_t num_units() const override { return primary_->num_units(); }

  std::vector<SolveSample> run_unit(std::size_t unit) const override {
    using Scope = util::FaultPlan::Scope;
    if (plan_.unit_delay_s > 0.0 &&
        plan_.roll(Scope::kDelay, unit, plan_.unit_delay_rate))
      std::this_thread::sleep_for(
          std::chrono::duration<double>(plan_.unit_delay_s));
    if (!plan_.roll(Scope::kUnit, unit, plan_.unit_failure_rate)) {
      try {
        return primary_->run_unit(unit);
      } catch (const std::exception&) {
        // Detected hardware failure (e.g. chip::ChipFault from the tile
        // read-back): fall through to the exact path for this unit only.
      }
    }
    std::vector<SolveSample> samples = fallback_->run_unit(unit);
    for (SolveSample& s : samples) s.fallback = true;
    return samples;
  }

 private:
  std::unique_ptr<PreparedJob> primary_;
  std::unique_ptr<PreparedJob> fallback_;
  util::FaultPlan plan_;
};

class ResilientBackend final : public SolverBackend {
 public:
  const std::string& name() const override { return name_; }

  std::string describe() const override {
    return "hardware-sa[-tiled] with transparent per-unit exact-sa fallback "
           "on chip failure (primary, fault, + the wrapped backend's knobs)";
  }

  std::unique_ptr<PreparedJob> prepare(
      const SolveRequest& request) const override {
    SolveRequest primary_req = request;
    primary_req.backend = request.resilient_primary;
    SolveRequest fallback_req = request;
    fallback_req.backend = "exact-sa";
    const SolverRegistry& registry = SolverRegistry::global();
    std::unique_ptr<PreparedJob> primary =
        registry.at(primary_req.backend).prepare(primary_req);
    std::unique_ptr<PreparedJob> fallback =
        registry.at(fallback_req.backend).prepare(fallback_req);

    // Report metadata comes from the primary: the modeled chip time is the
    // architecture being served (fallbacks are a software contingency and do
    // not change the modeled clock).
    const std::string game_name = primary->game_name;
    const double modeled = primary->modeled_time_s;
    auto job = std::make_unique<ResilientJob>(
        std::move(primary), std::move(fallback), request.fault);
    job->backend_name = name_;
    job->game_name = game_name;
    job->modeled_time_s = modeled;
    job->max_parallelism = request.max_parallelism;
    return job;
  }

 private:
  std::string name_ = "resilient";
};

}  // namespace

std::unique_ptr<SolverBackend> make_resilient_backend() {
  return std::make_unique<ResilientBackend>();
}

}  // namespace cnash::core
