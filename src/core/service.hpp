#pragma once
// core::SolverService — the asynchronous multi-game job queue fronting the
// SolverBackend registry: submit(request) → std::future<SolveReport>.
//
// One service owns one worker pool; every submitted job is decomposed into
// run-granular units (SA runs, annealer reads, pivot labels) that the pool
// schedules ACROSS concurrent jobs — a large job never blocks a small one,
// and mixed batches keep every worker busy. This replaces the per-engine
// std::thread pool the SolverEngine used to spawn per run() call.
//
// Determinism: a job's report depends only on its request — every unit
// derives its RNG streams from keyed splits of the job's root seed — so
// reports are bit-identical for any pool size, any per-job parallelism cap
// and any submission interleaving. The single exception is
// SolveReport::wall_clock_s, which measures real elapsed time.
//
// Errors: a failed prepare() or unit surfaces as the job future's exception;
// remaining units of that job are skipped, other jobs are unaffected.

#include <condition_variable>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cnash::core {

/// Submission rejected because the service is draining (or torn down). The
/// serve/ gateway maps this to a retryable "draining" protocol error rather
/// than an internal one.
class ServiceDrainingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Optional worker-pool telemetry (all pointers nullable and non-owning; the
/// instruments must outlive the service). With everything null the scheduling
/// hot path is untouched apart from two steady_clock reads per step.
struct ServiceTelemetry {
  /// Wall time of each backend prepare() step.
  obs::Histogram* prepare_seconds = nullptr;
  /// Wall time of each work unit (run_unit call).
  obs::Histogram* unit_seconds = nullptr;
  /// Submission → first dispatch (prepare claim or first unit), once per job.
  obs::Histogram* queue_wait_seconds = nullptr;
  /// Span sink for per-step "prepare"/"unit" spans, correlated with the
  /// submitting request through JobHooks::trace_id.
  obs::TraceRecorder* trace = nullptr;
};

struct ServiceOptions {
  /// Worker pool size; 0 = one worker per hardware thread.
  std::size_t threads = 0;
  /// Backend registry to resolve request.backend against;
  /// nullptr = SolverRegistry::global().
  const SolverRegistry* registry = nullptr;
  ServiceTelemetry telemetry;
};

/// Best-so-far snapshot of a running job, emitted to JobHooks::on_progress
/// after each completed unit (except the one that finishes the job — the
/// final report follows immediately through on_complete instead). Aggregates
/// cover the units completed so far in completion order, so consecutive
/// snapshots are monotone in units_completed but their sample-derived fields
/// depend on scheduling — snapshots are a live view, not part of the
/// bit-exactness contract (the final report is).
struct ProgressSnapshot {
  std::size_t units_total = 0;
  std::size_t units_completed = 0;
  std::size_t nash_count = 0;   // ε-Nash-verified samples so far
  std::size_t valid_count = 0;  // simplex-valid samples so far
  /// Minimum backend-native objective over the valid samples so far (NaN
  /// until the first valid sample lands).
  double best_objective = 0.0;
  /// Wall clock since submission.
  double elapsed_s = 0.0;
};

/// Asynchronous job observers (submit_async). Both callbacks are invoked on a
/// service worker thread — or, for a submission that resolves immediately
/// (draining service, invalid request), inline on the submitting thread — so
/// they must not block and must not re-enter the service; posting a wakeup to
/// an event loop is the intended use. No callback is invoked after
/// on_complete, and drain() does not return while either is still running.
struct JobHooks {
  /// Interim best-so-far report (anytime serving). Never invoked for jobs
  /// whose report is already final (prepare failures, zero-unit jobs).
  std::function<void(const ProgressSnapshot&)> on_progress;
  /// Terminal: exactly one of (report, error) is meaningful — error is the
  /// nullptr-free indicator (report is default-constructed when set).
  std::function<void(SolveReport&&, std::exception_ptr error)> on_complete;
  /// Trace-span correlation id of the originating request (0 = untraced).
  /// Worker-side "prepare"/"unit" spans carry it so a request's gateway
  /// stages and its solver units line up in the exported trace.
  std::uint64_t trace_id = 0;
};

class SolverService {
 public:
  explicit SolverService(ServiceOptions options = {});
  ~SolverService();
  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Queue a job; the future resolves once every unit has run. An unknown
  /// backend name resolves the future to std::invalid_argument immediately.
  ///
  /// Anytime degradation: when request.deadline_s > 0 the deadline clock
  /// starts at submission. Once it passes, no further units of that job are
  /// scheduled; in-flight units complete, and the report is assembled from
  /// the units that did run, flagged degraded with units_total /
  /// units_completed accounting. Latency is bounded by the deadline plus one
  /// unit's wall time. Which units run is deterministic only when the
  /// deadline never fires — a degraded report's *samples* are still
  /// bit-exact per unit (keyed streams), there are just fewer of them.
  std::future<SolveReport> submit(SolveRequest request);

  /// Callback-style submission (the serve/ gateway's entry point): the job's
  /// result is delivered through hooks.on_complete instead of a future, and
  /// hooks.on_progress (optional) streams best-so-far snapshots after each
  /// non-final unit. Deadline semantics are identical to submit().
  void submit_async(SolveRequest request, JobHooks hooks);

  /// Queue an already-prepared job (the SolverEngine's entry point: its
  /// evaluator factory is not addressable by a registry key).
  std::future<SolveReport> submit_prepared(std::unique_ptr<PreparedJob> job);

  /// Synchronous convenience: submit + wait.
  SolveReport solve(SolveRequest request);

  /// Worker pool size.
  std::size_t threads() const { return workers_.size(); }

  /// Jobs queued or in flight (diagnostic).
  std::size_t pending_jobs() const;

  /// Unit-granular queue introspection (the serve/ gateway's admission
  /// watermark reads this): `jobs` counts queued + in-flight jobs,
  /// `queued_units` work units not yet dispatched (an unprepared job counts
  /// its pending prepare step as one unit), `in_flight_units` units currently
  /// running on workers.
  struct QueueDepth {
    std::size_t jobs = 0;
    std::size_t queued_units = 0;
    std::size_t in_flight_units = 0;
  };
  QueueDepth queue_depth() const;

  /// Graceful shutdown: stop accepting new jobs, then block until every
  /// queued and in-flight job has finished (all futures resolved before
  /// drain() returns). Terminal — the service rejects submissions with
  /// std::runtime_error afterwards. Idempotent and safe to call concurrently
  /// with in-flight submissions from other threads: a submission either
  /// lands before the drain (and is finished by it) or is rejected.
  void drain();
  bool draining() const;

  /// The process-wide service (one worker per hardware thread) used by
  /// SolverEngine / CNashSolver and the CLI drivers.
  static SolverService& shared();

 private:
  struct Job;

  std::shared_ptr<Job> make_job();
  void submit_job(SolveRequest request, std::shared_ptr<Job> job);
  void enqueue(std::shared_ptr<Job> job);
  /// Resolve a job that never reached the queue (validation / draining).
  static void fail_now(const std::shared_ptr<Job>& job, std::exception_ptr e);
  void worker_loop();
  void finish(std::shared_ptr<Job> job);  // fulfil promise, job already delisted

  const SolverRegistry* registry_;
  const ServiceTelemetry telemetry_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::list<std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  bool draining_ = false;
  /// Jobs delisted from jobs_ whose promise is still being fulfilled; drain()
  /// waits for this to reach zero so every future is resolved on return.
  std::size_t finishing_ = 0;
};

}  // namespace cnash::core
