#include "core/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cnash::core {

namespace {

/// Move one probability tick between two distinct actions of a strategy.
/// No-op for single-action strategies.
void perturb(game::QuantizedStrategy& s, util::Rng& rng) {
  const std::size_t n = s.num_actions();
  if (n < 2) return;
  // Source: uniformly among actions currently holding mass.
  std::size_t from = 0;
  std::size_t holders = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (s.count(i) > 0 && rng.uniform_index(++holders) == 0) from = i;
  std::size_t to = rng.uniform_index(n - 1);
  if (to >= from) ++to;
  s.move_tick(from, to);
}

}  // namespace

SaRunResult simulated_annealing(ObjectiveEvaluator& objective,
                                std::uint32_t intervals, const SaOptions& opts,
                                util::Rng& rng) {
  const auto& g = objective.game();
  auto draw = [&](std::size_t actions) {
    return opts.init == SaInit::kRandomSupport
               ? game::QuantizedStrategy::random_support(actions, intervals, rng)
               : game::QuantizedStrategy::random(actions, intervals, rng);
  };
  game::QuantizedProfile initial{draw(g.num_actions1()),
                                 draw(g.num_actions2())};
  return simulated_annealing_from(objective, std::move(initial), opts, rng);
}

SaRunResult simulated_annealing_from(ObjectiveEvaluator& objective,
                                     game::QuantizedProfile initial,
                                     const SaOptions& opts, util::Rng& rng) {
  if (opts.iterations == 0)
    throw std::invalid_argument("simulated_annealing: zero iterations");

  const auto& g = objective.game();
  const double range =
      std::max({g.payoff1().max_element() - g.payoff1().min_element(),
                g.payoff2().max_element() - g.payoff2().min_element(), 1e-9});
  const double t_max = opts.t_start_rel * range;
  const double t_min = std::max(opts.t_end_rel * range, 1e-12);
  const double decay =
      (opts.iterations > 1)
          ? std::pow(t_min / t_max,
                     1.0 / static_cast<double>(opts.iterations - 1))
          : 1.0;

  const double f0 = objective.evaluate(initial);
  SaRunResult res{initial, f0, std::move(initial), f0,
                  /*accepted=*/0, /*iterations=*/0, /*evaluations=*/1};

  double temperature = t_max;
  for (std::size_t it = 0; it < opts.iterations; ++it, temperature *= decay) {
    game::QuantizedProfile candidate = res.final_profile;
    // Perturb one player always, the other with configured probability —
    // both-player moves are required to hop between equilibria of
    // coordination-style games.
    if (rng.bernoulli(0.5)) {
      perturb(candidate.p, rng);
      if (rng.bernoulli(opts.both_players_prob)) perturb(candidate.q, rng);
    } else {
      perturb(candidate.q, rng);
      if (rng.bernoulli(opts.both_players_prob)) perturb(candidate.p, rng);
    }

    const double f_n = objective.evaluate(candidate);
    ++res.evaluations;
    const double delta = f_n - res.final_objective;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      res.final_profile = std::move(candidate);
      res.final_objective = f_n;
      ++res.accepted;
      if (f_n < res.best_objective) {
        res.best_objective = f_n;
        res.best_profile = res.final_profile;
      }
    }
    ++res.iterations;
  }
  return res;
}

}  // namespace cnash::core
