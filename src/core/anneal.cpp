#include "core/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cnash::core {

namespace {

/// Draw one probability-tick move between two distinct actions of a strategy:
/// source uniformly among actions currently holding mass, destination
/// uniformly among the others. Returns false (consuming no randomness) for
/// single-action strategies.
bool draw_tick_move(const game::QuantizedStrategy& s, util::Rng& rng,
                    std::uint32_t& from, std::uint32_t& to) {
  const std::size_t n = s.num_actions();
  if (n < 2) return false;
  std::size_t src = 0;
  std::size_t holders = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (s.count(i) > 0 && rng.uniform_index(++holders) == 0) src = i;
  std::size_t dst = rng.uniform_index(n - 1);
  if (dst >= src) ++dst;
  from = static_cast<std::uint32_t>(src);
  to = static_cast<std::uint32_t>(dst);
  return true;
}

/// The geometric cooling schedule, derived from the game's payoff range.
struct TempSchedule {
  double t_max;
  double decay;
};

TempSchedule sa_schedule(const game::BimatrixGame& g, const SaOptions& opts) {
  const double range =
      std::max({g.payoff1().max_element() - g.payoff1().min_element(),
                g.payoff2().max_element() - g.payoff2().min_element(), 1e-9});
  const double t_max = opts.t_start_rel * range;
  const double t_min = std::max(opts.t_end_rel * range, 1e-12);
  const double decay =
      (opts.iterations > 1)
          ? std::pow(t_min / t_max,
                     1.0 / static_cast<double>(opts.iterations - 1))
          : 1.0;
  return {t_max, decay};
}

game::QuantizedProfile sa_draw_initial(const game::BimatrixGame& g,
                                       std::uint32_t intervals,
                                       const SaOptions& opts, util::Rng& rng) {
  auto draw = [&](std::size_t actions) {
    return opts.init == SaInit::kRandomSupport
               ? game::QuantizedStrategy::random_support(actions, intervals,
                                                         rng)
               : game::QuantizedStrategy::random(actions, intervals, rng);
  };
  return {draw(g.num_actions1()), draw(g.num_actions2())};
}

/// One SA lane: the per-run state the lockstep drivers advance. The scalar
/// entry points run a single lane through the same start/step code, so lane
/// semantics and scalar semantics can never drift apart.
struct SaLane {
  SaLane(ObjectiveEvaluator& objective, game::QuantizedProfile initial,
         double f0)
      : res{initial,          f0, std::move(initial), f0,
            /*accepted=*/0,
            /*iterations=*/0, /*evaluations=*/1},
        obj(&objective),
        // Incremental fast path: evaluators exposing the propose/commit
        // protocol score each candidate in O(m+n) from the move list instead
        // of a full re-evaluation. The RNG draw sequence is identical on both
        // paths.
        inc(objective.incremental()),
        // Candidate buffer for the full-evaluation path only; the incremental
        // path mutates res.final_profile in place (apply, then undo on
        // rejection) instead of copying the whole profile every iteration.
        candidate(res.final_profile) {
    if (inc) inc->reset(res.final_profile);
  }

  SaRunResult res;
  ObjectiveEvaluator* obj;
  IncrementalEvaluator* inc;
  game::QuantizedProfile candidate;  // full-evaluation path scratch
};

SaLane sa_lane_start(ObjectiveEvaluator& objective,
                     game::QuantizedProfile initial) {
  const double f0 = objective.evaluate(initial);
  return SaLane(objective, std::move(initial), f0);
}

void sa_lane_step(SaLane& lane, const SaOptions& opts, double temperature,
                  util::Rng& rng) {
  SaRunResult& res = lane.res;
  // Perturb one player always, the other with configured probability —
  // both-player moves are required to hop between equilibria of
  // coordination-style games.
  TickMove moves[2];
  std::size_t num_moves = 0;
  auto draw_p = [&] {
    std::uint32_t from, to;
    if (draw_tick_move(res.final_profile.p, rng, from, to))
      moves[num_moves++] = {TickMove::Player::kRow, from, to};
  };
  auto draw_q = [&] {
    std::uint32_t from, to;
    if (draw_tick_move(res.final_profile.q, rng, from, to))
      moves[num_moves++] = {TickMove::Player::kCol, from, to};
  };
  if (rng.bernoulli(0.5)) {
    draw_p();
    if (rng.bernoulli(opts.both_players_prob)) draw_q();
  } else {
    draw_q();
    if (rng.bernoulli(opts.both_players_prob)) draw_p();
  }

  double f_n;
  if (lane.inc) {
    for (std::size_t i = 0; i < num_moves; ++i) {
      auto& s = moves[i].player == TickMove::Player::kRow ? res.final_profile.p
                                                          : res.final_profile.q;
      s.move_tick(moves[i].from, moves[i].to);
    }
    f_n = lane.inc->propose(moves, num_moves);
  } else {
    lane.candidate = res.final_profile;
    for (std::size_t i = 0; i < num_moves; ++i) {
      auto& s = moves[i].player == TickMove::Player::kRow ? lane.candidate.p
                                                          : lane.candidate.q;
      s.move_tick(moves[i].from, moves[i].to);
    }
    f_n = lane.obj->evaluate(lane.candidate);
  }
  ++res.evaluations;
  const double delta = f_n - res.final_objective;
  if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
    if (lane.inc) {
      lane.inc->commit();
    } else {
      res.final_profile = lane.candidate;
    }
    res.final_objective = f_n;
    ++res.accepted;
    if (f_n < res.best_objective) {
      res.best_objective = f_n;
      res.best_profile = res.final_profile;
    }
  } else if (lane.inc) {
    // Rejected: undo the in-place moves (reverse order, ticks swapped).
    for (std::size_t i = num_moves; i-- > 0;) {
      auto& s = moves[i].player == TickMove::Player::kRow ? res.final_profile.p
                                                          : res.final_profile.q;
      s.move_tick(moves[i].to, moves[i].from);
    }
  }
  ++res.iterations;
}

}  // namespace

SaRunResult simulated_annealing(ObjectiveEvaluator& objective,
                                std::uint32_t intervals, const SaOptions& opts,
                                util::Rng& rng) {
  return simulated_annealing_from(
      objective, sa_draw_initial(objective.game(), intervals, opts, rng), opts,
      rng);
}

SaRunResult simulated_annealing_from(ObjectiveEvaluator& objective,
                                     game::QuantizedProfile initial,
                                     const SaOptions& opts, util::Rng& rng) {
  if (opts.iterations == 0)
    throw std::invalid_argument("simulated_annealing: zero iterations");

  const TempSchedule sched = sa_schedule(objective.game(), opts);
  SaLane lane = sa_lane_start(objective, std::move(initial));
  double temperature = sched.t_max;
  for (std::size_t it = 0; it < opts.iterations;
       ++it, temperature *= sched.decay)
    sa_lane_step(lane, opts, temperature, rng);
  return std::move(lane.res);
}

std::vector<SaRunResult> simulated_annealing_batch(BatchedEvaluator& batch,
                                                   std::uint32_t intervals,
                                                   const SaOptions& opts,
                                                   util::Rng* lane_rngs) {
  if (opts.iterations == 0)
    throw std::invalid_argument("simulated_annealing_batch: zero iterations");
  const std::size_t k = batch.lanes();
  const TempSchedule sched = sa_schedule(batch.game(), opts);

  std::vector<SaLane> lanes;
  lanes.reserve(k);
  for (std::size_t l = 0; l < k; ++l)
    lanes.push_back(sa_lane_start(
        batch.lane(l),
        sa_draw_initial(batch.lane(l).game(), intervals, opts, lane_rngs[l])));

  double temperature = sched.t_max;
  for (std::size_t it = 0; it < opts.iterations;
       ++it, temperature *= sched.decay)
    for (std::size_t l = 0; l < k; ++l)
      sa_lane_step(lanes[l], opts, temperature, lane_rngs[l]);

  std::vector<SaRunResult> out;
  out.reserve(k);
  for (SaLane& lane : lanes) out.push_back(std::move(lane.res));
  return out;
}

std::vector<SaRunResult> simulated_annealing_replica_exchange(
    BatchedEvaluator& batch, std::uint32_t intervals, const SaOptions& opts,
    util::Rng* lane_rngs, util::Rng& swap_rng) {
  if (opts.iterations == 0)
    throw std::invalid_argument(
        "simulated_annealing_replica_exchange: zero iterations");
  const std::size_t r = batch.lanes();
  if (r < 2)
    throw std::invalid_argument(
        "simulated_annealing_replica_exchange: need >= 2 replicas");
  if (opts.exchange_interval == 0)
    throw std::invalid_argument(
        "simulated_annealing_replica_exchange: exchange_interval must be >= 1");
  if (!(opts.ladder_ratio > 1.0))
    throw std::invalid_argument(
        "simulated_annealing_replica_exchange: ladder_ratio must be > 1");

  const TempSchedule sched = sa_schedule(batch.game(), opts);
  // Ladder position 0 anneals at the base schedule; position k at
  // base_T * ratio^k. Swaps exchange TEMPERATURES (ladder positions), not
  // replica states — cheaper than swapping profiles and identical in law.
  std::vector<double> ladder(r);
  ladder[0] = 1.0;
  for (std::size_t p = 1; p < r; ++p) ladder[p] = ladder[p - 1] * opts.ladder_ratio;
  std::vector<std::size_t> at(r);      // at[pos]    = lane at ladder position
  std::vector<std::size_t> pos_of(r);  // pos_of[l]  = lane l's ladder position
  std::iota(at.begin(), at.end(), std::size_t{0});
  std::iota(pos_of.begin(), pos_of.end(), std::size_t{0});

  std::vector<SaLane> lanes;
  lanes.reserve(r);
  for (std::size_t l = 0; l < r; ++l)
    lanes.push_back(sa_lane_start(
        batch.lane(l),
        sa_draw_initial(batch.lane(l).game(), intervals, opts, lane_rngs[l])));

  double base_t = sched.t_max;
  std::size_t swap_proposals = 0;
  std::size_t swap_accepts = 0;
  for (std::size_t it = 0; it < opts.iterations;
       ++it, base_t *= sched.decay) {
    for (std::size_t l = 0; l < r; ++l)
      sa_lane_step(lanes[l], opts, base_t * ladder[pos_of[l]], lane_rngs[l]);

    if ((it + 1) % opts.exchange_interval == 0) {
      // One sweep of adjacent-pair swap proposals, coldest first. Exactly one
      // uniform is consumed per proposal whatever the outcome, so the
      // swap stream is a fixed function of the iteration index.
      for (std::size_t pos = 0; pos + 1 < r; ++pos) {
        const std::size_t a = at[pos];      // colder replica
        const std::size_t b = at[pos + 1];  // hotter replica
        const double t_cold = base_t * ladder[pos];
        const double t_hot = base_t * ladder[pos + 1];
        const double u = swap_rng.uniform();
        // Metropolis on the joint chain: accept with
        // min(1, exp((1/T_cold - 1/T_hot) * (f_cold - f_hot))).
        const double arg = (1.0 / t_cold - 1.0 / t_hot) *
                           (lanes[a].res.final_objective -
                            lanes[b].res.final_objective);
        ++swap_proposals;
        if (arg >= 0.0 || u < std::exp(arg)) {
          ++swap_accepts;
          at[pos] = b;
          at[pos + 1] = a;
          pos_of[a] = pos + 1;
          pos_of[b] = pos;
        }
      }
    }
  }

  std::vector<SaRunResult> out;
  out.reserve(r);
  for (SaLane& lane : lanes) {
    lane.res.swap_proposals = swap_proposals;
    lane.res.swap_accepts = swap_accepts;
    out.push_back(std::move(lane.res));
  }
  return out;
}

}  // namespace cnash::core
