#include "core/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cnash::core {

namespace {

/// Draw one probability-tick move between two distinct actions of a strategy:
/// source uniformly among actions currently holding mass, destination
/// uniformly among the others. Returns false (consuming no randomness) for
/// single-action strategies.
bool draw_tick_move(const game::QuantizedStrategy& s, util::Rng& rng,
                    std::uint32_t& from, std::uint32_t& to) {
  const std::size_t n = s.num_actions();
  if (n < 2) return false;
  std::size_t src = 0;
  std::size_t holders = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (s.count(i) > 0 && rng.uniform_index(++holders) == 0) src = i;
  std::size_t dst = rng.uniform_index(n - 1);
  if (dst >= src) ++dst;
  from = static_cast<std::uint32_t>(src);
  to = static_cast<std::uint32_t>(dst);
  return true;
}

}  // namespace

SaRunResult simulated_annealing(ObjectiveEvaluator& objective,
                                std::uint32_t intervals, const SaOptions& opts,
                                util::Rng& rng) {
  const auto& g = objective.game();
  auto draw = [&](std::size_t actions) {
    return opts.init == SaInit::kRandomSupport
               ? game::QuantizedStrategy::random_support(actions, intervals, rng)
               : game::QuantizedStrategy::random(actions, intervals, rng);
  };
  game::QuantizedProfile initial{draw(g.num_actions1()),
                                 draw(g.num_actions2())};
  return simulated_annealing_from(objective, std::move(initial), opts, rng);
}

SaRunResult simulated_annealing_from(ObjectiveEvaluator& objective,
                                     game::QuantizedProfile initial,
                                     const SaOptions& opts, util::Rng& rng) {
  if (opts.iterations == 0)
    throw std::invalid_argument("simulated_annealing: zero iterations");

  const auto& g = objective.game();
  const double range =
      std::max({g.payoff1().max_element() - g.payoff1().min_element(),
                g.payoff2().max_element() - g.payoff2().min_element(), 1e-9});
  const double t_max = opts.t_start_rel * range;
  const double t_min = std::max(opts.t_end_rel * range, 1e-12);
  const double decay =
      (opts.iterations > 1)
          ? std::pow(t_min / t_max,
                     1.0 / static_cast<double>(opts.iterations - 1))
          : 1.0;

  const double f0 = objective.evaluate(initial);
  SaRunResult res{initial, f0, std::move(initial), f0,
                  /*accepted=*/0, /*iterations=*/0, /*evaluations=*/1};

  // Incremental fast path: evaluators exposing the propose/commit protocol
  // score each candidate in O(m+n) from the move list instead of a full
  // re-evaluation. The RNG draw sequence is identical on both paths.
  IncrementalEvaluator* inc = objective.incremental();
  if (inc) inc->reset(res.final_profile);

  // Candidate buffer for the full-evaluation path only; the incremental path
  // mutates res.final_profile in place (apply, then undo on rejection)
  // instead of copying the whole profile every iteration.
  game::QuantizedProfile candidate = res.final_profile;

  double temperature = t_max;
  for (std::size_t it = 0; it < opts.iterations; ++it, temperature *= decay) {
    // Perturb one player always, the other with configured probability —
    // both-player moves are required to hop between equilibria of
    // coordination-style games.
    TickMove moves[2];
    std::size_t num_moves = 0;
    auto draw_p = [&] {
      std::uint32_t from, to;
      if (draw_tick_move(res.final_profile.p, rng, from, to))
        moves[num_moves++] = {TickMove::Player::kRow, from, to};
    };
    auto draw_q = [&] {
      std::uint32_t from, to;
      if (draw_tick_move(res.final_profile.q, rng, from, to))
        moves[num_moves++] = {TickMove::Player::kCol, from, to};
    };
    if (rng.bernoulli(0.5)) {
      draw_p();
      if (rng.bernoulli(opts.both_players_prob)) draw_q();
    } else {
      draw_q();
      if (rng.bernoulli(opts.both_players_prob)) draw_p();
    }

    double f_n;
    if (inc) {
      for (std::size_t i = 0; i < num_moves; ++i) {
        auto& s = moves[i].player == TickMove::Player::kRow
                      ? res.final_profile.p
                      : res.final_profile.q;
        s.move_tick(moves[i].from, moves[i].to);
      }
      f_n = inc->propose(moves, num_moves);
    } else {
      candidate = res.final_profile;
      for (std::size_t i = 0; i < num_moves; ++i) {
        auto& s = moves[i].player == TickMove::Player::kRow ? candidate.p
                                                            : candidate.q;
        s.move_tick(moves[i].from, moves[i].to);
      }
      f_n = objective.evaluate(candidate);
    }
    ++res.evaluations;
    const double delta = f_n - res.final_objective;
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      if (inc) {
        inc->commit();
      } else {
        res.final_profile = candidate;
      }
      res.final_objective = f_n;
      ++res.accepted;
      if (f_n < res.best_objective) {
        res.best_objective = f_n;
        res.best_profile = res.final_profile;
      }
    } else if (inc) {
      // Rejected: undo the in-place moves (reverse order, ticks swapped).
      for (std::size_t i = num_moves; i-- > 0;) {
        auto& s = moves[i].player == TickMove::Player::kRow
                      ? res.final_profile.p
                      : res.final_profile.q;
        s.move_tick(moves[i].to, moves[i].from);
      }
    }
    ++res.iterations;
  }
  return res;
}

}  // namespace cnash::core
