#include "core/solver.hpp"

#include "core/service.hpp"

namespace cnash::core {

namespace {

std::shared_ptr<const EvaluatorFactory> make_factory(
    const game::BimatrixGame& game, const CNashConfig& config) {
  if (config.use_hardware)
    return std::make_shared<HardwareEvaluatorFactory>(
        game, config.intervals, config.hardware, util::Rng(config.seed));
  return std::make_shared<ExactEvaluatorFactory>(game);
}

EngineOptions engine_options(const CNashConfig& config) {
  EngineOptions opts;
  opts.intervals = config.intervals;
  opts.sa = config.sa;
  opts.report_best = config.report_best;
  opts.seed = config.seed;
  opts.threads = config.threads;
  return opts;
}

}  // namespace

CNashSolver::CNashSolver(game::BimatrixGame game, CNashConfig config)
    : game_(std::move(game)),
      config_(config),
      engine_(make_factory(game_, config_), engine_options(config_)) {
  if (config_.use_hardware) {
    auto hw = static_cast<const HardwareEvaluatorFactory&>(engine_.factory())
                  .create_hardware(kProbeInstanceKey);
    probe_hardware_ = hw.get();
    probe_ = std::move(hw);
  } else {
    probe_ = engine_.factory().create(kProbeInstanceKey);
  }
}

SolveSample CNashSolver::solve_once() { return engine_.solve_once(); }

std::vector<SolveSample> CNashSolver::run(std::size_t num_runs) {
  return engine_.run(num_runs);
}

SolveRequest CNashSolver::request(std::size_t num_runs) const {
  SolveRequest req(game_);
  req.backend = config_.use_hardware ? "hardware-sa" : "exact-sa";
  req.runs = num_runs;
  req.seed = config_.seed;
  req.intervals = config_.intervals;
  req.sa = config_.sa;
  req.hardware = config_.hardware;
  req.report_best = config_.report_best;
  req.max_parallelism = config_.threads;
  return req;
}

std::future<SolveReport> CNashSolver::submit(std::size_t num_runs) const {
  return SolverService::shared().submit(request(num_runs));
}

SolveReport CNashSolver::solve(std::size_t num_runs) const {
  return submit(num_runs).get();
}

}  // namespace cnash::core
