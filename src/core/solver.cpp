#include "core/solver.hpp"

namespace cnash::core {

CNashSolver::CNashSolver(game::BimatrixGame game, CNashConfig config)
    : game_(std::move(game)), config_(config), rng_(config.seed) {
  if (config_.use_hardware) {
    auto hw = std::make_unique<TwoPhaseEvaluator>(game_, config_.intervals,
                                                  config_.hardware, rng_.split());
    hardware_ = hw.get();
    evaluator_ = std::move(hw);
  } else {
    evaluator_ = std::make_unique<ExactMaxQubo>(game_);
  }
}

RunOutcome CNashSolver::solve_once() {
  const SaRunResult res =
      simulated_annealing(*evaluator_, config_.intervals, config_.sa, rng_);
  const game::QuantizedProfile& chosen =
      config_.report_best ? res.best_profile : res.final_profile;
  const double objective =
      config_.report_best ? res.best_objective : res.final_objective;
  return RunOutcome{chosen.p.to_distribution(), chosen.q.to_distribution(),
                    objective, chosen};
}

std::vector<RunOutcome> CNashSolver::run(std::size_t num_runs) {
  std::vector<RunOutcome> out;
  out.reserve(num_runs);
  for (std::size_t r = 0; r < num_runs; ++r) out.push_back(solve_once());
  return out;
}

}  // namespace cnash::core
