#pragma once
// core::SolveSample — the one solution-candidate type every solver family
// reports. Before the SolverBackend registry, each family had its own result
// struct (the engine's RunOutcome, the D-Wave proxy's NashSample, raw
// Equilibrium pairs from the exact solvers), so every cross-solver experiment
// re-implemented its own normalisation. A sample is one candidate strategy
// pair plus the backend-native objective and its ε-Nash verification verdict.

#include <optional>
#include <string>

#include "game/strategy.hpp"
#include "la/matrix.hpp"

namespace cnash::core {

struct SolveSample {
  la::Vector p;
  la::Vector q;
  /// Backend-native objective, lower is better, 0 at an exact equilibrium
  /// for the SA families: the measured MAX-QUBO value (hardware-sa /
  /// exact-sa), the S-QUBO read energy (dwave-* proxies, penalty floor
  /// included), or the continuous equilibrium gap (exact solvers).
  double objective = 0.0;
  /// Strategy simplex constraints hold. Binary annealer reads can violate
  /// the one-hot constraints; SA and exact samples are always valid.
  bool valid = true;
  /// The quantized SA state that produced the sample (SA backends only).
  std::optional<game::QuantizedProfile> profile;
  /// ε-Nash verification verdict (game::check_equilibrium), filled by the
  /// backend when the sample is produced.
  bool is_nash = false;
  /// max(regret1, regret2) — best unilateral pure-deviation gain of either
  /// player; NaN for invalid samples.
  double regret = 0.0;
  /// True when the "resilient" meta-backend produced this sample on its
  /// exact-sa fallback path after the primary hardware unit failed; counted
  /// as SolveReport::fallback_count by summarize().
  bool fallback = false;
  /// Replica-exchange provenance (SA ensemble winners only, 0 elsewhere):
  /// the ensemble's temperature-swap proposal/accept totals, carried on the
  /// winning sample so summarize() can aggregate them into the report.
  std::size_t swap_proposals = 0;
  std::size_t swap_accepts = 0;

  /// Stable dedup key across runs: the quantized profile key when present,
  /// the rounded distributions otherwise.
  std::string key() const;
};

}  // namespace cnash::core
