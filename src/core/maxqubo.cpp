#include "core/maxqubo.hpp"

#include <stdexcept>

#include "simd/simd.hpp"

namespace cnash::core {

namespace {
/// Full recomputes every this many commits bound incremental fp drift; the
/// property tests require agreement with the full objective to 1e-9 over
/// arbitrarily long move sequences.
constexpr std::size_t kRefreshInterval = 1024;
}  // namespace

ExactMaxQubo::ExactMaxQubo(game::BimatrixGame game)
    : ExactMaxQubo(std::make_shared<const Shared>(std::move(game))) {}

ExactMaxQubo::ExactMaxQubo(std::shared_ptr<const Shared> shared)
    : shared_(std::move(shared)) {
  if (!shared_) throw std::invalid_argument("ExactMaxQubo: null shared block");
}

double ExactMaxQubo::evaluate(const game::QuantizedProfile& profile) {
  return evaluate_continuous(profile.p.to_distribution(),
                             profile.q.to_distribution());
}

double ExactMaxQubo::evaluate_continuous(const la::Vector& p,
                                         const la::Vector& q) const {
  return components(p, q).objective();
}

ExactMaxQubo::Components ExactMaxQubo::components(const la::Vector& p,
                                                  const la::Vector& q) const {
  Components c;
  const la::Vector mq = shared_->game.row_payoffs(q);
  const la::Vector ntp = shared_->game.col_payoffs(p);
  c.max_mq = la::max_element(mq);
  c.max_ntp = la::max_element(ntp);
  c.vmv = la::dot(p, mq) + la::dot(q, ntp);
  return c;
}

// ---- Incremental fast path --------------------------------------------------

double ExactMaxQubo::DeltaState::objective() const {
  return la::max_element(mq) + la::max_element(ntp) - ptmq - ptnq;
}

void ExactMaxQubo::recompute(DeltaState& st) const {
  const double inv = 1.0 / static_cast<double>(intervals_);
  dist_p_.resize(p_counts_.size());
  dist_q_.resize(q_counts_.size());
  for (std::size_t i = 0; i < dist_p_.size(); ++i)
    dist_p_[i] = static_cast<double>(p_counts_[i]) * inv;
  for (std::size_t j = 0; j < dist_q_.size(); ++j)
    dist_q_[j] = static_cast<double>(q_counts_[j]) * inv;
  shared_->game.payoff1().multiply_into(dist_q_, st.mq);
  shared_->game.payoff2().multiply_into(dist_q_, st.nq);
  shared_->game.payoff1().multiply_transposed_into(dist_p_, st.mtp);
  shared_->game.payoff2().multiply_transposed_into(dist_p_, st.ntp);
  st.ptmq = la::dot(dist_p_, st.mq);
  st.ptnq = la::dot(dist_p_, st.nq);
}

void ExactMaxQubo::apply_move(DeltaState& st, const TickMove& mv,
                              double tick) const {
  const la::Matrix& m = shared_->game.payoff1();
  const la::Matrix& n = shared_->game.payoff2();
  const std::size_t cols = m.cols();
  const std::size_t rows = m.rows();
  if (mv.player == TickMove::Player::kRow) {
    // p' = p + tick * (e_to − e_from): the bilinear terms move by the row
    // difference against the CURRENT q-products in `st`, which already
    // reflect any earlier q-move of the same proposal (exact cross term).
    st.ptmq += (st.mq[mv.to] - st.mq[mv.from]) * tick;
    st.ptnq += (st.nq[mv.to] - st.nq[mv.from]) * tick;
    const double* md = m.data().data();
    const double* nd = n.data().data();
    simd::add_scaled_diff(st.mtp.data(), md + mv.to * cols,
                          md + mv.from * cols, tick, cols);
    simd::add_scaled_diff(st.ntp.data(), nd + mv.to * cols,
                          nd + mv.from * cols, tick, cols);
  } else {
    st.ptmq += (st.mtp[mv.to] - st.mtp[mv.from]) * tick;
    st.ptnq += (st.ntp[mv.to] - st.ntp[mv.from]) * tick;
    // Column differences read from the transposed copies: same doubles the
    // strided m(i, to) − m(i, from) walk would load, contiguous layout.
    const double* mtd = shared_->mt.data().data();
    const double* ntd = shared_->nt.data().data();
    simd::add_scaled_diff(st.mq.data(), mtd + mv.to * rows,
                          mtd + mv.from * rows, tick, rows);
    simd::add_scaled_diff(st.nq.data(), ntd + mv.to * rows,
                          ntd + mv.from * rows, tick, rows);
  }
}

void ExactMaxQubo::reset(const game::QuantizedProfile& profile) {
  if (profile.p.num_actions() != shared_->game.num_actions1() ||
      profile.q.num_actions() != shared_->game.num_actions2())
    throw std::invalid_argument("ExactMaxQubo::reset: profile shape mismatch");
  if (profile.p.intervals() != profile.q.intervals())
    throw std::invalid_argument("ExactMaxQubo::reset: mixed interval counts");
  intervals_ = profile.p.intervals();
  p_counts_ = profile.p.counts();
  q_counts_ = profile.q.counts();
  pending_.clear();
  pending_.reserve(4);  // SA proposals carry at most two tick moves
  proposal_outstanding_ = false;
  commits_since_refresh_ = 0;
  recompute(committed_);
  // Pre-size the proposal scratch so the first propose() (and every later
  // one) only copies into existing capacity — no per-iteration heap churn.
  scratch_ = committed_;
}

double ExactMaxQubo::propose(const TickMove* moves, std::size_t count) {
  if (intervals_ == 0)
    throw std::logic_error("ExactMaxQubo::propose before reset()");
  scratch_ = committed_;
  const double tick = 1.0 / static_cast<double>(intervals_);
  for (std::size_t i = 0; i < count; ++i) apply_move(scratch_, moves[i], tick);
  pending_.assign(moves, moves + count);
  proposal_outstanding_ = true;
  return scratch_.objective();
}

void ExactMaxQubo::commit() {
  if (!proposal_outstanding_)
    throw std::logic_error("ExactMaxQubo::commit without propose()");
  proposal_outstanding_ = false;
  for (const TickMove& mv : pending_) {
    auto& counts = mv.player == TickMove::Player::kRow ? p_counts_ : q_counts_;
    counts[mv.from] -= 1;
    counts[mv.to] += 1;
  }
  pending_.clear();
  std::swap(committed_, scratch_);
  if (++commits_since_refresh_ >= kRefreshInterval) {
    commits_since_refresh_ = 0;
    recompute(committed_);
  }
}

}  // namespace cnash::core
