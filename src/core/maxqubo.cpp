#include "core/maxqubo.hpp"

namespace cnash::core {

ExactMaxQubo::ExactMaxQubo(game::BimatrixGame game) : game_(std::move(game)) {}

double ExactMaxQubo::evaluate(const game::QuantizedProfile& profile) {
  return evaluate_continuous(profile.p.to_distribution(),
                             profile.q.to_distribution());
}

double ExactMaxQubo::evaluate_continuous(const la::Vector& p,
                                         const la::Vector& q) const {
  return components(p, q).objective();
}

ExactMaxQubo::Components ExactMaxQubo::components(const la::Vector& p,
                                                  const la::Vector& q) const {
  Components c;
  const la::Vector mq = game_.row_payoffs(q);
  const la::Vector ntp = game_.col_payoffs(p);
  c.max_mq = la::max_element(mq);
  c.max_ntp = la::max_element(ntp);
  c.vmv = la::dot(p, mq) + la::dot(q, ntp);
  return c;
}

}  // namespace cnash::core
