#pragma once
// Solution-quality metrics reproducing the paper's evaluation quantities:
//   * success rate (Table 1): fraction of runs whose reported strategy pair
//     is a true NE of the continuous game;
//   * solution distribution (Fig. 8): error / pure-NE / mixed-NE fractions;
//   * distinct solutions found vs ground-truth target (Fig. 9).

#include <string>
#include <vector>

#include "game/game.hpp"
#include "game/verify.hpp"

namespace cnash::core {

/// A solver-agnostic candidate (C-Nash run outcome or D-Wave proxy sample).
struct CandidateSolution {
  la::Vector p;
  la::Vector q;
};

struct SolverReport {
  std::size_t runs = 0;
  std::size_t pure_successes = 0;
  std::size_t mixed_successes = 0;
  std::size_t errors = 0;
  /// Per ground-truth-equilibrium hit counts (same order as the input list).
  std::vector<std::size_t> hits;

  std::size_t successes() const { return pure_successes + mixed_successes; }
  double success_rate() const;
  double pure_fraction() const;
  double mixed_fraction() const;
  double error_fraction() const;
  std::size_t distinct_found() const;
  std::size_t target() const { return hits.size(); }
};

/// Verify every candidate against the game and the ground-truth equilibrium
/// list. A candidate is a success when it is an ε-NE; it additionally counts
/// toward `hits` when it matches a ground-truth equilibrium within match_tol.
SolverReport classify(const game::BimatrixGame& game,
                      const std::vector<game::Equilibrium>& ground_truth,
                      const std::vector<CandidateSolution>& candidates,
                      double nash_eps = 1e-6, double match_tol = 1e-4);

/// Render percentages like the paper's tables ("81.90").
std::string percent(double fraction, int precision = 2);

}  // namespace cnash::core
