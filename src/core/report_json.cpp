#include "core/report_json.hpp"

#include <cstdint>
#include <utility>

namespace cnash::core {

namespace {

util::Json vector_to_json(const la::Vector& v) {
  util::Json arr = util::Json::array();
  for (const double x : v) arr.push(util::Json::number(x));
  return arr;
}

la::Vector vector_from_json(const util::Json& json) {
  if (!json.is_array()) throw util::JsonError(0, "expected a number array");
  la::Vector v;
  v.reserve(json.size());
  for (const auto& kv : json.members()) v.push_back(kv.second.as_number());
  return v;
}

util::Json counts_to_json(const std::vector<std::uint32_t>& counts) {
  util::Json arr = util::Json::array();
  for (const std::uint32_t c : counts)
    arr.push(util::Json::number(static_cast<double>(c)));
  return arr;
}

game::QuantizedStrategy strategy_from_json(const util::Json& json,
                                           std::uint32_t intervals) {
  if (!json.is_array()) throw util::JsonError(0, "expected a tick-count array");
  std::vector<std::uint32_t> counts;
  counts.reserve(json.size());
  for (const auto& kv : json.members()) {
    const double x = kv.second.as_number();
    if (x < 0.0 || x != static_cast<double>(static_cast<std::uint32_t>(x)))
      throw util::JsonError(0, "profile tick counts must be non-negative "
                               "integers");
    counts.push_back(static_cast<std::uint32_t>(x));
  }
  // The QuantizedStrategy constructor enforces sum(counts) == intervals; remap
  // its failure to the serializer's error type.
  try {
    return game::QuantizedStrategy(std::move(counts), intervals);
  } catch (const std::exception& e) {
    throw util::JsonError(0, std::string("invalid quantized profile: ") +
                                 e.what());
  }
}

util::Json sample_to_json(const SolveSample& s) {
  util::Json j = util::Json::object();
  j.set("p", vector_to_json(s.p));
  j.set("q", vector_to_json(s.q));
  j.set("objective", s.objective);
  j.set("valid", s.valid);
  j.set("is_nash", s.is_nash);
  j.set("regret", s.regret);
  // Emitted only when set: fallback samples exist only on the "resilient"
  // backend's contingency path, and the common case stays compact.
  if (s.fallback) j.set("fallback", true);
  // Replica-exchange provenance, same convention — independent-mode samples
  // stay byte-identical to pre-telemetry builds.
  if (s.swap_proposals) j.set("swap_proposals", s.swap_proposals);
  if (s.swap_accepts) j.set("swap_accepts", s.swap_accepts);
  if (s.profile) {
    util::Json p = util::Json::object();
    p.set("intervals", static_cast<std::size_t>(s.profile->p.intervals()));
    p.set("p", counts_to_json(s.profile->p.counts()));
    p.set("q", counts_to_json(s.profile->q.counts()));
    j.set("profile", std::move(p));
  }
  return j;
}

SolveSample sample_from_json(const util::Json& json) {
  SolveSample s;
  s.p = vector_from_json(json.at("p"));
  s.q = vector_from_json(json.at("q"));
  s.objective = json.at("objective").as_number();
  s.valid = json.at("valid").as_bool();
  s.is_nash = json.at("is_nash").as_bool();
  s.regret = json.at("regret").as_number();
  if (const util::Json* fb = json.find("fallback")) s.fallback = fb->as_bool();
  if (const util::Json* sp = json.find("swap_proposals"))
    s.swap_proposals = static_cast<std::size_t>(sp->as_number());
  if (const util::Json* sa = json.find("swap_accepts"))
    s.swap_accepts = static_cast<std::size_t>(sa->as_number());
  if (const util::Json* profile = json.find("profile")) {
    const double raw = profile->at("intervals").as_number();
    const auto intervals = static_cast<std::uint32_t>(raw);
    if (raw <= 0.0 || static_cast<double>(intervals) != raw)
      throw util::JsonError(0, "profile intervals must be a positive integer");
    s.profile = game::QuantizedProfile{
        strategy_from_json(profile->at("p"), intervals),
        strategy_from_json(profile->at("q"), intervals)};
  }
  return s;
}

}  // namespace

util::Json report_to_json(const SolveReport& report) {
  util::Json j = util::Json::object();
  j.set("backend", report.backend);
  j.set("game", report.game_name);
  j.set("nash_count", report.nash_count);
  j.set("valid_count", report.valid_count);
  j.set("best_objective", report.best_objective);
  j.set("modeled_time_s", report.modeled_time_s);
  j.set("wall_clock_s", report.wall_clock_s);
  j.set("degraded", report.degraded);
  j.set("units_total", report.units_total);
  j.set("units_completed", report.units_completed);
  j.set("fallback_count", report.fallback_count);
  // Conditional for byte-compatibility with pre-telemetry serializations
  // (goldens, persisted store segments, the cache replay contract).
  if (report.re_swap_proposals)
    j.set("re_swap_proposals", report.re_swap_proposals);
  if (report.re_swap_accepts) j.set("re_swap_accepts", report.re_swap_accepts);
  util::Json samples = util::Json::array();
  for (const SolveSample& s : report.samples) samples.push(sample_to_json(s));
  j.set("samples", std::move(samples));
  return j;
}

SolveReport report_from_json(const util::Json& json) {
  SolveReport report;
  report.backend = json.at("backend").as_string();
  report.game_name = json.at("game").as_string();
  const util::Json& samples = json.at("samples");
  if (!samples.is_array()) throw util::JsonError(0, "samples must be an array");
  report.samples.reserve(samples.size());
  for (const auto& kv : samples.members())
    report.samples.push_back(sample_from_json(kv.second));
  // Aggregates are carried explicitly (not recomputed) so a parsed report is
  // bit-identical to the serialized one even if summarize() evolves.
  report.nash_count =
      static_cast<std::size_t>(json.at("nash_count").as_number());
  report.valid_count =
      static_cast<std::size_t>(json.at("valid_count").as_number());
  report.best_objective = json.at("best_objective").as_number();
  report.modeled_time_s = json.at("modeled_time_s").as_number();
  report.wall_clock_s = json.at("wall_clock_s").as_number();
  // Robustness accounting (PR 7+): absent in reports serialized by older
  // builds, so parse with defaults.
  if (const util::Json* d = json.find("degraded")) report.degraded = d->as_bool();
  if (const util::Json* u = json.find("units_total"))
    report.units_total = static_cast<std::size_t>(u->as_number());
  if (const util::Json* u = json.find("units_completed"))
    report.units_completed = static_cast<std::size_t>(u->as_number());
  if (const util::Json* f = json.find("fallback_count"))
    report.fallback_count = static_cast<std::size_t>(f->as_number());
  if (const util::Json* p = json.find("re_swap_proposals"))
    report.re_swap_proposals = static_cast<std::size_t>(p->as_number());
  if (const util::Json* a = json.find("re_swap_accepts"))
    report.re_swap_accepts = static_cast<std::size_t>(a->as_number());
  return report;
}

}  // namespace cnash::core
