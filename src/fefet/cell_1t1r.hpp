#pragma once
// The 1FeFET1R bit cell of Fig. 2(c): one FeFET in series with a resistor.
// The resistor clamps the ON current at ≈ V_DL / R, suppressing the FeFET's
// exponential ON-current variability (Fig. 2(d)) so that cell currents sum
// linearly on the source line — the property the whole crossbar relies on.
//
// read(): solves the series KCL  I = I_fet(V_G, V_DL − I·R)  by fixed-point
// iteration (the loop contracts because I_fet is increasing in V_DS and the
// resistor feedback is negative).

#include "fefet/fefet.hpp"
#include "fefet/variability.hpp"

namespace cnash::fefet {

struct CellBias {
  double v_wl_on = 1.0;   // gate drive of an activated word line (V)
  double v_wl_off = 0.0;
  double v_dl_on = 0.8;   // drain drive of an activated data line (V)
  double v_dl_off = 0.0;
};

class Cell1T1R {
 public:
  /// stored_one: logic state (low V_TH when true). sample: static variation.
  Cell1T1R(bool stored_one, CellSample sample, FeFetParams fet_params = {});

  bool stored_one() const { return stored_one_; }
  double v_th() const { return fet_.v_th(); }
  double resistance() const { return sample_.resistance; }

  /// Drain-source current for given line voltages.
  double read_current(double v_wl, double v_dl) const;

  /// Convenience: current under activation flags and the given bias set.
  double read(bool row_active, bool col_active, const CellBias& bias = {}) const;

 private:
  bool stored_one_;
  CellSample sample_;
  FeFet fet_;
};

/// Nominal (variation-free) ON current of a stored-'1' cell — the unit in
/// which crossbar output currents are converted back to payoff values.
double nominal_on_current(const FeFetParams& fet_params = {},
                          const VariabilityParams& var_params = {},
                          const CellBias& bias = {});

}  // namespace cnash::fefet
