#pragma once
// FeFET transistor read model: I_D(V_G, V_DS) for a stored V_TH state.
//
// EKV-flavoured analytic curve — exponential subthreshold conduction with
// slope SS merging into square-law strong inversion, with a soft drain
// saturation — calibrated so the logic '1' (low V_TH) device carries ~0.1 mA
// at V_G = 2 V and the logic '0' (high V_TH) device stays below 1 nA at the
// read voltage, matching the measured curves of Fig. 2(b).

#include "fefet/preisach.hpp"

namespace cnash::fefet {

struct FeFetParams {
  double vth_low = 0.8;              // erased state ('1')
  double vth_high = 1.6;             // programmed state ('0')
  double subthreshold_swing = 0.09;  // V/decade
  double k_strong = 2.4e-4;          // A/V² strong-inversion transconductance
  double v_dsat = 0.3;               // soft drain saturation voltage (V)
  double leak_floor = 1e-12;         // A, off-state floor
};

class FeFet {
 public:
  /// v_th: the device's actual threshold (nominal state value + variation).
  explicit FeFet(double v_th, FeFetParams params = {});

  /// Construct from a programmed ferroelectric stack.
  static FeFet from_polarization(const PreisachFerroelectric& fe,
                                 FeFetParams params = {});

  double v_th() const { return v_th_; }

  /// Drain current at gate/drain bias (source grounded). Monotonic in both.
  double drain_current(double v_g, double v_ds) const;

  const FeFetParams& params() const { return params_; }

 private:
  double v_th_;
  FeFetParams params_;
};

}  // namespace cnash::fefet
