#pragma once
// Device-to-device variability sampling for FeFETs and the series resistor of
// the 1FeFET1R cell. The paper's Monte-Carlo setup (Sec. 4.1): σ(V_TH) = 40 mV
// from [29] and 8 % resistor variability from [30].

#include "util/rng.hpp"

namespace cnash::fefet {

struct VariabilityParams {
  double sigma_vth = 0.040;      // V, Gaussian, device-to-device
  double sigma_r_rel = 0.08;     // relative Gaussian on the series resistor
  double r_nominal = 1.0e6;      // Ω — sets the clamped ON current ≈ V_DL / R
  /// Extra relative spread of *intermediate* multi-level-cell conductance
  /// states (worst at mid-level, zero at the clamped full-ON state) — the
  /// partial-polarization programming spread reported for MLC FeFETs [29].
  double sigma_mlc_rel = 0.05;
};

/// A sampled physical instance of one cell's device parameters.
struct CellSample {
  double vth_offset;  // added to the programmed V_TH state
  double resistance;  // series resistor value
};

/// Draw one cell's static variation.
CellSample sample_cell(const VariabilityParams& params, util::Rng& rng);

}  // namespace cnash::fefet
