#include "fefet/fefet.hpp"

#include <cmath>
#include <numbers>

namespace cnash::fefet {

FeFet::FeFet(double v_th, FeFetParams params) : v_th_(v_th), params_(params) {}

FeFet FeFet::from_polarization(const PreisachFerroelectric& fe,
                               FeFetParams params) {
  return FeFet(fe.threshold_voltage(), params);
}

double FeFet::drain_current(double v_g, double v_ds) const {
  if (v_ds <= 0.0) return 0.0;
  // EKV interpolation: drive g = ln(1 + exp((Vg - Vth)/(2 n vt)))². In deep
  // subthreshold g ≈ exp((Vg - Vth)/n_vt), i.e. current falls one decade per
  // n_vt·ln(10) volts, so n_vt = SS / ln(10) realises `subthreshold_swing`
  // volts per decade.
  const double n_vt = params_.subthreshold_swing / std::numbers::ln10;
  const double x = (v_g - v_th_) / (2.0 * n_vt);
  // Numerically safe softplus.
  const double softplus = x > 30.0 ? x : std::log1p(std::exp(x));
  const double g = softplus * softplus * (2.0 * n_vt) * (2.0 * n_vt);
  // Soft drain saturation: linear for small V_DS, flat past v_dsat.
  const double sat = std::tanh(v_ds / params_.v_dsat);
  return params_.k_strong * g * sat + params_.leak_floor;
}

}  // namespace cnash::fefet
