#pragma once
// Behavioural Preisach-style ferroelectric hysteresis kernel.
//
// The paper simulates FeFETs with the Preisach compact model of Ni et al.
// [27] in SPECTRE. The architecture only consumes the *programmed remanent
// polarization* (which sets the threshold-voltage state of Fig. 2(a)), so this
// kernel reproduces the input-history-dependent P(V) loop behaviourally:
// saturating tanh branches with coercive voltage Vc, plus minor-loop turning
// points, mapped linearly onto a V_TH shift.

#include <vector>

namespace cnash::fefet {

struct PreisachParams {
  double saturation_polarization = 1.0;  // P_s, normalised
  double coercive_voltage = 1.0;         // V_c (V)
  double sharpness = 4.0;                // loop squareness (1/V)
  double vth_low = 0.8;    // V_TH at P = +P_s (erased, logic '1')
  double vth_high = 1.6;   // V_TH at P = -P_s (programmed, logic '0')
};

class PreisachFerroelectric {
 public:
  explicit PreisachFerroelectric(PreisachParams params = {});

  /// Apply a quasi-static write pulse of amplitude v_gate (sign matters; the
  /// pulse is assumed long enough for the domain to follow the branch).
  void apply_pulse(double v_gate);

  /// Apply a full positive (or negative) saturating pulse.
  void saturate(bool positive);

  double polarization() const { return p_; }

  /// Threshold voltage implied by the current polarization: linear map from
  /// [-Ps, +Ps] onto [vth_high, vth_low] (more positive P -> lower V_TH).
  double threshold_voltage() const;

  const PreisachParams& params() const { return params_; }

  /// The ascending/descending saturation branch value at voltage v
  /// (Preisach major loop envelope) — exposed for characterization benches.
  double major_branch(double v, bool ascending) const;

 private:
  PreisachParams params_;
  double p_;  // current normalised polarization in [-Ps, Ps]
};

/// Sweep helper: polarization trace for a triangular voltage sweep
/// 0 -> +vmax -> -vmax -> +vmax (hysteresis loop), `steps` points per leg.
std::vector<std::pair<double, double>> hysteresis_loop(
    PreisachFerroelectric fe, double vmax, std::size_t steps);

}  // namespace cnash::fefet
