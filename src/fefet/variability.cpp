#include "fefet/variability.hpp"

#include <algorithm>

namespace cnash::fefet {

CellSample sample_cell(const VariabilityParams& params, util::Rng& rng) {
  CellSample s;
  s.vth_offset = rng.normal(0.0, params.sigma_vth);
  // Clamp at -3σ .. +3σ relative so a tail draw can't produce R <= 0.
  const double rel =
      std::clamp(rng.normal(0.0, params.sigma_r_rel), -3.0 * params.sigma_r_rel,
                 3.0 * params.sigma_r_rel);
  s.resistance = params.r_nominal * (1.0 + rel);
  return s;
}

}  // namespace cnash::fefet
