#include "fefet/cell_1t1r.hpp"

#include <algorithm>
#include <cmath>

namespace cnash::fefet {

namespace {
FeFet make_fet(bool stored_one, const CellSample& sample,
               const FeFetParams& params) {
  const double nominal = stored_one ? params.vth_low : params.vth_high;
  return FeFet(nominal + sample.vth_offset, params);
}
}  // namespace

Cell1T1R::Cell1T1R(bool stored_one, CellSample sample, FeFetParams fet_params)
    : stored_one_(stored_one),
      sample_(sample),
      fet_(make_fet(stored_one, sample, fet_params)) {}

double Cell1T1R::read_current(double v_wl, double v_dl) const {
  if (v_dl <= 0.0) return 0.0;
  // Series KCL: find I with I = I_fet(V_G, V_DL - I·R). The residual
  // h(I) = I_fet(V_DL - I·R) - I is strictly decreasing in I (I_fet is
  // increasing in V_DS), h(0) >= 0 and h(V_DL/R) <= 0, so bisection on
  // [0, V_DL/R] is robust even when the FET is far stronger than the
  // resistor limit (a plain fixed-point iteration oscillates there).
  const double r = sample_.resistance;
  double lo = 0.0;
  double hi = v_dl / r;
  if (fet_.drain_current(v_wl, v_dl) <= hi) {
    // Weak FET: it sets the current and the resistor drop is secondary;
    // bisection still applies with the same bracket.
    hi = std::min(hi, fet_.drain_current(v_wl, v_dl));
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double v_ds = std::max(v_dl - mid * r, 0.0);
    const double residual = fet_.drain_current(v_wl, v_ds) - mid;
    if (residual > 0.0)
      lo = mid;
    else
      hi = mid;
    if (hi - lo < 1e-18 + 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double Cell1T1R::read(bool row_active, bool col_active,
                      const CellBias& bias) const {
  const double v_wl = row_active ? bias.v_wl_on : bias.v_wl_off;
  const double v_dl = col_active ? bias.v_dl_on : bias.v_dl_off;
  return read_current(v_wl, v_dl);
}

double nominal_on_current(const FeFetParams& fet_params,
                          const VariabilityParams& var_params,
                          const CellBias& bias) {
  Cell1T1R cell(/*stored_one=*/true, CellSample{0.0, var_params.r_nominal},
                fet_params);
  return cell.read(/*row_active=*/true, /*col_active=*/true, bias);
}

}  // namespace cnash::fefet
