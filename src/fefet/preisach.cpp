#include "fefet/preisach.hpp"

#include <algorithm>
#include <cmath>

namespace cnash::fefet {

PreisachFerroelectric::PreisachFerroelectric(PreisachParams params)
    : params_(params), p_(-params.saturation_polarization) {}

double PreisachFerroelectric::major_branch(double v, bool ascending) const {
  // Ascending branch switches up around +Vc; descending around -Vc.
  const double vc = ascending ? params_.coercive_voltage
                              : -params_.coercive_voltage;
  return params_.saturation_polarization *
         std::tanh(params_.sharpness * (v - vc));
}

void PreisachFerroelectric::apply_pulse(double v_gate) {
  // Single-domain behaviour with history: a positive pulse can only raise P
  // toward the ascending envelope; a negative pulse can only lower it toward
  // the descending envelope. This reproduces the major/minor loop shape well
  // enough for multi-pulse programming studies.
  if (v_gate >= 0.0) {
    p_ = std::max(p_, major_branch(v_gate, /*ascending=*/true));
  } else {
    p_ = std::min(p_, major_branch(v_gate, /*ascending=*/false));
  }
  const double ps = params_.saturation_polarization;
  p_ = std::clamp(p_, -ps, ps);
}

void PreisachFerroelectric::saturate(bool positive) {
  p_ = positive ? params_.saturation_polarization
                : -params_.saturation_polarization;
}

double PreisachFerroelectric::threshold_voltage() const {
  const double ps = params_.saturation_polarization;
  const double t = (p_ + ps) / (2.0 * ps);  // 0 at -Ps, 1 at +Ps
  return params_.vth_high + t * (params_.vth_low - params_.vth_high);
}

std::vector<std::pair<double, double>> hysteresis_loop(
    PreisachFerroelectric fe, double vmax, std::size_t steps) {
  std::vector<std::pair<double, double>> trace;
  auto leg = [&](double v0, double v1) {
    for (std::size_t k = 0; k <= steps; ++k) {
      const double v =
          v0 + (v1 - v0) * static_cast<double>(k) / static_cast<double>(steps);
      fe.apply_pulse(v);
      trace.emplace_back(v, fe.polarization());
    }
  };
  leg(0.0, vmax);
  leg(vmax, -vmax);
  leg(-vmax, vmax);
  return trace;
}

}  // namespace cnash::fefet
