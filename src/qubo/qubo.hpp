#pragma once
// Quadratic Unconstrained Binary Optimization (QUBO) model:
//   E(x) = xᵀ Q x + offset,  x ∈ {0,1}^n  (Eq. 5 of the paper).
// Q is stored dense and symmetric (tiny problems: n+m+slack bits ≲ 100).

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace cnash::qubo {

using Bits = std::vector<std::uint8_t>;  // each entry 0 or 1

class QuboModel {
 public:
  explicit QuboModel(std::size_t num_vars);

  std::size_t num_vars() const { return q_.rows(); }

  /// Add `w` to the linear coefficient of variable i (diagonal of Q).
  void add_linear(std::size_t i, double w);
  /// Add `w` to the coupling of (i, j), i != j; split symmetrically.
  void add_quadratic(std::size_t i, std::size_t j, double w);
  /// Add a constant to the energy offset.
  void add_offset(double c);

  /// Add penalty * (Σ coeff_k x_{idx_k} + constant)² expanded into Q.
  void add_squared_penalty(const std::vector<std::size_t>& idx,
                           const std::vector<double>& coeff, double constant,
                           double penalty);

  double offset() const { return offset_; }
  const la::Matrix& q() const { return q_; }

  /// Full energy evaluation.
  double energy(const Bits& x) const;

  /// Energy change if bit i is flipped (O(n)).
  double flip_delta(const Bits& x, std::size_t i) const;

  /// Quantize all couplings/linears to `bits` signed levels over the maximum
  /// magnitude — models the limited analog coupler precision of physical
  /// annealers. bits == 0 leaves the model untouched.
  QuboModel quantized(unsigned bits) const;

  /// Largest |Q_ij| (diagonal included).
  double max_abs_coefficient() const;

 private:
  la::Matrix q_;       // symmetric
  double offset_ = 0.0;
};

}  // namespace cnash::qubo
