#pragma once
// S-QUBO: the slack-variable QUBO formulation of the Nash quadratic program
// (Eq. 6 of the paper; originally Khan et al. [8,9]). Binary strategy variables
// restrict the search to pure strategies; slack terms fold the inequality
// constraints into squared penalties, distorting the objective — exactly the
// lossiness C-Nash's MAX-QUBO removes.
//
// Two constraint styles are provided:
//  * kAggregate — Eq. 6 verbatim: one constraint Σ_{i,j} m_ij q_j - α + ζ = 0
//    summed over all rows (most lossy).
//  * kPerRow   — one constraint per row (Mq)_i - α + ζ_i = 0 with a slack per
//    row (closer to the original inequalities, still lossy).

#include <cstddef>
#include <optional>
#include <vector>

#include "game/game.hpp"
#include "qubo/encoding.hpp"
#include "qubo/qubo.hpp"

namespace cnash::qubo {

enum class SlackStyle { kAggregate, kPerRow };

struct SQuboOptions {
  SlackStyle style = SlackStyle::kPerRow;
  unsigned level_bits = 5;   // bits for α and β
  unsigned slack_bits = 5;   // bits for each ζ / η
  /// Simplex penalties A/B are specified RELATIVE to the game's payoff range
  /// (max - min over both matrices): effective A = penalty_a_rel * range.
  /// A violated one-hot constraint must cost more than any payoff swing.
  double penalty_a_rel = 2.0;  // A: Σp = 1
  double penalty_b_rel = 2.0;  // B: Σq = 1
  /// Constraint penalties C/D multiply squared payoff-scale residuals and are
  /// therefore dimensionless.
  double penalty_c = 2.0;    // C: player-1 constraint(s)
  double penalty_d = 2.0;    // D: player-2 constraint(s)
};

/// The assembled model plus decoders for every logical variable group.
class SQubo {
 public:
  SQubo(const game::BimatrixGame& game, const SQuboOptions& opts = {});

  const QuboModel& model() const { return model_; }
  const game::BimatrixGame& game() const { return game_; }

  std::size_t num_vars() const { return model_.num_vars(); }

  /// Decoded sample: binary strategy vectors (possibly invalid) + levels.
  struct Decoded {
    la::Vector p;   // 0/1 entries as read from bits
    la::Vector q;
    double alpha;
    double beta;
    bool valid_strategies;  // Σp == 1 and Σq == 1
  };
  Decoded decode(const Bits& x) const;

  /// The distorted S-QUBO objective value (model energy) for a sample.
  double energy(const Bits& x) const { return model_.energy(x); }

  /// The *original* quadratic-program objective (Eq. 3): pᵀ(M+N)q − α − β,
  /// evaluated with α = max(Mq), β = max(Nᵀp); NaN when strategies invalid.
  double original_objective(const Bits& x) const;

 private:
  game::BimatrixGame game_;
  QuboModel model_;
  std::size_t n_;  // player-1 actions
  std::size_t m_;  // player-2 actions
  std::optional<ScalarEncoding> alpha_;
  std::optional<ScalarEncoding> beta_;
  std::vector<ScalarEncoding> zeta_;  // 1 (aggregate) or n (per-row)
  std::vector<ScalarEncoding> eta_;   // 1 (aggregate) or m (per-row)
};

}  // namespace cnash::qubo
