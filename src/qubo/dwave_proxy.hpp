#pragma once
// Behavioural proxies for the two D-Wave quantum annealers the paper compares
// against. The real machines are unavailable (and the paper itself quotes
// literature numbers); the proxy reproduces the *mechanism* of each solver:
// S-QUBO objective distortion, binary (pure-only) strategy variables, limited
// analog coupler precision, and a per-sample wall-clock cost.
//
//   D-Wave 2000 Q6      — slower per sample, better-converged samples.
//   D-Wave Advantage 4.1 — faster per sample, noisier samples (matches the
//                          lower success rates reported in Table 1).
//
// Reads are reported as core::SolveSample (the unified cross-solver sample
// type): objective = the S-QUBO energy of the read, valid = the one-hot
// strategy constraints hold, no quantized profile. The "dwave-2000q6" /
// "dwave-advantage41" registry backends front this proxy behind the
// SolveRequest → SolveReport contract.

#include <string>
#include <vector>

#include "core/sample.hpp"
#include "game/game.hpp"
#include "qubo/annealer.hpp"
#include "qubo/squbo_builder.hpp"

namespace cnash::qubo {

struct DWaveConfig {
  std::string name;
  AnnealSchedule schedule;
  unsigned coupler_bits;     // analog coupling precision (0 = ideal)
  /// Per-read Gaussian perturbation of every coupling, relative to the
  /// largest |Q| coefficient — models D-Wave integrated control errors (ICE):
  /// each anneal sees a slightly different Hamiltonian.
  double q_noise_rel = 0.0;
  double time_per_sample_s;  // programming + anneal + readout per read
  SQuboOptions squbo;
};

/// Published-spec-flavoured presets.
DWaveConfig dwave_2000q6_config();
DWaveConfig dwave_advantage41_config();

/// Run S-QUBO reads on a game through the proxy.
class DWaveProxy {
 public:
  DWaveProxy(const game::BimatrixGame& game, DWaveConfig config);

  /// One annealer read, decoded to strategy space. Draws exactly one read's
  /// worth of randomness from `rng` (noiseless configs draw none beyond the
  /// anneal itself), so keyed per-read streams reproduce any read in
  /// isolation.
  core::SolveSample sample_one(util::Rng& rng) const;

  /// `num_reads` sequential reads off one stream.
  std::vector<core::SolveSample> run(std::size_t num_reads,
                                     util::Rng& rng) const;

  /// Modelled wall-clock for `num_reads` reads.
  double elapsed_seconds(std::size_t num_reads) const;

  const game::BimatrixGame& game() const { return game_; }
  const DWaveConfig& config() const { return config_; }
  const SQubo& squbo() const { return squbo_; }
  /// The precision-quantized model actually sampled (coupler_bits applied).
  const QuboModel& solve_model() const { return solve_model_; }

 private:
  game::BimatrixGame game_;
  DWaveConfig config_;
  SQubo squbo_;
  QuboModel solve_model_;  // precision-quantized model actually sampled
  double noise_sigma_;     // absolute ICE perturbation sigma per coupling
};

}  // namespace cnash::qubo
