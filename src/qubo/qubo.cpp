#include "qubo/qubo.hpp"

#include <cmath>
#include <stdexcept>

namespace cnash::qubo {

QuboModel::QuboModel(std::size_t num_vars) : q_(num_vars, num_vars, 0.0) {
  if (num_vars == 0) throw std::invalid_argument("QuboModel: zero variables");
}

void QuboModel::add_linear(std::size_t i, double w) {
  q_.at(i, i) += w;
}

void QuboModel::add_quadratic(std::size_t i, std::size_t j, double w) {
  if (i == j) throw std::invalid_argument("add_quadratic: i == j");
  q_.at(i, j) += w / 2.0;
  q_.at(j, i) += w / 2.0;
}

void QuboModel::add_offset(double c) { offset_ += c; }

void QuboModel::add_squared_penalty(const std::vector<std::size_t>& idx,
                                    const std::vector<double>& coeff,
                                    double constant, double penalty) {
  if (idx.size() != coeff.size())
    throw std::invalid_argument("add_squared_penalty: size mismatch");
  // (Σ c_k x_k + a)² = Σ c_k² x_k (x²=x) + 2Σ_{k<l} c_k c_l x_k x_l + 2aΣc_k x_k + a²
  for (std::size_t k = 0; k < idx.size(); ++k) {
    add_linear(idx[k], penalty * coeff[k] * (coeff[k] + 2.0 * constant));
    for (std::size_t l = k + 1; l < idx.size(); ++l) {
      if (idx[k] == idx[l]) {
        // Same variable appearing twice: x*x = x, fold into linear term.
        add_linear(idx[k], penalty * 2.0 * coeff[k] * coeff[l]);
      } else {
        add_quadratic(idx[k], idx[l], penalty * 2.0 * coeff[k] * coeff[l]);
      }
    }
  }
  add_offset(penalty * constant * constant);
}

double QuboModel::energy(const Bits& x) const {
  const std::size_t n = num_vars();
  if (x.size() != n) throw std::invalid_argument("energy: size mismatch");
  double e = offset_;
  for (std::size_t i = 0; i < n; ++i) {
    if (!x[i]) continue;
    e += q_(i, i);
    for (std::size_t j = i + 1; j < n; ++j)
      if (x[j]) e += 2.0 * q_(i, j);
  }
  return e;
}

double QuboModel::flip_delta(const Bits& x, std::size_t i) const {
  const std::size_t n = num_vars();
  if (i >= n) throw std::out_of_range("flip_delta");
  // E(x with x_i -> 1-x_i) - E(x) = s * (Q_ii + 2 Σ_{j != i} Q_ij x_j),
  // s = +1 when turning on, -1 when turning off.
  double field = q_(i, i);
  for (std::size_t j = 0; j < n; ++j)
    if (j != i && x[j]) field += 2.0 * q_(i, j);
  return x[i] ? -field : field;
}

QuboModel QuboModel::quantized(unsigned bits) const {
  if (bits == 0) return *this;
  const double scale = max_abs_coefficient();
  if (scale == 0.0) return *this;
  const double levels = static_cast<double>((1u << (bits - 1)) - 1);
  QuboModel out(num_vars());
  out.offset_ = offset_;
  for (std::size_t i = 0; i < num_vars(); ++i)
    for (std::size_t j = 0; j < num_vars(); ++j)
      out.q_(i, j) = std::round(q_(i, j) / scale * levels) / levels * scale;
  return out;
}

double QuboModel::max_abs_coefficient() const {
  double m = 0.0;
  for (double v : q_.data()) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace cnash::qubo
