#include "qubo/squbo_builder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "game/strategy.hpp"

namespace cnash::qubo {

namespace {

/// Sum of variable count needed before building (layout planning).
struct Layout {
  std::size_t n, m;
  std::size_t alpha_base, beta_base, zeta_base, eta_base, total;
};

Layout plan_layout(std::size_t n, std::size_t m, const SQuboOptions& o) {
  Layout l{};
  l.n = n;
  l.m = m;
  const std::size_t zeta_count = (o.style == SlackStyle::kAggregate) ? 1 : n;
  const std::size_t eta_count = (o.style == SlackStyle::kAggregate) ? 1 : m;
  l.alpha_base = n + m;
  l.beta_base = l.alpha_base + o.level_bits;
  l.zeta_base = l.beta_base + o.level_bits;
  l.eta_base = l.zeta_base + zeta_count * o.slack_bits;
  l.total = l.eta_base + eta_count * o.slack_bits;
  return l;
}

}  // namespace

SQubo::SQubo(const game::BimatrixGame& game, const SQuboOptions& opts)
    : game_(game),
      model_(plan_layout(game.num_actions1(), game.num_actions2(), opts).total),
      n_(game.num_actions1()),
      m_(game.num_actions2()) {
  const Layout l = plan_layout(n_, m_, opts);
  const la::Matrix& mm = game_.payoff1();
  const la::Matrix& nn = game_.payoff2();

  // Value ranges for α (payoff levels of player 1) and β (player 2). With
  // binary strategies and Σq = 1, (Mq)_i spans the matrix entry range.
  const double m_lo = mm.min_element(), m_hi = mm.max_element();
  const double n_lo = nn.min_element(), n_hi = nn.max_element();
  alpha_.emplace(l.alpha_base, opts.level_bits, m_lo, m_hi);
  beta_.emplace(l.beta_base, opts.level_bits, n_lo, n_hi);

  const double m_range = m_hi - m_lo;
  const double n_range = n_hi - n_lo;
  const std::size_t zeta_count = (opts.style == SlackStyle::kAggregate) ? 1 : n_;
  const std::size_t eta_count = (opts.style == SlackStyle::kAggregate) ? 1 : m_;
  // Aggregate constraints sum n rows, so the slack must cover n× the range.
  const double zeta_hi = (opts.style == SlackStyle::kAggregate)
                             ? std::max(1.0, static_cast<double>(n_) * m_range)
                             : std::max(1.0, m_range);
  const double eta_hi = (opts.style == SlackStyle::kAggregate)
                            ? std::max(1.0, static_cast<double>(m_) * n_range)
                            : std::max(1.0, n_range);
  for (std::size_t k = 0; k < zeta_count; ++k)
    zeta_.emplace_back(l.zeta_base + k * opts.slack_bits, opts.slack_bits, 0.0,
                       zeta_hi);
  for (std::size_t k = 0; k < eta_count; ++k)
    eta_.emplace_back(l.eta_base + k * opts.slack_bits, opts.slack_bits, 0.0,
                      eta_hi);

  // --- Objective: -pᵀ(M+N)q + α + β ---------------------------------------
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < m_; ++j) {
      const double w = -(mm(i, j) + nn(i, j));
      if (w != 0.0) model_.add_quadratic(i, n_ + j, w);
    }
  for (unsigned k = 0; k < alpha_->bits(); ++k)
    model_.add_linear(alpha_->indices()[k], alpha_->coefficients()[k]);
  model_.add_offset(alpha_->constant());
  for (unsigned k = 0; k < beta_->bits(); ++k)
    model_.add_linear(beta_->indices()[k], beta_->coefficients()[k]);
  model_.add_offset(beta_->constant());

  // --- A(Σp - 1)² and B(Σq - 1)² -------------------------------------------
  const double range = std::max(
      {m_hi - m_lo, n_hi - n_lo, 1.0});
  {
    std::vector<std::size_t> idx(n_);
    std::vector<double> coeff(n_, 1.0);
    for (std::size_t i = 0; i < n_; ++i) idx[i] = i;
    model_.add_squared_penalty(idx, coeff, -1.0, opts.penalty_a_rel * range);
  }
  {
    std::vector<std::size_t> idx(m_);
    std::vector<double> coeff(m_, 1.0);
    for (std::size_t j = 0; j < m_; ++j) idx[j] = n_ + j;
    model_.add_squared_penalty(idx, coeff, -1.0, opts.penalty_b_rel * range);
  }

  // --- C/D slack-equality penalties ----------------------------------------
  auto add_constraint = [&](const std::vector<double>& strat_coeff,
                            std::size_t strat_base, std::size_t strat_count,
                            const ScalarEncoding& level,
                            const ScalarEncoding& slack, double penalty) {
    // Σ_k c_k x_k - level + slack = 0, squared.
    std::vector<std::size_t> idx;
    std::vector<double> coeff;
    for (std::size_t k = 0; k < strat_count; ++k) {
      if (strat_coeff[k] == 0.0) continue;
      idx.push_back(strat_base + k);
      coeff.push_back(strat_coeff[k]);
    }
    const auto lv_idx = level.indices();
    const auto lv_coeff = level.coefficients();
    for (std::size_t k = 0; k < lv_idx.size(); ++k) {
      idx.push_back(lv_idx[k]);
      coeff.push_back(-lv_coeff[k]);
    }
    const auto sl_idx = slack.indices();
    const auto sl_coeff = slack.coefficients();
    for (std::size_t k = 0; k < sl_idx.size(); ++k) {
      idx.push_back(sl_idx[k]);
      coeff.push_back(sl_coeff[k]);
    }
    const double constant = -level.constant() + slack.constant();
    model_.add_squared_penalty(idx, coeff, constant, penalty);
  };

  if (opts.style == SlackStyle::kAggregate) {
    // Eq. 6 verbatim: Σ_{i,j} m_ij q_j - α + ζ and Σ_{j,i} n_ij p_i - β + η.
    std::vector<double> col_sum_m(m_, 0.0);
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t j = 0; j < m_; ++j) col_sum_m[j] += mm(i, j);
    add_constraint(col_sum_m, n_, m_, *alpha_, zeta_[0], opts.penalty_c);

    std::vector<double> row_sum_n(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i)
      for (std::size_t j = 0; j < m_; ++j) row_sum_n[i] += nn(i, j);
    add_constraint(row_sum_n, 0, n_, *beta_, eta_[0], opts.penalty_d);
  } else {
    // Per-row: (Mq)_i - α + ζ_i = 0  for each row i.
    for (std::size_t i = 0; i < n_; ++i) {
      std::vector<double> row(m_);
      for (std::size_t j = 0; j < m_; ++j) row[j] = mm(i, j);
      add_constraint(row, n_, m_, *alpha_, zeta_[i], opts.penalty_c);
    }
    // (Nᵀp)_j - β + η_j = 0 for each column j.
    for (std::size_t j = 0; j < m_; ++j) {
      std::vector<double> col(n_);
      for (std::size_t i = 0; i < n_; ++i) col[i] = nn(i, j);
      add_constraint(col, 0, n_, *beta_, eta_[j], opts.penalty_d);
    }
  }
}

SQubo::Decoded SQubo::decode(const Bits& x) const {
  Decoded d;
  d.p.assign(n_, 0.0);
  d.q.assign(m_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) d.p[i] = x.at(i) ? 1.0 : 0.0;
  for (std::size_t j = 0; j < m_; ++j) d.q[j] = x.at(n_ + j) ? 1.0 : 0.0;
  d.alpha = alpha_->decode(x);
  d.beta = beta_->decode(x);
  d.valid_strategies = std::abs(la::sum(d.p) - 1.0) < 0.5 &&
                       std::abs(la::sum(d.q) - 1.0) < 0.5;
  return d;
}

double SQubo::original_objective(const Bits& x) const {
  const Decoded d = decode(x);
  if (!d.valid_strategies) return std::numeric_limits<double>::quiet_NaN();
  const la::Vector mq = game_.row_payoffs(d.q);
  const la::Vector ntp = game_.col_payoffs(d.p);
  const double alpha = la::max_element(mq);
  const double beta = la::max_element(ntp);
  return la::dot(d.p, la::add(mq, game_.payoff2().multiply(d.q))) - alpha - beta;
}

}  // namespace cnash::qubo
