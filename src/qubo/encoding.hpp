#pragma once
// Fixed-point binary encodings of bounded real scalars over QUBO bit ranges:
//   value(x) = offset + resolution * Σ_k 2^k x_{base+k}.
// Used for the α, β payoff levels and ζ, η slack variables of the S-QUBO
// formulation (Eq. 6).

#include <cstddef>
#include <vector>

#include "qubo/qubo.hpp"

namespace cnash::qubo {

class ScalarEncoding {
 public:
  /// Encode values in [lo, hi] with `bits` bits; resolution = (hi-lo)/(2^bits-1).
  ScalarEncoding(std::size_t base_index, unsigned bits, double lo, double hi);

  std::size_t base() const { return base_; }
  unsigned bits() const { return bits_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double resolution() const { return resolution_; }

  /// Decode the scalar from a full bit assignment.
  double decode(const Bits& x) const;

  /// The encoding as (indices, coefficients, constant) for squared penalties:
  /// value = constant + Σ coeff_k x_{idx_k}.
  std::vector<std::size_t> indices() const;
  std::vector<double> coefficients() const;
  double constant() const { return lo_; }

  /// Closest representable value to v (for tests).
  double quantize(double v) const;

 private:
  std::size_t base_;
  unsigned bits_;
  double lo_;
  double hi_;
  double resolution_;
};

}  // namespace cnash::qubo
