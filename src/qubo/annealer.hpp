#pragma once
// Classical single-flip Metropolis simulated annealing over QUBO models.
// Serves as the sampling engine of the D-Wave proxies: each "read" is one
// annealing descent from a random initial state.

#include <cstdint>
#include <functional>
#include <vector>

#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace cnash::qubo {

struct AnnealSchedule {
  double t_start = 5.0;
  double t_end = 0.05;
  std::size_t sweeps = 200;  // full passes over all variables
};

struct AnnealResult {
  Bits best_state;
  double best_energy = 0.0;
  std::size_t flips_accepted = 0;
  std::size_t flips_proposed = 0;
};

/// One annealing descent. Temperatures decay geometrically per sweep from
/// t_start to t_end (scaled by the largest |Q| coefficient so schedules are
/// problem-size independent).
AnnealResult anneal(const QuboModel& model, const AnnealSchedule& schedule,
                    util::Rng& rng);

/// `num_reads` independent descents (a "sample set" in annealer terms).
std::vector<AnnealResult> sample(const QuboModel& model,
                                 const AnnealSchedule& schedule,
                                 std::size_t num_reads, util::Rng& rng);

}  // namespace cnash::qubo
