#include "qubo/dwave_proxy.hpp"

#include "simd/simd.hpp"

namespace cnash::qubo {

DWaveConfig dwave_2000q6_config() {
  DWaveConfig c;
  c.name = "D-Wave 2000 Q6 (proxy)";
  // Long, well-converged anneals with low integrated control error; ~300 us
  // per read end-to-end once programming is amortised (see core/timing).
  c.schedule = {/*t_start=*/4.0, /*t_end=*/0.02, /*sweeps=*/400};
  c.coupler_bits = 5;
  c.q_noise_rel = 0.01;
  c.time_per_sample_s = 300e-6;
  return c;
}

DWaveConfig dwave_advantage41_config() {
  DWaveConfig c;
  c.name = "D-Wave Advantage 4.1 (proxy)";
  // Faster pipeline: shorter anneals and a markedly larger per-read control
  // error, which reproduces the lower success rates of Table 1.
  c.schedule = {/*t_start=*/4.0, /*t_end=*/0.05, /*sweeps=*/250};
  c.coupler_bits = 5;
  c.q_noise_rel = 0.06;
  c.time_per_sample_s = 150e-6;
  return c;
}

DWaveProxy::DWaveProxy(const game::BimatrixGame& game, DWaveConfig config)
    : game_(game),
      config_(std::move(config)),
      squbo_(game_, config_.squbo),
      solve_model_(squbo_.model().quantized(config_.coupler_bits)),
      noise_sigma_(config_.q_noise_rel * solve_model_.max_abs_coefficient()) {}

core::SolveSample DWaveProxy::sample_one(util::Rng& rng) const {
  AnnealResult res;
  if (noise_sigma_ > 0.0) {
    // Integrated control errors: every anneal runs a perturbed Hamiltonian.
    // All n + n(n-1)/2 deviates are drawn in one batched pass (linears
    // first, then the upper triangle row by row) instead of one libm
    // Box-Muller call per coefficient.
    QuboModel noisy = solve_model_;
    const std::size_t n = noisy.num_vars();
    std::vector<double> z(n + n * (n - 1) / 2);
    simd::fill_normals(rng, z.data(), z.size());
    std::size_t next = 0;
    for (std::size_t i = 0; i < n; ++i)
      noisy.add_linear(i, noise_sigma_ * z[next++]);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        noisy.add_quadratic(i, j, noise_sigma_ * z[next++]);
    res = anneal(noisy, config_.schedule, rng);
    res.best_energy = solve_model_.energy(res.best_state);  // true energy
  } else {
    res = anneal(solve_model_, config_.schedule, rng);
  }
  const SQubo::Decoded d = squbo_.decode(res.best_state);
  core::SolveSample s;
  s.p = d.p;
  s.q = d.q;
  s.objective = res.best_energy;
  s.valid = d.valid_strategies;
  return s;
}

std::vector<core::SolveSample> DWaveProxy::run(std::size_t num_reads,
                                               util::Rng& rng) const {
  std::vector<core::SolveSample> out;
  out.reserve(num_reads);
  for (std::size_t r = 0; r < num_reads; ++r) out.push_back(sample_one(rng));
  return out;
}

double DWaveProxy::elapsed_seconds(std::size_t num_reads) const {
  return config_.time_per_sample_s * static_cast<double>(num_reads);
}

}  // namespace cnash::qubo
