#include "qubo/annealer.hpp"

#include <cmath>

#include "simd/simd.hpp"

namespace cnash::qubo {

AnnealResult anneal(const QuboModel& model, const AnnealSchedule& schedule,
                    util::Rng& rng) {
  const std::size_t n = model.num_vars();
  Bits x(n);
  for (auto& b : x) b = rng.bernoulli(0.5) ? 1 : 0;

  // Maintain local fields so each flip proposal is O(1) evaluate / O(n) apply.
  // field[i] = Q_ii + 2 Σ_{j != i} Q_ij x_j ; ΔE(flip i) = ±field[i].
  //
  // Built column-wise so each set bit contributes one contiguous SIMD axpy
  // over row j instead of a strided gather: because Q is stored bitwise
  // symmetric (add_quadratic splits every coupling w/2 into both triangles)
  // and set bits are visited in ascending j for every i, this accumulates
  // exactly the same doubles in exactly the same order as the historical
  // row-wise loop — bit-identical fields.
  const la::Matrix& q = model.q();
  const double* qd = q.data().data();
  std::vector<double> field(n);
  for (std::size_t i = 0; i < n; ++i) field[i] = q(i, i);
  for (std::size_t j = 0; j < n; ++j)
    if (x[j]) simd::axpy_skip(field.data(), 2.0, qd + j * n, n, j);

  double energy = model.energy(x);
  AnnealResult res{x, energy, 0, 0};

  const double scale = std::max(model.max_abs_coefficient(), 1e-12);
  const double t0 = schedule.t_start * scale;
  const double t1 = schedule.t_end * scale;
  const std::size_t sweeps = std::max<std::size_t>(schedule.sweeps, 1);
  const double decay =
      (sweeps > 1) ? std::pow(t1 / t0, 1.0 / static_cast<double>(sweeps - 1))
                   : 1.0;

  double temperature = t0;
  for (std::size_t s = 0; s < sweeps; ++s, temperature *= decay) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = rng.uniform_index(n);
      const double delta = x[i] ? -field[i] : field[i];
      ++res.flips_proposed;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        // Apply flip: update state, energy and all fields.
        const double sign = x[i] ? -2.0 : 2.0;  // change of 2*x_i - effect
        x[i] ^= 1u;
        energy += delta;
        ++res.flips_accepted;
        simd::axpy_skip(field.data(), sign, qd + i * n, n, i);
        if (energy < res.best_energy) {
          res.best_energy = energy;
          res.best_state = x;
        }
      }
    }
  }
  return res;
}

std::vector<AnnealResult> sample(const QuboModel& model,
                                 const AnnealSchedule& schedule,
                                 std::size_t num_reads, util::Rng& rng) {
  std::vector<AnnealResult> out;
  out.reserve(num_reads);
  for (std::size_t r = 0; r < num_reads; ++r)
    out.push_back(anneal(model, schedule, rng));
  return out;
}

}  // namespace cnash::qubo
