#include "qubo/encoding.hpp"

#include <cmath>
#include <stdexcept>

namespace cnash::qubo {

ScalarEncoding::ScalarEncoding(std::size_t base_index, unsigned bits, double lo,
                               double hi)
    : base_(base_index), bits_(bits), lo_(lo), hi_(hi) {
  if (bits == 0 || bits > 30)
    throw std::invalid_argument("ScalarEncoding: bits out of range");
  if (!(hi > lo)) throw std::invalid_argument("ScalarEncoding: hi <= lo");
  resolution_ = (hi - lo) / static_cast<double>((1u << bits) - 1);
}

double ScalarEncoding::decode(const Bits& x) const {
  double v = lo_;
  for (unsigned k = 0; k < bits_; ++k)
    if (x.at(base_ + k)) v += resolution_ * static_cast<double>(1u << k);
  return v;
}

std::vector<std::size_t> ScalarEncoding::indices() const {
  std::vector<std::size_t> idx(bits_);
  for (unsigned k = 0; k < bits_; ++k) idx[k] = base_ + k;
  return idx;
}

std::vector<double> ScalarEncoding::coefficients() const {
  std::vector<double> c(bits_);
  for (unsigned k = 0; k < bits_; ++k)
    c[k] = resolution_ * static_cast<double>(1u << k);
  return c;
}

double ScalarEncoding::quantize(double v) const {
  const double clamped = std::min(std::max(v, lo_), hi_);
  const double steps = std::round((clamped - lo_) / resolution_);
  return lo_ + steps * resolution_;
}

}  // namespace cnash::qubo
