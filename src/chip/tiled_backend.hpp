#pragma once
// The "hardware-sa-tiled" solver backend: two-phase SA on the multi-tile
// chip model (chip/tiled_two_phase). Shares the SaPreparedJob unit contract
// with "hardware-sa" — evaluator instance key 2r, SA stream key 2r+1 — so a
// request whose game fits a single tile byte-reproduces the monolithic
// backend's report.

#include <cstdint>
#include <memory>

#include "chip/chip_config.hpp"
#include "chip/tiled_two_phase.hpp"
#include "core/backend.hpp"
#include "core/engine.hpp"
#include "util/fault.hpp"

namespace cnash::chip {

/// Per-run tiled-evaluator instances for the service workers; the keyed
/// device RNG split makes every instance reproducible regardless of which
/// worker creates it (same contract as HardwareEvaluatorFactory).
class TiledEvaluatorFactory final : public core::EvaluatorFactory {
 public:
  /// `fault` (default disabled) is re-keyed per instance — create(key) rolls
  /// tile failures under fault.for_instance(key) — so the same run fails the
  /// same way on every retry/worker, independently of the other runs.
  TiledEvaluatorFactory(game::BimatrixGame game, std::uint32_t intervals,
                        core::TwoPhaseConfig config, ChipConfig chip,
                        util::Rng device_rng, util::FaultPlan fault = {});
  const game::BimatrixGame& game() const override { return game_; }
  std::uint32_t intervals() const { return intervals_; }
  const ChipConfig& chip() const { return chip_; }
  std::unique_ptr<core::ObjectiveEvaluator> create(
      std::uint64_t key) const override;
  /// Typed variant for tile-grid / WTA / ADC introspection.
  std::unique_ptr<TiledTwoPhaseEvaluator> create_tiled(std::uint64_t key) const;

 private:
  game::BimatrixGame game_;
  std::uint32_t intervals_;
  core::TwoPhaseConfig config_;
  ChipConfig chip_;
  util::Rng device_rng_;
  util::FaultPlan fault_;
};

/// The registry entry ("hardware-sa-tiled"); registered by
/// core::SolverRegistry::global().
std::unique_ptr<core::SolverBackend> make_tiled_backend();

}  // namespace cnash::chip
