#pragma once
// chip::TiledTwoPhaseEvaluator — the two-phase MAX-QUBO evaluation (Fig. 6)
// on the multi-tile chip: both logical crossbars (M and Nᵀ) are sharded over
// grids of fixed-capacity tiles (chip/tiled_crossbar), the per-tile outputs
// are merged by an H-tree adder stage, and the merged Phase-1 line currents
// feed the existing WTA trees / ADCs unchanged.
//
// The committed analog state is held PER TILE: the Phase-1 partial line
// currents per tile column and the Phase-2 partial totals per tile, plus the
// aggregated totals the digitisation consumes. The incremental propose/
// commit protocol routes every SA tick move to the affected tile row /
// column only (O(m+n) per move, confined to 1/grid of the cell tables); a
// committed proposal replays the same deltas into the per-tile state, and a
// full re-read every `refresh_interval` commits bounds floating-point drift
// exactly as in the monolithic evaluator.
//
// Readout modes (ChipConfig::readout):
//   * kAnalogHTree  — analog current summation + shared ADC. On a 1×1 grid
//                     this consumes the monolithic evaluator's exact RNG draw
//                     sequence, so results are byte-identical when the whole
//                     game fits one tile.
//   * kPerTileAdc   — every tile output digitised by its own ADC, digital
//                     aggregation and digital max. Per-tile quantisation
//                     breaks delta linearity, so incremental() is disabled.
//   * kIdealDigital — exact integer conducting-unit counts, WTA/ADC
//                     bypassed; with integer payoffs and power-of-two I the
//                     objective is bit-identical to core::ExactMaxQubo.

#include <cstdint>
#include <memory>
#include <vector>

#include "chip/chip_config.hpp"
#include "chip/tiled_crossbar.hpp"
#include "core/maxqubo.hpp"
#include "core/two_phase.hpp"
#include "game/game.hpp"
#include "util/rng.hpp"
#include "wta/wta_tree.hpp"
#include "xbar/adc.hpp"

namespace cnash::chip {

class TiledTwoPhaseEvaluator final : public core::ObjectiveEvaluator,
                                     public core::IncrementalEvaluator {
 public:
  /// Programs both tile grids from the game. `config` carries the array /
  /// WTA / ADC / value-coding knobs shared with the monolithic evaluator;
  /// `chip` the tile dimensions and aggregation model.
  ///
  /// `fault` (optional) is consumed during construction only: tile-failure
  /// rolls use scope base 0 for the M grid and kNtFaultScope for the Nᵀ grid.
  /// When the program-time read-back flags any tile on either grid the
  /// constructor throws ChipFault (the "resilient" backend's retry trigger).
  /// A null/disabled plan changes nothing — no extra RNG draws.
  TiledTwoPhaseEvaluator(game::BimatrixGame game, std::uint32_t intervals,
                         const core::TwoPhaseConfig& config,
                         const ChipConfig& chip, util::Rng rng,
                         const util::FaultPlan* fault = nullptr);

  /// Fault-roll index base of the Nᵀ grid's tiles (M grid starts at 0).
  static constexpr std::uint64_t kNtFaultScope = std::uint64_t{1} << 32;

  double evaluate(const game::QuantizedProfile& profile) override;
  const game::BimatrixGame& game() const override { return game_; }
  core::IncrementalEvaluator* incremental() override {
    return (config_.incremental && chip_.readout != ChipReadout::kPerTileAdc)
               ? this
               : nullptr;
  }

  // IncrementalEvaluator protocol: O(m+n) per tick move, same noise/ADC
  // semantics and RNG draw sequence per scoring as evaluate().
  void reset(const game::QuantizedProfile& profile) override;
  double propose(const core::TickMove* moves, std::size_t count) override;
  void commit() override;

  /// Full re-reads performed by the incremental path since reset().
  std::size_t refresh_count() const { return refresh_count_; }

  /// Phase observables of the last evaluate()/propose(), in payoff units.
  struct PhaseReadout {
    double max_mq;
    double max_ntp;
    double vmv_m;
    double vmv_n;
  };
  const PhaseReadout& last_readout() const { return last_; }

  std::uint32_t intervals() const { return intervals_; }
  const ChipConfig& chip_config() const { return chip_; }
  const TiledCrossbar& chip_m() const { return *chip_m_; }
  const TiledCrossbar& chip_nt() const { return *chip_nt_; }
  const wta::WtaTree& wta_rows() const { return *wta_rows_; }
  const wta::WtaTree& wta_cols() const { return *wta_cols_; }
  const xbar::Adc& adc() const { return *adc_m_; }

  /// Committed per-tile Phase-1 partials / Phase-2 partial grid of the M
  /// (resp. Nᵀ) array — introspection for tests and per-tile energy
  /// accounting. Valid after reset().
  const std::vector<double>& committed_mv_partials_m() const {
    return committed_.m.mv_partial;
  }
  const std::vector<double>& committed_vmv_partials_m() const {
    return committed_.m.vmv_partial;
  }

 private:
  /// Per-array analog + digital observables. Partials are maintained in the
  /// committed state only; proposals work on the aggregated totals (the
  /// digitisation input) and replay into the partials on commit.
  struct ArrayState {
    std::vector<double> mv_partial;   // grid_cols × n (analog readouts)
    std::vector<double> mv_total;     // n aggregated line currents
    std::vector<double> vmv_partial;  // grid_rows × grid_cols
    double vmv_total = 0.0;
    std::vector<std::int64_t> mv_units;  // n (kIdealDigital)
    std::int64_t vmv_units = 0;
  };
  struct State {
    ArrayState m;   // the M array: rows = player-1 actions
    ArrayState nt;  // the Nᵀ array: rows = player-2 actions
  };

  void size_state(State& st) const;
  /// Full tile-grid read of one profile into `st` (partials + totals).
  void full_read(State& st, const std::vector<std::uint32_t>& p_counts,
                 const std::vector<std::uint32_t>& q_counts) const;
  /// One tick move applied to `st` and the given counts. `with_partials`
  /// additionally updates the per-tile partial buffers (commit path).
  void apply_move(State& st, std::vector<std::uint32_t>& p_counts,
                  std::vector<std::uint32_t>& q_counts,
                  const core::TickMove& mv, bool with_partials);
  /// Aggregation + WTA + noise + ADC on `st`; updates last_ and returns f.
  double digitize(const State& st);
  double digitize_analog(const State& st);
  double digitize_per_tile_adc(const State& st);
  double digitize_digital(const State& st);

  game::BimatrixGame game_;
  std::uint32_t intervals_;
  core::TwoPhaseConfig config_;
  ChipConfig chip_;
  util::Rng rng_;
  double value_scale_;
  std::unique_ptr<TiledCrossbar> chip_m_;
  std::unique_ptr<TiledCrossbar> chip_nt_;
  std::unique_ptr<wta::WtaTree> wta_rows_;
  std::unique_ptr<wta::WtaTree> wta_cols_;
  std::unique_ptr<xbar::Adc> adc_m_;
  std::unique_ptr<xbar::Adc> adc_nt_;
  PhaseReadout last_{};

  // H-tree aggregation noise (per aggregated output per read): sigma already
  // scaled by sqrt(stage depth); 0 when the grid needs no aggregation.
  double agg_sigma_mv_m_ = 0.0, agg_sigma_mv_nt_ = 0.0;
  double agg_sigma_vmv_m_ = 0.0, agg_sigma_vmv_nt_ = 0.0;

  // Incremental state (see class comment).
  std::vector<std::uint32_t> p_counts_, q_counts_;    // committed
  std::vector<std::uint32_t> p_scratch_, q_scratch_;  // proposal
  State committed_, scratch_;
  State eval_state_;  // evaluate()'s workspace, independent of proposals
  std::vector<core::TickMove> pending_;  // outstanding proposal's moves
  std::vector<double> wta_scratch_, agg_scratch_;
  bool primed_ = false;
  bool proposal_outstanding_ = false;
  std::size_t commits_since_refresh_ = 0;
  std::size_t refresh_count_ = 0;
};

}  // namespace cnash::chip
