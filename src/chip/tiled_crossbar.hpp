#pragma once
// chip::TiledCrossbar — one logical crossbar sharded over a grid of
// fixed-capacity physical tiles.
//
// Each tile is an independent xbar::ProgrammedCrossbar programmed from a
// contiguous element-block range of the logical mapping, with its own
// one-time-sampled device variability and faults (tiles are programmed in
// grid row-major order from one RNG, so a 1×1 grid consumes exactly the
// draw sequence of the monolithic array). Reads are tile-local and returned
// as partials:
//
//   * Phase-1 MV reads produce, per tile COLUMN, the partial source-line
//     currents of all n logical rows (each tile contributes its own row
//     range); the H-tree adder stage upstream sums the grid_cols partials
//     per row.
//   * Phase-2 VMV reads produce one partial total per tile; the H-tree sums
//     the whole grid.
//
// Delta kernels route a single activation tick to the affected tile row /
// column only: a column-group tick touches one tile column (O(n) work over
// its row slices), a word-line tick touches one tile row (O(m) work over its
// column slices) — the same asymptotics as the monolithic kernels, with the
// work confined to 1/grid of the cell tables.
//
// A separate set of *digital* kernels computes the exact conducting-unit
// counts (64-bit integers) the same reads would observe on an ideal
// zero-leakage array — the chip's validation readout. All activation inputs
// are GLOBAL count vectors; tiles slice them in place via the raw-pointer
// crossbar kernels (no per-call copies).

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "chip/tile_partition.hpp"
#include "la/matrix.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "xbar/array.hpp"
#include "xbar/mapping.hpp"

namespace cnash::chip {

/// A chip declared unhealthy at program time: the post-programming read-back
/// found at least one dead tile. Thrown from evaluator construction so the
/// "resilient" backend can retry the unit on the exact software path.
class ChipFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TiledCrossbar {
 public:
  /// `payoff` must be a non-negative integer matrix (same contract as
  /// CrossbarMapping). `cells_per_element` 0 derives t from the max element;
  /// every tile is forced to the global t so block geometry is uniform.
  ///
  /// `fault` (optional) injects dead tiles at program time: tile t (grid
  /// row-major) is killed when fault->roll(kTile, fault_scope + t) fires. A
  /// dead tile drives zero current on every analog read. The constructor
  /// always runs a full-activation read-back per tile afterwards, comparing
  /// the measured response to the ideal conducting-unit expectation from the
  /// logical mapping: tiles responding below half nominal land in
  /// failed_tiles(). The read-back draws no RNG, so a null/disabled plan
  /// leaves the programmed array byte-identical to one built without it.
  TiledCrossbar(const la::Matrix& payoff, std::uint32_t intervals,
                std::uint32_t cells_per_element, std::uint32_t levels_per_cell,
                const xbar::ArrayConfig& config, std::size_t tile_rows,
                std::size_t tile_cols, util::Rng& rng,
                const util::FaultPlan* fault = nullptr,
                std::uint64_t fault_scope = 0);

  /// Grid row-major indices of tiles whose program-time read-back failed.
  const std::vector<std::size_t>& failed_tiles() const { return failed_; }
  bool tile_dead(std::size_t tr, std::size_t tc) const {
    return !dead_.empty() && dead_[tr * part_.grid_cols() + tc] != 0;
  }

  /// The logical (whole-matrix) mapping.
  const xbar::CrossbarMapping& mapping() const { return global_; }
  const TilePartition& partition() const { return part_; }
  const xbar::ProgrammedCrossbar& tile(std::size_t tr, std::size_t tc) const {
    return tiles_.at(tr * part_.grid_cols() + tc);
  }

  std::size_t n() const { return global_.geometry().n; }
  std::size_t m() const { return global_.geometry().m; }

  // ---- Analog tile reads ----------------------------------------------------

  /// Per-tile-column partial MV read (all word lines active):
  /// partials[tc * n + i] = row i's current contributed by tile column tc.
  /// `groups_active[0..m)` are the global column-group counts.
  void read_mv_partials(const std::uint32_t* groups_active,
                        double* partials) const;

  /// Routes a column-group tick (j: g_old -> g_new) to tile column
  /// tile_of_col(j): adds the per-row current deltas into that column's
  /// slice of `partials`. O(n).
  void mv_group_delta(std::size_t j, std::uint32_t g_old, std::uint32_t g_new,
                      double* partials) const;

  /// Same deltas applied to the AGGREGATED line-current vector `total[0..n)`
  /// (the H-tree output) instead of a tile-column slice. O(n).
  void mv_group_delta_total(std::size_t j, std::uint32_t g_old,
                            std::uint32_t g_new, double* total) const;

  /// Per-tile partial VMV read: vmv[tr * grid_cols + tc].
  void read_vmv_partials(const std::uint32_t* rows_active,
                         const std::uint32_t* groups_active,
                         double* vmv) const;

  /// VMV change of a word-line tick (row i: r_old -> r_new) under the global
  /// `groups_active`. Touches tile row tile_of_row(i) only; when `vmv_cells`
  /// is non-null the per-tile deltas are also added into the partial grid.
  /// Returns the summed delta. O(m).
  double vmv_row_delta(std::size_t i, std::uint32_t r_old, std::uint32_t r_new,
                       const std::uint32_t* groups_active,
                       double* vmv_cells) const;

  /// VMV change of a column-group tick under the global `rows_active`;
  /// touches tile column tile_of_col(j) only. O(n).
  double vmv_group_delta(std::size_t j, std::uint32_t g_old,
                         std::uint32_t g_new, const std::uint32_t* rows_active,
                         double* vmv_cells) const;

  // ---- Exact digital readout (conducting units, zero leakage) ---------------
  //
  // One unit = one fully-ON cell equivalent; block (i,j) at r active rows and
  // g active groups holds exactly r*g*element(i,j) units, so a value is
  // units / I² — exact integer arithmetic, the bit-exact reference for the
  // noise-off chip.

  /// units[i] = I * sum_j groups_active[j] * element(i, j)   (all rows on).
  void digital_mv_units(const std::uint32_t* groups_active,
                        std::int64_t* units) const;
  void digital_mv_group_delta(std::size_t j, std::uint32_t g_old,
                              std::uint32_t g_new, std::int64_t* units) const;
  std::int64_t digital_vmv_units(const std::uint32_t* rows_active,
                                 const std::uint32_t* groups_active) const;
  std::int64_t digital_vmv_row_delta(std::size_t i, std::uint32_t r_old,
                                     std::uint32_t r_new,
                                     const std::uint32_t* groups_active) const;
  std::int64_t digital_vmv_group_delta(std::size_t j, std::uint32_t g_old,
                                       std::uint32_t g_new,
                                       const std::uint32_t* rows_active) const;

  // ---- Shared conversions ---------------------------------------------------

  double nominal_on_current() const { return tiles_.front().nominal_on_current(); }
  double unit_current() const { return tiles_.front().unit_current(); }
  double current_to_value(double current) const {
    return tiles_.front().current_to_value(current);
  }
  std::uint32_t max_element() const { return max_element_; }

 private:
  void read_back_check();

  xbar::CrossbarMapping global_;
  TilePartition part_;
  std::vector<xbar::ProgrammedCrossbar> tiles_;  // grid row-major
  std::uint32_t max_element_ = 0;
  std::vector<std::uint8_t> dead_;     // empty when no faults were injected
  std::vector<std::size_t> failed_;    // read-back failures, grid row-major
};

}  // namespace cnash::chip
