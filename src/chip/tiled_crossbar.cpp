#include "chip/tiled_crossbar.hpp"

#include <stdexcept>

namespace cnash::chip {

TiledCrossbar::TiledCrossbar(const la::Matrix& payoff, std::uint32_t intervals,
                             std::uint32_t cells_per_element,
                             std::uint32_t levels_per_cell,
                             const xbar::ArrayConfig& config,
                             std::size_t tile_rows, std::size_t tile_cols,
                             util::Rng& rng)
    : global_(payoff, intervals, cells_per_element, levels_per_cell),
      part_(global_.geometry(), tile_rows, tile_cols) {
  const auto& g = global_.geometry();
  for (std::size_t i = 0; i < g.n; ++i)
    for (std::size_t j = 0; j < g.m; ++j)
      max_element_ = std::max(max_element_, global_.element(i, j));

  // Program the grid row-major; every tile maps its element sub-range with
  // the GLOBAL cells-per-element so block geometry is uniform across tiles
  // (and a 1×1 grid is byte-for-byte the monolithic array).
  tiles_.reserve(part_.num_tiles());
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
      const TileRange r = part_.range(tr, tc);
      la::Matrix sub(r.rows(), r.cols());
      for (std::size_t i = r.i0; i < r.i1; ++i)
        for (std::size_t j = r.j0; j < r.j1; ++j)
          sub(i - r.i0, j - r.j0) = payoff(i, j);
      xbar::CrossbarMapping map(sub, intervals, g.cells_per_element,
                                levels_per_cell);
      tiles_.emplace_back(std::move(map), config, rng);
    }
  }
}

void TiledCrossbar::read_mv_partials(const std::uint32_t* groups_active,
                                     double* partials) const {
  const std::size_t rows = n();
  for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
    double* col = partials + tc * rows;
    for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
      const TileRange r = part_.range(tr, tc);
      tile(tr, tc).read_mv_into(groups_active + r.j0, col + r.i0);
    }
  }
}

void TiledCrossbar::mv_group_delta(std::size_t j, std::uint32_t g_old,
                                   std::uint32_t g_new,
                                   double* partials) const {
  // The affected tile column's slice is just the aggregate kernel rebased.
  mv_group_delta_total(j, g_old, g_new, partials + part_.tile_of_col(j) * n());
}

void TiledCrossbar::mv_group_delta_total(std::size_t j, std::uint32_t g_old,
                                         std::uint32_t g_new,
                                         double* total) const {
  const std::size_t tc = part_.tile_of_col(j);
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    const TileRange r = part_.range(tr, tc);
    tile(tr, tc).mv_group_delta(j - r.j0, g_old, g_new, total + r.i0);
  }
}

void TiledCrossbar::read_vmv_partials(const std::uint32_t* rows_active,
                                      const std::uint32_t* groups_active,
                                      double* vmv) const {
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr)
    for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
      const TileRange r = part_.range(tr, tc);
      vmv[tr * part_.grid_cols() + tc] =
          tile(tr, tc).read_vmv(rows_active + r.i0, groups_active + r.j0);
    }
}

double TiledCrossbar::vmv_row_delta(std::size_t i, std::uint32_t r_old,
                                    std::uint32_t r_new,
                                    const std::uint32_t* groups_active,
                                    double* vmv_cells) const {
  const std::size_t tr = part_.tile_of_row(i);
  double total = 0.0;
  for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
    const TileRange r = part_.range(tr, tc);
    const double d = tile(tr, tc).vmv_row_delta(i - r.i0, r_old, r_new,
                                                groups_active + r.j0);
    if (vmv_cells) vmv_cells[tr * part_.grid_cols() + tc] += d;
    total += d;
  }
  return total;
}

double TiledCrossbar::vmv_group_delta(std::size_t j, std::uint32_t g_old,
                                      std::uint32_t g_new,
                                      const std::uint32_t* rows_active,
                                      double* vmv_cells) const {
  const std::size_t tc = part_.tile_of_col(j);
  double total = 0.0;
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    const TileRange r = part_.range(tr, tc);
    const double d = tile(tr, tc).vmv_group_delta(j - r.j0, g_old, g_new,
                                                  rows_active + r.i0);
    if (vmv_cells) vmv_cells[tr * part_.grid_cols() + tc] += d;
    total += d;
  }
  return total;
}

// ---- Digital readout --------------------------------------------------------

void TiledCrossbar::digital_mv_units(const std::uint32_t* groups_active,
                                     std::int64_t* units) const {
  const auto& g = global_.geometry();
  const std::int64_t intervals = g.intervals;
  for (std::size_t i = 0; i < g.n; ++i) {
    std::int64_t row = 0;
    for (std::size_t j = 0; j < g.m; ++j)
      row += static_cast<std::int64_t>(groups_active[j]) * global_.element(i, j);
    units[i] = intervals * row;
  }
}

void TiledCrossbar::digital_mv_group_delta(std::size_t j, std::uint32_t g_old,
                                           std::uint32_t g_new,
                                           std::int64_t* units) const {
  const auto& g = global_.geometry();
  const std::int64_t step = static_cast<std::int64_t>(g.intervals) *
                            (static_cast<std::int64_t>(g_new) -
                             static_cast<std::int64_t>(g_old));
  for (std::size_t i = 0; i < g.n; ++i)
    units[i] += step * global_.element(i, j);
}

std::int64_t TiledCrossbar::digital_vmv_units(
    const std::uint32_t* rows_active, const std::uint32_t* groups_active) const {
  const auto& g = global_.geometry();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < g.n; ++i) {
    std::int64_t row = 0;
    for (std::size_t j = 0; j < g.m; ++j)
      row += static_cast<std::int64_t>(groups_active[j]) * global_.element(i, j);
    total += static_cast<std::int64_t>(rows_active[i]) * row;
  }
  return total;
}

std::int64_t TiledCrossbar::digital_vmv_row_delta(
    std::size_t i, std::uint32_t r_old, std::uint32_t r_new,
    const std::uint32_t* groups_active) const {
  const auto& g = global_.geometry();
  std::int64_t row = 0;
  for (std::size_t j = 0; j < g.m; ++j)
    row += static_cast<std::int64_t>(groups_active[j]) * global_.element(i, j);
  return (static_cast<std::int64_t>(r_new) - static_cast<std::int64_t>(r_old)) *
         row;
}

std::int64_t TiledCrossbar::digital_vmv_group_delta(
    std::size_t j, std::uint32_t g_old, std::uint32_t g_new,
    const std::uint32_t* rows_active) const {
  const auto& g = global_.geometry();
  std::int64_t col = 0;
  for (std::size_t i = 0; i < g.n; ++i)
    col += static_cast<std::int64_t>(rows_active[i]) * global_.element(i, j);
  return (static_cast<std::int64_t>(g_new) - static_cast<std::int64_t>(g_old)) *
         col;
}

}  // namespace cnash::chip
