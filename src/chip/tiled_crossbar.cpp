#include "chip/tiled_crossbar.hpp"

#include <algorithm>
#include <stdexcept>

namespace cnash::chip {

TiledCrossbar::TiledCrossbar(const la::Matrix& payoff, std::uint32_t intervals,
                             std::uint32_t cells_per_element,
                             std::uint32_t levels_per_cell,
                             const xbar::ArrayConfig& config,
                             std::size_t tile_rows, std::size_t tile_cols,
                             util::Rng& rng, const util::FaultPlan* fault,
                             std::uint64_t fault_scope)
    : global_(payoff, intervals, cells_per_element, levels_per_cell),
      part_(global_.geometry(), tile_rows, tile_cols) {
  const auto& g = global_.geometry();
  for (std::size_t i = 0; i < g.n; ++i)
    for (std::size_t j = 0; j < g.m; ++j)
      max_element_ = std::max(max_element_, global_.element(i, j));

  // Program the grid row-major; every tile maps its element sub-range with
  // the GLOBAL cells-per-element so block geometry is uniform across tiles
  // (and a 1×1 grid is byte-for-byte the monolithic array).
  tiles_.reserve(part_.num_tiles());
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
      const TileRange r = part_.range(tr, tc);
      la::Matrix sub(r.rows(), r.cols());
      for (std::size_t i = r.i0; i < r.i1; ++i)
        for (std::size_t j = r.j0; j < r.j1; ++j)
          sub(i - r.i0, j - r.j0) = payoff(i, j);
      xbar::CrossbarMapping map(sub, intervals, g.cells_per_element,
                                levels_per_cell);
      tiles_.emplace_back(std::move(map), config, rng);
    }
  }

  // Inject dead tiles AFTER programming: every tile consumed its full device
  // draw sequence above, so killing one never shifts another tile's streams
  // (or any stream when the plan is disabled).
  if (fault && fault->tile_failure_rate > 0.0) {
    dead_.assign(part_.num_tiles(), 0);
    for (std::size_t t = 0; t < part_.num_tiles(); ++t)
      if (fault->roll(util::FaultPlan::Scope::kTile, fault_scope + t,
                      fault->tile_failure_rate))
        dead_[t] = 1;
  }
  read_back_check();
}

void TiledCrossbar::read_back_check() {
  // Program-time health verification: one full-activation MV read per tile,
  // compared against the ideal conducting-unit expectation derived from the
  // logical mapping (the digital readout's reference). Healthy tiles sit
  // near nominal (programming variability is zero-mean and per-cell stuck
  // faults are sparse); a dead tile reads zero, so a half-nominal threshold
  // separates the two without flagging ordinary device variation. No RNG is
  // drawn — reads on programmed conductances are deterministic.
  const double unit = unit_current();
  const std::int64_t intervals = global_.geometry().intervals;
  std::vector<std::uint32_t> full;
  std::vector<double> row_currents;
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
      const TileRange r = part_.range(tr, tc);
      std::int64_t expected_units = 0;
      for (std::size_t i = r.i0; i < r.i1; ++i)
        for (std::size_t j = r.j0; j < r.j1; ++j)
          expected_units += global_.element(i, j);
      // Full activation: all I word lines and all I group lines of every
      // block, so block (i,j) contributes I² · element(i,j) units.
      expected_units *= intervals * intervals;
      if (expected_units == 0) continue;  // an all-zero tile has no signature

      double measured = 0.0;
      if (!tile_dead(tr, tc)) {
        full.assign(r.cols(), static_cast<std::uint32_t>(intervals));
        row_currents.assign(r.rows(), 0.0);
        tile(tr, tc).read_mv_into(full.data(), row_currents.data());
        for (const double c : row_currents) measured += c;
      }
      const double expected = static_cast<double>(expected_units) * unit;
      if (measured < 0.5 * expected)
        failed_.push_back(tr * part_.grid_cols() + tc);
    }
  }
}

void TiledCrossbar::read_mv_partials(const std::uint32_t* groups_active,
                                     double* partials) const {
  const std::size_t rows = n();
  for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
    double* col = partials + tc * rows;
    for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
      const TileRange r = part_.range(tr, tc);
      if (tile_dead(tr, tc)) {
        std::fill(col + r.i0, col + r.i1, 0.0);
        continue;
      }
      tile(tr, tc).read_mv_into(groups_active + r.j0, col + r.i0);
    }
  }
}

void TiledCrossbar::mv_group_delta(std::size_t j, std::uint32_t g_old,
                                   std::uint32_t g_new,
                                   double* partials) const {
  // The affected tile column's slice is just the aggregate kernel rebased.
  mv_group_delta_total(j, g_old, g_new, partials + part_.tile_of_col(j) * n());
}

void TiledCrossbar::mv_group_delta_total(std::size_t j, std::uint32_t g_old,
                                         std::uint32_t g_new,
                                         double* total) const {
  const std::size_t tc = part_.tile_of_col(j);
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    if (tile_dead(tr, tc)) continue;
    const TileRange r = part_.range(tr, tc);
    tile(tr, tc).mv_group_delta(j - r.j0, g_old, g_new, total + r.i0);
  }
}

void TiledCrossbar::read_vmv_partials(const std::uint32_t* rows_active,
                                      const std::uint32_t* groups_active,
                                      double* vmv) const {
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr)
    for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
      if (tile_dead(tr, tc)) {
        vmv[tr * part_.grid_cols() + tc] = 0.0;
        continue;
      }
      const TileRange r = part_.range(tr, tc);
      vmv[tr * part_.grid_cols() + tc] =
          tile(tr, tc).read_vmv(rows_active + r.i0, groups_active + r.j0);
    }
}

double TiledCrossbar::vmv_row_delta(std::size_t i, std::uint32_t r_old,
                                    std::uint32_t r_new,
                                    const std::uint32_t* groups_active,
                                    double* vmv_cells) const {
  const std::size_t tr = part_.tile_of_row(i);
  double total = 0.0;
  for (std::size_t tc = 0; tc < part_.grid_cols(); ++tc) {
    if (tile_dead(tr, tc)) continue;
    const TileRange r = part_.range(tr, tc);
    const double d = tile(tr, tc).vmv_row_delta(i - r.i0, r_old, r_new,
                                                groups_active + r.j0);
    if (vmv_cells) vmv_cells[tr * part_.grid_cols() + tc] += d;
    total += d;
  }
  return total;
}

double TiledCrossbar::vmv_group_delta(std::size_t j, std::uint32_t g_old,
                                      std::uint32_t g_new,
                                      const std::uint32_t* rows_active,
                                      double* vmv_cells) const {
  const std::size_t tc = part_.tile_of_col(j);
  double total = 0.0;
  for (std::size_t tr = 0; tr < part_.grid_rows(); ++tr) {
    if (tile_dead(tr, tc)) continue;
    const TileRange r = part_.range(tr, tc);
    const double d = tile(tr, tc).vmv_group_delta(j - r.j0, g_old, g_new,
                                                  rows_active + r.i0);
    if (vmv_cells) vmv_cells[tr * part_.grid_cols() + tc] += d;
    total += d;
  }
  return total;
}

// ---- Digital readout --------------------------------------------------------

void TiledCrossbar::digital_mv_units(const std::uint32_t* groups_active,
                                     std::int64_t* units) const {
  const auto& g = global_.geometry();
  const std::int64_t intervals = g.intervals;
  for (std::size_t i = 0; i < g.n; ++i) {
    std::int64_t row = 0;
    for (std::size_t j = 0; j < g.m; ++j)
      row += static_cast<std::int64_t>(groups_active[j]) * global_.element(i, j);
    units[i] = intervals * row;
  }
}

void TiledCrossbar::digital_mv_group_delta(std::size_t j, std::uint32_t g_old,
                                           std::uint32_t g_new,
                                           std::int64_t* units) const {
  const auto& g = global_.geometry();
  const std::int64_t step = static_cast<std::int64_t>(g.intervals) *
                            (static_cast<std::int64_t>(g_new) -
                             static_cast<std::int64_t>(g_old));
  for (std::size_t i = 0; i < g.n; ++i)
    units[i] += step * global_.element(i, j);
}

std::int64_t TiledCrossbar::digital_vmv_units(
    const std::uint32_t* rows_active, const std::uint32_t* groups_active) const {
  const auto& g = global_.geometry();
  std::int64_t total = 0;
  for (std::size_t i = 0; i < g.n; ++i) {
    std::int64_t row = 0;
    for (std::size_t j = 0; j < g.m; ++j)
      row += static_cast<std::int64_t>(groups_active[j]) * global_.element(i, j);
    total += static_cast<std::int64_t>(rows_active[i]) * row;
  }
  return total;
}

std::int64_t TiledCrossbar::digital_vmv_row_delta(
    std::size_t i, std::uint32_t r_old, std::uint32_t r_new,
    const std::uint32_t* groups_active) const {
  const auto& g = global_.geometry();
  std::int64_t row = 0;
  for (std::size_t j = 0; j < g.m; ++j)
    row += static_cast<std::int64_t>(groups_active[j]) * global_.element(i, j);
  return (static_cast<std::int64_t>(r_new) - static_cast<std::int64_t>(r_old)) *
         row;
}

std::int64_t TiledCrossbar::digital_vmv_group_delta(
    std::size_t j, std::uint32_t g_old, std::uint32_t g_new,
    const std::uint32_t* rows_active) const {
  const auto& g = global_.geometry();
  std::int64_t col = 0;
  for (std::size_t i = 0; i < g.n; ++i)
    col += static_cast<std::int64_t>(rows_active[i]) * global_.element(i, j);
  return (static_cast<std::int64_t>(g_new) - static_cast<std::int64_t>(g_old)) *
         col;
}

}  // namespace cnash::chip
