#pragma once
// Configuration of the multi-tile chip model: a large logical bi-crossbar is
// sharded across a grid of fixed-capacity physical crossbar tiles, with the
// per-tile outputs merged by an H-tree adder stage before the WTA / ADC
// periphery. This is how real CIM macros scale past a single array's
// word/bit-line budget: many small arrays (short lines, bounded parasitics,
// bounded programming time) plus a digital/analog aggregation tree.

#include <cstddef>

namespace cnash::chip {

/// How tile outputs are merged and digitised.
enum class ChipReadout {
  /// Analog H-tree current summation, then the shared per-array ADC — the
  /// default, and the mode that degenerates to the monolithic datapath on a
  /// 1×1 grid (byte-identical results when the whole game fits one tile).
  kAnalogHTree,
  /// Every tile output is digitised by its own ADC and the codes are summed
  /// digitally in the H-tree. Robust to aggregation-wire noise but pays one
  /// quantisation per tile; forces full (non-incremental) evaluation because
  /// per-tile quantisation breaks delta linearity.
  kPerTileAdc,
  /// Behavioural validation mode: noiseless integer-unit digital readout
  /// (exact conducting-cell counts aggregated in 64-bit integers, WTA/ADC
  /// bypassed). With integer payoffs and a power-of-two interval count the
  /// objective is bit-identical to the exact software evaluator.
  kIdealDigital,
};

struct ChipConfig {
  /// Physical word lines per tile. A tile must hold at least one element
  /// block row, i.e. tile_rows >= I.
  std::size_t tile_rows = 64;
  /// Physical bit/data lines per tile. A tile must hold at least one element
  /// block column, i.e. tile_cols >= I * cells_per_element.
  std::size_t tile_cols = 1024;
  ChipReadout readout = ChipReadout::kAnalogHTree;
  /// Input-referred Gaussian noise of one H-tree aggregation, relative to the
  /// shared ADC full scale, applied once per aggregated output per read and
  /// scaled by sqrt(tree depth). 0 = ideal adders (and no RNG draws, so a
  /// 1×1 grid reproduces the monolithic draw sequence exactly).
  double aggregation_noise_rel = 0.0;
};

}  // namespace cnash::chip
