#include "chip/tiled_two_phase.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/bits.hpp"

namespace cnash::chip {

TiledTwoPhaseEvaluator::TiledTwoPhaseEvaluator(game::BimatrixGame game,
                                               std::uint32_t intervals,
                                               const core::TwoPhaseConfig& config,
                                               const ChipConfig& chip,
                                               util::Rng rng,
                                               const util::FaultPlan* fault)
    : game_(std::move(game)),
      intervals_(intervals),
      config_(config),
      chip_(chip),
      rng_(rng),
      value_scale_(config.value_scale) {
  if (intervals_ == 0)
    throw std::invalid_argument("TiledTwoPhaseEvaluator: I == 0");
  if (value_scale_ <= 0.0)
    throw std::invalid_argument("TiledTwoPhaseEvaluator: value_scale <= 0");
  if (config_.refresh_interval == 0)
    throw std::invalid_argument("TiledTwoPhaseEvaluator: refresh_interval == 0");
  if (chip_.aggregation_noise_rel < 0.0)
    throw std::invalid_argument(
        "TiledTwoPhaseEvaluator: aggregation_noise_rel < 0");

  // Same shift/scale/coding pipeline — and the same RNG split order — as the
  // monolithic TwoPhaseEvaluator, so a 1×1 grid replays its exact streams.
  const game::BimatrixGame shifted = game_.shifted_non_negative(0.0);
  const la::Matrix m_scaled = shifted.payoff1() * value_scale_;
  const la::Matrix nt_scaled = shifted.payoff2().transposed() * value_scale_;

  util::Rng rng_m = rng_.split();
  util::Rng rng_nt = rng_.split();
  chip_m_ = std::make_unique<TiledCrossbar>(
      m_scaled, intervals_, config_.cells_per_element, config_.levels_per_cell,
      config_.array, chip_.tile_rows, chip_.tile_cols, rng_m, fault,
      /*fault_scope=*/0);
  chip_nt_ = std::make_unique<TiledCrossbar>(
      nt_scaled, intervals_, config_.cells_per_element, config_.levels_per_cell,
      config_.array, chip_.tile_rows, chip_.tile_cols, rng_nt, fault,
      kNtFaultScope);
  if (!chip_m_->failed_tiles().empty() || !chip_nt_->failed_tiles().empty())
    throw ChipFault("TiledTwoPhaseEvaluator: program-time read-back failed (" +
                    std::to_string(chip_m_->failed_tiles().size()) +
                    " M tile(s), " +
                    std::to_string(chip_nt_->failed_tiles().size()) +
                    " Nt tile(s) below half nominal)");

  util::Rng rng_wta_rows = rng_.split();
  util::Rng rng_wta_cols = rng_.split();
  wta_rows_ = std::make_unique<wta::WtaTree>(game_.num_actions1(), config_.wta,
                                             &rng_wta_rows);
  wta_cols_ = std::make_unique<wta::WtaTree>(game_.num_actions2(), config_.wta,
                                             &rng_wta_cols);

  const double intervals_sq =
      static_cast<double>(intervals_) * static_cast<double>(intervals_);
  auto make_adc = [&](const TiledCrossbar& xb) {
    xbar::AdcConfig ac;
    ac.bits = config_.adc_bits;
    ac.full_scale_current = 1.2 * intervals_sq * xb.unit_current() *
                            (static_cast<double>(xb.max_element()) + 1.0);
    ac.noise_sigma = config_.adc_noise_rel * ac.full_scale_current;
    return std::make_unique<xbar::Adc>(ac);
  };
  adc_m_ = make_adc(*chip_m_);
  adc_nt_ = make_adc(*chip_nt_);

  // Aggregation noise per merged output: one equivalent Gaussian scaled by
  // sqrt(stage depth). Degenerate fan-ins (1×1 grid / single tile column)
  // have depth 0 and draw nothing.
  auto agg_sigma = [&](const xbar::Adc& adc, std::size_t fanin) {
    const std::size_t depth = util::ceil_log2(fanin);
    return depth == 0 ? 0.0
                      : chip_.aggregation_noise_rel *
                            adc.config().full_scale_current *
                            std::sqrt(static_cast<double>(depth));
  };
  agg_sigma_mv_m_ = agg_sigma(*adc_m_, chip_m_->partition().grid_cols());
  agg_sigma_mv_nt_ = agg_sigma(*adc_nt_, chip_nt_->partition().grid_cols());
  agg_sigma_vmv_m_ = agg_sigma(*adc_m_, chip_m_->partition().num_tiles());
  agg_sigma_vmv_nt_ = agg_sigma(*adc_nt_, chip_nt_->partition().num_tiles());

  size_state(committed_);
  size_state(scratch_);
  size_state(eval_state_);
}

void TiledTwoPhaseEvaluator::size_state(State& st) const {
  const std::size_t n = game_.num_actions1();
  const std::size_t m = game_.num_actions2();
  if (chip_.readout == ChipReadout::kIdealDigital) {
    st.m.mv_units.assign(n, 0);
    st.nt.mv_units.assign(m, 0);
    return;
  }
  st.m.mv_partial.assign(chip_m_->partition().grid_cols() * n, 0.0);
  st.m.mv_total.assign(n, 0.0);
  st.m.vmv_partial.assign(chip_m_->partition().num_tiles(), 0.0);
  st.nt.mv_partial.assign(chip_nt_->partition().grid_cols() * m, 0.0);
  st.nt.mv_total.assign(m, 0.0);
  st.nt.vmv_partial.assign(chip_nt_->partition().num_tiles(), 0.0);
}

void TiledTwoPhaseEvaluator::full_read(
    State& st, const std::vector<std::uint32_t>& p_counts,
    const std::vector<std::uint32_t>& q_counts) const {
  if (chip_.readout == ChipReadout::kIdealDigital) {
    chip_m_->digital_mv_units(q_counts.data(), st.m.mv_units.data());
    chip_nt_->digital_mv_units(p_counts.data(), st.nt.mv_units.data());
    st.m.vmv_units = chip_m_->digital_vmv_units(p_counts.data(), q_counts.data());
    st.nt.vmv_units =
        chip_nt_->digital_vmv_units(q_counts.data(), p_counts.data());
    return;
  }
  chip_m_->read_mv_partials(q_counts.data(), st.m.mv_partial.data());
  chip_nt_->read_mv_partials(p_counts.data(), st.nt.mv_partial.data());
  chip_m_->read_vmv_partials(p_counts.data(), q_counts.data(),
                             st.m.vmv_partial.data());
  chip_nt_->read_vmv_partials(q_counts.data(), p_counts.data(),
                              st.nt.vmv_partial.data());
  // Aggregate: per-row sums over tile columns, grand total over the grid —
  // fixed ascending order, so refreshes are reproducible.
  auto aggregate = [](ArrayState& a, std::size_t rows) {
    std::fill(a.mv_total.begin(), a.mv_total.end(), 0.0);
    const std::size_t grid_cols = a.mv_partial.size() / rows;
    for (std::size_t tc = 0; tc < grid_cols; ++tc) {
      const double* col = a.mv_partial.data() + tc * rows;
      for (std::size_t i = 0; i < rows; ++i) a.mv_total[i] += col[i];
    }
    a.vmv_total = 0.0;
    for (const double v : a.vmv_partial) a.vmv_total += v;
  };
  aggregate(st.m, game_.num_actions1());
  aggregate(st.nt, game_.num_actions2());
}

double TiledTwoPhaseEvaluator::digitize(const State& st) {
  switch (chip_.readout) {
    case ChipReadout::kAnalogHTree:
      return digitize_analog(st);
    case ChipReadout::kPerTileAdc:
      return digitize_per_tile_adc(st);
    case ChipReadout::kIdealDigital:
      return digitize_digital(st);
  }
  throw std::logic_error("TiledTwoPhaseEvaluator: unknown readout");
}

double TiledTwoPhaseEvaluator::digitize_analog(const State& st) {
  // ---- Phase 1: H-tree row aggregation -> WTA -> max(Mq), max(Nᵀp). --------
  auto noisy_rows = [&](const std::vector<double>& totals, double sigma) {
    if (sigma <= 0.0) return totals.data();
    agg_scratch_.assign(totals.begin(), totals.end());
    for (double& v : agg_scratch_) v += rng_.normal(0.0, sigma);
    return static_cast<const double*>(agg_scratch_.data());
  };
  const double* mv_m = noisy_rows(st.m.mv_total, agg_sigma_mv_m_);
  const double max_mq_current =
      wta_rows_->reduce(mv_m, st.m.mv_total.size(), &rng_, wta_scratch_);
  const double* mv_nt = noisy_rows(st.nt.mv_total, agg_sigma_mv_nt_);
  const double max_ntp_current =
      wta_cols_->reduce(mv_nt, st.nt.mv_total.size(), &rng_, wta_scratch_);
  const double max_mq =
      chip_m_->current_to_value(adc_m_->convert(max_mq_current, rng_));
  const double max_ntp =
      chip_nt_->current_to_value(adc_nt_->convert(max_ntp_current, rng_));

  // ---- Phase 2: grid aggregation -> total currents -> pᵀMq, pᵀNq. ----------
  double vm = st.m.vmv_total;
  if (agg_sigma_vmv_m_ > 0.0) vm += rng_.normal(0.0, agg_sigma_vmv_m_);
  double vn = st.nt.vmv_total;
  if (agg_sigma_vmv_nt_ > 0.0) vn += rng_.normal(0.0, agg_sigma_vmv_nt_);
  const double vmv_m = chip_m_->current_to_value(adc_m_->convert(vm, rng_));
  const double vmv_n = chip_nt_->current_to_value(adc_nt_->convert(vn, rng_));

  last_ = {max_mq, max_ntp, vmv_m, vmv_n};
  return (max_mq + max_ntp - vmv_m - vmv_n) / value_scale_;
}

double TiledTwoPhaseEvaluator::digitize_per_tile_adc(const State& st) {
  // Every tile output is digitised by its own converter (identical config to
  // the shared one — the full-scale bound holds per tile because activations
  // are distribution-normalised), then aggregation and max are digital.
  auto mv_max = [&](const TiledCrossbar& xb, const ArrayState& a,
                    const xbar::Adc& adc, std::size_t rows) {
    const std::size_t grid_cols = xb.partition().grid_cols();
    double best = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < rows; ++i) {
      double sum = 0.0;
      for (std::size_t tc = 0; tc < grid_cols; ++tc)
        sum += adc.convert(a.mv_partial[tc * rows + i], rng_);
      best = std::max(best, sum);
    }
    return xb.current_to_value(best);
  };
  const double max_mq =
      mv_max(*chip_m_, st.m, *adc_m_, game_.num_actions1());
  const double max_ntp =
      mv_max(*chip_nt_, st.nt, *adc_nt_, game_.num_actions2());

  auto vmv_value = [&](const TiledCrossbar& xb, const ArrayState& a,
                       const xbar::Adc& adc) {
    double sum = 0.0;
    for (const double v : a.vmv_partial) sum += adc.convert(v, rng_);
    return xb.current_to_value(sum);
  };
  const double vmv_m = vmv_value(*chip_m_, st.m, *adc_m_);
  const double vmv_n = vmv_value(*chip_nt_, st.nt, *adc_nt_);

  last_ = {max_mq, max_ntp, vmv_m, vmv_n};
  return (max_mq + max_ntp - vmv_m - vmv_n) / value_scale_;
}

double TiledTwoPhaseEvaluator::digitize_digital(const State& st) {
  // Integer unit counts -> payoff values; units/I² is exact for integer
  // payoffs, and exactly representable for power-of-two I.
  const double ii =
      static_cast<double>(intervals_) * static_cast<double>(intervals_);
  const std::int64_t best_m =
      *std::max_element(st.m.mv_units.begin(), st.m.mv_units.end());
  const std::int64_t best_nt =
      *std::max_element(st.nt.mv_units.begin(), st.nt.mv_units.end());
  const double max_mq = static_cast<double>(best_m) / ii;
  const double max_ntp = static_cast<double>(best_nt) / ii;
  const double vmv_m = static_cast<double>(st.m.vmv_units) / ii;
  const double vmv_n = static_cast<double>(st.nt.vmv_units) / ii;
  last_ = {max_mq, max_ntp, vmv_m, vmv_n};
  return (max_mq + max_ntp - vmv_m - vmv_n) / value_scale_;
}

double TiledTwoPhaseEvaluator::evaluate(const game::QuantizedProfile& profile) {
  if (profile.p.num_actions() != game_.num_actions1() ||
      profile.q.num_actions() != game_.num_actions2() ||
      profile.p.intervals() != intervals_ || profile.q.intervals() != intervals_)
    throw std::invalid_argument("TiledTwoPhaseEvaluator: profile shape mismatch");
  full_read(eval_state_, profile.p.counts(), profile.q.counts());
  return digitize(eval_state_);
}

// ---- Incremental propose/commit protocol ------------------------------------

void TiledTwoPhaseEvaluator::reset(const game::QuantizedProfile& profile) {
  if (profile.p.num_actions() != game_.num_actions1() ||
      profile.q.num_actions() != game_.num_actions2() ||
      profile.p.intervals() != intervals_ || profile.q.intervals() != intervals_)
    throw std::invalid_argument("TiledTwoPhaseEvaluator::reset: shape mismatch");
  p_counts_ = profile.p.counts();
  q_counts_ = profile.q.counts();
  p_scratch_ = p_counts_;
  q_scratch_ = q_counts_;
  full_read(committed_, p_counts_, q_counts_);
  pending_.clear();
  primed_ = true;
  proposal_outstanding_ = false;
  commits_since_refresh_ = 0;
  refresh_count_ = 0;
}

void TiledTwoPhaseEvaluator::apply_move(State& st,
                                        std::vector<std::uint32_t>& p_counts,
                                        std::vector<std::uint32_t>& q_counts,
                                        const core::TickMove& mv,
                                        bool with_partials) {
  const bool digital = chip_.readout == ChipReadout::kIdealDigital;
  if (mv.player == core::TickMove::Player::kRow) {
    // p_from loses a word line of the M array / a column group of Nᵀ.
    const std::uint32_t pf = p_counts[mv.from];
    const std::uint32_t pt = p_counts[mv.to];
    if (pf == 0 || pt >= intervals_)
      throw std::logic_error("TiledTwoPhaseEvaluator: invalid tick move");
    const std::uint32_t* qc = q_counts.data();
    if (digital) {
      st.m.vmv_units +=
          chip_m_->digital_vmv_row_delta(mv.from, pf, pf - 1, qc) +
          chip_m_->digital_vmv_row_delta(mv.to, pt, pt + 1, qc);
      st.nt.vmv_units +=
          chip_nt_->digital_vmv_group_delta(mv.from, pf, pf - 1, qc) +
          chip_nt_->digital_vmv_group_delta(mv.to, pt, pt + 1, qc);
      chip_nt_->digital_mv_group_delta(mv.from, pf, pf - 1,
                                       st.nt.mv_units.data());
      chip_nt_->digital_mv_group_delta(mv.to, pt, pt + 1,
                                       st.nt.mv_units.data());
    } else {
      double* cells_m = with_partials ? st.m.vmv_partial.data() : nullptr;
      double* cells_nt = with_partials ? st.nt.vmv_partial.data() : nullptr;
      st.m.vmv_total +=
          chip_m_->vmv_row_delta(mv.from, pf, pf - 1, qc, cells_m) +
          chip_m_->vmv_row_delta(mv.to, pt, pt + 1, qc, cells_m);
      st.nt.vmv_total +=
          chip_nt_->vmv_group_delta(mv.from, pf, pf - 1, qc, cells_nt) +
          chip_nt_->vmv_group_delta(mv.to, pt, pt + 1, qc, cells_nt);
      chip_nt_->mv_group_delta_total(mv.from, pf, pf - 1,
                                     st.nt.mv_total.data());
      chip_nt_->mv_group_delta_total(mv.to, pt, pt + 1, st.nt.mv_total.data());
      if (with_partials) {
        chip_nt_->mv_group_delta(mv.from, pf, pf - 1,
                                 st.nt.mv_partial.data());
        chip_nt_->mv_group_delta(mv.to, pt, pt + 1, st.nt.mv_partial.data());
      }
    }
    p_counts[mv.from] = pf - 1;
    p_counts[mv.to] = pt + 1;
  } else {
    const std::uint32_t qf = q_counts[mv.from];
    const std::uint32_t qt = q_counts[mv.to];
    if (qf == 0 || qt >= intervals_)
      throw std::logic_error("TiledTwoPhaseEvaluator: invalid tick move");
    const std::uint32_t* pc = p_counts.data();
    if (digital) {
      st.m.vmv_units +=
          chip_m_->digital_vmv_group_delta(mv.from, qf, qf - 1, pc) +
          chip_m_->digital_vmv_group_delta(mv.to, qt, qt + 1, pc);
      st.nt.vmv_units +=
          chip_nt_->digital_vmv_row_delta(mv.from, qf, qf - 1, pc) +
          chip_nt_->digital_vmv_row_delta(mv.to, qt, qt + 1, pc);
      chip_m_->digital_mv_group_delta(mv.from, qf, qf - 1,
                                      st.m.mv_units.data());
      chip_m_->digital_mv_group_delta(mv.to, qt, qt + 1, st.m.mv_units.data());
    } else {
      double* cells_m = with_partials ? st.m.vmv_partial.data() : nullptr;
      double* cells_nt = with_partials ? st.nt.vmv_partial.data() : nullptr;
      st.m.vmv_total +=
          chip_m_->vmv_group_delta(mv.from, qf, qf - 1, pc, cells_m) +
          chip_m_->vmv_group_delta(mv.to, qt, qt + 1, pc, cells_m);
      st.nt.vmv_total +=
          chip_nt_->vmv_row_delta(mv.from, qf, qf - 1, pc, cells_nt) +
          chip_nt_->vmv_row_delta(mv.to, qt, qt + 1, pc, cells_nt);
      chip_m_->mv_group_delta_total(mv.from, qf, qf - 1, st.m.mv_total.data());
      chip_m_->mv_group_delta_total(mv.to, qt, qt + 1, st.m.mv_total.data());
      if (with_partials) {
        chip_m_->mv_group_delta(mv.from, qf, qf - 1, st.m.mv_partial.data());
        chip_m_->mv_group_delta(mv.to, qt, qt + 1, st.m.mv_partial.data());
      }
    }
    q_counts[mv.from] = qf - 1;
    q_counts[mv.to] = qt + 1;
  }
}

double TiledTwoPhaseEvaluator::propose(const core::TickMove* moves,
                                       std::size_t count) {
  if (!primed_)
    throw std::logic_error("TiledTwoPhaseEvaluator::propose before reset()");
  if (chip_.readout == ChipReadout::kPerTileAdc)
    // Per-tile quantisation breaks delta linearity; proposals would digitize
    // stale scratch partials. incremental() already reports unavailability.
    throw std::logic_error(
        "TiledTwoPhaseEvaluator::propose unavailable in per-tile ADC mode");
  // Rejected proposals are discarded by re-deriving the scratch totals from
  // the committed state — O(m+n) copies, no tile access. Per-tile partials
  // are not copied: proposals score on the aggregated totals, and a commit
  // replays the deltas into the committed partials.
  if (chip_.readout == ChipReadout::kIdealDigital) {
    scratch_.m.mv_units = committed_.m.mv_units;
    scratch_.nt.mv_units = committed_.nt.mv_units;
    scratch_.m.vmv_units = committed_.m.vmv_units;
    scratch_.nt.vmv_units = committed_.nt.vmv_units;
  } else {
    scratch_.m.mv_total = committed_.m.mv_total;
    scratch_.nt.mv_total = committed_.nt.mv_total;
    scratch_.m.vmv_total = committed_.m.vmv_total;
    scratch_.nt.vmv_total = committed_.nt.vmv_total;
  }
  p_scratch_ = p_counts_;
  q_scratch_ = q_counts_;
  pending_.assign(moves, moves + count);
  for (std::size_t i = 0; i < count; ++i)
    apply_move(scratch_, p_scratch_, q_scratch_, moves[i],
               /*with_partials=*/false);
  proposal_outstanding_ = true;
  return digitize(scratch_);
}

void TiledTwoPhaseEvaluator::commit() {
  if (!proposal_outstanding_)
    throw std::logic_error("TiledTwoPhaseEvaluator::commit without propose()");
  proposal_outstanding_ = false;
  // Replay the accepted moves into the committed per-tile state: the deltas
  // recompute bit-identically (same tables, same starting counts), so the
  // committed totals land exactly on the values digitize() scored.
  for (const core::TickMove& mv : pending_)
    apply_move(committed_, p_counts_, q_counts_, mv, /*with_partials=*/true);
  pending_.clear();
  if (chip_.readout == ChipReadout::kIdealDigital) return;  // exact, no drift
  if (++commits_since_refresh_ >= config_.refresh_interval) {
    commits_since_refresh_ = 0;
    ++refresh_count_;
    full_read(committed_, p_counts_, q_counts_);
  }
}

}  // namespace cnash::chip
