#include "chip/tile_partition.hpp"

#include <stdexcept>
#include <string>

namespace cnash::chip {

TilePartition::TilePartition(const xbar::MappingGeometry& geom,
                             std::size_t tile_rows, std::size_t tile_cols)
    : geom_(geom), tile_rows_(tile_rows), tile_cols_(tile_cols) {
  const std::size_t block_rows = geom.intervals;
  const std::size_t block_cols =
      static_cast<std::size_t>(geom.intervals) * geom.cells_per_element;
  if (tile_rows_ < block_rows || tile_cols_ < block_cols)
    throw std::invalid_argument(
        "TilePartition: tile (" + std::to_string(tile_rows_) + "x" +
        std::to_string(tile_cols_) + ") smaller than one element block (" +
        std::to_string(block_rows) + "x" + std::to_string(block_cols) + ")");
  if (geom.n == 0 || geom.m == 0)
    throw std::invalid_argument("TilePartition: empty mapping");
  rows_per_tile_ = tile_rows_ / block_rows;
  cols_per_tile_ = tile_cols_ / block_cols;
  grid_rows_ = (geom.n + rows_per_tile_ - 1) / rows_per_tile_;
  grid_cols_ = (geom.m + cols_per_tile_ - 1) / cols_per_tile_;
}

TileRange TilePartition::range(std::size_t tr, std::size_t tc) const {
  if (tr >= grid_rows_ || tc >= grid_cols_)
    throw std::out_of_range("TilePartition::range");
  TileRange r;
  r.i0 = tr * rows_per_tile_;
  r.i1 = std::min(r.i0 + rows_per_tile_, geom_.n);
  r.j0 = tc * cols_per_tile_;
  r.j1 = std::min(r.j0 + cols_per_tile_, geom_.m);
  return r;
}

}  // namespace cnash::chip
