#include "chip/tiled_backend.hpp"

#include <utility>

#include "core/timing.hpp"

namespace cnash::chip {

TiledEvaluatorFactory::TiledEvaluatorFactory(game::BimatrixGame game,
                                             std::uint32_t intervals,
                                             core::TwoPhaseConfig config,
                                             ChipConfig chip,
                                             util::Rng device_rng,
                                             util::FaultPlan fault)
    : game_(std::move(game)),
      intervals_(intervals),
      config_(config),
      chip_(chip),
      device_rng_(device_rng),
      fault_(fault) {}

std::unique_ptr<core::ObjectiveEvaluator> TiledEvaluatorFactory::create(
    std::uint64_t key) const {
  return create_tiled(key);
}

std::unique_ptr<TiledTwoPhaseEvaluator> TiledEvaluatorFactory::create_tiled(
    std::uint64_t key) const {
  if (fault_.tile_failure_rate > 0.0) {
    const util::FaultPlan plan = fault_.for_instance(key);
    return std::make_unique<TiledTwoPhaseEvaluator>(
        game_, intervals_, config_, chip_, device_rng_.split(key), &plan);
  }
  return std::make_unique<TiledTwoPhaseEvaluator>(
      game_, intervals_, config_, chip_, device_rng_.split(key));
}

namespace {

class TiledSaBackend final : public core::SolverBackend {
 public:
  const std::string& name() const override { return name_; }

  std::string describe() const override {
    return "two-phase SA sharded across a grid of fixed-capacity crossbar "
           "tiles with H-tree aggregation (runs, seed, intervals, sa, "
           "hardware, chip, report_best)";
  }

  std::unique_ptr<core::PreparedJob> prepare(
      const core::SolveRequest& request) const override {
    auto factory = std::make_shared<TiledEvaluatorFactory>(
        request.game, request.intervals, request.hardware, request.chip,
        util::Rng(request.seed), request.fault);
    // The tile-grid shape for the latency model is pure geometry — derive it
    // from the mapped element matrix directly (same shift/scale/coding
    // pipeline as the evaluator) instead of programming a probe chip.
    const game::BimatrixGame shifted = request.game.shifted_non_negative(0.0);
    const xbar::CrossbarMapping map(
        shifted.payoff1() * request.hardware.value_scale, request.intervals,
        request.hardware.cells_per_element, request.hardware.levels_per_cell);
    const TilePartition part(map.geometry(), request.chip.tile_rows,
                             request.chip.tile_cols);
    core::TileGridTiming grid;
    grid.tile_rows = request.chip.tile_rows;
    grid.tile_cols = request.chip.tile_cols;
    grid.grid_rows = part.grid_rows();
    grid.grid_cols = part.grid_cols();
    grid.wta_inputs = request.game.num_actions1();
    const double modeled =
        core::CNashTimingModel().tiled_run_time_s(grid,
                                                  request.sa.iterations) *
        static_cast<double>(request.runs);

    auto job = std::make_unique<core::SaPreparedJob>(
        std::move(factory), request.intervals, request.sa, request.report_best,
        request.seed, request.runs, /*base_run=*/0, request.nash_eps);
    job->backend_name = name_;
    job->modeled_time_s = modeled;
    job->max_parallelism = request.max_parallelism;
    return job;
  }

 private:
  std::string name_ = "hardware-sa-tiled";
};

}  // namespace

std::unique_ptr<core::SolverBackend> make_tiled_backend() {
  return std::make_unique<TiledSaBackend>();
}

}  // namespace cnash::chip
