#pragma once
// Geometry of the tile grid: how the element blocks of one CrossbarMapping
// are distributed over fixed-capacity physical tiles.
//
// Tiles are cut at element-block granularity — an I×(I·t) block is the
// smallest unit the unary value coding can address, so a tile holds
// floor(tile_rows / I) block rows and floor(tile_cols / (I·t)) block
// columns. The last grid row/column holds the remainder blocks when the
// matrix does not divide evenly (partial tiles); physically those tiles are
// the same fixed-size arrays with unused lines.

#include <cstddef>

#include "xbar/mapping.hpp"

namespace cnash::chip {

struct TileRange {
  std::size_t i0, i1;  // element rows [i0, i1)
  std::size_t j0, j1;  // element cols [j0, j1)
  std::size_t rows() const { return i1 - i0; }
  std::size_t cols() const { return j1 - j0; }
};

class TilePartition {
 public:
  /// Throws std::invalid_argument when a tile cannot hold even one element
  /// block of the given geometry.
  TilePartition(const xbar::MappingGeometry& geom, std::size_t tile_rows,
                std::size_t tile_cols);

  const xbar::MappingGeometry& geometry() const { return geom_; }
  std::size_t tile_phys_rows() const { return tile_rows_; }
  std::size_t tile_phys_cols() const { return tile_cols_; }

  /// Element block rows / columns a full tile holds.
  std::size_t rows_per_tile() const { return rows_per_tile_; }
  std::size_t cols_per_tile() const { return cols_per_tile_; }

  std::size_t grid_rows() const { return grid_rows_; }
  std::size_t grid_cols() const { return grid_cols_; }
  std::size_t num_tiles() const { return grid_rows_ * grid_cols_; }

  /// Grid coordinates of the tile holding element row i / column j.
  std::size_t tile_of_row(std::size_t i) const { return i / rows_per_tile_; }
  std::size_t tile_of_col(std::size_t j) const { return j / cols_per_tile_; }

  /// Element ranges of tile (tr, tc); the last row/column may be partial.
  TileRange range(std::size_t tr, std::size_t tc) const;

 private:
  xbar::MappingGeometry geom_;
  std::size_t tile_rows_, tile_cols_;
  std::size_t rows_per_tile_, cols_per_tile_;
  std::size_t grid_rows_, grid_cols_;
};

}  // namespace cnash::chip
