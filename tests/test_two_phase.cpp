#include <gtest/gtest.h>

#include <cmath>

#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cnash::core {
namespace {

TwoPhaseConfig ideal_config() {
  TwoPhaseConfig cfg;
  cfg.array.ideal = true;
  cfg.wta.offset_sigma = 0.0;
  cfg.wta.read_noise_rel = 0.0;
  cfg.adc_bits = 16;
  cfg.adc_noise_rel = 0.0;
  return cfg;
}

game::QuantizedProfile profile_from(const la::Vector& p, const la::Vector& q,
                                    std::uint32_t intervals) {
  return {game::QuantizedStrategy::from_distribution(p, intervals),
          game::QuantizedStrategy::from_distribution(q, intervals)};
}

TEST(TwoPhase, IdealHardwareMatchesExactObjective) {
  const auto g = game::battle_of_sexes();
  TwoPhaseEvaluator hw(g, 12, ideal_config(), util::Rng(61));
  ExactMaxQubo exact(g);
  util::Rng rng(62);
  for (int t = 0; t < 100; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(2, 12, rng),
                                game::QuantizedStrategy::random(2, 12, rng)};
    EXPECT_NEAR(hw.evaluate(prof), exact.evaluate(prof), 0.02);
  }
}

TEST(TwoPhase, ZeroNearEquilibriaOnIdealHardware) {
  const auto g = game::battle_of_sexes();
  TwoPhaseEvaluator hw(g, 12, ideal_config(), util::Rng(63));
  EXPECT_NEAR(hw.evaluate(profile_from({1, 0}, {1, 0}, 12)), 0.0, 0.02);
  EXPECT_NEAR(hw.evaluate(profile_from({2.0 / 3, 1.0 / 3},
                                       {1.0 / 3, 2.0 / 3}, 12)),
              0.0, 0.02);
}

TEST(TwoPhase, RealisticHardwareTracksExactWithinBudget) {
  const auto g = game::bird_game();
  TwoPhaseConfig cfg;  // realistic non-idealities
  TwoPhaseEvaluator hw(g, 12, cfg, util::Rng(64));
  ExactMaxQubo exact(g);
  util::Rng rng(65);
  util::RunningStats err;
  for (int t = 0; t < 200; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(3, 12, rng),
                                game::QuantizedStrategy::random(3, 12, rng)};
    err.add(hw.evaluate(prof) - exact.evaluate(prof));
  }
  // Error from variability + WTA offsets + ADC stays well under the smallest
  // payoff scale of the game (payoff range = 2).
  EXPECT_LT(std::abs(err.mean()), 0.05);
  EXPECT_LT(err.stddev(), 0.08);
}

TEST(TwoPhase, ReadoutComponentsExposed) {
  const auto g = game::battle_of_sexes();
  TwoPhaseEvaluator hw(g, 12, ideal_config(), util::Rng(66));
  const auto prof = profile_from({1, 0}, {0, 1}, 12);
  const double f = hw.evaluate(prof);
  const auto& r = hw.last_readout();
  EXPECT_NEAR(f, r.max_mq + r.max_ntp - r.vmv_m - r.vmv_n, 1e-9);
}

TEST(TwoPhase, WorksWithNegativePayoffGames) {
  // Matching pennies has negative payoffs; the internal shift must make the
  // objective work unchanged.
  const auto g = game::matching_pennies();
  TwoPhaseEvaluator hw(g, 8, ideal_config(), util::Rng(67));
  EXPECT_NEAR(hw.evaluate(profile_from({0.5, 0.5}, {0.5, 0.5}, 8)), 0.0, 0.02);
  EXPECT_GT(hw.evaluate(profile_from({1, 0}, {1, 0}, 8)), 0.5);
}

TEST(TwoPhase, ValueScaleHandlesFractionalPayoffs) {
  // A game with 0.5-step payoffs needs value_scale = 2 for integer coding.
  la::Matrix m{{1.5, 0}, {0, 0.5}};
  la::Matrix n{{0.5, 0}, {0, 1.5}};
  const game::BimatrixGame g(m, n, "fractional");
  TwoPhaseConfig cfg = ideal_config();
  cfg.value_scale = 2.0;
  TwoPhaseEvaluator hw(g, 8, cfg, util::Rng(68));
  ExactMaxQubo exact(g);
  const auto prof = profile_from({0.5, 0.5}, {0.25, 0.75}, 8);
  EXPECT_NEAR(hw.evaluate(prof), exact.evaluate(prof), 0.02);
}

TEST(TwoPhase, ProfileShapeMismatchThrows) {
  TwoPhaseEvaluator hw(game::battle_of_sexes(), 12, ideal_config(),
                       util::Rng(69));
  game::QuantizedProfile wrong{game::QuantizedStrategy(3, 12),
                               game::QuantizedStrategy(2, 12)};
  EXPECT_THROW(hw.evaluate(wrong), std::invalid_argument);
  game::QuantizedProfile wrong_i{game::QuantizedStrategy(2, 8),
                                 game::QuantizedStrategy(2, 8)};
  EXPECT_THROW(hw.evaluate(wrong_i), std::invalid_argument);
}

TEST(TwoPhase, NonIntegerPayoffsRejectedWithoutScale) {
  la::Matrix m{{0.3, 0}, {0, 1}};
  const game::BimatrixGame g(m, m, "bad");
  EXPECT_THROW(
      TwoPhaseEvaluator(g, 8, ideal_config(), util::Rng(70)),
      std::invalid_argument);
}

}  // namespace
}  // namespace cnash::core
