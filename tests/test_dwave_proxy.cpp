// D-Wave behavioural proxies: determinism under a fixed seed, coupler-bit
// quantization actually limiting the distinct coupling values sampled, and
// q_noise_rel = 0 reproducing the noiseless annealing schedule exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "game/games.hpp"
#include "qubo/annealer.hpp"
#include "qubo/dwave_proxy.hpp"

namespace cnash::qubo {
namespace {

std::string sample_fingerprint(const core::SolveSample& s) {
  std::string fp;
  auto append_bits = [&fp](double v) {
    const char* bytes = reinterpret_cast<const char*>(&v);
    fp.append(bytes, sizeof(v));
  };
  for (double x : s.p) append_bits(x);
  for (double x : s.q) append_bits(x);
  append_bits(s.objective);
  fp += s.valid ? 'v' : '-';
  return fp;
}

std::set<double> distinct_coefficients(const QuboModel& model) {
  std::set<double> values;
  for (double v : model.q().data()) values.insert(v);
  return values;
}

TEST(DWaveProxy, DeterministicUnderFixedSeed) {
  const game::BimatrixGame g = game::bird_game();
  const DWaveProxy proxy(g, dwave_advantage41_config());
  util::Rng a(123), b(123);
  const auto ra = proxy.run(20, a);
  const auto rb = proxy.run(20, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_EQ(sample_fingerprint(ra[i]), sample_fingerprint(rb[i]))
        << "read " << i;
}

TEST(DWaveProxy, KeyedReadsAreOrderIndependent) {
  // The service backend reads unit u off Rng(seed).split(u); whatever order
  // (or worker) performs the reads, each key reproduces the same sample.
  const game::BimatrixGame g = game::battle_of_sexes();
  const DWaveProxy proxy(g, dwave_2000q6_config());
  const util::Rng root(0xD1CE);
  std::vector<std::string> forward, backward(5);
  for (std::size_t u = 0; u < 5; ++u) {
    util::Rng rng = root.split(u);
    forward.push_back(sample_fingerprint(proxy.sample_one(rng)));
  }
  for (std::size_t u = 5; u-- > 0;) {
    util::Rng rng = root.split(u);
    backward[u] = sample_fingerprint(proxy.sample_one(rng));
  }
  EXPECT_EQ(forward, backward);
}

TEST(DWaveProxy, CouplerBitsLimitDistinctCouplingValues) {
  // quantized(bits) snaps every coefficient to k/levels × max|Q| with
  // levels = 2^(bits-1) - 1, so at most 2^bits - 1 distinct values survive.
  const game::BimatrixGame g = game::bird_game();
  DWaveConfig cfg = dwave_2000q6_config();
  cfg.coupler_bits = 4;
  const DWaveProxy proxy(g, cfg);

  const auto quantized = distinct_coefficients(proxy.solve_model());
  const auto ideal = distinct_coefficients(proxy.squbo().model());
  EXPECT_LE(quantized.size(), (1u << cfg.coupler_bits) - 1);
  EXPECT_LT(quantized.size(), ideal.size());

  // bits = 0 models an ideal analog coupler: the sampled model is untouched.
  DWaveConfig ideal_cfg = cfg;
  ideal_cfg.coupler_bits = 0;
  const DWaveProxy ideal_proxy(g, ideal_cfg);
  EXPECT_EQ(distinct_coefficients(ideal_proxy.solve_model()), ideal);
}

TEST(DWaveProxy, ZeroNoiseReproducesTheNoiselessSchedule) {
  // With q_noise_rel = 0 the proxy must take the exact noiseless path: no
  // Hamiltonian perturbation draws, so each read equals a plain anneal() of
  // the quantized model on the same stream.
  const game::BimatrixGame g = game::bird_game();
  DWaveConfig cfg = dwave_2000q6_config();
  cfg.q_noise_rel = 0.0;
  const DWaveProxy proxy(g, cfg);

  util::Rng proxy_rng(55), manual_rng(55);
  const auto samples = proxy.run(5, proxy_rng);
  for (std::size_t r = 0; r < samples.size(); ++r) {
    const AnnealResult res =
        anneal(proxy.solve_model(), cfg.schedule, manual_rng);
    const SQubo::Decoded d = proxy.squbo().decode(res.best_state);
    EXPECT_EQ(samples[r].objective, res.best_energy) << "read " << r;
    EXPECT_EQ(samples[r].p, d.p) << "read " << r;
    EXPECT_EQ(samples[r].q, d.q) << "read " << r;
    EXPECT_EQ(samples[r].valid, d.valid_strategies) << "read " << r;
  }
}

TEST(DWaveProxy, ControlErrorNoiseActuallyPerturbsReads) {
  // Sanity for the previous test: with q_noise_rel > 0 the same stream yields
  // a different read sequence (the perturbation draws shift everything).
  const game::BimatrixGame g = game::bird_game();
  DWaveConfig noisy = dwave_2000q6_config();
  DWaveConfig clean = noisy;
  clean.q_noise_rel = 0.0;
  util::Rng rng_noisy(9), rng_clean(9);
  const auto a = DWaveProxy(g, noisy).run(10, rng_noisy);
  const auto b = DWaveProxy(g, clean).run(10, rng_clean);
  std::string fa, fb;
  for (const auto& s : a) fa += sample_fingerprint(s);
  for (const auto& s : b) fb += sample_fingerprint(s);
  EXPECT_NE(fa, fb);
}

TEST(DWaveProxy, ReportedEnergyIsTrueQuantizedModelEnergy) {
  // On the noisy path best_energy is re-evaluated on the unperturbed model,
  // so reported objectives are comparable across reads.
  const game::BimatrixGame g = game::battle_of_sexes();
  const DWaveProxy proxy(g, dwave_advantage41_config());
  util::Rng rng(17);
  for (const auto& s : proxy.run(10, rng)) {
    // Decode-independent check: energy of a one-hot profile is finite and
    // bounded by the model's coefficient budget.
    EXPECT_TRUE(std::isfinite(s.objective));
  }
}

}  // namespace
}  // namespace cnash::qubo
