// The failure-containment layer (PR 7). Contracts under test:
//   * util::FaultPlan — deterministic keyed rolls: same (seed, scope, index)
//     fires identically everywhere, disabled plans draw no RNG and never
//     fire, for_instance() re-keys deterministically, CNASH_FAULT_* env
//     parsing;
//   * chip::TiledCrossbar — a disabled plan leaves the programmed array
//     byte-identical to a plan-free build; injected dead tiles read zero
//     current and are caught by the program-time read-back, which makes
//     TiledTwoPhaseEvaluator construction throw ChipFault;
//   * "resilient" meta-backend — with faults off it is sample-for-sample
//     bit-identical to its wrapped primary; with 100% tile faults every unit
//     falls back to exact-sa (fallback_count == runs) and the samples match a
//     pure exact-sa solve bit for bit;
//   * validate_request — the new deadline / fault / resilient_primary knobs
//     reject bad requests at submit time;
//   * SolverService deadlines — anytime degradation: a deadline-bounded job
//     returns degraded=true with units accounting within deadline + one
//     unit's wall time, and a drained service rejects submissions with
//     ServiceDrainingError (not a generic internal error).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "chip/tiled_crossbar.hpp"
#include "chip/tiled_two_phase.hpp"
#include "core/backend.hpp"
#include "core/service.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace cnash {
namespace {

using util::FaultPlan;
using Scope = util::FaultPlan::Scope;

bool same_bits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  if (std::isnan(a) && std::isnan(b)) return true;
  return ba == bb;
}

/// Bitwise sample equality modulo the fallback flag (asserted separately).
void expect_samples_identical(const std::vector<core::SolveSample>& a,
                              const std::vector<core::SolveSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].p.size(), b[i].p.size()) << "sample " << i;
    for (std::size_t j = 0; j < a[i].p.size(); ++j)
      EXPECT_TRUE(same_bits(a[i].p[j], b[i].p[j])) << "sample " << i;
    ASSERT_EQ(a[i].q.size(), b[i].q.size()) << "sample " << i;
    for (std::size_t j = 0; j < a[i].q.size(); ++j)
      EXPECT_TRUE(same_bits(a[i].q[j], b[i].q[j])) << "sample " << i;
    EXPECT_TRUE(same_bits(a[i].objective, b[i].objective)) << "sample " << i;
    EXPECT_TRUE(same_bits(a[i].regret, b[i].regret)) << "sample " << i;
    EXPECT_EQ(a[i].valid, b[i].valid) << "sample " << i;
    EXPECT_EQ(a[i].is_nash, b[i].is_nash) << "sample " << i;
    EXPECT_EQ(a[i].profile.has_value(), b[i].profile.has_value())
        << "sample " << i;
    if (a[i].profile && b[i].profile) {
      EXPECT_EQ(*a[i].profile, *b[i].profile) << "sample " << i;
    }
  }
}

// ---- FaultPlan rolls ---------------------------------------------------------

TEST(FaultPlan, DisabledPlanNeverFires) {
  const FaultPlan plan;  // all rates zero
  EXPECT_FALSE(plan.solver_faults());
  EXPECT_FALSE(plan.server_faults());
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(plan.roll(Scope::kUnit, i, 0.0));
    EXPECT_FALSE(plan.roll(Scope::kTile, i, plan.tile_failure_rate));
  }
}

TEST(FaultPlan, RollsAreDeterministicPerSite) {
  FaultPlan plan;
  plan.seed = 42;
  for (std::uint64_t i = 0; i < 256; ++i) {
    const bool first = plan.roll(Scope::kUnit, i, 0.3);
    // The same site fires identically on every evaluation — including from a
    // copy, which is how worker threads see the plan.
    const FaultPlan copy = plan;
    EXPECT_EQ(first, copy.roll(Scope::kUnit, i, 0.3)) << "index " << i;
    EXPECT_TRUE(plan.roll(Scope::kDisconnect, i, 1.0));
    EXPECT_TRUE(plan.roll(Scope::kDisconnect, i, 2.0));  // clamped, not UB
  }
}

TEST(FaultPlan, ScopesRollIndependentlyAtObservedRate) {
  FaultPlan plan;
  plan.seed = 7;
  const std::uint64_t trials = 4000;
  std::uint64_t unit_hits = 0, delay_hits = 0, diverged = 0;
  for (std::uint64_t i = 0; i < trials; ++i) {
    const bool u = plan.roll(Scope::kUnit, i, 0.25);
    const bool d = plan.roll(Scope::kDelay, i, 0.25);
    unit_hits += u;
    delay_hits += d;
    diverged += (u != d);
  }
  // Bernoulli(0.25) over 4000 sites: both families near rate, and the two
  // scopes disagree on many sites (they are independent streams).
  EXPECT_NEAR(static_cast<double>(unit_hits) / trials, 0.25, 0.05);
  EXPECT_NEAR(static_cast<double>(delay_hits) / trials, 0.25, 0.05);
  EXPECT_GT(diverged, trials / 8);
}

TEST(FaultPlan, ForInstanceReKeysDeterministically) {
  FaultPlan plan;
  plan.seed = 99;
  plan.tile_failure_rate = 0.5;
  const FaultPlan a1 = plan.for_instance(5);
  const FaultPlan a2 = plan.for_instance(5);
  const FaultPlan b = plan.for_instance(6);
  EXPECT_EQ(a1.seed, a2.seed);
  EXPECT_NE(a1.seed, b.seed);
  EXPECT_EQ(a1.tile_failure_rate, plan.tile_failure_rate);  // rates carry over
}

TEST(FaultPlan, ReadsEnvironmentKnobs) {
  ::setenv("CNASH_FAULT_SEED", "123", 1);
  ::setenv("CNASH_FAULT_UNIT_RATE", "0.25", 1);
  ::setenv("CNASH_FAULT_TILE_RATE", "0.5", 1);
  ::setenv("CNASH_FAULT_DELAY_RATE", "0.125", 1);
  ::setenv("CNASH_FAULT_DELAY_S", "0.01", 1);
  ::setenv("CNASH_FAULT_WRITE_STALL", "0.75", 1);
  ::setenv("CNASH_FAULT_DISCONNECT", "not-a-number", 1);  // kept at default
  const FaultPlan plan = util::fault_plan_from_env();
  EXPECT_EQ(plan.seed, 123u);
  EXPECT_EQ(plan.unit_failure_rate, 0.25);
  EXPECT_EQ(plan.tile_failure_rate, 0.5);
  EXPECT_EQ(plan.unit_delay_rate, 0.125);
  EXPECT_EQ(plan.unit_delay_s, 0.01);
  EXPECT_EQ(plan.write_stall_rate, 0.75);
  EXPECT_EQ(plan.disconnect_rate, 0.0);
  for (const char* name :
       {"CNASH_FAULT_SEED", "CNASH_FAULT_UNIT_RATE", "CNASH_FAULT_TILE_RATE",
        "CNASH_FAULT_DELAY_RATE", "CNASH_FAULT_DELAY_S",
        "CNASH_FAULT_WRITE_STALL", "CNASH_FAULT_DISCONNECT"})
    ::unsetenv(name);
  const FaultPlan off = util::fault_plan_from_env();
  EXPECT_FALSE(off.solver_faults());
  EXPECT_FALSE(off.server_faults());
}

// ---- TiledCrossbar dead tiles and read-back ---------------------------------

la::Matrix integer_payoff(std::size_t n, std::size_t m, util::Rng& rng) {
  la::Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j)
      a(i, j) = static_cast<double>(rng.uniform_int(1, 5));  // >= 1: every
  return a;  // tile holds conducting cells, so a dead tile is detectable
}

TEST(TiledCrossbarFault, DisabledPlanIsByteIdenticalToPlanFree) {
  util::Rng gen(11);
  const la::Matrix payoff = integer_payoff(8, 8, gen);
  const std::uint32_t intervals = 8;
  xbar::ArrayConfig cfg;  // realistic variability — the hard case
  const FaultPlan off;    // all rates zero

  util::Rng prog_a(21), prog_b(21);
  const chip::TiledCrossbar plain(payoff, intervals, 0, 2, cfg, 16, 64,
                                  prog_a);
  const chip::TiledCrossbar with_plan(payoff, intervals, 0, 2, cfg, 16, 64,
                                      prog_b, &off, /*fault_scope=*/0);
  EXPECT_TRUE(plain.failed_tiles().empty());
  EXPECT_TRUE(with_plan.failed_tiles().empty());

  const std::size_t n = plain.n();
  const std::size_t grid_cols = plain.partition().grid_cols();
  std::vector<std::uint32_t> groups(plain.m(), 0);
  util::Rng act(5);
  for (std::uint32_t t = 0; t < intervals; ++t)
    ++groups[act.uniform_index(groups.size())];
  std::vector<double> pa(grid_cols * n, 0.0), pb(grid_cols * n, 0.0);
  plain.read_mv_partials(groups.data(), pa.data());
  with_plan.read_mv_partials(groups.data(), pb.data());
  for (std::size_t i = 0; i < pa.size(); ++i)
    ASSERT_TRUE(same_bits(pa[i], pb[i])) << "partial " << i;
}

TEST(TiledCrossbarFault, DeadTilesReadZeroAndFailReadBack) {
  util::Rng gen(13);
  const la::Matrix payoff = integer_payoff(8, 8, gen);
  const std::uint32_t intervals = 8;
  xbar::ArrayConfig cfg;
  FaultPlan plan;
  plan.seed = 17;
  plan.tile_failure_rate = 1.0;

  util::Rng prog(23);
  const chip::TiledCrossbar tiled(payoff, intervals, 0, 2, cfg, 16, 64, prog,
                                  &plan, /*fault_scope=*/0);
  const std::size_t num_tiles = tiled.partition().num_tiles();
  ASSERT_GT(num_tiles, 1u);  // the grid actually shards this game
  EXPECT_EQ(tiled.failed_tiles().size(), num_tiles);

  // Every analog read off a dead grid is exactly zero current.
  std::vector<std::uint32_t> rows(tiled.n(), 0), groups(tiled.m(), 0);
  util::Rng act(3);
  for (std::uint32_t t = 0; t < intervals; ++t) {
    ++rows[act.uniform_index(rows.size())];
    ++groups[act.uniform_index(groups.size())];
  }
  std::vector<double> partials(tiled.partition().grid_cols() * tiled.n(), -1.0);
  tiled.read_mv_partials(groups.data(), partials.data());
  for (const double v : partials) EXPECT_EQ(v, 0.0);
  std::vector<double> vmv(num_tiles, -1.0);
  tiled.read_vmv_partials(rows.data(), groups.data(), vmv.data());
  for (const double v : vmv) EXPECT_EQ(v, 0.0);
}

TEST(TiledCrossbarFault, PartialFaultsMatchThePlanRolls) {
  util::Rng gen(29);
  const la::Matrix payoff = integer_payoff(8, 8, gen);
  xbar::ArrayConfig cfg;
  FaultPlan plan;
  plan.seed = 31;
  plan.tile_failure_rate = 0.5;
  const std::uint64_t scope = 1000;

  util::Rng prog(37);
  const chip::TiledCrossbar tiled(payoff, 8, 0, 2, cfg, 16, 64, prog, &plan,
                                  scope);
  // The read-back must recover exactly the tiles the plan killed.
  std::vector<std::size_t> expected;
  for (std::size_t t = 0; t < tiled.partition().num_tiles(); ++t)
    if (plan.roll(Scope::kTile, scope + t, plan.tile_failure_rate))
      expected.push_back(t);
  EXPECT_EQ(tiled.failed_tiles(), expected);
  EXPECT_FALSE(expected.empty());  // seed chosen so the test bites
  EXPECT_LT(expected.size(), tiled.partition().num_tiles());
}

TEST(TiledTwoPhaseFault, ConstructionThrowsChipFaultOnDeadTiles) {
  core::TwoPhaseConfig cfg;
  chip::ChipConfig grid;
  grid.tile_rows = 16;
  grid.tile_cols = 64;
  FaultPlan plan;
  plan.seed = 41;
  plan.tile_failure_rate = 1.0;
  EXPECT_THROW(chip::TiledTwoPhaseEvaluator(game::battle_of_sexes(), 8, cfg,
                                            grid, util::Rng(7), &plan),
               chip::ChipFault);
  // The same construction with the plan disabled is healthy.
  const FaultPlan off;
  EXPECT_NO_THROW(chip::TiledTwoPhaseEvaluator(game::battle_of_sexes(), 8, cfg,
                                               grid, util::Rng(7), &off));
}

// ---- "resilient" meta-backend ------------------------------------------------

core::SolveRequest resilient_request(const std::string& primary,
                                     std::size_t runs = 4) {
  core::SolveRequest req(game::battle_of_sexes());
  req.backend = "resilient";
  req.resilient_primary = primary;
  req.runs = runs;
  req.seed = 9;
  req.sa.iterations = 300;
  return req;
}

TEST(ResilientBackend, DisabledPlanIsBitIdenticalToPrimary) {
  const core::SolveRequest req = resilient_request("hardware-sa");
  core::SolveRequest primary_req = req;
  primary_req.backend = "hardware-sa";

  const core::SolveReport resilient =
      core::SolverRegistry::global().at("resilient").solve(req);
  const core::SolveReport primary =
      core::SolverRegistry::global().at("hardware-sa").solve(primary_req);

  EXPECT_EQ(resilient.backend, "resilient");
  EXPECT_EQ(resilient.fallback_count, 0u);
  EXPECT_FALSE(resilient.degraded);
  for (const core::SolveSample& s : resilient.samples)
    EXPECT_FALSE(s.fallback);
  expect_samples_identical(resilient.samples, primary.samples);
  EXPECT_TRUE(same_bits(resilient.best_objective, primary.best_objective));
}

TEST(ResilientBackend, FullTileFaultFallsBackToExactSaEverywhere) {
  core::SolveRequest req = resilient_request("hardware-sa-tiled");
  req.fault.seed = 3;
  req.fault.tile_failure_rate = 1.0;
  core::SolveRequest exact_req = req;
  exact_req.backend = "exact-sa";
  exact_req.fault = util::FaultPlan{};  // exact-sa takes no fault plan

  const core::SolveReport resilient =
      core::SolverRegistry::global().at("resilient").solve(req);
  const core::SolveReport exact =
      core::SolverRegistry::global().at("exact-sa").solve(exact_req);

  // Every primary unit hit a ChipFault; all runs were re-run on exact-sa.
  EXPECT_EQ(resilient.fallback_count, req.runs);
  ASSERT_EQ(resilient.samples.size(), req.runs);
  for (const core::SolveSample& s : resilient.samples)
    EXPECT_TRUE(s.fallback);
  expect_samples_identical(resilient.samples, exact.samples);
  EXPECT_TRUE(same_bits(resilient.best_objective, exact.best_objective));
}

TEST(ResilientBackend, InjectedUnitFailuresFallBack) {
  core::SolveRequest req = resilient_request("hardware-sa");
  req.fault.seed = 5;
  req.fault.unit_failure_rate = 1.0;
  const core::SolveReport report =
      core::SolverRegistry::global().at("resilient").solve(req);
  EXPECT_EQ(report.fallback_count, req.runs);
  for (const core::SolveSample& s : report.samples) EXPECT_TRUE(s.fallback);
}

// ---- validate_request: the robustness knobs ---------------------------------

TEST(ValidateRequest, RejectsBadDeadlines) {
  core::SolveRequest req(game::battle_of_sexes());
  req.deadline_s = -1.0;
  EXPECT_THROW(core::validate_request(req), std::invalid_argument);
  req.deadline_s = std::nan("");
  EXPECT_THROW(core::validate_request(req), std::invalid_argument);
  req.deadline_s = 0.0;  // 0 disables the deadline — valid
  EXPECT_NO_THROW(core::validate_request(req));
}

TEST(ValidateRequest, RejectsFaultsOutsideTheResilientBackend) {
  core::SolveRequest req(game::battle_of_sexes());
  req.backend = "exact-sa";
  req.fault.unit_failure_rate = 0.5;
  EXPECT_THROW(core::validate_request(req), std::invalid_argument);
  req.backend = "resilient";
  EXPECT_NO_THROW(core::validate_request(req));
  req.fault.tile_failure_rate = 1.5;  // out of [0, 1]
  EXPECT_THROW(core::validate_request(req), std::invalid_argument);
  req.fault.tile_failure_rate = 0.0;
  req.fault.unit_delay_s = -0.5;
  EXPECT_THROW(core::validate_request(req), std::invalid_argument);
}

TEST(ValidateRequest, RejectsNonHardwareResilientPrimaries) {
  core::SolveRequest req(game::battle_of_sexes());
  req.backend = "resilient";
  req.resilient_primary = "exact-sa";  // fallback wrapping fallback: nonsense
  EXPECT_THROW(core::validate_request(req), std::invalid_argument);
  req.resilient_primary = "hardware-sa-tiled";
  EXPECT_NO_THROW(core::validate_request(req));
}

// ---- SolverService: deadlines and drain -------------------------------------

TEST(ServiceDeadline, ZeroDeadlineNeverDegrades) {
  core::SolverService service({.threads = 2});
  core::SolveRequest req(game::battle_of_sexes());
  req.backend = "exact-sa";
  req.runs = 4;
  req.sa.iterations = 200;
  const core::SolveReport report = service.solve(std::move(req));
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.units_total, report.units_completed);
  EXPECT_EQ(report.samples.size(), 4u);
}

TEST(ServiceDeadline, ImmediatelyExpiredJobReturnsEmptyDegradedReport) {
  core::SolverService service({.threads = 2});
  core::SolveRequest req(game::battle_of_sexes());
  req.backend = "exact-sa";
  req.runs = 8;
  req.sa.iterations = 200;
  req.sa.batch_lanes = 1;  // one run per unit: units_total counts all 8
  req.deadline_s = 1e-9;   // expired before any worker can claim a unit
  const core::SolveReport report = service.solve(std::move(req));
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.units_total, 8u);
  EXPECT_EQ(report.units_completed, 0u);
  EXPECT_TRUE(report.samples.empty());
  EXPECT_TRUE(std::isnan(report.best_objective));
}

// The acceptance contract: a deadline-bounded solve of a 256-action game
// returns a degraded report within deadline + one unit's wall time.
TEST(ServiceDeadline, LargeGameDegradesWithinOneUnitOfTheDeadline) {
  util::Rng gen(1234);
  const game::BimatrixGame big = game::random_game(256, 256, gen);
  core::SolveRequest req(big);
  req.backend = "exact-sa";
  req.runs = 16;
  req.seed = 6;
  req.sa.iterations = 1500;
  req.sa.batch_lanes = 1;  // one run per unit

  // Time one unit inline to scale the deadline to this machine.
  const auto& backend = core::SolverRegistry::global().at("exact-sa");
  const std::unique_ptr<core::PreparedJob> probe = backend.prepare(req);
  ASSERT_EQ(probe->num_units(), 16u);
  const auto p0 = std::chrono::steady_clock::now();
  (void)probe->run_unit(0);
  const double unit_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - p0)
          .count();

  // A deadline long enough for a couple of units but far short of all 16.
  const double deadline_s = std::max(2.5 * unit_s, 0.01);
  req.deadline_s = deadline_s;
  core::SolverService service({.threads = 2});
  const auto t0 = std::chrono::steady_clock::now();
  const core::SolveReport report = service.solve(std::move(req));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.units_total, 16u);
  EXPECT_LT(report.units_completed, 16u);
  EXPECT_EQ(report.samples.size(), report.units_completed);
  // Anytime bound: deadline + one in-flight unit's wall time, with generous
  // scheduling slack (3×) so the assertion is not flaky under load.
  EXPECT_LT(wall, deadline_s + 3.0 * unit_s + 0.5);
}

TEST(ServiceDrain, RejectsSubmissionsWithServiceDrainingError) {
  core::SolverService service({.threads = 1});
  service.drain();
  core::SolveRequest req(game::battle_of_sexes());
  req.backend = "exact-sa";
  req.sa.iterations = 100;
  std::future<core::SolveReport> fut = service.submit(std::move(req));
  EXPECT_THROW(fut.get(), core::ServiceDrainingError);
}

}  // namespace
}  // namespace cnash
