#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"

namespace cnash::core {
namespace {

TEST(Metrics, ClassifiesPureMixedAndErrors) {
  const auto g = game::battle_of_sexes();
  const auto gt = game::all_equilibria(g);
  std::vector<CandidateSolution> cands = {
      {{1, 0}, {1, 0}},                          // pure NE
      {{0, 1}, {0, 1}},                          // pure NE
      {{2.0 / 3, 1.0 / 3}, {1.0 / 3, 2.0 / 3}},  // mixed NE
      {{1, 0}, {0, 1}},                          // not an NE
      {{0.5, 0.5}, {0.5, 0.5}},                  // not an NE
  };
  const auto r = classify(g, gt, cands, 1e-9);
  EXPECT_EQ(r.runs, 5u);
  EXPECT_EQ(r.pure_successes, 2u);
  EXPECT_EQ(r.mixed_successes, 1u);
  EXPECT_EQ(r.errors, 2u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.6);
  EXPECT_DOUBLE_EQ(r.error_fraction(), 0.4);
  EXPECT_EQ(r.distinct_found(), 3u);
  EXPECT_EQ(r.target(), 3u);
}

TEST(Metrics, RepeatedSolutionsCountOnceForDistinct) {
  const auto g = game::battle_of_sexes();
  const auto gt = game::all_equilibria(g);
  std::vector<CandidateSolution> cands(10, {{1, 0}, {1, 0}});
  const auto r = classify(g, gt, cands, 1e-9);
  EXPECT_EQ(r.pure_successes, 10u);
  EXPECT_EQ(r.distinct_found(), 1u);
}

TEST(Metrics, InvalidDistributionsAreErrors) {
  const auto g = game::battle_of_sexes();
  const auto gt = game::all_equilibria(g);
  std::vector<CandidateSolution> cands = {
      {{0.7, 0.7}, {1, 0}},   // not a distribution
      {{1, 0, 0}, {1, 0}},    // wrong arity
      {{}, {}},               // empty
  };
  const auto r = classify(g, gt, cands, 1e-9);
  EXPECT_EQ(r.errors, 3u);
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.0);
}

TEST(Metrics, EmptyReportSafe) {
  SolverReport r;
  EXPECT_DOUBLE_EQ(r.success_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.error_fraction(), 0.0);
  EXPECT_EQ(r.distinct_found(), 0u);
}

TEST(Metrics, SuccessNotInGroundTruthStillCountsAsSuccess) {
  // An ε-NE that matches no listed ground-truth point (e.g. truncated list):
  // counted as success but not as a distinct hit.
  const auto g = game::battle_of_sexes();
  const std::vector<game::Equilibrium> partial_gt = {{{1, 0}, {1, 0}, true}};
  std::vector<CandidateSolution> cands = {{{0, 1}, {0, 1}}};
  const auto r = classify(g, partial_gt, cands, 1e-9);
  EXPECT_EQ(r.pure_successes, 1u);
  EXPECT_EQ(r.distinct_found(), 0u);
}

TEST(Metrics, PercentFormatting) {
  EXPECT_EQ(percent(0.819, 2), "81.90");
  EXPECT_EQ(percent(1.0, 1), "100.0");
  EXPECT_EQ(percent(0.0), "0.00");
}

}  // namespace
}  // namespace cnash::core
