#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cnash::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) EXPECT_NEAR(c, draws / 10, draws / 100);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng a(99);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, KeyedSplitIsPureAndDeterministic) {
  // split(key) must not advance the parent and must be a pure function of
  // (state, key): the engine relies on this to rebuild per-run streams.
  Rng a(99), b(99);
  Rng s1 = a.split(7);
  Rng s2 = a.split(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(s1(), s2());
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());  // parent untouched
}

TEST(Rng, KeyedSplitAdjacentKeysDecorrelated) {
  Rng root(1234);
  Rng s0 = root.split(0);
  Rng s1 = root.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0() == s1()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, KeyedSplitDependsOnParentState) {
  Rng a(5), b(6);
  Rng sa = a.split(3);
  Rng sb = b.split(3);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (sa() == sb()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(23);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal();
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(50.0);   // clamps to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, DensitySumsToOne) {
  Histogram h(0.0, 1.0, 16);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) sum += h.density(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(Table, PrettyContainsHeadersAndCells) {
  Table t({"game", "rate"});
  t.add_row({"BoS", Table::num(99.5, 1)});
  const std::string s = t.pretty();
  EXPECT_NE(s.find("game"), std::string::npos);
  EXPECT_NE(s.find("99.5"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials) {
  Table t({"a"});
  t.add_row({"x,y\"z"});
  EXPECT_NE(t.csv().find("\"x,y\"\"z\""), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

}  // namespace
}  // namespace cnash::util
