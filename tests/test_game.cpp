#include <gtest/gtest.h>

#include <cmath>

#include "game/game.hpp"
#include "game/games.hpp"
#include "game/repeated_pd.hpp"
#include "game/strategy.hpp"
#include "game/verify.hpp"
#include "util/rng.hpp"

namespace cnash::game {
namespace {

TEST(BimatrixGame, ShapesValidated) {
  EXPECT_THROW(BimatrixGame(la::Matrix{{1, 2}}, la::Matrix{{1}, {2}}),
               std::invalid_argument);
}

TEST(BimatrixGame, ExpectedPayoffs) {
  const BimatrixGame g = battle_of_sexes();
  EXPECT_DOUBLE_EQ(g.expected_payoff1({1, 0}, {1, 0}), 2.0);
  EXPECT_DOUBLE_EQ(g.expected_payoff2({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(g.expected_payoff1({0.5, 0.5}, {0.5, 0.5}), 0.75);
}

TEST(BimatrixGame, RowColPayoffVectors) {
  const BimatrixGame g = battle_of_sexes();
  const la::Vector mq = g.row_payoffs({1.0 / 3, 2.0 / 3});
  EXPECT_NEAR(mq[0], 2.0 / 3, 1e-12);
  EXPECT_NEAR(mq[1], 2.0 / 3, 1e-12);
  const la::Vector ntp = g.col_payoffs({2.0 / 3, 1.0 / 3});
  EXPECT_NEAR(ntp[0], 2.0 / 3, 1e-12);
  EXPECT_NEAR(ntp[1], 2.0 / 3, 1e-12);
}

TEST(BimatrixGame, ZeroSumConstruction) {
  const BimatrixGame g = matching_pennies();
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(g.payoff1()(i, j) + g.payoff2()(i, j), 0.0);
}

TEST(BimatrixGame, ShiftedNonNegativePreservesEquilibria) {
  const BimatrixGame g = matching_pennies();
  const BimatrixGame s = g.shifted_non_negative(0.0);
  EXPECT_GE(s.payoff1().min_element(), 0.0);
  EXPECT_GE(s.payoff2().min_element(), 0.0);
  // NE of matching pennies: uniform mixing — still an NE after shift.
  EXPECT_TRUE(is_nash_equilibrium(s, {0.5, 0.5}, {0.5, 0.5}));
}

TEST(Strategy, DistributionChecks) {
  EXPECT_TRUE(is_distribution({0.25, 0.75}));
  EXPECT_FALSE(is_distribution({0.5, 0.6}));
  EXPECT_FALSE(is_distribution({-0.1, 1.1}));
  EXPECT_FALSE(is_distribution({}));
}

TEST(Strategy, SupportAndPure) {
  const la::Vector v{0.0, 0.7, 0.3};
  EXPECT_EQ(support(v), (std::vector<std::size_t>{1, 2}));
  EXPECT_DOUBLE_EQ(pure_strategy(3, 1)[1], 1.0);
  EXPECT_THROW(pure_strategy(3, 5), std::out_of_range);
  const la::Vector u = uniform_on(4, {0, 2});
  EXPECT_DOUBLE_EQ(u[0], 0.5);
  EXPECT_DOUBLE_EQ(u[1], 0.0);
}

TEST(QuantizedStrategy, ConstructionInvariants) {
  QuantizedStrategy s(3, 12);
  EXPECT_EQ(s.count(0), 12u);
  EXPECT_THROW(QuantizedStrategy({1, 2}, 12), std::invalid_argument);
  EXPECT_THROW(QuantizedStrategy(0, 12), std::invalid_argument);
  EXPECT_THROW(QuantizedStrategy(3, 0), std::invalid_argument);
}

TEST(QuantizedStrategy, FromDistributionExactGridPoint) {
  const auto s = QuantizedStrategy::from_distribution({2.0 / 3, 1.0 / 3}, 12);
  EXPECT_EQ(s.count(0), 8u);
  EXPECT_EQ(s.count(1), 4u);
}

TEST(QuantizedStrategy, FromDistributionRoundsAndPreservesTotal) {
  const auto s = QuantizedStrategy::from_distribution({0.26, 0.37, 0.37}, 10);
  std::uint32_t total = 0;
  for (auto c : s.counts()) total += c;
  EXPECT_EQ(total, 10u);
}

TEST(QuantizedStrategy, ToDistributionRoundTrip) {
  const auto s = QuantizedStrategy({3, 4, 5}, 12);
  const la::Vector d = s.to_distribution();
  EXPECT_TRUE(is_distribution(d));
  EXPECT_DOUBLE_EQ(d[0], 0.25);
  const auto back = QuantizedStrategy::from_distribution(d, 12);
  EXPECT_EQ(back, s);
}

TEST(QuantizedStrategy, MoveTick) {
  QuantizedStrategy s({6, 6}, 12);
  s.move_tick(0, 1);
  EXPECT_EQ(s.count(0), 5u);
  EXPECT_EQ(s.count(1), 7u);
  QuantizedStrategy t({0, 12}, 12);
  EXPECT_THROW(t.move_tick(0, 1), std::logic_error);
}

TEST(QuantizedStrategy, Representable) {
  EXPECT_TRUE(QuantizedStrategy::representable({2.0 / 3, 1.0 / 3}, 12));
  EXPECT_FALSE(QuantizedStrategy::representable({2.0 / 3, 1.0 / 3}, 10));
  EXPECT_TRUE(QuantizedStrategy::representable({0.25, 0.75}, 4));
}

TEST(QuantizedStrategy, RandomIsValidComposition) {
  util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = QuantizedStrategy::random(5, 12, rng);
    std::uint32_t total = 0;
    for (auto c : s.counts()) total += c;
    EXPECT_EQ(total, 12u);
  }
}

TEST(QuantizedProfile, KeyDistinguishesProfiles) {
  QuantizedProfile a{QuantizedStrategy({6, 6}, 12), QuantizedStrategy({12, 0}, 12)};
  QuantizedProfile b{QuantizedStrategy({12, 0}, 12), QuantizedStrategy({6, 6}, 12)};
  EXPECT_NE(a.key(), b.key());
  EXPECT_EQ(a.key(), a.key());
}

TEST(Verify, BattleOfSexesEquilibria) {
  const BimatrixGame g = battle_of_sexes();
  EXPECT_TRUE(is_nash_equilibrium(g, {1, 0}, {1, 0}));
  EXPECT_TRUE(is_nash_equilibrium(g, {0, 1}, {0, 1}));
  EXPECT_TRUE(is_nash_equilibrium(g, {2.0 / 3, 1.0 / 3}, {1.0 / 3, 2.0 / 3}));
  EXPECT_FALSE(is_nash_equilibrium(g, {1, 0}, {0, 1}));
  EXPECT_FALSE(is_nash_equilibrium(g, {0.5, 0.5}, {0.5, 0.5}));
}

TEST(Verify, PrisonersDilemmaOnlyDefect) {
  const BimatrixGame g = prisoners_dilemma();
  EXPECT_TRUE(is_nash_equilibrium(g, {0, 1}, {0, 1}));
  EXPECT_FALSE(is_nash_equilibrium(g, {1, 0}, {1, 0}));
}

TEST(Verify, RegretsReported) {
  const BimatrixGame g = prisoners_dilemma();
  const auto chk = check_equilibrium(g, {1, 0}, {1, 0});
  EXPECT_FALSE(chk.is_equilibrium);
  EXPECT_NEAR(chk.regret1, 2.0, 1e-12);  // defecting gains 5-3
  EXPECT_NEAR(chk.regret2, 2.0, 1e-12);
}

TEST(Verify, GapZeroExactlyAtEquilibrium) {
  const BimatrixGame g = matching_pennies();
  EXPECT_NEAR(equilibrium_gap(g, {0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  EXPECT_GT(equilibrium_gap(g, {1, 0}, {1, 0}), 0.5);
}

TEST(Verify, InvalidDistributionNotEquilibrium) {
  const BimatrixGame g = battle_of_sexes();
  EXPECT_FALSE(is_nash_equilibrium(g, {0.5, 0.6}, {1, 0}));
}

TEST(Verify, PureProfileDetection) {
  EXPECT_TRUE(is_pure_profile({1, 0}, {0, 1}));
  EXPECT_FALSE(is_pure_profile({0.5, 0.5}, {1, 0}));
}

TEST(Verify, DedupRemovesNearDuplicates) {
  std::vector<Equilibrium> eqs = {
      {{1, 0}, {1, 0}, true},
      {{1.0 - 1e-9, 1e-9}, {1, 0}, true},
      {{0, 1}, {0, 1}, true},
  };
  EXPECT_EQ(dedup(std::move(eqs)).size(), 2u);
}

TEST(Verify, MatchEquilibrium) {
  const std::vector<Equilibrium> gt = {{{1, 0}, {1, 0}, true},
                                       {{0, 1}, {0, 1}, true}};
  EXPECT_EQ(match_equilibrium(gt, {0, 1}, {0, 1}), 1u);
  EXPECT_EQ(match_equilibrium(gt, {0.5, 0.5}, {0.5, 0.5}), kNoMatch);
}

TEST(RepeatedPd, RosterHasEightDistinctAutomata) {
  const auto roster = memory_one_roster();
  EXPECT_EQ(roster.size(), 8u);
  for (std::size_t i = 0; i < roster.size(); ++i)
    for (std::size_t j = i + 1; j < roster.size(); ++j)
      EXPECT_FALSE(roster[i].first_move == roster[j].first_move &&
                   roster[i].reply_to_cooperate == roster[j].reply_to_cooperate &&
                   roster[i].reply_to_defect == roster[j].reply_to_defect);
}

TEST(RepeatedPd, AllCvsAllDPayoffs) {
  const auto roster = memory_one_roster();
  const auto& allc = roster[0];
  const auto& alld = roster[7];
  const auto [pa, pb] = play_repeated(allc, alld, 100);
  EXPECT_DOUBLE_EQ(pa, 0.0);  // sucker every round
  EXPECT_DOUBLE_EQ(pb, 5.0);  // temptation every round
}

TEST(RepeatedPd, TftVsAllDLosesOnlyFirstRound) {
  const auto roster = memory_one_roster();
  const auto& tft = roster[1];
  const auto& alld = roster[7];
  const auto [pa, pb] = play_repeated(tft, alld, 100);
  // TFT: sucker once then punishment: (0 + 99*1)/100.
  EXPECT_DOUBLE_EQ(pa, 0.99);
  EXPECT_DOUBLE_EQ(pb, (5.0 + 99.0) / 100.0);
}

TEST(RepeatedPd, MetagameIsSymmetric) {
  const BimatrixGame g = repeated_pd_metagame(32);
  EXPECT_EQ(g.num_actions1(), 8u);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_DOUBLE_EQ(g.payoff1()(i, j), g.payoff2()(j, i));
}

TEST(RepeatedPd, AllDvsAllDIsEquilibrium) {
  const BimatrixGame g = repeated_pd_metagame(64);
  la::Vector alld(8, 0.0);
  alld[7] = 1.0;
  EXPECT_TRUE(is_nash_equilibrium(g, alld, alld, 1e-9));
}

}  // namespace
}  // namespace cnash::game
