// Multi-level-cell (MLC) FeFET extension: value coding over fewer cells,
// backward compatibility with binary cells, and accuracy of the hardware
// objective across level counts.

#include <gtest/gtest.h>

#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "xbar/array.hpp"
#include "xbar/mapping.hpp"

namespace cnash {
namespace {

TEST(Mlc, CellsPerElementShrinksWithLevels) {
  const la::Matrix payoff{{9, 3}, {0, 6}};
  EXPECT_EQ(xbar::CrossbarMapping(payoff, 4, 0, 2).geometry().cells_per_element,
            9u);
  EXPECT_EQ(xbar::CrossbarMapping(payoff, 4, 0, 4).geometry().cells_per_element,
            3u);  // ceil(9/3)
  EXPECT_EQ(
      xbar::CrossbarMapping(payoff, 4, 0, 10).geometry().cells_per_element,
      1u);
  EXPECT_THROW(xbar::CrossbarMapping(payoff, 4, 2, 4), std::invalid_argument);
  EXPECT_THROW(xbar::CrossbarMapping(payoff, 4, 0, 1), std::invalid_argument);
}

TEST(Mlc, CellLevelCodingSumsToValue) {
  const la::Matrix payoff{{9}};
  const xbar::CrossbarMapping map(payoff, 2, 0, 4);  // per-cell = 3
  // 9 = 3 + 3 + 3 over ceil(9/3) = 3 cells.
  std::uint32_t total = 0;
  for (std::uint32_t k = 0; k < map.geometry().cells_per_element; ++k)
    total += map.cell_level(9, k);
  EXPECT_EQ(total, 9u);
  // Partial fill: value 7 = 3 + 3 + 1.
  EXPECT_EQ(map.cell_level(7, 0), 3u);
  EXPECT_EQ(map.cell_level(7, 1), 3u);
  EXPECT_EQ(map.cell_level(7, 2), 1u);
  EXPECT_EQ(map.cell_level(0, 0), 0u);
}

TEST(Mlc, BinaryLevelCodingMatchesLegacyUnary) {
  const la::Matrix payoff{{3, 1}, {2, 0}};
  const xbar::CrossbarMapping map(payoff, 4, 0, 2);
  for (std::uint32_t v = 0; v <= 3; ++v)
    for (std::uint32_t k = 0; k < 3; ++k)
      EXPECT_EQ(map.cell_level(v, k), k < v ? 1u : 0u);
}

TEST(Mlc, IdealMlcReadMatchesExactProduct) {
  const la::Matrix payoff{{9, 3}, {0, 6}};
  for (const std::uint32_t levels : {2u, 4u, 10u}) {
    xbar::CrossbarMapping map(payoff, 4, 0, levels);
    xbar::ArrayConfig cfg;
    cfg.ideal = true;
    util::Rng rng(7);
    const xbar::ProgrammedCrossbar xb(std::move(map), cfg, rng);
    const std::vector<std::uint32_t> rows{1, 3}, groups{2, 2};
    const double value = xb.current_to_value(xb.read_vmv(rows, groups));
    const double exact = la::vmv({0.25, 0.75}, payoff, {0.5, 0.5});
    EXPECT_NEAR(value, exact, 0.02 * exact) << "levels=" << levels;
  }
}

TEST(Mlc, UnitCurrentScalesWithLevels) {
  const la::Matrix payoff{{6}};
  xbar::ArrayConfig cfg;
  cfg.ideal = true;
  util::Rng rng(8);
  const xbar::ProgrammedCrossbar bin(xbar::CrossbarMapping(payoff, 2, 0, 2),
                                     cfg, rng);
  const xbar::ProgrammedCrossbar mlc(xbar::CrossbarMapping(payoff, 2, 0, 4),
                                     cfg, rng);
  EXPECT_NEAR(bin.unit_current(), 3.0 * mlc.unit_current(), 1e-18);
}

TEST(Mlc, IntermediateLevelsCarryExtraSpread) {
  // Compare the relative spread of a mid-level cell bundle vs a full-ON one.
  const la::Matrix mid_payoff{{1}};   // one cell at level 1 of 3 (frac 1/3)
  const la::Matrix full_payoff{{3}};  // one cell at level 3 of 3 (clamped)
  xbar::ArrayConfig cfg;  // variability on
  // Exaggerate the MLC programming spread so the effect clears the resistor
  // variability floor with 300 samples.
  cfg.variability.sigma_mlc_rel = 0.15;
  util::RunningStats mid, full;
  for (int trial = 0; trial < 300; ++trial) {
    util::Rng rng(1000 + trial);
    util::Rng rng2(1000 + trial);
    const xbar::ProgrammedCrossbar xm(
        xbar::CrossbarMapping(mid_payoff, 1, 1, 4), cfg, rng);
    const xbar::ProgrammedCrossbar xf(
        xbar::CrossbarMapping(full_payoff, 1, 1, 4), cfg, rng2);
    mid.add(xm.read_vmv({1}, {1}));
    full.add(xf.read_vmv({1}, {1}));
  }
  const double mid_rel = mid.stddev() / mid.mean();
  const double full_rel = full.stddev() / full.mean();
  EXPECT_GT(mid_rel, 1.2 * full_rel);
}

TEST(Mlc, TwoPhaseEvaluatorWorksWithMlc) {
  core::TwoPhaseConfig cfg;
  cfg.levels_per_cell = 4;
  const auto g = game::bird_game();
  core::TwoPhaseEvaluator hw(g, 12, cfg, util::Rng(9));
  core::ExactMaxQubo exact(g);
  // The MLC array must be strictly smaller than the binary one.
  core::TwoPhaseConfig bin_cfg;
  core::TwoPhaseEvaluator hw_bin(g, 12, bin_cfg, util::Rng(10));
  EXPECT_LT(hw.crossbar_m().mapping().geometry().total_cells(),
            hw_bin.crossbar_m().mapping().geometry().total_cells());
  util::Rng rng(11);
  util::RunningStats err;
  for (int t = 0; t < 100; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(3, 12, rng),
                                game::QuantizedStrategy::random(3, 12, rng)};
    err.add(hw.evaluate(prof) - exact.evaluate(prof));
  }
  EXPECT_LT(std::abs(err.mean()), 0.08);
  EXPECT_LT(err.stddev(), 0.15);
}

}  // namespace
}  // namespace cnash
