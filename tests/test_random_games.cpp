#include <gtest/gtest.h>

#include <cmath>

#include "game/random_games.hpp"
#include "game/verify.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cnash::game {
namespace {

TEST(RandomGames, ShapesAndBounds) {
  util::Rng rng(1);
  const BimatrixGame g = random_game(3, 5, rng, -2.0, 4.0);
  EXPECT_EQ(g.num_actions1(), 3u);
  EXPECT_EQ(g.num_actions2(), 5u);
  EXPECT_GE(g.payoff1().min_element(), -2.0);
  EXPECT_LE(g.payoff1().max_element(), 4.0);
  EXPECT_GE(g.payoff2().min_element(), -2.0);
  EXPECT_LE(g.payoff2().max_element(), 4.0);
}

TEST(RandomGames, ZeroSumSumsToZero) {
  util::Rng rng(2);
  const BimatrixGame g = random_zero_sum_game(4, 4, rng);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(g.payoff1()(i, j) + g.payoff2()(i, j), 0.0);
}

TEST(RandomGames, SymmetricHasTransposedPayoffs) {
  util::Rng rng(3);
  const BimatrixGame g = random_symmetric_game(5, rng);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(g.payoff2()(i, j), g.payoff1()(j, i));
}

TEST(RandomGames, CoordinationDiagonalDominates) {
  util::Rng rng(4);
  const BimatrixGame g = random_coordination_game(4, rng, 2.0, 3.0, 0.1);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_GT(g.payoff1()(i, i), g.payoff1()(i, j) + 1.0);
    }
    // Every matched pure profile is an equilibrium of a coordination game.
    la::Vector e(4, 0.0);
    e[i] = 1.0;
    EXPECT_TRUE(is_nash_equilibrium(g, e, e, 1e-9));
  }
}

TEST(RandomGames, IntegerPayoffsAreIntegers) {
  util::Rng rng(5);
  const BimatrixGame g = random_integer_game(4, 6, rng, 0, 7);
  for (double v : g.payoff1().data()) {
    EXPECT_DOUBLE_EQ(v, std::round(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 7.0);
  }
}

TEST(RandomGames, DistinctDraws) {
  util::Rng rng(6);
  const BimatrixGame a = random_game(3, 3, rng);
  const BimatrixGame b = random_game(3, 3, rng);
  EXPECT_FALSE(a.payoff1() == b.payoff1());
}

TEST(RandomGames, PayoffsRoughlyUniform) {
  util::Rng rng(7);
  util::RunningStats stats;
  for (int t = 0; t < 200; ++t) {
    const BimatrixGame g = random_game(4, 4, rng, 0.0, 1.0);
    for (double v : g.payoff1().data()) stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.02);
}

}  // namespace
}  // namespace cnash::game
