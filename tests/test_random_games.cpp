#include <gtest/gtest.h>

#include <cmath>

#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "game/verify.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cnash::game {
namespace {

TEST(RandomGames, ShapesAndBounds) {
  util::Rng rng(1);
  const BimatrixGame g = random_game(3, 5, rng, -2.0, 4.0);
  EXPECT_EQ(g.num_actions1(), 3u);
  EXPECT_EQ(g.num_actions2(), 5u);
  EXPECT_GE(g.payoff1().min_element(), -2.0);
  EXPECT_LE(g.payoff1().max_element(), 4.0);
  EXPECT_GE(g.payoff2().min_element(), -2.0);
  EXPECT_LE(g.payoff2().max_element(), 4.0);
}

TEST(RandomGames, ZeroSumSumsToZero) {
  util::Rng rng(2);
  const BimatrixGame g = random_zero_sum_game(4, 4, rng);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(g.payoff1()(i, j) + g.payoff2()(i, j), 0.0);
}

TEST(RandomGames, SymmetricHasTransposedPayoffs) {
  util::Rng rng(3);
  const BimatrixGame g = random_symmetric_game(5, rng);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_DOUBLE_EQ(g.payoff2()(i, j), g.payoff1()(j, i));
}

TEST(RandomGames, CoordinationDiagonalDominates) {
  util::Rng rng(4);
  const BimatrixGame g = random_coordination_game(4, rng, 2.0, 3.0, 0.1);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_GT(g.payoff1()(i, i), g.payoff1()(i, j) + 1.0);
    }
    // Every matched pure profile is an equilibrium of a coordination game.
    la::Vector e(4, 0.0);
    e[i] = 1.0;
    EXPECT_TRUE(is_nash_equilibrium(g, e, e, 1e-9));
  }
}

TEST(RandomGames, IntegerPayoffsAreIntegers) {
  util::Rng rng(5);
  const BimatrixGame g = random_integer_game(4, 6, rng, 0, 7);
  for (double v : g.payoff1().data()) {
    EXPECT_DOUBLE_EQ(v, std::round(v));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 7.0);
  }
}

TEST(RandomGames, DistinctDraws) {
  util::Rng rng(6);
  const BimatrixGame a = random_game(3, 3, rng);
  const BimatrixGame b = random_game(3, 3, rng);
  EXPECT_FALSE(a.payoff1() == b.payoff1());
}

TEST(RandomGames, PayoffsRoughlyUniform) {
  util::Rng rng(7);
  util::RunningStats stats;
  for (int t = 0; t < 200; ++t) {
    const BimatrixGame g = random_game(4, 4, rng, 0.0, 1.0);
    for (double v : g.payoff1().data()) stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.02);
}

TEST(RandomGames, DominanceSolvableHasUniquePureEquilibrium) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(4);
    const std::size_t m = 2 + rng.uniform_index(4);
    const BimatrixGame g = random_dominance_solvable_game(n, m, rng);
    EXPECT_EQ(g.num_actions1(), n);
    EXPECT_EQ(g.num_actions2(), m);
    // Integer, non-negative payoffs (hardware-mappable).
    for (const la::Matrix* mat : {&g.payoff1(), &g.payoff2()})
      for (double v : mat->data()) {
        EXPECT_GE(v, 0.0);
        EXPECT_DOUBLE_EQ(v, std::round(v));
      }
    // Iterated strict dominance preserves the equilibrium set, so the
    // surviving single cell is the game's unique (pure) equilibrium.
    const auto eqs = all_equilibria(g);
    ASSERT_EQ(eqs.size(), 1u) << "trial " << trial;
    std::size_t support1 = 0, support2 = 0;
    for (double v : eqs.front().p)
      if (v > 1e-9) ++support1;
    for (double v : eqs.front().q)
      if (v > 1e-9) ++support2;
    EXPECT_EQ(support1, 1u);
    EXPECT_EQ(support2, 1u);
  }
}

TEST(RandomGames, DominanceSolvableShufflesTheEquilibriumCell) {
  // The action relabeling must not leave the equilibrium pinned at (0,0).
  util::Rng rng(13);
  bool off_origin = false;
  for (int trial = 0; trial < 10 && !off_origin; ++trial) {
    const auto eqs = all_equilibria(random_dominance_solvable_game(4, 4, rng));
    ASSERT_EQ(eqs.size(), 1u);
    off_origin = eqs.front().p[0] < 0.5 || eqs.front().q[0] < 0.5;
  }
  EXPECT_TRUE(off_origin);
}

TEST(RandomGames, CovariantCorrelationExtremes) {
  util::Rng rng(17);
  // rho = -1: exactly zero-sum; rho = +1: exactly common interest.
  const BimatrixGame zs = random_covariant_game(5, 6, -1.0, rng);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(zs.payoff2()(i, j), -zs.payoff1()(i, j));
  const BimatrixGame ci = random_covariant_game(5, 6, 1.0, rng);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_DOUBLE_EQ(ci.payoff2()(i, j), ci.payoff1()(i, j));
  EXPECT_THROW(random_covariant_game(3, 3, 1.5, rng), std::invalid_argument);
}

TEST(RandomGames, CovariantCorrelationTracksRho) {
  util::Rng rng(19);
  for (const double rho : {-0.8, 0.0, 0.8}) {
    // Empirical payoff-pair correlation over many cells.
    double sa = 0.0, sb = 0.0, saa = 0.0, sbb = 0.0, sab = 0.0;
    const std::size_t n = 40, m = 40;
    const BimatrixGame g = random_covariant_game(n, m, rho, rng);
    const double cells = static_cast<double>(n * m);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < m; ++j) {
        const double a = g.payoff1()(i, j), b = g.payoff2()(i, j);
        sa += a;
        sb += b;
        saa += a * a;
        sbb += b * b;
        sab += a * b;
      }
    const double cov = sab / cells - (sa / cells) * (sb / cells);
    const double var_a = saa / cells - (sa / cells) * (sa / cells);
    const double var_b = sbb / cells - (sb / cells) * (sb / cells);
    const double corr = cov / std::sqrt(var_a * var_b);
    EXPECT_NEAR(corr, rho, 0.08) << "rho " << rho;
  }
}

}  // namespace
}  // namespace cnash::game
