#include <gtest/gtest.h>

#include <algorithm>

#include "game/games.hpp"
#include "game/lemke_howson.hpp"
#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "util/rng.hpp"

namespace cnash::game {
namespace {

TEST(LemkeHowson, FindsEquilibriumOfPrisonersDilemma) {
  const BimatrixGame g = prisoners_dilemma();
  const auto eq = lemke_howson(g, 0);
  ASSERT_TRUE(eq.has_value());
  EXPECT_TRUE(is_nash_equilibrium(g, eq->p, eq->q, 1e-6));
  EXPECT_NEAR(eq->p[1], 1.0, 1e-9);
  EXPECT_NEAR(eq->q[1], 1.0, 1e-9);
}

TEST(LemkeHowson, FindsMixedEquilibriumOfMatchingPennies) {
  const BimatrixGame g = matching_pennies();
  const auto eq = lemke_howson(g, 0);
  ASSERT_TRUE(eq.has_value());
  EXPECT_NEAR(eq->p[0], 0.5, 1e-9);
  EXPECT_NEAR(eq->q[0], 0.5, 1e-9);
}

TEST(LemkeHowson, EveryLabelYieldsValidEquilibrium) {
  const BimatrixGame g = battle_of_sexes();
  for (std::size_t lbl = 0; lbl < 4; ++lbl) {
    const auto eq = lemke_howson(g, lbl);
    if (!eq) continue;  // degenerate path allowed, but most labels succeed
    EXPECT_TRUE(is_nash_equilibrium(g, eq->p, eq->q, 1e-6));
  }
}

TEST(LemkeHowson, LabelOutOfRangeThrows) {
  EXPECT_THROW(lemke_howson(battle_of_sexes(), 4), std::out_of_range);
}

TEST(LemkeHowson, AllLabelsSubsetOfSupportEnumeration) {
  util::Rng rng(2718);
  for (int trial = 0; trial < 25; ++trial) {
    const BimatrixGame g = random_game(3, 4, rng);
    const auto lh = lemke_howson_all_labels(g);
    const auto se = all_equilibria(g);
    for (const auto& eq : lh) {
      const bool found =
          std::any_of(se.begin(), se.end(), [&](const Equilibrium& e) {
            return e.matches(eq.p, eq.q, 1e-5);
          });
      EXPECT_TRUE(found) << "LH equilibrium missing from support enumeration";
    }
  }
}

TEST(LemkeHowson, FindsAtLeastOneOnRandomGames) {
  util::Rng rng(31415);
  int solved = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const BimatrixGame g = random_game(4, 4, rng);
    if (!lemke_howson_all_labels(g).empty()) ++solved;
  }
  // LH can fail on degenerate paths but should succeed nearly always.
  EXPECT_GE(solved, trials - 2);
}

TEST(LemkeHowson, ScalesToLargerGames) {
  util::Rng rng(555);
  const BimatrixGame g = random_game(10, 10, rng);
  const auto eqs = lemke_howson_all_labels(g);
  ASSERT_FALSE(eqs.empty());
  for (const auto& e : eqs) EXPECT_TRUE(is_nash_equilibrium(g, e.p, e.q, 1e-6));
}

}  // namespace
}  // namespace cnash::game
