// End-to-end integration tests: the full C-Nash stack (game -> bi-crossbar ->
// WTA -> two-phase SA -> metrics) against the ground-truth solvers, plus the
// S-QUBO / D-Wave proxy pipeline on the same games.

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "core/timing.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "qubo/dwave_proxy.hpp"

namespace cnash::core {
namespace {

std::vector<CandidateSolution> to_candidates(
    const std::vector<SolveSample>& outcomes) {
  std::vector<CandidateSolution> c;
  c.reserve(outcomes.size());
  for (const auto& o : outcomes) c.push_back({o.p, o.q});
  return c;
}

TEST(Integration, CNashFindsAllBattleOfSexesSolutionsOnHardware) {
  CNashConfig cfg;
  cfg.intervals = 12;
  cfg.sa.iterations = 6000;
  cfg.seed = 91;
  CNashSolver solver(game::battle_of_sexes(), cfg);
  const auto gt = game::all_equilibria(solver.game());
  const auto report =
      classify(solver.game(), gt, to_candidates(solver.run(60)), 1e-9);
  EXPECT_GE(report.success_rate(), 0.9);
  EXPECT_EQ(report.distinct_found(), 3u);
}

TEST(Integration, CNashFindsMixedBirdGameSolutionsOnHardware) {
  CNashConfig cfg;
  cfg.intervals = 12;
  cfg.sa.iterations = 8000;
  cfg.seed = 92;
  CNashSolver solver(game::bird_game(), cfg);
  const auto gt = game::all_equilibria(solver.game());
  const auto report =
      classify(solver.game(), gt, to_candidates(solver.run(80)), 1e-9);
  EXPECT_GE(report.success_rate(), 0.6);
  EXPECT_GT(report.mixed_successes, 0u);
  EXPECT_GE(report.distinct_found(), 5u);
}

TEST(Integration, DWaveProxyFindsOnlyPureSolutions) {
  util::Rng rng(93);
  const auto g = game::bird_game();
  const auto gt = game::all_equilibria(g);
  const qubo::DWaveProxy proxy(g, qubo::dwave_2000q6_config());
  std::vector<CandidateSolution> cands;
  for (const auto& s : proxy.run(100, rng)) cands.push_back({s.p, s.q});
  const auto report = classify(g, gt, cands, 1e-9);
  EXPECT_EQ(report.mixed_successes, 0u);  // binary variables: pure only
  EXPECT_LE(report.distinct_found(), 3u);
}

TEST(Integration, CNashBeatsDWaveProxyOnSolutionCoverage) {
  // The headline qualitative claim: C-Nash recovers pure AND mixed equilibria,
  // the S-QUBO annealer only a subset of the pure ones.
  const auto g = game::bird_game();
  const auto gt = game::all_equilibria(g);

  CNashConfig cfg;
  cfg.intervals = 12;
  cfg.sa.iterations = 8000;
  cfg.seed = 94;
  CNashSolver solver(g, cfg);
  const auto cnash_report =
      classify(g, gt, to_candidates(solver.run(80)), 1e-9);

  util::Rng rng(95);
  const qubo::DWaveProxy proxy(g, qubo::dwave_advantage41_config());
  std::vector<CandidateSolution> dwave_cands;
  for (const auto& s : proxy.run(80, rng)) dwave_cands.push_back({s.p, s.q});
  const auto dwave_report = classify(g, gt, dwave_cands, 1e-9);

  EXPECT_GT(cnash_report.distinct_found(), dwave_report.distinct_found());
}

TEST(Integration, CNashTimeToSolutionBeatsDWaveModel) {
  const xbar::MappingGeometry geom{2, 2, 12, 2};
  const CNashTimingModel cnash_t;
  const DWaveTimingModel dwave_t(dwave_2000q6_timing());
  const double c = cnash_t.time_to_solution_s(geom, 10000, 1.0);
  const double d = dwave_t.time_to_solution_s(0.99);
  EXPECT_GT(d / c, 50.0);
}

TEST(Integration, ExactAndHardwareBackendsAgreeOnSuccess) {
  CNashConfig hw_cfg;
  hw_cfg.intervals = 12;
  hw_cfg.sa.iterations = 5000;
  hw_cfg.seed = 96;
  CNashConfig sw_cfg = hw_cfg;
  sw_cfg.use_hardware = false;

  const auto g = game::battle_of_sexes();
  const auto gt = game::all_equilibria(g);
  CNashSolver hw(g, hw_cfg);
  CNashSolver sw(g, sw_cfg);
  const auto rh = classify(g, gt, to_candidates(hw.run(40)), 1e-9);
  const auto rs = classify(g, gt, to_candidates(sw.run(40)), 1e-9);
  EXPECT_NEAR(rh.success_rate(), rs.success_rate(), 0.25);
}

TEST(Integration, ModifiedPdHardwareRunsEndToEnd) {
  // Smoke-scale version of the paper's largest instance (I = 60 grid).
  CNashConfig cfg;
  cfg.intervals = 60;
  cfg.sa.iterations = 3000;
  cfg.seed = 97;
  CNashSolver solver(game::modified_prisoners_dilemma(), cfg);
  const auto outcomes = solver.run(3);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(game::is_distribution(o.p));
    EXPECT_TRUE(game::is_distribution(o.q));
    EXPECT_GE(o.objective, -1.0);  // hardware noise can dip slightly below 0
  }
}

}  // namespace
}  // namespace cnash::core
