// The Nash-serving gateway (src/serve/). Contracts under test:
//   * canonicalization: permuted-but-identical games (and their solve
//     parameters) share a GameKey, near-identical games never do, and
//     map_to_original() inverts the canonical permutation;
//   * SolutionCache: LRU eviction order under a byte budget, hit/miss/
//     eviction counters, and a cached report bit-identical to a fresh solve
//     with the same seed;
//   * AdmissionController: per-connection cap, global watermark, growing
//     retry_after hints;
//   * end-to-end over loopback TCP: every registered backend round-trips a
//     solve (including hardware-sa-tiled), a repeated identical request is
//     served from the cache (hit counter up, no new SolverService job,
//     byte-identical report), load shedding returns retry_after instead of
//     queueing unbounded work, malformed requests get structured errors, and
//     request_stop() drains gracefully.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/report_json.hpp"
#include "game/games.hpp"
#include "game/parse.hpp"
#include "game/random_games.hpp"
#include "serve/line_client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace cnash::serve {
namespace {

// ---- helpers ----------------------------------------------------------------

core::SolveRequest quick_request(const game::BimatrixGame& g,
                                 const std::string& backend = "exact-sa",
                                 std::size_t runs = 4, std::uint64_t seed = 7) {
  core::SolveRequest req(g);
  req.backend = backend;
  req.runs = runs;
  req.seed = seed;
  req.sa.iterations = 300;
  return req;
}

game::BimatrixGame permute_game(const game::BimatrixGame& g,
                                const std::vector<std::uint32_t>& rows,
                                const std::vector<std::uint32_t>& cols,
                                const std::string& name) {
  la::Matrix m(g.num_actions1(), g.num_actions2());
  la::Matrix n(g.num_actions1(), g.num_actions2());
  for (std::size_t r = 0; r < g.num_actions1(); ++r)
    for (std::size_t c = 0; c < g.num_actions2(); ++c) {
      m(r, c) = g.payoff1()(rows[r], cols[c]);
      n(r, c) = g.payoff2()(rows[r], cols[c]);
    }
  return game::BimatrixGame(std::move(m), std::move(n), name);
}

std::string fingerprint_no_wall_clock(const core::SolveReport& r) {
  // Everything the determinism guarantee covers; reuses the canonical JSON
  // rendering (wall_clock_s zeroed — it is measured, not derived).
  core::SolveReport copy = r;
  copy.wall_clock_s = 0.0;
  return core::report_to_json(copy).dump();
}

/// serve::LineClient plus gtest-flavoured helpers for the loopback tests.
class TestClient {
 public:
  void connect_to(std::uint16_t port) {
    ASSERT_TRUE(client_.connect_to(port)) << std::strerror(errno);
  }
  void send_line(const std::string& line) {
    ASSERT_TRUE(client_.send_line(line)) << std::strerror(errno);
  }
  /// False on orderly EOF.
  bool recv_line(std::string& line) { return client_.recv_line(line); }

  util::Json request(const std::string& line) {
    send_line(line);
    std::string response;
    EXPECT_TRUE(recv_line(response));
    return util::Json::parse(response);
  }

 private:
  LineClient client_;
};

/// Boots a NashServer on an ephemeral loopback port in a background thread
/// and joins it on teardown (graceful drain via request_stop()).
class ServerFixture {
 public:
  explicit ServerFixture(ServeOptions options = {}) : server_(options) {
    server_.start();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ServerFixture() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_.request_stop();
    thread_.join();
  }

  NashServer& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  NashServer server_;
  std::thread thread_;
};

std::string solve_line(const game::BimatrixGame& g, int id,
                       const std::string& backend = "exact-sa",
                       std::size_t runs = 4, std::size_t iterations = 300,
                       std::uint64_t seed = 7, const std::string& extra = "") {
  std::string line = "{\"method\":\"solve\",\"id\":" + std::to_string(id);
  line += ",\"game_text\":" +
          util::Json::string(game::serialize_game(g, /*precision=*/12)).dump();
  line += ",\"backend\":\"" + backend + "\"";
  line += ",\"runs\":" + std::to_string(runs);
  line += ",\"iterations\":" + std::to_string(iterations);
  line += ",\"seed\":" + std::to_string(seed);
  line += extra;
  line += "}";
  return line;
}

// ---- canonicalization -------------------------------------------------------

TEST(Canonicalization, PermutedButIdenticalGamesShareAKey) {
  util::Rng rng(42);
  const game::BimatrixGame g = game::random_covariant_game(6, 5, 0.3, rng);
  const CanonicalRequest base = canonicalize(quick_request(g));

  std::vector<std::uint32_t> rows(6), cols(5);
  std::iota(rows.begin(), rows.end(), 0u);
  std::iota(cols.begin(), cols.end(), 0u);
  for (int trial = 0; trial < 8; ++trial) {
    for (std::size_t i = rows.size(); i > 1; --i)
      std::swap(rows[i - 1], rows[rng.uniform_index(i)]);
    for (std::size_t i = cols.size(); i > 1; --i)
      std::swap(cols[i - 1], cols[rng.uniform_index(i)]);
    const game::BimatrixGame shuffled =
        permute_game(g, rows, cols, "another name entirely");
    const CanonicalRequest other = canonicalize(quick_request(shuffled));
    EXPECT_EQ(other.key.digest, base.key.digest) << "trial " << trial;
    EXPECT_EQ(other.key.blob, base.key.blob) << "trial " << trial;
    // Same canonical game, different recorded permutations.
    EXPECT_EQ(other.request.game.payoff1(), base.request.game.payoff1());
    EXPECT_EQ(other.request.game.payoff2(), base.request.game.payoff2());
  }
}

TEST(Canonicalization, NearIdenticalGamesAndParamsHashDifferent) {
  util::Rng rng(43);
  const game::BimatrixGame g = game::random_covariant_game(4, 4, 0.0, rng);
  const CanonicalRequest base = canonicalize(quick_request(g));

  // One payoff nudged by 1 ulp-scale epsilon → different key.
  la::Matrix m = g.payoff1();
  m(2, 3) += 1e-12;
  const game::BimatrixGame nudged(m, g.payoff2(), g.name());
  EXPECT_NE(canonicalize(quick_request(nudged)).key.blob, base.key.blob);

  // Any result-affecting parameter change → different key.
  core::SolveRequest req = quick_request(g);
  req.seed = 8;
  EXPECT_NE(canonicalize(req).key.blob, base.key.blob);
  req = quick_request(g);
  req.backend = "hardware-sa";
  EXPECT_NE(canonicalize(req).key.blob, base.key.blob);
  req = quick_request(g);
  req.runs = 5;
  EXPECT_NE(canonicalize(req).key.blob, base.key.blob);
  req = quick_request(g);
  req.sa.iterations = 301;
  EXPECT_NE(canonicalize(req).key.blob, base.key.blob);
  req = quick_request(g);
  req.chip.tile_rows = 32;
  EXPECT_NE(canonicalize(req).key.blob, base.key.blob);

  // ... but max_parallelism is scheduling-only and must NOT split the key.
  req = quick_request(g);
  req.max_parallelism = 3;
  EXPECT_EQ(canonicalize(req).key.blob, base.key.blob);
  // Neither does the game's display name.
  const game::BimatrixGame renamed(g.payoff1(), g.payoff2(), "other");
  EXPECT_EQ(canonicalize(quick_request(renamed)).key.blob, base.key.blob);
}

TEST(Canonicalization, MapToOriginalInvertsThePermutation) {
  util::Rng rng(44);
  const game::BimatrixGame g = game::random_covariant_game(5, 4, -0.5, rng);
  const CanonicalRequest canonical = canonicalize(quick_request(g));

  // Solve the canonical game, map back, and check the mapping element-wise.
  const core::SolveReport canon_report =
      core::SolverRegistry::global().at("exact-sa").solve(canonical.request);
  const core::SolveReport mapped =
      map_to_original(canonical.mapping, canon_report);
  EXPECT_EQ(mapped.game_name, g.name());
  ASSERT_EQ(mapped.samples.size(), canon_report.samples.size());
  for (std::size_t s = 0; s < mapped.samples.size(); ++s) {
    for (std::size_t i = 0; i < canonical.mapping.row_perm.size(); ++i)
      EXPECT_EQ(mapped.samples[s].p[canonical.mapping.row_perm[i]],
                canon_report.samples[s].p[i]);
    for (std::size_t j = 0; j < canonical.mapping.col_perm.size(); ++j)
      EXPECT_EQ(mapped.samples[s].q[canonical.mapping.col_perm[j]],
                canon_report.samples[s].q[j]);
  }
}

// ---- solution cache ---------------------------------------------------------

GameKey fake_key(char tag) {
  GameKey key;
  key.blob = std::string("key-") + tag;
  key.digest = static_cast<std::uint64_t>(tag);
  return key;
}

std::shared_ptr<const core::SolveReport> small_report(char tag) {
  core::SolveReport report;
  report.backend = "test";
  report.game_name = std::string(1, tag);
  core::SolveSample s;
  s.p = {1.0, 0.0};
  s.q = {0.0, 1.0};
  report.samples = {s};
  return std::make_shared<const core::SolveReport>(std::move(report));
}

TEST(SolutionCache, LruEvictionOrderUnderByteBudget) {
  // Measure the exact accounted size of one entry, then budget for three.
  std::size_t entry_bytes = 0;
  {
    SolutionCache probe(1u << 20);
    probe.insert(fake_key('a'), small_report('a'));
    entry_bytes = probe.stats().bytes;
  }
  SolutionCache cache(3 * entry_bytes + entry_bytes / 2);  // fits 3 entries

  cache.insert(fake_key('a'), small_report('a'));
  cache.insert(fake_key('b'), small_report('b'));
  cache.insert(fake_key('c'), small_report('c'));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch 'a' so 'b' becomes least recently used, then overflow with 'd'.
  ASSERT_NE(cache.lookup(fake_key('a')), nullptr);
  cache.insert(fake_key('d'), small_report('d'));

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(fake_key('b')), nullptr) << "LRU entry must go first";
  EXPECT_NE(cache.lookup(fake_key('a')), nullptr);
  EXPECT_NE(cache.lookup(fake_key('c')), nullptr);
  EXPECT_NE(cache.lookup(fake_key('d')), nullptr);
  EXPECT_EQ(cache.stats().hits, 4u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_LE(cache.stats().bytes, cache.stats().byte_budget);
}

TEST(SolutionCache, OversizeReportsAreNeverAdmitted) {
  SolutionCache cache(64);  // smaller than any real report
  cache.insert(fake_key('a'), small_report('a'));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().oversize_rejects, 1u);
  EXPECT_EQ(cache.lookup(fake_key('a')), nullptr);
}

TEST(SolutionCache, CachedReportIsBitIdenticalToAFreshSolveWithTheSameSeed) {
  const game::BimatrixGame g = game::bird_game();
  const CanonicalRequest canonical =
      canonicalize(quick_request(g, "hardware-sa", 3, 99));

  const core::SolveReport first =
      core::SolverRegistry::global().at("hardware-sa").solve(canonical.request);
  SolutionCache cache(1u << 20);
  cache.insert(canonical.key, std::make_shared<const core::SolveReport>(first));

  const std::shared_ptr<const core::SolveReport> replay =
      cache.lookup(canonical.key);
  ASSERT_NE(replay, nullptr);
  const core::SolveReport fresh =
      core::SolverRegistry::global().at("hardware-sa").solve(canonical.request);
  EXPECT_EQ(fingerprint_no_wall_clock(*replay),
            fingerprint_no_wall_clock(fresh));
  // Replay preserves the *original* measured wall clock and modeled timing.
  EXPECT_EQ(replay->wall_clock_s, first.wall_clock_s);
  EXPECT_EQ(replay->modeled_time_s, first.modeled_time_s);
}

// ---- admission --------------------------------------------------------------

TEST(Admission, CapsAndWatermarkAndRetryHints) {
  AdmissionController admission({/*max_queue_depth=*/2,
                                 /*per_connection_inflight=*/1,
                                 /*retry_after_s=*/0.5});
  using Verdict = AdmissionController::Verdict;
  EXPECT_EQ(admission.admit(0, 0), Verdict::kAdmit);
  EXPECT_EQ(admission.admit(0, 1), Verdict::kShedConnectionCap);
  EXPECT_EQ(admission.admit(2, 0), Verdict::kShedQueueFull);
  EXPECT_EQ(admission.stats().admitted, 1u);
  EXPECT_EQ(admission.stats().shed_connection_cap, 1u);
  EXPECT_EQ(admission.stats().shed_queue_full, 1u);
  // base × (1 + backlog/watermark): base when empty, 2×base at the
  // watermark — the deepest backlog a shed request can observe.
  EXPECT_DOUBLE_EQ(admission.retry_after_s(0), 0.5);
  EXPECT_DOUBLE_EQ(admission.retry_after_s(1), 0.75);
  EXPECT_DOUBLE_EQ(admission.retry_after_s(2), 1.0);
}

// ---- end-to-end over loopback ----------------------------------------------

TEST(ServeEndToEnd, EveryRegisteredBackendRoundTripsASolve) {
  ServerFixture fixture;
  TestClient client;
  client.connect_to(fixture.port());

  const game::BimatrixGame g = game::battle_of_sexes();
  int id = 0;
  for (const std::string& backend : core::SolverRegistry::global().names()) {
    const util::Json response =
        client.request(solve_line(g, id++, backend, 6, 300, 2024));
    ASSERT_TRUE(response.at("ok").as_bool()) << backend << ": "
                                             << response.dump();
    EXPECT_FALSE(response.at("cached").as_bool()) << backend;
    const core::SolveReport report =
        core::report_from_json(response.at("report"));
    EXPECT_EQ(report.backend, backend);
    EXPECT_EQ(report.game_name, g.name()) << backend;
    EXPECT_FALSE(report.samples.empty()) << backend;
    for (const core::SolveSample& s : report.samples) {
      EXPECT_EQ(s.p.size(), g.num_actions1()) << backend;
      EXPECT_EQ(s.q.size(), g.num_actions2()) << backend;
    }
  }
}

TEST(ServeEndToEnd, RepeatedIdenticalRequestIsServedFromTheCache) {
  ServerFixture fixture;
  TestClient client;
  client.connect_to(fixture.port());
  const game::BimatrixGame g = game::bird_game();

  const util::Json cold =
      client.request(solve_line(g, 1, "hardware-sa", 4, 400, 51966));
  ASSERT_TRUE(cold.at("ok").as_bool()) << cold.dump();
  EXPECT_FALSE(cold.at("cached").as_bool());

  const util::Json warm =
      client.request(solve_line(g, 2, "hardware-sa", 4, 400, 51966));
  ASSERT_TRUE(warm.at("ok").as_bool()) << warm.dump();
  EXPECT_TRUE(warm.at("cached").as_bool());
  // Byte-identical report (rendering is deterministic, replay is exact —
  // including the modeled timing and the original measured wall clock).
  EXPECT_EQ(warm.at("report").dump(), cold.at("report").dump());

  // Hit counter incremented, and no new SolverService job was submitted.
  const util::Json stats = client.request("{\"method\":\"stats\"}");
  ASSERT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("stats").at("cache").at("hits").as_number(), 1.0);
  EXPECT_EQ(stats.at("stats").at("cache").at("misses").as_number(), 1.0);
  EXPECT_EQ(stats.at("stats").at("served").at("jobs_submitted").as_number(),
            1.0);

  // A different seed is a different solve: miss, new job.
  const util::Json other =
      client.request(solve_line(g, 3, "hardware-sa", 4, 400, 51967));
  ASSERT_TRUE(other.at("ok").as_bool());
  EXPECT_FALSE(other.at("cached").as_bool());
  EXPECT_NE(other.at("report").dump(), cold.at("report").dump());
}

TEST(ServeEndToEnd, PermutedGameIsServedFromTheCacheInItsOwnActionOrder) {
  ServerFixture fixture;
  TestClient client;
  client.connect_to(fixture.port());

  const game::BimatrixGame g = game::battle_of_sexes();
  const game::BimatrixGame swapped =
      permute_game(g, {1, 0}, {1, 0}, "swapped bos");

  const util::Json cold = client.request(solve_line(g, 1, "exact-sa", 5, 400));
  ASSERT_TRUE(cold.at("ok").as_bool());
  const util::Json hit =
      client.request(solve_line(swapped, 2, "exact-sa", 5, 400));
  ASSERT_TRUE(hit.at("ok").as_bool()) << hit.dump();
  EXPECT_TRUE(hit.at("cached").as_bool())
      << "permuted-but-identical game must hit the cache";

  // Same solve, reported in the caller's (swapped) action order.
  const core::SolveReport a = core::report_from_json(cold.at("report"));
  const core::SolveReport b = core::report_from_json(hit.at("report"));
  EXPECT_EQ(b.game_name, "swapped bos");
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t s = 0; s < a.samples.size(); ++s) {
    EXPECT_EQ(a.samples[s].p[0], b.samples[s].p[1]);
    EXPECT_EQ(a.samples[s].p[1], b.samples[s].p[0]);
    EXPECT_EQ(a.samples[s].q[0], b.samples[s].q[1]);
    EXPECT_EQ(a.samples[s].q[1], b.samples[s].q[0]);
    EXPECT_EQ(a.samples[s].is_nash, b.samples[s].is_nash);
  }
}

TEST(ServeEndToEnd, LoadSheddingReturnsRetryAfterInsteadOfQueueing) {
  // A watermark of zero sheds every solve that is not answered by the cache:
  // the deterministic way to exercise the queue-full path.
  ServeOptions options;
  options.admission.max_queue_depth = 0;
  options.admission.retry_after_s = 0.25;
  ServerFixture fixture(options);
  TestClient client;
  client.connect_to(fixture.port());

  const util::Json shed =
      client.request(solve_line(game::battle_of_sexes(), 9, "exact-sa"));
  ASSERT_FALSE(shed.at("ok").as_bool());
  EXPECT_EQ(shed.at("error").at("code").as_string(), "overloaded");
  EXPECT_GE(shed.at("retry_after_s").as_number(), 0.25);
  EXPECT_EQ(shed.at("id").as_number(), 9.0);

  const util::Json stats = client.request("{\"method\":\"stats\"}");
  EXPECT_EQ(
      stats.at("stats").at("admission").at("shed_queue_full").as_number(),
      1.0);
  EXPECT_EQ(stats.at("stats").at("served").at("jobs_submitted").as_number(),
            0.0);
}

TEST(ServeEndToEnd, PerConnectionInflightCapSheds) {
  ServeOptions options;
  options.admission.per_connection_inflight = 1;
  options.service_threads = 1;
  ServerFixture fixture(options);
  TestClient client;
  client.connect_to(fixture.port());

  // Pipeline two solves without waiting: the first occupies the connection's
  // single in-flight slot (a slow hardware solve), the second must shed.
  util::Rng rng(7);
  const game::BimatrixGame big = game::random_integer_game(12, 12, rng);
  client.send_line(solve_line(big, 1, "hardware-sa", 8, 20000));
  client.send_line(solve_line(big, 2, "hardware-sa", 8, 20000, 8));

  // The shed response arrives first (the solve is still running).
  std::string line;
  ASSERT_TRUE(client.recv_line(line));
  const util::Json shed = util::Json::parse(line);
  ASSERT_FALSE(shed.at("ok").as_bool()) << line;
  EXPECT_EQ(shed.at("id").as_number(), 2.0);
  EXPECT_EQ(shed.at("error").at("code").as_string(), "overloaded");
  EXPECT_GT(shed.at("retry_after_s").as_number(), 0.0);

  ASSERT_TRUE(client.recv_line(line));
  const util::Json solved = util::Json::parse(line);
  EXPECT_TRUE(solved.at("ok").as_bool()) << line;
  EXPECT_EQ(solved.at("id").as_number(), 1.0);
}

TEST(ServeEndToEnd, CoalescedDuplicatesStillRespectTheConnectionCap) {
  // Duplicates of an in-flight solve occupy waiter slots and output buffers,
  // so they must not bypass the per-connection in-flight cap.
  ServeOptions options;
  options.admission.per_connection_inflight = 1;
  options.service_threads = 1;
  ServerFixture fixture(options);
  TestClient client;
  client.connect_to(fixture.port());

  util::Rng rng(17);
  const game::BimatrixGame big = game::random_integer_game(10, 10, rng);
  client.send_line(solve_line(big, 1, "hardware-sa", 6, 20000));
  client.send_line(solve_line(big, 2, "hardware-sa", 6, 20000));  // identical

  std::string line;
  ASSERT_TRUE(client.recv_line(line));
  const util::Json shed = util::Json::parse(line);
  ASSERT_FALSE(shed.at("ok").as_bool()) << line;
  EXPECT_EQ(shed.at("id").as_number(), 2.0);
  EXPECT_EQ(shed.at("error").at("code").as_string(), "overloaded");

  ASSERT_TRUE(client.recv_line(line));
  EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool()) << line;
}

TEST(ServeEndToEnd, MalformedRequestsGetStructuredErrors) {
  ServerFixture fixture;
  TestClient client;
  client.connect_to(fixture.port());

  const util::Json not_json = client.request("this is not json");
  ASSERT_FALSE(not_json.at("ok").as_bool());
  EXPECT_EQ(not_json.at("error").at("code").as_string(), "bad_request");

  const util::Json bad_method =
      client.request("{\"method\":\"frobnicate\",\"id\":3}");
  ASSERT_FALSE(bad_method.at("ok").as_bool());
  EXPECT_EQ(bad_method.at("error").at("code").as_string(), "bad_request");

  const util::Json no_game = client.request("{\"method\":\"solve\"}");
  ASSERT_FALSE(no_game.at("ok").as_bool());
  EXPECT_NE(no_game.at("error").at("message").as_string().find("game"),
            std::string::npos);

  const util::Json ragged = client.request(
      R"({"method":"solve","id":7,"game":{"m":[[1,2],[3]],"n":[[1,2],[3,4]]}})");
  ASSERT_FALSE(ragged.at("ok").as_bool());
  EXPECT_EQ(ragged.at("error").at("code").as_string(), "bad_request");
  // The id-echo contract holds on error responses too (pipelining clients
  // correlate structured errors back to the failing request).
  EXPECT_EQ(ragged.at("id").as_number(), 7.0);

  // Unknown backend: the message names the registered keys (self-correcting
  // clients), and the connection keeps serving afterwards.
  const util::Json unknown = client.request(
      solve_line(game::battle_of_sexes(), 4, "quantum-oracle"));
  ASSERT_FALSE(unknown.at("ok").as_bool());
  EXPECT_EQ(unknown.at("error").at("code").as_string(), "bad_request")
      << "unknown backend is the client's mistake, not a server fault";
  EXPECT_NE(unknown.at("error").at("message").as_string().find("hardware-sa"),
            std::string::npos);

  const util::Json ok =
      client.request(solve_line(game::battle_of_sexes(), 5, "exact-sa"));
  EXPECT_TRUE(ok.at("ok").as_bool());
}

TEST(ServeEndToEnd, StatusReportsQueueDepthAndDrainFlag) {
  ServerFixture fixture;
  TestClient client;
  client.connect_to(fixture.port());

  const util::Json response = client.request("{\"method\":\"status\"}");
  ASSERT_TRUE(response.at("ok").as_bool());
  const util::Json& status = response.at("status");
  EXPECT_FALSE(status.at("draining").as_bool());
  EXPECT_EQ(status.at("connections").as_number(), 1.0);
  EXPECT_EQ(status.at("pending_solves").as_number(), 0.0);
  EXPECT_GE(status.at("service").at("threads").as_number(), 1.0);
}

TEST(ServeEndToEnd, GracefulDrainFinishesInFlightWorkAndRejectsNewSolves) {
  ServeOptions options;
  options.service_threads = 1;
  ServerFixture fixture(options);
  TestClient client;
  client.connect_to(fixture.port());

  // A slow solve goes in flight, then the drain is requested (the SIGTERM
  // path in nash_serve calls exactly this), then another solve arrives.
  util::Rng rng(11);
  const game::BimatrixGame big = game::random_integer_game(10, 10, rng);
  client.send_line(solve_line(big, 1, "hardware-sa", 6, 20000));
  // Status is answered synchronously on the same connection, so once its
  // response is here the solve is committed to the queue.
  ASSERT_EQ(client.request("{\"method\":\"status\"}")
                .at("status")
                .at("pending_solves")
                .as_number(),
            1.0);
  fixture.server().request_stop();
  // Wait until the poll loop observed the stop before posting the late solve
  // (otherwise it could still be admitted — request_stop is asynchronous).
  for (;;) {
    if (client.request("{\"method\":\"status\"}")
            .at("status")
            .at("draining")
            .as_bool())
      break;
  }
  client.send_line(solve_line(big, 2, "exact-sa", 2, 200));

  // Both responses arrive before the server closes the connection: the
  // in-flight solve completes, the late one is refused as draining.
  std::string line;
  util::Json by_id[3];
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.recv_line(line)) << "connection closed early";
    const util::Json response = util::Json::parse(line);
    const int id = static_cast<int>(response.at("id").as_number());
    ASSERT_TRUE(id == 1 || id == 2);
    by_id[id] = response;
  }
  EXPECT_TRUE(by_id[1].at("ok").as_bool()) << by_id[1].dump();
  ASSERT_FALSE(by_id[2].at("ok").as_bool());
  EXPECT_EQ(by_id[2].at("error").at("code").as_string(), "draining");
  EXPECT_GT(by_id[2].at("retry_after_s").as_number(), 0.0);

  // ... then the server closes the connection and run() returns.
  EXPECT_FALSE(client.recv_line(line));
  fixture.stop();
  EXPECT_EQ(fixture.server().served_stats().solves_ok, 1u);
  EXPECT_EQ(fixture.server().served_stats().errors, 1u);
}

TEST(ServeEndToEnd, IdenticalInFlightSolvesAreCoalescedOntoOneJob) {
  ServeOptions options;
  options.service_threads = 1;
  ServerFixture fixture(options);
  TestClient client;
  client.connect_to(fixture.port());

  util::Rng rng(13);
  const game::BimatrixGame big = game::random_integer_game(10, 10, rng);
  // Two identical slow solves pipelined back to back: the second must attach
  // to the first job, not submit a duplicate.
  client.send_line(solve_line(big, 1, "hardware-sa", 6, 20000));
  client.send_line(solve_line(big, 2, "hardware-sa", 6, 20000));

  std::string line;
  util::Json responses[2];
  for (auto& response : responses) {
    ASSERT_TRUE(client.recv_line(line));
    response = util::Json::parse(line);
    ASSERT_TRUE(response.at("ok").as_bool()) << line;
  }
  EXPECT_EQ(responses[0].at("report").dump(), responses[1].at("report").dump());

  const util::Json stats = client.request("{\"method\":\"stats\"}");
  EXPECT_EQ(stats.at("stats").at("served").at("jobs_submitted").as_number(),
            1.0);
  EXPECT_EQ(stats.at("stats").at("admission").at("coalesced").as_number(),
            1.0);
}

// ---- threaded gateway (epoll event loops) -----------------------------------

TEST(ServeThreaded, ConcurrentSolvesAcrossConnectionsAllSucceed) {
  ServeOptions options;
  options.serve_threads = 4;
  ServerFixture fixture(options);

  constexpr int kClients = 8;
  constexpr int kSolvesEach = 4;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      LineClient client;
      if (!client.connect_to(fixture.port())) return;
      const game::BimatrixGame g = game::battle_of_sexes();
      for (int r = 0; r < kSolvesEach; ++r) {
        // Distinct seeds: every solve is a genuine job, no cache/coalesce.
        if (!client.send_line(solve_line(g, r, "exact-sa", 4, 300,
                                         1000 + c * 100 + r)))
          return;
        std::string response;
        if (!client.recv_line(response)) return;
        if (util::Json::parse(response).at("ok").as_bool()) ok_count++;
      }
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kSolvesEach);

  fixture.stop();
  EXPECT_EQ(fixture.server().served_stats().solves_ok,
            static_cast<std::size_t>(kClients * kSolvesEach));
  EXPECT_EQ(fixture.server().served_stats().errors, 0u);
}

TEST(ServeThreaded, IdenticalSolvesCoalesceAcrossWorkerLoops) {
  // Connections are sharded round-robin, so three clients land on three
  // different event loops; their identical in-flight solves must still
  // coalesce onto one SolverService job through the shared gate.
  ServeOptions options;
  options.serve_threads = 4;
  options.service_threads = 1;
  ServerFixture fixture(options);

  util::Rng rng(23);
  const game::BimatrixGame big = game::random_integer_game(10, 10, rng);
  const std::string line = solve_line(big, 1, "hardware-sa", 6, 20000);

  TestClient first;
  first.connect_to(fixture.port());
  first.send_line(line);
  // The solve is committed once status (same connection, ordered) shows it.
  for (;;) {
    if (first.request("{\"method\":\"status\"}")
            .at("status")
            .at("pending_solves")
            .as_number() == 1.0)
      break;
  }

  // Send both duplicates before waiting on either — a blocking request()
  // would only let the second one leave after the job completed (and hit the
  // cache instead of coalescing).
  TestClient second, third;
  second.connect_to(fixture.port());
  third.connect_to(fixture.port());
  second.send_line(line);
  third.send_line(line);
  std::string response;
  ASSERT_TRUE(second.recv_line(response));
  const util::Json r2 = util::Json::parse(response);
  ASSERT_TRUE(third.recv_line(response));
  const util::Json r3 = util::Json::parse(response);
  ASSERT_TRUE(first.recv_line(response));
  const util::Json r1 = util::Json::parse(response);

  ASSERT_TRUE(r1.at("ok").as_bool()) << response;
  ASSERT_TRUE(r2.at("ok").as_bool()) << r2.dump();
  ASSERT_TRUE(r3.at("ok").as_bool()) << r3.dump();
  EXPECT_EQ(r1.at("report").dump(), r2.at("report").dump());
  EXPECT_EQ(r1.at("report").dump(), r3.at("report").dump());

  fixture.stop();
  EXPECT_EQ(fixture.server().served_stats().jobs_submitted, 1u);
  EXPECT_EQ(fixture.server().served_stats().coalesced, 2u);
}

TEST(ServeThreaded, DrainFinishesInFlightWorkOnEveryLoop) {
  ServeOptions options;
  options.serve_threads = 3;
  options.service_threads = 2;
  ServerFixture fixture(options);

  // One client per event loop (round-robin sharding), each with its own
  // slow solve in flight (distinct seeds — no coalescing).
  util::Rng rng(29);
  const game::BimatrixGame big = game::random_integer_game(8, 8, rng);
  TestClient clients[3];
  for (int c = 0; c < 3; ++c) {
    clients[c].connect_to(fixture.port());
    clients[c].send_line(
        solve_line(big, c, "hardware-sa", 4, 8000, 9000 + c));
  }
  for (;;) {
    if (clients[0]
            .request("{\"method\":\"status\"}")
            .at("status")
            .at("pending_solves")
            .as_number() == 3.0)
      break;
  }

  fixture.server().request_stop();
  // Every loop delivers its connection's final report, then closes.
  for (int c = 0; c < 3; ++c) {
    std::string response;
    ASSERT_TRUE(clients[c].recv_line(response)) << "loop " << c
                                                << " closed early";
    const util::Json j = util::Json::parse(response);
    EXPECT_TRUE(j.at("ok").as_bool()) << response;
    EXPECT_EQ(j.at("id").as_number(), static_cast<double>(c));
    EXPECT_FALSE(clients[c].recv_line(response)) << "expected EOF after drain";
  }
  fixture.stop();
  EXPECT_EQ(fixture.server().served_stats().solves_ok, 3u);
}

// ---- binary framing ---------------------------------------------------------

TEST(ServeFraming, BinaryAndJsonRoundTripByteIdenticalReports) {
  ServeOptions options;
  options.serve_threads = 2;
  ServerFixture fixture(options);
  const game::BimatrixGame g = game::bird_game();

  TestClient json_client;
  json_client.connect_to(fixture.port());
  LineClient binary;
  ASSERT_TRUE(binary.connect_to(fixture.port())) << std::strerror(errno);

  // JSON cold solve, then the identical solve over binary framing: answered
  // from the cache with the byte-for-bytes same report JSON.
  const util::Json cold =
      json_client.request(solve_line(g, 1, "hardware-sa", 4, 400, 77));
  ASSERT_TRUE(cold.at("ok").as_bool()) << cold.dump();
  ASSERT_TRUE(binary.send_frame(kFrameSolve,
                                solve_line(g, 2, "hardware-sa", 4, 400, 77)));
  unsigned char type = 0;
  std::string payload;
  ASSERT_TRUE(binary.recv_frame(type, payload));
  EXPECT_EQ(type, kFrameFinal);
  const util::Json warm = util::Json::parse(payload);
  ASSERT_TRUE(warm.at("ok").as_bool()) << payload;
  EXPECT_TRUE(warm.at("cached").as_bool());
  EXPECT_EQ(warm.at("report").dump(), cold.at("report").dump());

  // The reverse direction: binary cold solve, JSON cached replay.
  ASSERT_TRUE(binary.send_frame(kFrameSolve,
                                solve_line(g, 3, "hardware-sa", 4, 400, 78)));
  ASSERT_TRUE(binary.recv_frame(type, payload));
  ASSERT_EQ(type, kFrameFinal);
  const util::Json cold2 = util::Json::parse(payload);
  ASSERT_TRUE(cold2.at("ok").as_bool()) << payload;
  EXPECT_FALSE(cold2.at("cached").as_bool());
  const util::Json warm2 =
      json_client.request(solve_line(g, 4, "hardware-sa", 4, 400, 78));
  ASSERT_TRUE(warm2.at("ok").as_bool());
  EXPECT_TRUE(warm2.at("cached").as_bool());
  EXPECT_EQ(warm2.at("report").dump(), cold2.at("report").dump());

  // Non-solve methods ride the frame type with an empty payload.
  ASSERT_TRUE(binary.send_frame(kFrameStatus, ""));
  ASSERT_TRUE(binary.recv_frame(type, payload));
  EXPECT_EQ(type, kFrameFinal);
  EXPECT_TRUE(util::Json::parse(payload).at("ok").as_bool());
  ASSERT_TRUE(binary.send_frame(kFrameListBackends, ""));
  ASSERT_TRUE(binary.recv_frame(type, payload));
  EXPECT_FALSE(util::Json::parse(payload).at("backends").size() == 0);
}

TEST(ServeFraming, MalformedFrameHeaderGetsStructuredErrorThenClose) {
  ServerFixture fixture;
  LineClient client;
  ASSERT_TRUE(client.connect_to(fixture.port())) << std::strerror(errno);

  // The magic's first byte negotiates binary framing; the second is wrong, so
  // the stream can never resynchronise — expect one structured error frame,
  // then a close.
  const char junk[8] = {static_cast<char>(0xCE), 0x00, 0x01, 0x01, 0, 0, 0, 0};
  ASSERT_TRUE(client.send_raw(junk, sizeof junk));
  unsigned char type = 0;
  std::string payload;
  ASSERT_TRUE(client.recv_frame(type, payload));
  EXPECT_EQ(type, kFrameError);
  const util::Json j = util::Json::parse(payload);
  EXPECT_FALSE(j.at("ok").as_bool());
  EXPECT_EQ(j.at("error").at("code").as_string(), "bad_request");
  EXPECT_FALSE(client.recv_frame(type, payload)) << "expected close";
}

// ---- anytime progress streaming ---------------------------------------------

TEST(ServeAnytime, ProgressFramesStreamBeforeTheFinalReport) {
  // One service worker + one-lane batches make the unit schedule serial:
  // 4 runs → 4 units → exactly one interim frame per non-final unit.
  ServeOptions options;
  options.service_threads = 1;
  ServerFixture fixture(options);
  TestClient client;
  client.connect_to(fixture.port());

  const game::BimatrixGame g = game::bird_game();
  client.send_line(solve_line(g, 1, "exact-sa", 4, 300, 555,
                              ",\"progress\":true,\"batch_lanes\":1"));

  int progress_seen = 0;
  double last_completed = 0.0;
  for (;;) {
    std::string response;
    ASSERT_TRUE(client.recv_line(response));
    const util::Json j = util::Json::parse(response);
    ASSERT_TRUE(j.at("ok").as_bool()) << response;
    EXPECT_EQ(j.at("id").as_number(), 1.0);
    if (const util::Json* p = j.find("progress")) {
      progress_seen++;
      EXPECT_EQ(p->at("units_total").as_number(), 4.0);
      EXPECT_GT(p->at("units_completed").as_number(), last_completed)
          << "interim frames must be monotone in units_completed";
      last_completed = p->at("units_completed").as_number();
      EXPECT_GE(p->at("elapsed_s").as_number(), 0.0);
      continue;
    }
    // The final frame always follows the interim ones.
    EXPECT_FALSE(j.at("cached").as_bool());
    const core::SolveReport report =
        core::report_from_json(j.at("report"));
    EXPECT_EQ(report.samples.size(), 4u);
    EXPECT_FALSE(report.degraded);
    break;
  }
  EXPECT_EQ(progress_seen, 3);

  // A plain solve (no "progress") streams nothing extra — the cached replay
  // is its immediate, single response.
  const util::Json replay =
      client.request(solve_line(g, 2, "exact-sa", 4, 300, 555,
                                ",\"batch_lanes\":1"));
  EXPECT_TRUE(replay.at("cached").as_bool());

  fixture.stop();
  EXPECT_EQ(fixture.server().served_stats().progress_frames, 3u);
}

// ---- pipelining fairness ----------------------------------------------------

TEST(ServeFairness, PipelinedBurstIsBoundedPerWakeup) {
  ServeOptions options;
  options.max_requests_per_wakeup = 2;
  ServerFixture fixture(options);
  LineClient client;
  ASSERT_TRUE(client.connect_to(fixture.port())) << std::strerror(errno);

  // One 8-request burst in a single segment: the loop may dequeue at most two
  // per wakeup, deferring the rest to its backlog — every response still
  // arrives, and the deferral counter proves the bound engaged.
  std::string burst;
  for (int i = 0; i < 8; ++i)
    burst += "{\"method\":\"status\",\"id\":" + std::to_string(i) + "}\n";
  ASSERT_TRUE(client.send_raw(burst.data(), burst.size()));
  for (int i = 0; i < 8; ++i) {
    std::string line;
    ASSERT_TRUE(client.recv_line(line)) << "response " << i;
    EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool());
  }
  fixture.stop();
  EXPECT_EQ(fixture.server().served_stats().lines, 8u);
  EXPECT_GE(fixture.server().served_stats().fair_deferrals, 1u);
}

}  // namespace
}  // namespace cnash::serve
