// Parameterised property sweeps (TEST_P) over games, quantization intervals
// and hardware settings — the invariants every configuration must satisfy.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/maxqubo.hpp"
#include "core/two_phase.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "util/rng.hpp"

namespace cnash::core {
namespace {

// ---------------------------------------------------------------------------
// Property: f >= 0 and f == 0 at every ground-truth equilibrium, per game.
// ---------------------------------------------------------------------------

class ObjectivePropertyTest : public ::testing::TestWithParam<int> {};

game::BimatrixGame game_by_index(int idx) {
  switch (idx) {
    case 0:
      return game::battle_of_sexes();
    case 1:
      return game::bird_game();
    case 2:
      return game::modified_prisoners_dilemma();
    case 3:
      return game::prisoners_dilemma();
    case 4:
      return game::matching_pennies();
    case 5:
      return game::rock_paper_scissors();
    case 6:
      return game::chicken();
    case 7:
      return game::stag_hunt();
    default:
      return game::coordination(static_cast<std::size_t>(idx - 4));
  }
}

TEST_P(ObjectivePropertyTest, NonNegativeAndZeroAtEquilibria) {
  const auto g = game_by_index(GetParam());
  ExactMaxQubo f(g);
  util::Rng rng(1000 + GetParam());
  for (int t = 0; t < 300; ++t) {
    la::Vector p(g.num_actions1()), q(g.num_actions2());
    double sp = 0, sq = 0;
    for (auto& x : p) sp += (x = -std::log(1 - rng.uniform()));
    for (auto& x : q) sq += (x = -std::log(1 - rng.uniform()));
    for (auto& x : p) x /= sp;
    for (auto& x : q) x /= sq;
    EXPECT_GE(f.evaluate_continuous(p, q), -1e-10);
  }
  for (const auto& eq : game::all_equilibria(g))
    EXPECT_NEAR(f.evaluate_continuous(eq.p, eq.q), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(AllGames, ObjectivePropertyTest,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------------
// Property: quantized grid math is exact for every interval count.
// ---------------------------------------------------------------------------

class IntervalPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(IntervalPropertyTest, RandomProfilesStayOnSimplex) {
  const std::uint32_t intervals = GetParam();
  util::Rng rng(2000 + intervals);
  for (int t = 0; t < 200; ++t) {
    auto s = game::QuantizedStrategy::random(5, intervals, rng);
    // Random tick moves preserve the simplex.
    for (int m = 0; m < 20; ++m) {
      std::size_t from = 0;
      for (std::size_t i = 0; i < 5; ++i)
        if (s.count(i) > 0) from = i;
      s.move_tick(from, rng.uniform_index(5));
    }
    const la::Vector d = s.to_distribution();
    EXPECT_TRUE(game::is_distribution(d, 1e-12));
    EXPECT_EQ(game::QuantizedStrategy::from_distribution(d, intervals), s);
  }
}

TEST_P(IntervalPropertyTest, PureStrategiesAlwaysRepresentable) {
  const std::uint32_t intervals = GetParam();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto s = game::QuantizedStrategy::pure(4, i, intervals);
    EXPECT_TRUE(
        game::QuantizedStrategy::representable(s.to_distribution(), intervals));
  }
}

INSTANTIATE_TEST_SUITE_P(Intervals, IntervalPropertyTest,
                         ::testing::Values(2u, 4u, 8u, 12u, 24u, 60u));

// ---------------------------------------------------------------------------
// Property: hardware objective tracks the exact objective across ADC bits.
// ---------------------------------------------------------------------------

class AdcPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AdcPropertyTest, HardwareErrorShrinksWithResolution) {
  const unsigned bits = GetParam();
  TwoPhaseConfig cfg;
  cfg.array.ideal = true;
  cfg.wta.offset_sigma = 0.0;
  cfg.wta.read_noise_rel = 0.0;
  cfg.adc_noise_rel = 0.0;
  cfg.adc_bits = bits;
  const auto g = game::battle_of_sexes();
  TwoPhaseEvaluator hw(g, 12, cfg, util::Rng(3000 + bits));
  ExactMaxQubo exact(g);
  util::Rng rng(4000 + bits);
  double worst = 0.0;
  for (int t = 0; t < 100; ++t) {
    game::QuantizedProfile prof{game::QuantizedStrategy::random(2, 12, rng),
                                game::QuantizedStrategy::random(2, 12, rng)};
    worst = std::max(worst, std::abs(hw.evaluate(prof) - exact.evaluate(prof)));
  }
  // 4 conversions, each within ~1 LSB of the ±-combined full scale (~2.9 in
  // payoff units at I=12/t=2).
  const double lsb_value = 1.2 * 3.0 / std::pow(2.0, bits);
  EXPECT_LE(worst, 6.0 * lsb_value + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AdcBits, AdcPropertyTest,
                         ::testing::Values(8u, 10u, 12u, 14u));

// ---------------------------------------------------------------------------
// Property: support enumeration output always verifies, across game sizes.
// ---------------------------------------------------------------------------

class RandomGamePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomGamePropertyTest, EquilibriaVerifyAndExist) {
  const auto [n, m] = GetParam();
  util::Rng rng(5000 + 10 * n + m);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = game::random_game(n, m, rng);
    const auto eqs = game::all_equilibria(g);
    EXPECT_GE(eqs.size(), 1u);
    for (const auto& e : eqs) {
      EXPECT_TRUE(game::is_nash_equilibrium(g, e.p, e.q, 1e-6));
      EXPECT_TRUE(game::is_distribution(e.p));
      EXPECT_TRUE(game::is_distribution(e.q));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomGamePropertyTest,
    ::testing::Values(std::make_tuple(2, 2), std::make_tuple(2, 3),
                      std::make_tuple(3, 3), std::make_tuple(3, 4),
                      std::make_tuple(4, 4), std::make_tuple(5, 5)));

// ---------------------------------------------------------------------------
// Property: MAX-QUBO is invariant under common payoff shifts, per shift.
// ---------------------------------------------------------------------------

class ShiftPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ShiftPropertyTest, ObjectiveShiftInvariant) {
  const double shift = GetParam();
  util::Rng rng(6000);
  const auto g = game::random_game(3, 3, rng);
  la::Matrix m2 = g.payoff1();
  la::Matrix n2 = g.payoff2();
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) {
      m2(r, c) += shift;
      n2(r, c) += shift;
    }
  ExactMaxQubo f1(g);
  ExactMaxQubo f2(game::BimatrixGame(m2, n2, "shifted"));
  for (int t = 0; t < 50; ++t) {
    la::Vector p(3), q(3);
    double sp = 0, sq = 0;
    for (auto& x : p) sp += (x = rng.uniform(0.01, 1.0));
    for (auto& x : q) sq += (x = rng.uniform(0.01, 1.0));
    for (auto& x : p) x /= sp;
    for (auto& x : q) x /= sq;
    EXPECT_NEAR(f1.evaluate_continuous(p, q), f2.evaluate_continuous(p, q),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, ShiftPropertyTest,
                         ::testing::Values(-10.0, -1.0, 0.5, 3.0, 100.0));

}  // namespace
}  // namespace cnash::core
