#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"

namespace cnash::core {
namespace {

TEST(Solver, ExactBackendSolvesBattleOfSexes) {
  CNashConfig cfg;
  cfg.use_hardware = false;
  cfg.intervals = 12;
  cfg.sa.iterations = 4000;
  cfg.seed = 81;
  CNashSolver solver(game::battle_of_sexes(), cfg);
  const auto outcomes = solver.run(30);
  ASSERT_EQ(outcomes.size(), 30u);
  int nash = 0;
  for (const auto& o : outcomes)
    if (game::is_nash_equilibrium(solver.game(), o.p, o.q, 1e-9)) ++nash;
  EXPECT_GE(nash, 27);
}

TEST(Solver, HardwareBackendSolvesBattleOfSexes) {
  CNashConfig cfg;
  cfg.use_hardware = true;
  cfg.intervals = 12;
  cfg.sa.iterations = 4000;
  cfg.seed = 82;
  CNashSolver solver(game::battle_of_sexes(), cfg);
  ASSERT_NE(solver.hardware(), nullptr);
  const auto outcomes = solver.run(20);
  int nash = 0;
  for (const auto& o : outcomes)
    if (game::is_nash_equilibrium(solver.game(), o.p, o.q, 1e-9)) ++nash;
  EXPECT_GE(nash, 15);
}

TEST(Solver, FindsBothPureAndMixedSolutions) {
  CNashConfig cfg;
  cfg.use_hardware = false;
  cfg.intervals = 12;
  cfg.sa.iterations = 5000;
  cfg.seed = 83;
  CNashSolver solver(game::battle_of_sexes(), cfg);
  const auto gt = game::all_equilibria(solver.game());
  std::vector<CandidateSolution> cands;
  for (const auto& o : solver.run(60)) cands.push_back({o.p, o.q});
  const auto report = classify(solver.game(), gt, cands, 1e-9);
  EXPECT_GT(report.pure_successes, 0u);
  EXPECT_GT(report.mixed_successes, 0u);
  EXPECT_EQ(report.target(), 3u);
  EXPECT_EQ(report.distinct_found(), 3u);  // all three BoS equilibria
}

TEST(Solver, DeterministicGivenSeed) {
  CNashConfig cfg;
  cfg.use_hardware = false;
  cfg.sa.iterations = 500;
  cfg.seed = 84;
  CNashSolver a(game::bird_game(), cfg);
  CNashSolver b(game::bird_game(), cfg);
  const auto oa = a.run(5);
  const auto ob = b.run(5);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(oa[i].profile->key(), ob[i].profile->key());
}

TEST(Solver, ReportBestOptionNeverWorseThanFinal) {
  CNashConfig final_cfg;
  final_cfg.use_hardware = false;
  final_cfg.sa.iterations = 300;
  final_cfg.seed = 85;
  CNashConfig best_cfg = final_cfg;
  best_cfg.report_best = true;
  CNashSolver fin(game::bird_game(), final_cfg);
  CNashSolver best(game::bird_game(), best_cfg);
  const auto of = fin.run(10);
  const auto ob = best.run(10);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_LE(ob[i].objective, of[i].objective + 1e-12);
}

TEST(Solver, OutcomeDistributionsAreValid) {
  CNashConfig cfg;
  cfg.use_hardware = false;
  cfg.sa.iterations = 200;
  cfg.seed = 86;
  CNashSolver solver(game::modified_prisoners_dilemma(), cfg);
  for (const auto& o : solver.run(5)) {
    EXPECT_TRUE(game::is_distribution(o.p));
    EXPECT_TRUE(game::is_distribution(o.q));
  }
}

}  // namespace
}  // namespace cnash::core
