#include <gtest/gtest.h>

#include <cmath>

#include "core/maxqubo.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "util/rng.hpp"

namespace cnash::core {
namespace {

la::Vector random_simplex(std::size_t n, util::Rng& rng) {
  la::Vector v(n);
  double s = 0.0;
  for (auto& x : v) {
    x = -std::log(1.0 - rng.uniform());
    s += x;
  }
  for (auto& x : v) x /= s;
  return v;
}

TEST(MaxQubo, ZeroExactlyAtKnownEquilibria) {
  ExactMaxQubo f(game::battle_of_sexes());
  EXPECT_NEAR(f.evaluate_continuous({1, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(f.evaluate_continuous({0, 1}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(
      f.evaluate_continuous({2.0 / 3, 1.0 / 3}, {1.0 / 3, 2.0 / 3}), 0.0,
      1e-12);
}

TEST(MaxQubo, PositiveAtNonEquilibria) {
  ExactMaxQubo f(game::battle_of_sexes());
  EXPECT_GT(f.evaluate_continuous({1, 0}, {0, 1}), 0.5);
  EXPECT_GT(f.evaluate_continuous({0.5, 0.5}, {0.5, 0.5}), 0.1);
}

TEST(MaxQubo, NonNegativeEverywhereOnRandomGames) {
  util::Rng rng(52);
  for (int g = 0; g < 10; ++g) {
    const auto game = game::random_game(3, 4, rng);
    ExactMaxQubo f(game);
    for (int t = 0; t < 200; ++t) {
      const auto p = random_simplex(3, rng);
      const auto q = random_simplex(4, rng);
      EXPECT_GE(f.evaluate_continuous(p, q), -1e-10);
    }
  }
}

TEST(MaxQubo, ZeroIffNashOnRandomGames) {
  // f == 0 exactly at equilibria (both directions, statistically probed).
  util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const auto game = game::random_game(3, 3, rng);
    ExactMaxQubo f(game);
    for (const auto& eq : game::all_equilibria(game))
      EXPECT_NEAR(f.evaluate_continuous(eq.p, eq.q), 0.0, 1e-8);
    for (int t = 0; t < 100; ++t) {
      const auto p = random_simplex(3, rng);
      const auto q = random_simplex(3, rng);
      const double v = f.evaluate_continuous(p, q);
      if (v < 1e-10) {
        EXPECT_TRUE(game::is_nash_equilibrium(game, p, q, 1e-6));
      }
    }
  }
}

TEST(MaxQubo, ShiftInvariance) {
  util::Rng rng(54);
  const auto game = game::random_game(4, 3, rng);
  la::Matrix m2 = game.payoff1();
  la::Matrix n2 = game.payoff2();
  for (std::size_t r = 0; r < m2.rows(); ++r)
    for (std::size_t c = 0; c < m2.cols(); ++c) {
      m2(r, c) += 7.5;
      n2(r, c) += 7.5;
    }
  ExactMaxQubo f1(game);
  ExactMaxQubo f2(game::BimatrixGame(m2, n2, "shifted"));
  for (int t = 0; t < 100; ++t) {
    const auto p = random_simplex(4, rng);
    const auto q = random_simplex(3, rng);
    EXPECT_NEAR(f1.evaluate_continuous(p, q), f2.evaluate_continuous(p, q),
                1e-9);
  }
}

TEST(MaxQubo, ComponentsAssembleObjective) {
  ExactMaxQubo f(game::bird_game());
  const la::Vector p{0.2, 0.3, 0.5}, q{0.1, 0.6, 0.3};
  const auto c = f.components(p, q);
  EXPECT_NEAR(c.objective(), f.evaluate_continuous(p, q), 1e-12);
  EXPECT_NEAR(c.max_mq, la::max_element(game::bird_game().row_payoffs(q)),
              1e-12);
}

TEST(MaxQubo, QuantizedProfileEvaluationMatchesContinuous) {
  ExactMaxQubo f(game::battle_of_sexes());
  game::QuantizedProfile prof{
      game::QuantizedStrategy::from_distribution({2.0 / 3, 1.0 / 3}, 12),
      game::QuantizedStrategy::from_distribution({1.0 / 3, 2.0 / 3}, 12)};
  EXPECT_NEAR(f.evaluate(prof), 0.0, 1e-12);
}

// --- Incremental (propose/commit) fast path ---------------------------------

/// Draw a random valid single-tick move for one player of `prof`.
TickMove random_move(const game::QuantizedProfile& prof, bool row,
                     util::Rng& rng) {
  const game::QuantizedStrategy& s = row ? prof.p : prof.q;
  std::vector<std::uint32_t> holders;
  for (std::uint32_t i = 0; i < s.num_actions(); ++i)
    if (s.count(i) > 0) holders.push_back(i);
  const std::uint32_t from = holders[rng.uniform_index(holders.size())];
  std::uint32_t to = static_cast<std::uint32_t>(
      rng.uniform_index(s.num_actions() - 1));
  if (to >= from) ++to;
  return {row ? TickMove::Player::kRow : TickMove::Player::kCol, from, to};
}

TEST(MaxQuboIncremental, MatchesFullRecomputeOverRandomMoveSequences) {
  // Property: over random games and random accept/reject single-tick move
  // sequences (including two-player proposals, which exercise the bilinear
  // cross term), the incremental objective never drifts more than 1e-9 from
  // a full from-scratch evaluation.
  util::Rng rng(561);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(5);
    const std::size_t m = 2 + rng.uniform_index(5);
    const auto game = game::random_game(n, m, rng, -2.0, 3.0);
    ExactMaxQubo f(game);
    ExactMaxQubo full(game);  // reference evaluator, full path only
    const std::uint32_t intervals = 8 + 4 * (trial % 3);

    game::QuantizedProfile prof{
        game::QuantizedStrategy::random(n, intervals, rng),
        game::QuantizedStrategy::random(m, intervals, rng)};
    IncrementalEvaluator* inc = f.incremental();
    ASSERT_NE(inc, nullptr);
    inc->reset(prof);

    for (int step = 0; step < 2000; ++step) {
      TickMove moves[2];
      std::size_t count = 0;
      moves[count++] = random_move(prof, rng.bernoulli(0.5), rng);
      if (rng.bernoulli(0.4)) {
        const bool other = moves[0].player != TickMove::Player::kRow;
        moves[count++] = random_move(prof, other, rng);
      }

      game::QuantizedProfile candidate = prof;
      for (std::size_t i = 0; i < count; ++i) {
        auto& s = moves[i].player == TickMove::Player::kRow ? candidate.p
                                                            : candidate.q;
        s.move_tick(moves[i].from, moves[i].to);
      }

      const double inc_val = inc->propose(moves, count);
      const double full_val = full.evaluate(candidate);
      ASSERT_NEAR(inc_val, full_val, 1e-9)
          << "trial " << trial << " step " << step;

      if (rng.bernoulli(0.7)) {  // accept
        inc->commit();
        prof = std::move(candidate);
      }
    }
  }
}

TEST(MaxQuboIncremental, EmptyProposalScoresCommittedProfile) {
  ExactMaxQubo f(game::bird_game());
  util::Rng rng(9);
  game::QuantizedProfile prof{game::QuantizedStrategy::random(3, 12, rng),
                              game::QuantizedStrategy::pure(3, 1, 12)};
  f.reset(prof);
  EXPECT_NEAR(f.propose(nullptr, 0), f.evaluate(prof), 1e-12);
}

TEST(MaxQuboIncremental, CommitWithoutProposeThrows) {
  ExactMaxQubo f(game::bird_game());
  game::QuantizedProfile prof{game::QuantizedStrategy::pure(3, 0, 12),
                              game::QuantizedStrategy::pure(3, 1, 12)};
  f.reset(prof);
  EXPECT_THROW(f.commit(), std::logic_error);
}

TEST(MaxQubo, AgreesWithEquilibriumGapAtOptimum) {
  // f upper-bounds nothing in general, but at f = 0 the equilibrium gap is 0.
  util::Rng rng(55);
  const auto game = game::random_game(3, 3, rng);
  ExactMaxQubo f(game);
  for (const auto& eq : game::all_equilibria(game))
    EXPECT_NEAR(game::equilibrium_gap(game, eq.p, eq.q), 0.0, 1e-8);
}

}  // namespace
}  // namespace cnash::core
