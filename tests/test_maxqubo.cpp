#include <gtest/gtest.h>

#include <cmath>

#include "core/maxqubo.hpp"
#include "game/games.hpp"
#include "game/random_games.hpp"
#include "game/support_enum.hpp"
#include "util/rng.hpp"

namespace cnash::core {
namespace {

la::Vector random_simplex(std::size_t n, util::Rng& rng) {
  la::Vector v(n);
  double s = 0.0;
  for (auto& x : v) {
    x = -std::log(1.0 - rng.uniform());
    s += x;
  }
  for (auto& x : v) x /= s;
  return v;
}

TEST(MaxQubo, ZeroExactlyAtKnownEquilibria) {
  ExactMaxQubo f(game::battle_of_sexes());
  EXPECT_NEAR(f.evaluate_continuous({1, 0}, {1, 0}), 0.0, 1e-12);
  EXPECT_NEAR(f.evaluate_continuous({0, 1}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(
      f.evaluate_continuous({2.0 / 3, 1.0 / 3}, {1.0 / 3, 2.0 / 3}), 0.0,
      1e-12);
}

TEST(MaxQubo, PositiveAtNonEquilibria) {
  ExactMaxQubo f(game::battle_of_sexes());
  EXPECT_GT(f.evaluate_continuous({1, 0}, {0, 1}), 0.5);
  EXPECT_GT(f.evaluate_continuous({0.5, 0.5}, {0.5, 0.5}), 0.1);
}

TEST(MaxQubo, NonNegativeEverywhereOnRandomGames) {
  util::Rng rng(52);
  for (int g = 0; g < 10; ++g) {
    const auto game = game::random_game(3, 4, rng);
    ExactMaxQubo f(game);
    for (int t = 0; t < 200; ++t) {
      const auto p = random_simplex(3, rng);
      const auto q = random_simplex(4, rng);
      EXPECT_GE(f.evaluate_continuous(p, q), -1e-10);
    }
  }
}

TEST(MaxQubo, ZeroIffNashOnRandomGames) {
  // f == 0 exactly at equilibria (both directions, statistically probed).
  util::Rng rng(53);
  for (int trial = 0; trial < 10; ++trial) {
    const auto game = game::random_game(3, 3, rng);
    ExactMaxQubo f(game);
    for (const auto& eq : game::all_equilibria(game))
      EXPECT_NEAR(f.evaluate_continuous(eq.p, eq.q), 0.0, 1e-8);
    for (int t = 0; t < 100; ++t) {
      const auto p = random_simplex(3, rng);
      const auto q = random_simplex(3, rng);
      const double v = f.evaluate_continuous(p, q);
      if (v < 1e-10)
        EXPECT_TRUE(game::is_nash_equilibrium(game, p, q, 1e-6));
    }
  }
}

TEST(MaxQubo, ShiftInvariance) {
  util::Rng rng(54);
  const auto game = game::random_game(4, 3, rng);
  la::Matrix m2 = game.payoff1();
  la::Matrix n2 = game.payoff2();
  for (std::size_t r = 0; r < m2.rows(); ++r)
    for (std::size_t c = 0; c < m2.cols(); ++c) {
      m2(r, c) += 7.5;
      n2(r, c) += 7.5;
    }
  ExactMaxQubo f1(game);
  ExactMaxQubo f2(game::BimatrixGame(m2, n2, "shifted"));
  for (int t = 0; t < 100; ++t) {
    const auto p = random_simplex(4, rng);
    const auto q = random_simplex(3, rng);
    EXPECT_NEAR(f1.evaluate_continuous(p, q), f2.evaluate_continuous(p, q),
                1e-9);
  }
}

TEST(MaxQubo, ComponentsAssembleObjective) {
  ExactMaxQubo f(game::bird_game());
  const la::Vector p{0.2, 0.3, 0.5}, q{0.1, 0.6, 0.3};
  const auto c = f.components(p, q);
  EXPECT_NEAR(c.objective(), f.evaluate_continuous(p, q), 1e-12);
  EXPECT_NEAR(c.max_mq, la::max_element(game::bird_game().row_payoffs(q)),
              1e-12);
}

TEST(MaxQubo, QuantizedProfileEvaluationMatchesContinuous) {
  ExactMaxQubo f(game::battle_of_sexes());
  game::QuantizedProfile prof{
      game::QuantizedStrategy::from_distribution({2.0 / 3, 1.0 / 3}, 12),
      game::QuantizedStrategy::from_distribution({1.0 / 3, 2.0 / 3}, 12)};
  EXPECT_NEAR(f.evaluate(prof), 0.0, 1e-12);
}

TEST(MaxQubo, AgreesWithEquilibriumGapAtOptimum) {
  // f upper-bounds nothing in general, but at f = 0 the equilibrium gap is 0.
  util::Rng rng(55);
  const auto game = game::random_game(3, 3, rng);
  ExactMaxQubo f(game);
  for (const auto& eq : game::all_equilibria(game))
    EXPECT_NEAR(game::equilibrium_gap(game, eq.p, eq.q), 0.0, 1e-8);
}

}  // namespace
}  // namespace cnash::core
