#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/anneal.hpp"
#include "core/backend.hpp"
#include "core/batch.hpp"
#include "core/engine.hpp"
#include "game/games.hpp"
#include "simd/simd.hpp"
#include "util/rng.hpp"

namespace cnash::core {
namespace {

// The per-run key scheme shared by SaPreparedJob and these tests: run r's
// evaluator instance key is 2r, its SA stream key 2r + 1.
constexpr std::uint64_t instance_key(std::uint64_t run) { return 2 * run; }
constexpr std::uint64_t stream_key(std::uint64_t run) { return 2 * run + 1; }

void expect_same_result(const SaRunResult& a, const SaRunResult& b,
                        std::size_t run) {
  EXPECT_EQ(a.final_profile, b.final_profile) << "run " << run;
  EXPECT_EQ(a.best_profile, b.best_profile) << "run " << run;
  // Bitwise: the batched drivers execute the SAME lane code on the SAME
  // streams, so even the floating-point accumulations must match exactly.
  EXPECT_EQ(a.final_objective, b.final_objective) << "run " << run;
  EXPECT_EQ(a.best_objective, b.best_objective) << "run " << run;
  EXPECT_EQ(a.accepted, b.accepted) << "run " << run;
  EXPECT_EQ(a.iterations, b.iterations) << "run " << run;
  EXPECT_EQ(a.evaluations, b.evaluations) << "run " << run;
}

// K-lane lockstep batch vs K scalar runs on the same keyed streams: byte
// identical, for the exact objective (shared payoff block) and the hardware
// two-phase path (generic lane wrapper).
void check_batch_matches_scalar(const EvaluatorFactory& factory,
                                std::size_t lanes) {
  const std::uint32_t intervals = 12;
  SaOptions opts;
  opts.iterations = 600;
  const util::Rng root(0xBA7C);

  // Scalar reference sweep, one run at a time.
  std::vector<SaRunResult> ref;
  for (std::size_t r = 0; r < lanes; ++r) {
    auto obj = factory.create(instance_key(r));
    util::Rng rng = root.split(stream_key(r));
    ref.push_back(simulated_annealing(*obj, intervals, opts, rng));
  }

  std::vector<std::uint64_t> keys(lanes);
  std::vector<util::Rng> rngs;
  for (std::size_t r = 0; r < lanes; ++r) {
    keys[r] = instance_key(r);
    rngs.push_back(root.split(stream_key(r)));
  }
  auto batch = factory.create_batched(keys.data(), lanes);
  ASSERT_EQ(batch->lanes(), lanes);
  const auto res = simulated_annealing_batch(*batch, intervals, opts,
                                             rngs.data());
  ASSERT_EQ(res.size(), lanes);
  for (std::size_t r = 0; r < lanes; ++r) expect_same_result(res[r], ref[r], r);
}

TEST(BatchedAnneal, ExactBatchMatchesScalarRuns) {
  ExactEvaluatorFactory factory(game::bird_game());
  for (const std::size_t k : {1, 4, 8}) check_batch_matches_scalar(factory, k);
}

TEST(BatchedAnneal, TwoPhaseBatchMatchesScalarRuns) {
  HardwareEvaluatorFactory factory(game::bird_game(), 12, TwoPhaseConfig{},
                                   util::Rng(0xFE0));
  for (const std::size_t k : {1, 4, 8}) check_batch_matches_scalar(factory, k);
}

TEST(BatchedAnneal, BatchedExactSharesOnePayoffBlock) {
  auto shared =
      std::make_shared<const ExactMaxQubo::Shared>(game::battle_of_sexes());
  BatchedExactMaxQubo batch(shared, 4);
  EXPECT_EQ(batch.lanes(), 4u);
  for (std::size_t l = 0; l < 4; ++l)
    EXPECT_EQ(&batch.lane(l).game(), &shared->game);
}

void expect_same_report(const SolveReport& a, const SolveReport& b) {
  ASSERT_EQ(a.samples.size(), b.samples.size());
  EXPECT_EQ(a.nash_count, b.nash_count);
  EXPECT_EQ(a.valid_count, b.valid_count);
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    const SolveSample& sa = a.samples[i];
    const SolveSample& sb = b.samples[i];
    EXPECT_EQ(sa.objective, sb.objective) << "sample " << i;
    EXPECT_EQ(sa.profile, sb.profile) << "sample " << i;
    EXPECT_EQ(sa.is_nash, sb.is_nash) << "sample " << i;
    ASSERT_EQ(sa.p.size(), sb.p.size());
    for (std::size_t j = 0; j < sa.p.size(); ++j)
      EXPECT_EQ(sa.p[j], sb.p[j]) << "sample " << i;
    for (std::size_t j = 0; j < sa.q.size(); ++j)
      EXPECT_EQ(sa.q[j], sb.q[j]) << "sample " << i;
  }
}

SolveRequest base_request(const char* backend) {
  SolveRequest req(game::bird_game());
  req.backend = backend;
  req.runs = 10;
  req.seed = 0x5EED;
  req.sa.iterations = 500;
  return req;
}

// The lane count is a pure throughput knob: any batch_lanes value produces
// the byte-identical report, through the full backend path.
TEST(BatchedAnneal, BackendReportInvariantInBatchLanes) {
  for (const char* backend : {"exact-sa", "hardware-sa"}) {
    SolveRequest req = base_request(backend);
    req.sa.batch_lanes = 1;
    const SolveReport unbatched =
        SolverRegistry::global().at(backend).solve(req);
    for (const std::size_t k : {2, 8, 16}) {
      req.sa.batch_lanes = k;
      const SolveReport batched =
          SolverRegistry::global().at(backend).solve(req);
      expect_same_report(unbatched, batched);
    }
  }
}

// SIMD dispatch must be invisible: a scalar-forced solve reproduces the
// vectorized solve byte for byte.
TEST(BatchedAnneal, BackendReportInvariantUnderForcedScalar) {
  for (const char* backend : {"exact-sa", "hardware-sa"}) {
    const SolveRequest req = base_request(backend);
    ASSERT_TRUE(simd::force_level(simd::IsaLevel::kScalar));
    const SolveReport scalar = SolverRegistry::global().at(backend).solve(req);
    ASSERT_TRUE(simd::force_level(simd::max_supported_level()));
    const SolveReport vec = SolverRegistry::global().at(backend).solve(req);
    expect_same_report(scalar, vec);
  }
}

TEST(BatchedAnneal, ReplicaExchangeIsDeterministic) {
  SolveRequest req = base_request("exact-sa");
  req.sa.mode = SaMode::kReplicaExchange;
  req.runs = 4;  // 4 ensembles
  const SolveReport a = SolverRegistry::global().at("exact-sa").solve(req);
  const SolveReport b = SolverRegistry::global().at("exact-sa").solve(req);
  ASSERT_EQ(a.samples.size(), 4u);  // one winner sample per ensemble
  expect_same_report(a, b);
}

// The scenario parallel tempering exists for: a coordination game whose pure
// equilibria sit behind high barriers. The hot replicas keep tunnelling, the
// cold replica polishes — plain SA at this budget solves (almost) nothing
// (see bench_fig10_time_to_solution --re for the full iterations ladder).
TEST(BatchedAnneal, ReplicaExchangeSolvesCoordinationGame) {
  SolveRequest req(game::coordination(16));
  req.backend = "exact-sa";
  req.runs = 6;
  req.seed = 0xC00D;
  req.intervals = 4;
  req.sa.iterations = 8000;
  req.sa.mode = SaMode::kReplicaExchange;
  req.sa.replicas = 8;
  const SolveReport rep = SolverRegistry::global().at("exact-sa").solve(req);
  ASSERT_EQ(rep.samples.size(), 6u);
  EXPECT_GE(rep.nash_count, 4u);
  EXPECT_EQ(rep.valid_count, 6u);
}

TEST(BatchedAnneal, ReplicaExchangeChangesResultsVsIndependent) {
  SolveRequest req = base_request("exact-sa");
  const SolveReport ind = SolverRegistry::global().at("exact-sa").solve(req);
  req.sa.mode = SaMode::kReplicaExchange;
  const SolveReport re = SolverRegistry::global().at("exact-sa").solve(req);
  // One sample per ensemble vs one per run — same count, different law.
  EXPECT_EQ(ind.samples.size(), req.runs);
  EXPECT_EQ(re.samples.size(), req.runs);
  bool any_diff = false;
  for (std::size_t i = 0; i < re.samples.size(); ++i)
    if (ind.samples[i].key() != re.samples[i].key() ||
        ind.samples[i].objective != re.samples[i].objective)
      any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(BatchedAnneal, ReplicaExchangeRequestValidation) {
  SolveRequest req = base_request("exact-sa");
  req.sa.mode = SaMode::kReplicaExchange;
  req.sa.replicas = 1;
  EXPECT_THROW(validate_request(req), std::invalid_argument);
  req.sa.replicas = 8;
  req.sa.exchange_interval = 0;
  EXPECT_THROW(validate_request(req), std::invalid_argument);
  req.sa.exchange_interval = 16;
  req.sa.ladder_ratio = 1.0;
  EXPECT_THROW(validate_request(req), std::invalid_argument);
  req.sa.ladder_ratio = 1.5;
  EXPECT_NO_THROW(validate_request(req));
}

// The direct replica-exchange driver: swap moves must preserve lane
// bookkeeping invariants and respond to the ladder.
TEST(BatchedAnneal, ReplicaExchangeDriverRunsAllReplicas) {
  ExactEvaluatorFactory factory(game::bird_game());
  const std::size_t r = 4;
  std::vector<std::uint64_t> keys(r);
  std::vector<util::Rng> rngs;
  const util::Rng root(0x4E);
  for (std::size_t l = 0; l < r; ++l) {
    keys[l] = instance_key(l);
    rngs.push_back(root.split(stream_key(l)));
  }
  util::Rng swap_rng = root.split(stream_key(r) + 1);
  auto batch = factory.create_batched(keys.data(), r);
  SaOptions opts;
  opts.iterations = 400;
  opts.replicas = r;
  const auto res = simulated_annealing_replica_exchange(*batch, 12, opts,
                                                        rngs.data(), swap_rng);
  ASSERT_EQ(res.size(), r);
  for (const SaRunResult& lane : res) {
    EXPECT_EQ(lane.iterations, opts.iterations);
    EXPECT_LE(lane.best_objective, lane.final_objective + 1e-12);
  }
}

}  // namespace
}  // namespace cnash::core
