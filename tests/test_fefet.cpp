#include <gtest/gtest.h>

#include <cmath>

#include "fefet/cell_1t1r.hpp"
#include "fefet/fefet.hpp"
#include "fefet/preisach.hpp"
#include "fefet/variability.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cnash::fefet {
namespace {

TEST(Preisach, SaturatingPulsesSetStates) {
  PreisachFerroelectric fe;
  fe.apply_pulse(4.0);  // strong positive write -> erased, low V_TH
  EXPECT_NEAR(fe.polarization(), 1.0, 0.01);
  EXPECT_NEAR(fe.threshold_voltage(), fe.params().vth_low, 0.02);
  fe.apply_pulse(-4.0);  // strong negative write -> programmed, high V_TH
  EXPECT_NEAR(fe.polarization(), -1.0, 0.01);
  EXPECT_NEAR(fe.threshold_voltage(), fe.params().vth_high, 0.02);
}

TEST(Preisach, SmallPulsesDoNotSwitch) {
  PreisachFerroelectric fe;
  fe.saturate(false);
  const double p0 = fe.polarization();
  fe.apply_pulse(0.2);  // far below coercive voltage
  EXPECT_NEAR(fe.polarization(), p0, 0.05);
}

TEST(Preisach, HysteresisLoopOpens) {
  const auto loop = hysteresis_loop(PreisachFerroelectric{}, 3.0, 50);
  // Find polarization at V = 0 on the descending and ascending branches.
  double desc = 0.0, asc = 0.0;
  // Descending leg covers indices (51..101); ascending (102..153).
  for (std::size_t k = 52; k < 102; ++k)
    if (std::abs(loop[k].first) < 0.04) desc = loop[k].second;
  for (std::size_t k = 102; k < loop.size(); ++k)
    if (std::abs(loop[k].first) < 0.04) asc = loop[k].second;
  EXPECT_GT(desc, 0.5);   // still up after positive saturation
  EXPECT_LT(asc, -0.5);   // still down after negative saturation
}

TEST(Preisach, PartialSwitchingMonotone) {
  PreisachFerroelectric fe;
  fe.saturate(false);
  double prev = fe.polarization();
  for (double v : {0.6, 0.9, 1.2, 1.6, 2.2}) {
    fe.apply_pulse(v);
    EXPECT_GE(fe.polarization(), prev - 1e-12);
    prev = fe.polarization();
  }
}

TEST(FeFet, OnOffWindowAtReadVoltage) {
  const FeFetParams p;
  const FeFet on(p.vth_low, p);
  const FeFet off(p.vth_high, p);
  const double i_on = on.drain_current(1.0, 0.8);
  const double i_off = off.drain_current(1.0, 0.8);
  EXPECT_GT(i_on, 1e-6);          // µA-class ON current
  EXPECT_LT(i_off, 1e-9);         // sub-nA OFF current
  EXPECT_GT(i_on / i_off, 1e3);   // healthy window
}

TEST(FeFet, MonotonicInGateAndDrain) {
  const FeFet fet(0.4);
  double prev = 0.0;
  for (double vg = 0.0; vg <= 2.0; vg += 0.1) {
    const double i = fet.drain_current(vg, 0.8);
    EXPECT_GE(i, prev);
    prev = i;
  }
  prev = 0.0;
  for (double vds = 0.05; vds <= 1.0; vds += 0.05) {
    const double i = fet.drain_current(1.5, vds);
    EXPECT_GE(i, prev);
    prev = i;
  }
}

TEST(FeFet, SubthresholdSlopeNearSpec) {
  const FeFetParams p;
  const FeFet fet(1.6, p);
  // Decades per volt in deep subthreshold ≈ 1 / SS; measure above the leak
  // floor but still >= 5 SS below threshold.
  const double i1 = fet.drain_current(1.2, 0.8);
  const double i2 = fet.drain_current(1.4, 0.8);
  const double decades = std::log10(i2 / i1);
  const double ss_measured = 0.2 / decades;
  EXPECT_NEAR(ss_measured, p.subthreshold_swing, 0.03);
}

TEST(FeFet, ZeroDrainBiasNoCurrent) {
  const FeFet fet(0.4);
  EXPECT_DOUBLE_EQ(fet.drain_current(2.0, 0.0), 0.0);
}

TEST(FeFet, FromPolarizationMatchesState) {
  PreisachFerroelectric fe;
  fe.saturate(true);
  const FeFet fet = FeFet::from_polarization(fe);
  EXPECT_NEAR(fet.v_th(), fe.params().vth_low, 1e-9);
}

TEST(Variability, SampleStatistics) {
  util::Rng rng(21);
  VariabilityParams vp;
  util::RunningStats vth, res;
  for (int i = 0; i < 20000; ++i) {
    const CellSample s = sample_cell(vp, rng);
    vth.add(s.vth_offset);
    res.add(s.resistance);
  }
  EXPECT_NEAR(vth.mean(), 0.0, 0.002);
  EXPECT_NEAR(vth.stddev(), vp.sigma_vth, 0.002);
  EXPECT_NEAR(res.mean(), vp.r_nominal, 0.01 * vp.r_nominal);
  EXPECT_NEAR(res.stddev(), vp.sigma_r_rel * vp.r_nominal,
              0.05 * vp.sigma_r_rel * vp.r_nominal);
  EXPECT_GT(res.min(), 0.0);  // clamped tails keep R positive
}

TEST(Cell1T1R, OnCurrentClampedByResistor) {
  const CellBias bias;
  const VariabilityParams vp;
  Cell1T1R cell(true, {0.0, vp.r_nominal});
  const double i = cell.read(true, true, bias);
  // The resistor clamps near V_DL / R.
  EXPECT_LT(i, bias.v_dl_on / vp.r_nominal);
  EXPECT_GT(i, 0.5 * bias.v_dl_on / vp.r_nominal);
}

TEST(Cell1T1R, InactiveLinesCarryNoCurrent) {
  Cell1T1R cell(true, {0.0, 1e6});
  EXPECT_DOUBLE_EQ(cell.read(true, false), 0.0);
  EXPECT_LT(cell.read(false, true), 1e-9);  // gate off -> leakage only
}

TEST(Cell1T1R, VariabilitySuppressionVsBareFeFet) {
  // Fig. 2(d): the 1R suppresses the ON-current spread. Compare relative σ of
  // 60 bare FeFETs vs 60 1FeFET1R cells under V_TH variability.
  util::Rng rng(33);
  const FeFetParams fp;
  VariabilityParams vp;
  util::RunningStats bare, clamped;
  for (int d = 0; d < 60; ++d) {
    const double dvth = rng.normal(0.0, vp.sigma_vth);
    const FeFet fet(fp.vth_low + dvth, fp);
    bare.add(fet.drain_current(1.0, 0.8));
    Cell1T1R cell(true, {dvth, vp.r_nominal}, fp);
    clamped.add(cell.read(true, true));
  }
  const double bare_rel = bare.stddev() / bare.mean();
  const double clamped_rel = clamped.stddev() / clamped.mean();
  EXPECT_LT(clamped_rel, 0.5 * bare_rel);
}

TEST(Cell1T1R, StoredZeroOrdersOfMagnitudeBelowOne) {
  Cell1T1R on(true, {0.0, 1e6});
  Cell1T1R off(false, {0.0, 1e6});
  EXPECT_GT(on.read(true, true) / off.read(true, true), 1e3);
}

TEST(Cell1T1R, NominalOnCurrentPositive) {
  EXPECT_GT(nominal_on_current(), 1e-7);
}

}  // namespace
}  // namespace cnash::fefet
