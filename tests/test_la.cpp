#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.hpp"
#include "la/solve.hpp"
#include "util/rng.hpp"

namespace cnash::la {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  const Matrix d = Matrix::diagonal({2, 5});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.transposed().transposed(), m);
  EXPECT_DOUBLE_EQ(m.transposed()(2, 1), 6.0);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
  const Matrix prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2, 3}};
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(b * a, std::invalid_argument);
}

TEST(Matrix, MultiplyVector) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Vector v = m.multiply({1.0, 2.0});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[2], 17.0);
  const Vector w = m.multiply_transposed({1.0, 1.0, 1.0});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 9.0);
  EXPECT_DOUBLE_EQ(w[1], 12.0);
}

TEST(Matrix, MultiplyTransposedMatchesExplicitTranspose) {
  util::Rng rng(5);
  Matrix m(4, 6);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c) m(r, c) = rng.uniform(-2, 2);
  Vector v(4);
  for (auto& x : v) x = rng.uniform(-1, 1);
  const Vector a = m.multiply_transposed(v);
  const Vector b = m.transposed().multiply(v);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(VectorOps, DotAddSubtractScale) {
  Vector a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(add(a, b)[2], 9.0);
  EXPECT_DOUBLE_EQ(subtract(b, a)[0], 3.0);
  EXPECT_DOUBLE_EQ(scale(a, -2.0)[1], -4.0);
  EXPECT_DOUBLE_EQ(sum(a), 6.0);
  EXPECT_DOUBLE_EQ(norm_inf(subtract(a, b)), 3.0);
  EXPECT_DOUBLE_EQ(max_element(b), 6.0);
  EXPECT_EQ(argmax(a), 2u);
}

TEST(VectorOps, VmvMatchesManual) {
  Matrix m{{2, 0}, {0, 1}};
  EXPECT_DOUBLE_EQ(vmv({0.5, 0.5}, m, {0.5, 0.5}), 0.75);
}

TEST(Solve, UniqueSquareSystem) {
  Matrix a{{2, 1}, {1, 3}};
  const auto x = solve_unique(a, {5, 10});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 1.0, 1e-10);
  EXPECT_NEAR((*x)[1], 3.0, 1e-10);
}

TEST(Solve, SingularDetected) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(solve_unique(a, {1, 3}).has_value());  // inconsistent
  const auto res = solve_general(a, {1, 2});
  EXPECT_EQ(res.status, SolveStatus::kUnderdetermined);
  // Particular solution still satisfies the system.
  EXPECT_NEAR(res.x[0] + 2 * res.x[1], 1.0, 1e-10);
}

TEST(Solve, InconsistentDetected) {
  Matrix a{{1, 0}, {1, 0}};
  const auto res = solve_general(a, {1, 2});
  EXPECT_EQ(res.status, SolveStatus::kInconsistent);
}

TEST(Solve, OverdeterminedConsistent) {
  // Three equations, two unknowns, all consistent with x=(1,2).
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  const auto res = solve_general(a, {1, 2, 3});
  EXPECT_EQ(res.status, SolveStatus::kUnique);
  EXPECT_NEAR(res.x[0], 1.0, 1e-10);
  EXPECT_NEAR(res.x[1], 2.0, 1e-10);
}

TEST(Solve, RankComputation) {
  EXPECT_EQ(rank(Matrix{{1, 2}, {2, 4}}), 1u);
  EXPECT_EQ(rank(Matrix::identity(4)), 4u);
  EXPECT_EQ(rank(Matrix{{1, 2, 3}, {4, 5, 6}}), 2u);
}

TEST(Solve, Determinant) {
  EXPECT_DOUBLE_EQ(determinant(Matrix{{2, 0}, {0, 3}}), 6.0);
  EXPECT_DOUBLE_EQ(determinant(Matrix{{1, 2}, {2, 4}}), 0.0);
  EXPECT_NEAR(determinant(Matrix{{0, 1}, {1, 0}}), -1.0, 1e-12);
}

TEST(Solve, InverseRoundTrip) {
  Matrix a{{4, 7}, {2, 6}};
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix prod = a * *inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-10);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-10);
  EXPECT_FALSE(inverse(Matrix{{1, 2}, {2, 4}}).has_value());
}

TEST(Solve, RandomSystemsRoundTrip) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(6);
    Matrix a(n, n);
    Vector x_true(n);
    for (std::size_t r = 0; r < n; ++r) {
      x_true[r] = rng.uniform(-3, 3);
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-5, 5);
    }
    const Vector b = a.multiply(x_true);
    const auto res = solve_general(a, b);
    if (res.status != SolveStatus::kUnique) continue;  // rare near-singular
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(res.x[i], x_true[i], 1e-6);
  }
}

}  // namespace
}  // namespace cnash::la
