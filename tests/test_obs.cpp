// The telemetry layer (src/obs/) and its gateway integration. Contracts
// under test:
//   * Histogram: log-linear bucket boundaries round-trip (bucket_index of a
//     bucket's lower bound is that bucket), percentiles of samples recorded
//     exactly at bucket lower bounds reproduce those values EXACTLY,
//     count/sum/min/max are exact, merge() is associative;
//   * Registry: get-or-create identity (stable instrument addresses),
//     scrape-time collect callbacks, JSON and Prometheus text exposition
//     shapes (one TYPE line per base name across labeled series);
//   * TraceRecorder/Span: a disabled recorder records nothing (the <2%
//     overhead contract starts here), spans nest and the exported Chrome
//     trace is timestamp-ordered;
//   * end-to-end: the `metrics` wire method returns every registered
//     instrument family in both JSON and text form while the server runs, a
//     replica-exchange solve surfaces nonzero swap counters, and a traced
//     run under --serve-threads 4 yields a deterministic per-request span
//     structure (every submitted solve's trace id carries the full
//     request → canonicalize → cache → admit → queue-wait → prepare/unit →
//     render → flush pipeline).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "game/games.hpp"
#include "game/parse.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/line_client.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace cnash::obs {
namespace {

// ---- Histogram: bucket boundaries -------------------------------------------

TEST(Histogram, BucketLowerBoundsRoundTripThroughBucketIndex) {
  // Every finite bucket's lower bound must land back in that bucket — the
  // property that makes percentile() exact for boundary-valued samples.
  for (int i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const double lb = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_index(lb), i) << "bucket " << i << " lb " << lb;
  }
  // Lower bounds are strictly increasing over the finite range.
  for (int i = 1; i + 2 < Histogram::kBuckets; ++i)
    EXPECT_LT(Histogram::bucket_lower_bound(i),
              Histogram::bucket_lower_bound(i + 1));
}

TEST(Histogram, EdgeValuesBucketSanely) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMaxExp + 3)),
            Histogram::kBuckets - 1);
  // Far-underflow positives collapse into the underflow bucket too.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp - 8)),
            0);
}

TEST(Histogram, PercentilesAreExactForBoundaryValuedSamples) {
  // All ten samples sit exactly on bucket lower bounds (powers of two are
  // always a bucket's first sub-bucket), so every percentile must come back
  // bit-exact: lower-bound-of-bucket == the recorded value.
  const std::vector<double> samples = {0.25, 0.5, 1.0,  2.0,  4.0,
                                       8.0,  16.0, 32.0, 64.0, 128.0};
  Histogram h;
  for (double s : samples) h.record(s);

  ASSERT_EQ(h.count(), samples.size());
  // rank = ceil(q * 10): p50 → 5th smallest, p95/p99 → 10th.
  EXPECT_EQ(h.percentile(0.50), 4.0);
  EXPECT_EQ(h.percentile(0.95), 128.0);
  EXPECT_EQ(h.percentile(0.99), 128.0);
  EXPECT_EQ(h.percentile(0.10), 0.25);
  EXPECT_EQ(h.percentile(1.00), 128.0);
  EXPECT_EQ(h.min(), 0.25);
  EXPECT_EQ(h.max(), 128.0);
  double sum = 0.0;
  for (double s : samples) sum += s;
  EXPECT_EQ(h.sum(), sum);

  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, samples.size());
  EXPECT_EQ(snap.p50, 4.0);
  EXPECT_EQ(snap.p95, 128.0);
  EXPECT_EQ(snap.p99, 128.0);
}

TEST(Histogram, RepeatedSingleValueIsEveryPercentile) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(0.001953125);  // 2^-9, a boundary
  for (double q : {0.01, 0.5, 0.95, 0.99, 1.0})
    EXPECT_EQ(h.percentile(q), 0.001953125) << "q=" << q;
}

TEST(Histogram, UnderflowSamplesResolveToTheExactMin) {
  Histogram h;
  h.record(0.0);
  h.record(0.0);
  h.record(1.0);
  // Ranks 1 and 2 land in the underflow bucket, which reports the exact
  // recorded minimum rather than a fictitious bound.
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 1.0);
  EXPECT_EQ(h.min(), 0.0);
}

TEST(Histogram, EmptyHistogramReportsNaN) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
}

TEST(Histogram, MergeIsAssociativeBucketForBucket) {
  util::Rng rng(1234);
  auto fill = [&](Histogram& h, int n) {
    for (int i = 0; i < n; ++i)
      h.record(std::ldexp(0.5 + rng.uniform(), static_cast<int>(
                                                   rng.uniform() * 40) -
                                                   20));
  };
  Histogram a, b, c;
  fill(a, 200);
  fill(b, 150);
  fill(c, 75);

  // (a + b) + c  vs  a + (b + c), rebuilt from identical streams — merge has
  // no subtraction, so replaying the same records yields identical state.
  util::Rng rng2(1234);
  auto fill2 = [&](Histogram& h, int n) {
    for (int i = 0; i < n; ++i)
      h.record(std::ldexp(0.5 + rng2.uniform(), static_cast<int>(
                                                    rng2.uniform() * 40) -
                                                    20));
  };
  Histogram a2, b2, c2;
  fill2(a2, 200);
  fill2(b2, 150);
  fill2(c2, 75);

  a.merge(b);   // a = a + b
  a.merge(c);   // a = (a + b) + c
  b2.merge(c2); // b2 = b + c
  a2.merge(b2); // a2 = a + (b + c)

  EXPECT_EQ(a.count(), a2.count());
  EXPECT_EQ(a.sum(), a2.sum());
  EXPECT_EQ(a.min(), a2.min());
  EXPECT_EQ(a.max(), a2.max());
  for (double q = 0.01; q <= 1.0; q += 0.01)
    EXPECT_EQ(a.percentile(q), a2.percentile(q)) << "q=" << q;
}

// ---- Registry ---------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableIdenticalInstruments) {
  Registry reg;
  Counter& c1 = reg.counter("cnash_test_total");
  Counter& c2 = reg.counter("cnash_test_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
  Histogram& h1 = reg.histogram("cnash_test_seconds");
  Histogram& h2 = reg.histogram("cnash_test_seconds");
  EXPECT_EQ(&h1, &h2);
  Gauge& g1 = reg.gauge("cnash_test_depth");
  Gauge& g2 = reg.gauge("cnash_test_depth");
  EXPECT_EQ(&g1, &g2);
}

TEST(Registry, CollectCallbacksRunBeforeEveryScrape) {
  Registry reg;
  int collects = 0;
  reg.on_collect([&] {
    collects++;
    reg.gauge("cnash_mirrored").set(42.0);
  });
  const util::Json json = reg.to_json();
  EXPECT_EQ(collects, 1);
  EXPECT_EQ(json.at("gauges").at("cnash_mirrored").as_number(), 42.0);
  const std::string text = reg.text_exposition();
  EXPECT_EQ(collects, 2);
  EXPECT_NE(text.find("cnash_mirrored 42"), std::string::npos);
}

TEST(Registry, JsonExpositionCarriesHistogramQuantiles) {
  Registry reg;
  Histogram& h = reg.histogram("cnash_latency_seconds");
  for (double v : {0.5, 1.0, 2.0, 4.0}) h.record(v);
  const util::Json json = reg.to_json();
  const util::Json& hist = json.at("histograms").at("cnash_latency_seconds");
  EXPECT_EQ(hist.at("count").as_number(), 4.0);
  EXPECT_EQ(hist.at("p50").as_number(), 1.0);
  EXPECT_EQ(hist.at("p99").as_number(), 4.0);
  EXPECT_EQ(hist.at("min").as_number(), 0.5);
  EXPECT_EQ(hist.at("max").as_number(), 4.0);
}

TEST(Registry, TextExpositionMergesLabeledSeriesUnderOneTypeLine) {
  Registry reg;
  reg.counter("cnash_jobs_total{backend=\"exact-sa\"}").add(2);
  reg.counter("cnash_jobs_total{backend=\"hardware-sa\"}").add(5);
  reg.gauge("cnash_depth").set(1.5);
  Histogram& h = reg.histogram("cnash_stage_seconds");
  h.record(1.0);

  const std::string text = reg.text_exposition();
  // Exactly one TYPE line for the labeled counter family.
  std::size_t type_lines = 0, pos = 0;
  while ((pos = text.find("# TYPE cnash_jobs_total counter", pos)) !=
         std::string::npos) {
    type_lines++;
    pos++;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("cnash_jobs_total{backend=\"exact-sa\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cnash_jobs_total{backend=\"hardware-sa\"} 5"),
            std::string::npos);
  // Histogram renders as a summary with quantile labels + _sum/_count.
  EXPECT_NE(text.find("# TYPE cnash_stage_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("cnash_stage_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("cnash_stage_seconds_count 1"), std::string::npos);
  EXPECT_NE(text.find("cnash_stage_seconds_sum 1"), std::string::npos);
  // Every line is newline-terminated (Prometheus parsers require it).
  EXPECT_EQ(text.back(), '\n');
}

// ---- TraceRecorder / Span ---------------------------------------------------

TEST(Trace, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;
  EXPECT_FALSE(rec.enabled());
  {
    Span s(&rec, "outer", "test", 1);
    Span t(nullptr, "null-recorder", "test", 2);
    EXPECT_FALSE(s.active());
    EXPECT_FALSE(t.active());
  }
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, NestedSpansExportEnclosedAndTimestampOrdered) {
  TraceRecorder rec;
  rec.enable();
  const std::uint64_t id = rec.new_trace_id();
  {
    Span outer(&rec, "outer", "test", id);
    {
      Span inner(&rec, "inner", "test", id);
    }
  }
  ASSERT_EQ(rec.event_count(), 2u);
  const util::Json trace = rec.chrome_trace();
  const util::Json& events = trace.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer begins first (it opened first)...
  const util::Json& first = events.at(0);
  const util::Json& second = events.at(1);
  EXPECT_EQ(first.at("name").as_string(), "outer");
  EXPECT_EQ(second.at("name").as_string(), "inner");
  // ... and fully encloses inner.
  EXPECT_LE(first.at("ts").as_number(), second.at("ts").as_number());
  EXPECT_GE(first.at("ts").as_number() + first.at("dur").as_number(),
            second.at("ts").as_number() + second.at("dur").as_number());
  for (const util::Json* e : {&first, &second}) {
    EXPECT_EQ(e->at("ph").as_string(), "X");
    EXPECT_EQ(e->at("pid").as_number(), 1.0);
    EXPECT_EQ(e->at("args").at("request").as_number(),
              static_cast<double>(id));
  }
}

TEST(Trace, ExportIsTimestampOrderedAcrossThreads) {
  TraceRecorder rec;
  rec.enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < 50; ++i)
        Span(&rec, "work", "test", static_cast<std::uint64_t>(t)), (void)0;
    });
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(rec.event_count(), 200u);
  const util::Json trace = rec.chrome_trace();
  const util::Json& events = trace.at("traceEvents");
  double last = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const double ts = events.at(i).at("ts").as_number();
    EXPECT_GE(ts, last);
    last = ts;
  }
}

}  // namespace
}  // namespace cnash::obs

// ---- End-to-end: the gateway's metrics method and pipeline tracing ----------

namespace cnash::serve {
namespace {

std::string solve_line(const game::BimatrixGame& g, int id,
                       const std::string& extra = "") {
  std::string line = "{\"method\":\"solve\",\"id\":" + std::to_string(id);
  line += ",\"game_text\":" +
          util::Json::string(game::serialize_game(g, /*precision=*/12)).dump();
  line += ",\"backend\":\"exact-sa\",\"runs\":4,\"iterations\":200,"
          "\"seed\":7";
  line += extra;
  line += "}";
  return line;
}

class ObsServerFixture {
 public:
  explicit ObsServerFixture(ServeOptions options = {}) : server_(options) {
    server_.start();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~ObsServerFixture() { stop(); }
  void stop() {
    if (!thread_.joinable()) return;
    server_.request_stop();
    thread_.join();
  }
  NashServer& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  NashServer server_;
  std::thread thread_;
};

util::Json roundtrip(LineClient& client, const std::string& line) {
  EXPECT_TRUE(client.send_line(line));
  std::string response;
  EXPECT_TRUE(client.recv_line(response));
  return util::Json::parse(response);
}

TEST(ServeObservability, MetricsMethodReturnsEveryInstrumentFamily) {
  ObsServerFixture fixture;
  LineClient client;
  ASSERT_TRUE(client.connect_to("127.0.0.1", fixture.port()));

  // One miss-then-hit pair so cache counters and stage histograms have data.
  const game::BimatrixGame g = game::prisoners_dilemma();
  for (int i = 0; i < 2; ++i) {
    const util::Json r = roundtrip(client, solve_line(g, i));
    ASSERT_TRUE(r.at("ok").as_bool()) << r.dump();
  }

  const util::Json response = roundtrip(client, "{\"method\":\"metrics\"}");
  ASSERT_TRUE(response.at("ok").as_bool());
  const util::Json& metrics = response.at("metrics");
  const util::Json& counters = metrics.at("counters");
  const util::Json& gauges = metrics.at("gauges");
  const util::Json& histograms = metrics.at("histograms");

  for (const char* name :
       {"cnash_cache_hits_total", "cnash_cache_misses_total",
        "cnash_admission_admitted_total", "cnash_store_hits_total",
        "cnash_requests_total", "cnash_served_solves_ok_total",
        "cnash_re_swap_proposals_total", "cnash_re_swap_accepts_total",
        "cnash_fallback_samples_total", "cnash_degraded_reports_total",
        "cnash_solve_jobs_total{backend=\"exact-sa\"}"})
    EXPECT_NE(counters.find(name), nullptr) << name;
  for (const char* name :
       {"cnash_cache_entries", "cnash_service_threads", "cnash_connections",
        "cnash_uptime_seconds", "cnash_store_enabled",
        "cnash_re_swap_accept_rate", "cnash_pending_solves"})
    EXPECT_NE(gauges.find(name), nullptr) << name;
  for (const char* name :
       {"cnash_stage_parse_seconds", "cnash_stage_canonicalize_seconds",
        "cnash_stage_cache_lookup_seconds", "cnash_stage_admit_seconds",
        "cnash_stage_render_seconds", "cnash_stage_flush_seconds",
        "cnash_request_handle_seconds", "cnash_solve_wall_seconds",
        "cnash_stage_prepare_seconds", "cnash_stage_unit_seconds",
        "cnash_stage_queue_wait_seconds"})
    EXPECT_NE(histograms.find(name), nullptr) << name;

  // The solved pair must be visible in the mirrors and stage histograms.
  EXPECT_EQ(counters.at("cnash_cache_hits_total").as_number(), 1.0);
  EXPECT_EQ(counters.at("cnash_cache_misses_total").as_number(), 1.0);
  EXPECT_EQ(
      counters.at("cnash_solve_jobs_total{backend=\"exact-sa\"}").as_number(),
      1.0);
  EXPECT_GE(histograms.at("cnash_stage_parse_seconds").at("count").as_number(),
            3.0);  // two solves + this metrics request
  EXPECT_GE(histograms.at("cnash_stage_unit_seconds").at("count").as_number(),
            1.0);
  EXPECT_EQ(histograms.at("cnash_solve_wall_seconds").at("count").as_number(),
            1.0);

  // Text exposition via the wire: same instruments, Prometheus shape.
  const util::Json text_response =
      roundtrip(client, "{\"method\":\"metrics\",\"format\":\"text\"}");
  ASSERT_TRUE(text_response.at("ok").as_bool());
  const std::string text = text_response.at("metrics_text").as_string();
  EXPECT_NE(text.find("# TYPE cnash_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("cnash_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(
      text.find("cnash_stage_cache_lookup_seconds{quantile=\"0.99\"}"),
      std::string::npos);

  // Bad format selector is a structured error, not a closed connection.
  const util::Json bad =
      roundtrip(client, "{\"method\":\"metrics\",\"format\":\"xml\"}");
  EXPECT_FALSE(bad.at("ok").as_bool());
  EXPECT_EQ(bad.at("error").at("code").as_string(), "bad_request");
}

TEST(ServeObservability, ReplicaExchangeSwapRatesSurfaceInMetrics) {
  ObsServerFixture fixture;
  LineClient client;
  ASSERT_TRUE(client.connect_to("127.0.0.1", fixture.port()));

  const game::BimatrixGame g = game::matching_pennies();
  const util::Json r = roundtrip(
      client, solve_line(g, 1,
                         ",\"sa_mode\":\"replica-exchange\",\"replicas\":4"));
  ASSERT_TRUE(r.at("ok").as_bool()) << r.dump();

  const util::Json metrics =
      roundtrip(client, "{\"method\":\"metrics\"}").at("metrics");
  const double proposals =
      metrics.at("counters").at("cnash_re_swap_proposals_total").as_number();
  const double accepts =
      metrics.at("counters").at("cnash_re_swap_accepts_total").as_number();
  EXPECT_GT(proposals, 0.0);
  EXPECT_GE(proposals, accepts);
  const double rate =
      metrics.at("gauges").at("cnash_re_swap_accept_rate").as_number();
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  if (proposals > 0.0) EXPECT_EQ(rate, accepts / proposals);
}

TEST(ServeObservability, StatusCarriesBuildAndDeploymentIdentity) {
  ServeOptions options;
  options.serve_threads = 2;
  ObsServerFixture fixture(options);
  LineClient client;
  ASSERT_TRUE(client.connect_to("127.0.0.1", fixture.port()));

  const util::Json response = roundtrip(client, "{\"method\":\"status\"}");
  ASSERT_TRUE(response.at("ok").as_bool());
  const util::Json& status = response.at("status");
  EXPECT_FALSE(status.at("git_sha").as_string().empty());
  const std::string simd = status.at("simd_level").as_string();
  EXPECT_TRUE(simd == "scalar" || simd == "avx2" || simd == "avx512") << simd;
  EXPECT_FALSE(status.at("store_enabled").as_bool());
  EXPECT_GE(status.at("uptime_s").as_number(), 0.0);
  EXPECT_EQ(status.at("serve_threads").as_number(), 2.0);
}

TEST(ServeObservability, DisabledTracingRecordsNoSpans) {
  ObsServerFixture fixture;
  LineClient client;
  ASSERT_TRUE(client.connect_to("127.0.0.1", fixture.port()));
  const game::BimatrixGame g = game::prisoners_dilemma();
  ASSERT_TRUE(roundtrip(client, solve_line(g, 1)).at("ok").as_bool());
  EXPECT_FALSE(fixture.server().trace_recorder().enabled());
  EXPECT_EQ(fixture.server().trace_recorder().event_count(), 0u);
}

TEST(ServeObservability, TracedRunUnderFourLoopsYieldsCompletePipelines) {
  const std::string trace_path =
      "/tmp/cnash_obs_trace_" + std::to_string(::getpid()) + ".json";
  {
    ServeOptions options;
    options.serve_threads = 4;
    options.service_threads = 2;
    options.trace_out = trace_path;
    ObsServerFixture fixture(options);

    // Several concurrent connections across the four loops, each its own
    // distinct game (no coalescing), so many request pipelines interleave.
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t)
      clients.emplace_back([&fixture, t] {
        LineClient client;
        ASSERT_TRUE(client.connect_to("127.0.0.1", fixture.port()));
        util::Rng rng(100 + t);
        for (int i = 0; i < 3; ++i) {
          la::Matrix m(3, 3), n(3, 3);
          for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c) {
              m(r, c) = rng.uniform();
              n(r, c) = rng.uniform();
            }
          const game::BimatrixGame g(
              std::move(m), std::move(n),
              "t" + std::to_string(t) + "g" + std::to_string(i));
          const util::Json r =
              roundtrip(client, solve_line(g, t * 10 + i));
          ASSERT_TRUE(r.at("ok").as_bool()) << r.dump();
        }
      });
    for (std::thread& t : clients) t.join();
    fixture.stop();  // drain writes the trace file
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << trace_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const util::Json trace = util::Json::parse(buf.str());
  const util::Json& events = trace.at("traceEvents");
  ASSERT_GT(events.size(), 0u);

  // Group spans by request (trace id); ts ordering must hold globally.
  std::map<std::uint64_t, std::set<std::string>> by_request;
  double last_ts = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const util::Json& e = events.at(i);
    EXPECT_EQ(e.at("ph").as_string(), "X");
    const double ts = e.at("ts").as_number();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    if (const util::Json* args = e.find("args"))
      if (const util::Json* req = args->find("request"))
        by_request[static_cast<std::uint64_t>(req->as_number())].insert(
            e.at("name").as_string());
  }

  // Deterministic span structure: every request that reached the solver
  // carries the complete pipeline, regardless of which loop/worker ran it.
  std::size_t solved = 0;
  for (const auto& [id, names] : by_request) {
    if (!names.count("unit")) continue;  // status/metrics or hit-only id
    solved++;
    for (const char* stage :
         {"request", "parse", "canonicalize", "cache", "admit", "queue-wait",
          "prepare", "unit", "render", "flush"})
      EXPECT_TRUE(names.count(stage))
          << "request " << id << " missing span " << stage;
  }
  EXPECT_EQ(solved, 12u);  // 4 clients × 3 distinct games
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace cnash::serve
