#include <gtest/gtest.h>

#include <cmath>

#include "qubo/annealer.hpp"
#include "qubo/encoding.hpp"
#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace cnash::qubo {
namespace {

TEST(QuboModel, EnergyOfLinearTerms) {
  QuboModel m(3);
  m.add_linear(0, 2.0);
  m.add_linear(2, -1.0);
  m.add_offset(0.5);
  EXPECT_DOUBLE_EQ(m.energy({0, 0, 0}), 0.5);
  EXPECT_DOUBLE_EQ(m.energy({1, 0, 1}), 1.5);
}

TEST(QuboModel, EnergyOfQuadraticTerms) {
  QuboModel m(2);
  m.add_quadratic(0, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1}), 3.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 0}), 0.0);
  EXPECT_THROW(m.add_quadratic(1, 1, 1.0), std::invalid_argument);
}

TEST(QuboModel, FlipDeltaMatchesEnergyDifference) {
  util::Rng rng(8);
  QuboModel m(8);
  for (std::size_t i = 0; i < 8; ++i) {
    m.add_linear(i, rng.uniform(-2, 2));
    for (std::size_t j = i + 1; j < 8; ++j)
      m.add_quadratic(i, j, rng.uniform(-1, 1));
  }
  Bits x(8);
  for (auto& b : x) b = rng.bernoulli(0.5);
  for (std::size_t i = 0; i < 8; ++i) {
    Bits y = x;
    y[i] ^= 1;
    EXPECT_NEAR(m.flip_delta(x, i), m.energy(y) - m.energy(x), 1e-10);
  }
}

TEST(QuboModel, SquaredPenaltyExpandsCorrectly) {
  // penalty * (x0 + x1 - 1)^2: zero iff exactly one bit set.
  QuboModel m(2);
  m.add_squared_penalty({0, 1}, {1.0, 1.0}, -1.0, 4.0);
  EXPECT_DOUBLE_EQ(m.energy({0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(m.energy({0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1}), 4.0);
}

TEST(QuboModel, SquaredPenaltyWithCoefficients) {
  // (2 x0 - 3 x1 + 1)^2 over all four states.
  QuboModel m(2);
  m.add_squared_penalty({0, 1}, {2.0, -3.0}, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(m.energy({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 0}), 9.0);
  EXPECT_DOUBLE_EQ(m.energy({0, 1}), 4.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1}), 0.0);
}

TEST(QuboModel, QuantizedPreservesScaleRoughly) {
  QuboModel m(2);
  m.add_linear(0, 1.0);
  m.add_quadratic(0, 1, -0.37);
  const QuboModel q = m.quantized(4);
  EXPECT_NEAR(q.q()(0, 0), 1.0, 0.15);
  EXPECT_NEAR(q.q()(0, 1) + q.q()(1, 0), -0.37, 0.15);
  // bits == 0 leaves untouched.
  EXPECT_EQ(m.quantized(0).q(), m.q());
}

TEST(ScalarEncoding, DecodeRange) {
  ScalarEncoding e(2, 4, 0.0, 15.0);
  Bits x(6, 0);
  EXPECT_DOUBLE_EQ(e.decode(x), 0.0);
  x[2] = x[3] = x[4] = x[5] = 1;
  EXPECT_DOUBLE_EQ(e.decode(x), 15.0);
  x = {0, 0, 1, 0, 1, 0};  // bits 0 and 2 of the encoding -> 1 + 4
  EXPECT_DOUBLE_EQ(e.decode(x), 5.0);
}

TEST(ScalarEncoding, QuantizeClampsAndRounds) {
  ScalarEncoding e(0, 3, -1.0, 6.0);
  EXPECT_DOUBLE_EQ(e.quantize(-5.0), -1.0);
  EXPECT_DOUBLE_EQ(e.quantize(100.0), 6.0);
  EXPECT_NEAR(e.quantize(2.4), 2.0, e.resolution());
}

TEST(ScalarEncoding, PenaltyViewConsistent) {
  ScalarEncoding e(1, 3, 2.0, 9.0);
  const auto idx = e.indices();
  const auto coeff = e.coefficients();
  ASSERT_EQ(idx.size(), 3u);
  Bits x(4, 0);
  x[1] = 1;
  x[3] = 1;  // bits 0 and 2
  double value = e.constant();
  for (std::size_t k = 0; k < idx.size(); ++k)
    if (x[idx[k]]) value += coeff[k];
  EXPECT_DOUBLE_EQ(value, e.decode(x));
}

TEST(Annealer, SolvesSmallKnownMinimum) {
  // E = (x0 + x1 + x2 - 2)^2 has minimum 0 at any two bits set.
  QuboModel m(3);
  m.add_squared_penalty({0, 1, 2}, {1, 1, 1}, -2.0, 1.0);
  util::Rng rng(42);
  const auto res = anneal(m, {5.0, 0.01, 100}, rng);
  EXPECT_DOUBLE_EQ(res.best_energy, 0.0);
  int set = res.best_state[0] + res.best_state[1] + res.best_state[2];
  EXPECT_EQ(set, 2);
}

TEST(Annealer, FindsGroundStateOfRandomInstancesMostly) {
  util::Rng rng(7);
  int hits = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    QuboModel m(10);
    for (std::size_t i = 0; i < 10; ++i) {
      m.add_linear(i, rng.uniform(-1, 1));
      for (std::size_t j = i + 1; j < 10; ++j)
        m.add_quadratic(i, j, rng.uniform(-1, 1));
    }
    // Exhaustive ground truth over 2^10 states.
    double best = 1e100;
    for (unsigned s = 0; s < 1024; ++s) {
      Bits x(10);
      for (int b = 0; b < 10; ++b) x[b] = (s >> b) & 1;
      best = std::min(best, m.energy(x));
    }
    const auto res = anneal(m, {5.0, 0.01, 300}, rng);
    if (std::abs(res.best_energy - best) < 1e-9) ++hits;
  }
  EXPECT_GE(hits, trials - 3);
}

TEST(Annealer, BestEnergyConsistentWithState) {
  QuboModel m(6);
  util::Rng rng(3);
  for (std::size_t i = 0; i < 6; ++i) m.add_linear(i, rng.uniform(-1, 1));
  const auto res = anneal(m, {2.0, 0.05, 50}, rng);
  EXPECT_NEAR(res.best_energy, m.energy(res.best_state), 1e-9);
}

TEST(Annealer, SampleProducesRequestedReads) {
  QuboModel m(4);
  m.add_linear(0, -1.0);
  util::Rng rng(5);
  const auto reads = sample(m, {2.0, 0.05, 20}, 7, rng);
  EXPECT_EQ(reads.size(), 7u);
}

}  // namespace
}  // namespace cnash::qubo
