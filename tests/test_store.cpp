// The persistent tier-2 solution store (src/store/). Contracts under test:
//   * codec: round-trip on structured and adversarial buffers, a stored
//     fallback for incompressible input, malformed streams throw CodecError
//     instead of crashing or over-reading;
//   * log + store: put/get round-trip across segment rotation and reopen,
//     newest-wins supersede, budget eviction via tombstones that survives
//     reopen, compaction reclaims dead bytes with every live record intact;
//   * crash safety: a torn tail (truncate mid-record) is amputated on reopen
//     and reported by fsck; a CRC-corrupted record is skipped while the rest
//     of the segment stays servable;
//   * serve integration: a RAM-missed key is served from disk and promoted,
//     a gateway restart against a populated --store-dir answers a previously
//     solved request byte-identically with zero new SolverService jobs, a
//     permuted game hits through the disk tier and maps back into the
//     caller's action order, and degraded reports are never persisted.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/report_json.hpp"
#include "game/parse.hpp"
#include "game/random_games.hpp"
#include "serve/line_client.hpp"
#include "serve/server.hpp"
#include "store/codec.hpp"
#include "store/log.hpp"
#include "store/store.hpp"
#include "util/json.hpp"

namespace cnash {
namespace {

namespace fs = std::filesystem;

// ---- helpers ----------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/cnash_store_test_XXXXXX";
    const char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    dir_ = made ? made : "";
  }
  ~TempDir() {
    std::error_code ec;
    if (!dir_.empty()) fs::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

std::uint64_t digest_of(const std::string& key) {
  return std::hash<std::string>{}(key);
}

/// JSON-shaped, compressible payload (what the serve layer actually stores).
std::string json_like_value(int i) {
  std::string v = "{\"backend\":\"exact-sa\",\"samples\":[";
  for (int s = 0; s < 6; ++s) {
    if (s) v += ",";
    v += "{\"p\":[0.125,0.125,0.25,0.5],\"q\":[0.5,0.25,0.25],"
         "\"objective\":0.0,\"valid\":true,\"is_nash\":true,\"regret\":0.0}";
  }
  v += "],\"tag\":" + std::to_string(i) + "}";
  return v;
}

/// Incompressible payload (pseudo-random bytes).
std::string random_value(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  std::string v(n, '\0');
  for (char& c : v) c = static_cast<char>(rng());
  return v;
}

std::string single_segment_path(const std::string& dir) {
  std::vector<std::string> segments;
  for (const auto& e : fs::directory_iterator(dir))
    segments.push_back(e.path().string());
  EXPECT_EQ(segments.size(), 1u);
  return segments.empty() ? "" : segments.front();
}

// ---- codec ------------------------------------------------------------------

TEST(Codec, RoundTripOnStructuredAndAdversarialBuffers) {
  const store::Codec& codec = store::lz_codec();
  std::vector<std::string> inputs = {
      "",
      "a",
      "abc",
      "abcd",
      "abcdabcd",
      std::string(10000, '\0'),
      std::string(300, 'x'),  // literal runs + RLE-style overlap, > 128
      json_like_value(0),
      random_value(1, 4096),
  };
  // Repeated block far apart: exercises offsets near the 16-bit limit.
  {
    std::string far = random_value(2, 200);
    std::string buf = far + std::string(65000, 'q') + far;
    inputs.push_back(std::move(buf));
  }
  // Low-entropy random: compressible but irregular.
  {
    std::mt19937 rng(3);
    std::string v(8192, '\0');
    for (char& c : v) c = "ab"[rng() % 2];
    inputs.push_back(std::move(v));
  }

  std::string packed, unpacked;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!codec.compress(inputs[i], packed)) continue;  // stored fallback
    EXPECT_LT(packed.size(), inputs[i].size()) << "input " << i;
    codec.decompress(packed, inputs[i].size(), unpacked);
    EXPECT_EQ(unpacked, inputs[i]) << "input " << i;
  }

  // The structured buffers must actually compress — the acceptance bar for
  // the serving workload is ratio > 1.
  EXPECT_TRUE(codec.compress(json_like_value(1), packed));
  EXPECT_TRUE(codec.compress(std::string(10000, '\0'), packed));
}

TEST(Codec, IncompressibleInputFallsBackToStored) {
  const store::Codec& codec = store::lz_codec();
  std::string packed;
  EXPECT_FALSE(codec.compress(random_value(7, 4096), packed));
  EXPECT_FALSE(codec.compress("", packed));
  EXPECT_FALSE(codec.compress("ab", packed));
}

TEST(Codec, MalformedStreamsThrowInsteadOfCrashing) {
  const store::Codec& codec = store::lz_codec();
  std::string out;
  // Literal run of 4 announced, 1 byte present.
  EXPECT_THROW(codec.decompress(std::string("\x03z", 2), 4, out),
               store::CodecError);
  // Match with offset 0 (never emitted by the compressor).
  EXPECT_THROW(
      codec.decompress(std::string("\x00q\x80\x00\x00", 5), 5, out),
      store::CodecError);
  // Match offset larger than the output produced so far.
  EXPECT_THROW(
      codec.decompress(std::string("\x00q\x80\x05\x00", 5), 5, out),
      store::CodecError);
  // Match runs past the declared decoded size.
  EXPECT_THROW(
      codec.decompress(std::string("\x00q\x80\x01\x00", 5), 2, out),
      store::CodecError);
  // Stream ends inside a match header.
  EXPECT_THROW(codec.decompress(std::string("\x00q\x80", 3), 5, out),
               store::CodecError);
  // Decoded size disagrees with the header.
  EXPECT_THROW(codec.decompress(std::string("\x00q", 2), 2, out),
               store::CodecError);
}

// ---- store: round-trip, supersede, eviction, compaction ---------------------

TEST(Store, PutGetRoundTripAcrossRotationAndReopen) {
  TempDir dir;
  store::StoreOptions options;
  options.segment_bytes = 4096;  // force rotation across many small records
  std::vector<std::pair<std::string, std::string>> kv;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key-" + std::to_string(i);
    // Mix compressible and incompressible values: both codecs on disk.
    kv.emplace_back(key, i % 3 == 0 ? random_value(i, 300) : json_like_value(i));
  }

  {
    store::SolutionStore store(dir.path(), options);
    for (const auto& [k, v] : kv) store.put(digest_of(k), k, v);
    const store::StoreStats stats = store.stats();
    EXPECT_EQ(stats.entries, kv.size());
    EXPECT_EQ(stats.appends, kv.size());
    EXPECT_GT(stats.segments, 1u);
    EXPECT_GT(stats.compressed_records, 0u);
    EXPECT_GT(stats.stored_records, 0u);
    for (const auto& [k, v] : kv) {
      const auto got = store.get(digest_of(k), k);
      ASSERT_TRUE(got.has_value()) << k;
      EXPECT_EQ(*got, v) << k;
    }
    EXPECT_FALSE(store.get(digest_of("absent"), "absent").has_value());
  }

  // Reopen: the index is rebuilt purely from the segment scan.
  store::SolutionStore reopened(dir.path(), options);
  const store::StoreStats stats = reopened.stats();
  EXPECT_EQ(stats.entries, kv.size());
  EXPECT_EQ(stats.torn_tail_truncations, 0u);
  EXPECT_EQ(stats.corrupt_records_skipped, 0u);
  EXPECT_GT(stats.compression_ratio(), 1.0);
  for (const auto& [k, v] : kv) {
    const auto got = reopened.get(digest_of(k), k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v) << k;
  }
}

TEST(Store, SupersedeKeepsNewestAcrossReopen) {
  TempDir dir;
  {
    store::SolutionStore store(dir.path());
    store.put(digest_of("k"), "k", "old value old value old value");
    store.put(digest_of("k"), "k", "new value new value new value!");
    EXPECT_EQ(store.stats().entries, 1u);
    EXPECT_GT(store.stats().dead_stored_bytes, 0u);
    EXPECT_EQ(*store.get(digest_of("k"), "k"),
              "new value new value new value!");
  }
  store::SolutionStore reopened(dir.path());
  EXPECT_EQ(reopened.stats().entries, 1u);
  EXPECT_EQ(*reopened.get(digest_of("k"), "k"),
            "new value new value new value!");
}

TEST(Store, FullKeyCompareDisambiguatesDigestCollisions) {
  TempDir dir;
  store::SolutionStore store(dir.path());
  // Same digest, different key bytes: both must coexist and resolve.
  store.put(42, "alpha", "value-alpha");
  store.put(42, "beta", "value-beta");
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_EQ(*store.get(42, "alpha"), "value-alpha");
  EXPECT_EQ(*store.get(42, "beta"), "value-beta");
  EXPECT_FALSE(store.get(42, "gamma").has_value());
}

TEST(Store, BudgetEvictionWritesTombstonesThatSurviveReopen) {
  TempDir dir;
  store::StoreOptions options;
  options.byte_budget = 4096;
  options.auto_compact = false;  // keep the tombstone records visible
  std::vector<std::string> keys;
  {
    store::SolutionStore store(dir.path(), options);
    for (int i = 0; i < 10; ++i) {
      const std::string key = "evict-" + std::to_string(i);
      keys.push_back(key);
      store.put(digest_of(key), key, random_value(100 + i, 700));
    }
    const store::StoreStats stats = store.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.tombstones, stats.evictions);
    EXPECT_LT(stats.entries, keys.size());
    EXPECT_LE(stats.live_stored_bytes, options.byte_budget);
    // Oldest-written goes first; the newest put always survives.
    EXPECT_FALSE(store.get(digest_of(keys[0]), keys[0]).has_value());
    EXPECT_TRUE(store.get(digest_of(keys.back()), keys.back()).has_value());
  }

  // Tombstones replay on reopen: the evicted keys stay gone.
  store::SolutionStore reopened(dir.path(), options);
  EXPECT_FALSE(reopened.get(digest_of(keys[0]), keys[0]).has_value());
  EXPECT_TRUE(reopened.get(digest_of(keys.back()), keys.back()).has_value());
}

TEST(Store, OversizePutIsRejectedNotWritten) {
  TempDir dir;
  store::StoreOptions options;
  options.byte_budget = 1024;
  store::SolutionStore store(dir.path(), options);
  store.put(digest_of("big"), "big", random_value(9, 4096));
  EXPECT_EQ(store.stats().oversize_rejects, 1u);
  EXPECT_EQ(store.stats().entries, 0u);
  EXPECT_FALSE(store.get(digest_of("big"), "big").has_value());
}

TEST(Store, CompactReclaimsDeadBytesKeepsEveryLiveRecord) {
  TempDir dir;
  store::StoreOptions options;
  options.segment_bytes = 2048;
  options.auto_compact = false;
  {
    store::SolutionStore store(dir.path(), options);
    for (int i = 0; i < 20; ++i) {
      const std::string key = "c-" + std::to_string(i);
      store.put(digest_of(key), key, json_like_value(i));
    }
    for (int i = 0; i < 10; ++i) {  // supersede half: dead weight piles up
      const std::string key = "c-" + std::to_string(i);
      store.put(digest_of(key), key, json_like_value(1000 + i));
    }
    const std::size_t segments_before = store.stats().segments;
    EXPECT_GT(store.stats().dead_stored_bytes, 0u);

    store.compact();
    const store::StoreStats stats = store.stats();
    EXPECT_EQ(stats.compactions, 1u);
    EXPECT_EQ(stats.dead_stored_bytes, 0u);
    EXPECT_EQ(stats.entries, 20u);
    EXPECT_LE(stats.segments, segments_before);
    for (int i = 0; i < 20; ++i) {
      const std::string key = "c-" + std::to_string(i);
      const auto got = store.get(digest_of(key), key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(*got, json_like_value(i < 10 ? 1000 + i : i)) << key;
    }
  }
  // A compacted directory reopens like any other.
  store::SolutionStore reopened(dir.path(), options);
  EXPECT_EQ(reopened.stats().entries, 20u);
  EXPECT_EQ(*reopened.get(digest_of("c-3"), "c-3"), json_like_value(1003));
  EXPECT_EQ(*reopened.get(digest_of("c-15"), "c-15"), json_like_value(15));
}

// ---- crash safety -----------------------------------------------------------

TEST(Store, TornTailIsTruncatedOnReopenAndFsckReportsIt) {
  TempDir dir;
  {
    store::SolutionStore store(dir.path());
    store.put(digest_of("a"), "a", json_like_value(1));
    store.put(digest_of("b"), "b", json_like_value(2));
    store.put(digest_of("c"), "c", json_like_value(3));
  }
  const std::string segment = single_segment_path(dir.path());
  // Crash mid-append: the last record loses its final 3 bytes.
  fs::resize_file(segment, fs::file_size(segment) - 3);

  const store::FsckReport before = store::SolutionStore::fsck(dir.path());
  EXPECT_FALSE(before.clean());
  EXPECT_EQ(before.torn_segments, 1u);
  EXPECT_EQ(before.records, 2u);
  EXPECT_EQ(before.live_entries, 2u);

  {
    store::SolutionStore store(dir.path());
    EXPECT_EQ(store.stats().torn_tail_truncations, 1u);
    EXPECT_EQ(store.stats().entries, 2u);
    EXPECT_EQ(*store.get(digest_of("a"), "a"), json_like_value(1));
    EXPECT_EQ(*store.get(digest_of("b"), "b"), json_like_value(2));
    EXPECT_FALSE(store.get(digest_of("c"), "c").has_value());
    // The amputated log accepts appends again.
    store.put(digest_of("d"), "d", json_like_value(4));
  }

  const store::FsckReport after = store::SolutionStore::fsck(dir.path());
  EXPECT_TRUE(after.clean());
  EXPECT_EQ(after.live_entries, 3u);
}

TEST(Store, CrcCorruptRecordIsSkippedRestOfSegmentIntact) {
  TempDir dir;
  {
    store::SolutionStore store(dir.path());
    store.put(digest_of("first"), "first", json_like_value(1));
    store.put(digest_of("second"), "second", json_like_value(2));
    store.put(digest_of("third"), "third", json_like_value(3));
  }
  const std::string segment = single_segment_path(dir.path());
  {
    // Flip one byte inside the FIRST record's key: its CRC fails, and the
    // scan must resynchronise on the next record magic — the two records
    // behind it stay servable.
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(store::kSegmentHeaderSize +
                                        store::kRecordHeaderSize + 1));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(store::kSegmentHeaderSize +
                                        store::kRecordHeaderSize + 1));
    f.write(&byte, 1);
  }

  const store::FsckReport report = store::SolutionStore::fsck(dir.path());
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.corrupt_records, 1u);
  EXPECT_EQ(report.records, 2u);

  store::SolutionStore store(dir.path());
  EXPECT_GE(store.stats().corrupt_records_skipped, 1u);
  EXPECT_EQ(store.stats().entries, 2u);
  EXPECT_FALSE(store.get(digest_of("first"), "first").has_value());
  EXPECT_EQ(*store.get(digest_of("second"), "second"), json_like_value(2));
  EXPECT_EQ(*store.get(digest_of("third"), "third"), json_like_value(3));

  // Compaction rewrites the survivors into a fresh, clean segment.
  store.compact();
  const store::FsckReport compacted = store::SolutionStore::fsck(dir.path());
  EXPECT_TRUE(compacted.clean());
  EXPECT_EQ(compacted.live_entries, 2u);
}

// ---- serve integration ------------------------------------------------------

core::SolveRequest quick_request(const game::BimatrixGame& g,
                                 const std::string& backend = "exact-sa",
                                 std::size_t runs = 4, std::uint64_t seed = 7) {
  core::SolveRequest req(g);
  req.backend = backend;
  req.runs = runs;
  req.seed = seed;
  req.sa.iterations = 300;
  return req;
}

TEST(CacheTier2, WriteThroughThenPromoteOnHitFromAFreshCache) {
  TempDir dir;
  store::SolutionStore store(dir.path());

  util::Rng rng(4242);
  const game::BimatrixGame g = game::random_covariant_game(5, 4, 0.2, rng);
  const serve::CanonicalRequest canonical =
      serve::canonicalize(quick_request(g));
  const core::SolveReport report =
      core::SolverRegistry::global().at("exact-sa").solve(canonical.request);

  {
    serve::SolutionCache cache(1u << 20);
    cache.attach_store(&store);
    cache.insert(canonical.key,
                 std::make_shared<const core::SolveReport>(report));
    EXPECT_EQ(store.stats().appends, 1u);
    // RAM still warm: the store is not consulted.
    EXPECT_NE(cache.lookup(canonical.key), nullptr);
    EXPECT_EQ(store.stats().hits, 0u);
  }

  // A brand-new RAM tier (a restart in miniature): the lookup falls through
  // to disk, decodes losslessly, and promotes.
  serve::SolutionCache fresh(1u << 20);
  fresh.attach_store(&store);
  const auto replay = fresh.lookup(canonical.key);
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(core::report_to_json(*replay).dump(),
            core::report_to_json(report).dump());
  EXPECT_EQ(replay->wall_clock_s, report.wall_clock_s);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(fresh.stats().misses, 1u);
  EXPECT_EQ(fresh.stats().insertions, 1u);
  // Promoted: the second lookup is a RAM hit, disk untouched.
  EXPECT_NE(fresh.lookup(canonical.key), nullptr);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(fresh.stats().hits, 1u);
}

/// serve::LineClient with raw-line access (the byte-identical checks compare
/// unparsed response lines).
class StoreTestClient {
 public:
  void connect_to(std::uint16_t port) {
    ASSERT_TRUE(client_.connect_to(port)) << std::strerror(errno);
  }
  std::string raw_request(const std::string& line) {
    EXPECT_TRUE(client_.send_line(line)) << std::strerror(errno);
    std::string response;
    EXPECT_TRUE(client_.recv_line(response));
    return response;
  }
  util::Json request(const std::string& line) {
    return util::Json::parse(raw_request(line));
  }

 private:
  serve::LineClient client_;
};

class StoreServerFixture {
 public:
  explicit StoreServerFixture(serve::ServeOptions options) : server_(options) {
    server_.start();
    thread_ = std::thread([this] { server_.run(); });
  }
  ~StoreServerFixture() { stop(); }
  void stop() {
    if (!thread_.joinable()) return;
    server_.request_stop();
    thread_.join();
  }
  serve::NashServer& server() { return server_; }
  std::uint16_t port() const { return server_.port(); }

 private:
  serve::NashServer server_;
  std::thread thread_;
};

serve::ServeOptions store_options(const std::string& dir) {
  serve::ServeOptions options;
  options.serve_threads = 2;
  options.service_threads = 2;
  options.store_dir = dir;
  return options;
}

std::string solve_line(const game::BimatrixGame& g, int id,
                       std::uint64_t seed = 7, const std::string& extra = "") {
  std::string line = "{\"method\":\"solve\",\"id\":" + std::to_string(id);
  line += ",\"game_text\":" +
          util::Json::string(game::serialize_game(g, /*precision=*/12)).dump();
  line += ",\"backend\":\"exact-sa\",\"runs\":4,\"iterations\":300";
  line += ",\"seed\":" + std::to_string(seed);
  line += extra;
  line += "}";
  return line;
}

TEST(ServeStore, RestartServesByteIdenticalWarmHitWithZeroJobs) {
  TempDir dir;
  util::Rng rng(77);
  const game::BimatrixGame g = game::random_covariant_game(6, 6, 0.1, rng);
  const std::string line = solve_line(g, 1);

  std::string cold;
  {
    StoreServerFixture fixture(store_options(dir.path()));
    StoreTestClient client;
    client.connect_to(fixture.port());
    cold = client.raw_request(line);
    const util::Json parsed = util::Json::parse(cold);
    ASSERT_TRUE(parsed.at("ok").as_bool());
    EXPECT_FALSE(parsed.at("cached").as_bool());
    fixture.stop();
    EXPECT_EQ(fixture.server().served_stats().jobs_submitted, 1u);
  }

  // A fresh process (in miniature) against the same directory: the solve is
  // answered from disk — byte-identical modulo the cached flag — and the
  // solver pool never hears about it.
  StoreServerFixture restarted(store_options(dir.path()));
  StoreTestClient client;
  client.connect_to(restarted.port());
  const std::string warm = client.raw_request(line);
  const util::Json parsed = util::Json::parse(warm);
  ASSERT_TRUE(parsed.at("ok").as_bool());
  EXPECT_TRUE(parsed.at("cached").as_bool());

  std::string cold_normalized = cold;
  const std::size_t flag = cold_normalized.find("\"cached\":false");
  ASSERT_NE(flag, std::string::npos);
  cold_normalized.replace(flag, std::strlen("\"cached\":false"),
                          "\"cached\":true");
  EXPECT_EQ(warm, cold_normalized);

  const util::Json stats = client.request("{\"method\":\"stats\"}");
  EXPECT_EQ(stats.at("stats").at("store").at("hits").as_number(), 1.0);
  EXPECT_EQ(stats.at("stats").at("served").at("jobs_submitted").as_number(),
            0.0);
  restarted.stop();
  EXPECT_EQ(restarted.server().served_stats().jobs_submitted, 0u);
}

TEST(ServeStore, PermutedGameHitsThroughTheDiskTier) {
  TempDir dir;
  util::Rng rng(78);
  const game::BimatrixGame g = game::random_covariant_game(5, 4, -0.2, rng);

  util::Json first;
  {
    StoreServerFixture fixture(store_options(dir.path()));
    StoreTestClient client;
    client.connect_to(fixture.port());
    first = client.request(solve_line(g, 1));
    ASSERT_TRUE(first.at("ok").as_bool());
  }

  // Relabel both action sets and rename the game: same canonical solve.
  const std::vector<std::uint32_t> rows = {3, 0, 4, 1, 2};
  const std::vector<std::uint32_t> cols = {2, 3, 0, 1};
  la::Matrix m(5, 4), n(5, 4);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 4; ++c) {
      m(r, c) = g.payoff1()(rows[r], cols[c]);
      n(r, c) = g.payoff2()(rows[r], cols[c]);
    }
  const game::BimatrixGame shuffled(std::move(m), std::move(n), "shuffled");

  StoreServerFixture restarted(store_options(dir.path()));
  StoreTestClient client;
  client.connect_to(restarted.port());
  const util::Json second = client.request(solve_line(shuffled, 2));
  ASSERT_TRUE(second.at("ok").as_bool());
  EXPECT_TRUE(second.at("cached").as_bool());
  EXPECT_EQ(second.at("report").at("game").as_string(), "shuffled");
  restarted.stop();
  EXPECT_EQ(restarted.server().served_stats().jobs_submitted, 0u);

  // The disk-tier report is mapped back into the caller's action order:
  // strategy mass moves with the relabeling, sample by sample.
  const util::Json& s1 = first.at("report").at("samples");
  const util::Json& s2 = second.at("report").at("samples");
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t s = 0; s < s1.size(); ++s) {
    const util::Json& p1 = s1.at(s).at("p");
    const util::Json& p2 = s2.at(s).at("p");
    for (std::size_t r = 0; r < rows.size(); ++r)
      EXPECT_EQ(p2.at(r).as_number(), p1.at(rows[r]).as_number())
          << "sample " << s << " row " << r;
    const util::Json& q1 = s1.at(s).at("q");
    const util::Json& q2 = s2.at(s).at("q");
    for (std::size_t c = 0; c < cols.size(); ++c)
      EXPECT_EQ(q2.at(c).as_number(), q1.at(cols[c]).as_number())
          << "sample " << s << " col " << c;
  }
}

TEST(ServeStore, DegradedReportsAreNeverPersisted) {
  TempDir dir;
  {
    StoreServerFixture fixture(store_options(dir.path()));
    StoreTestClient client;
    client.connect_to(fixture.port());
    // 64 single-lane heavy units on a 2-worker pool cannot finish in a
    // quarter second: the report comes back degraded — and must not land on
    // disk (nor in RAM; that rule predates the store).
    const util::Json solved = client.request(
        "{\"method\":\"solve\",\"id\":1,\"game\":{\"name\":\"mp\","
        "\"m\":[[1,-1],[-1,1]],\"n\":[[-1,1],[1,-1]]},"
        "\"backend\":\"exact-sa\",\"runs\":64,\"iterations\":1000000,"
        "\"seed\":3,\"batch_lanes\":1,\"deadline_s\":0.25}");
    ASSERT_TRUE(solved.at("ok").as_bool());
    EXPECT_TRUE(solved.at("report").at("degraded").as_bool());
  }
  const store::FsckReport report = store::SolutionStore::fsck(dir.path());
  EXPECT_EQ(report.live_entries, 0u);
  EXPECT_EQ(report.records, 0u);
}

}  // namespace
}  // namespace cnash
