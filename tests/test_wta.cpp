#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "wta/corners.hpp"
#include "wta/wta_cell.hpp"
#include "wta/wta_tree.hpp"

namespace cnash::wta {
namespace {

TEST(Corners, NamesAndFactors) {
  EXPECT_EQ(corner_name(ProcessCorner::kTT), "tt");
  EXPECT_EQ(corner_name(ProcessCorner::kSNFP), "snfp");
  EXPECT_DOUBLE_EQ(corner_factors(ProcessCorner::kTT).latency_scale, 1.0);
  EXPECT_GT(corner_factors(ProcessCorner::kSS).latency_scale, 1.0);
  EXPECT_LT(corner_factors(ProcessCorner::kFF).latency_scale, 1.0);
  EXPECT_EQ(kAllCorners.size(), 5u);
}

TEST(WtaCell, DeterministicWorstCaseOffset) {
  // Without an rng the cell freezes the +1 sigma worst-case mismatch.
  const WtaCell cell;
  const double out = cell.output(10e-6, 4e-6);
  EXPECT_NEAR(out, 10e-6 * 1.0025, 1e-12);
}

TEST(WtaCell, StaticMismatchWithinSpecAcrossCells) {
  // Mismatch is a per-cell fabrication artefact: its statistics show across
  // many physical cells, not across reads of one cell.
  util::Rng rng(41);
  util::RunningStats offsets;
  for (int c = 0; c < 20000; ++c) {
    const WtaCell cell({}, &rng);
    offsets.add(cell.static_offset());
  }
  EXPECT_NEAR(offsets.mean(), 0.0, 5e-5);
  EXPECT_NEAR(offsets.stddev(), 0.0025, 2e-4);  // 0.25 % (Fig. 5(c))
}

TEST(WtaCell, RepeatedReadsOfOneCellAreStable) {
  util::Rng rng(42);
  const WtaCell cell({}, &rng);
  util::RunningStats reads;
  for (int t = 0; t < 5000; ++t) reads.add(cell.output(10e-6, 3e-6, &rng));
  // Per-read noise is an order of magnitude below the static mismatch spec.
  EXPECT_LT(reads.stddev() / reads.mean(), 0.0005);
}

TEST(WtaCell, SymmetricInInputs) {
  const WtaCell cell;
  EXPECT_DOUBLE_EQ(cell.output(2e-6, 7e-6), cell.output(7e-6, 2e-6));
}

TEST(WtaCell, LatencyMatchesSpecAtTT) {
  const WtaCell cell;
  EXPECT_DOUBLE_EQ(cell.latency_s(), 0.08e-9);
}

TEST(WtaCell, CornerScalesLatencyAndOffset) {
  WtaCellParams ss;
  ss.corner = ProcessCorner::kSS;
  WtaCellParams ff;
  ff.corner = ProcessCorner::kFF;
  EXPECT_GT(WtaCell(ss).latency_s(), WtaCell().latency_s());
  EXPECT_LT(WtaCell(ff).latency_s(), WtaCell().latency_s());
}

TEST(WtaCell, TransientSettlesTo95PercentAtLatency) {
  const WtaCell cell;
  const double settled = cell.output(10e-6, 1e-6);
  const double at_latency = cell.transient(10e-6, 1e-6, cell.latency_s());
  EXPECT_NEAR(at_latency / settled, 0.95, 0.005);
  EXPECT_DOUBLE_EQ(cell.transient(10e-6, 1e-6, 0.0), 0.0);
  EXPECT_NEAR(cell.transient(10e-6, 1e-6, 10 * cell.latency_s()), settled,
              1e-9 * settled);
}

TEST(WtaTree, CellCountFormula) {
  // N = 2^K - 1 with K = ceil(log2 D) (Sec. 3.3).
  EXPECT_EQ(WtaTree(2).num_cells(), 1u);
  EXPECT_EQ(WtaTree(4).num_cells(), 3u);
  EXPECT_EQ(WtaTree(5).num_cells(), 7u);
  EXPECT_EQ(WtaTree(8).num_cells(), 7u);
  EXPECT_EQ(WtaTree(9).num_cells(), 15u);
}

TEST(WtaTree, DepthIsCeilLog2) {
  EXPECT_EQ(WtaTree(1).depth(), 0u);
  EXPECT_EQ(WtaTree(2).depth(), 1u);
  EXPECT_EQ(WtaTree(3).depth(), 2u);
  EXPECT_EQ(WtaTree(8).depth(), 3u);
}

TEST(WtaTree, ReduceFindsMaxDeterministically) {
  WtaCellParams params;
  params.offset_sigma = 0.0;
  params.read_noise_rel = 0.0;
  const WtaTree tree(6, params);
  const double out = tree.reduce({1e-6, 9e-6, 3e-6, 2e-6, 8e-6, 4e-6});
  EXPECT_DOUBLE_EQ(out, 9e-6);
}

TEST(WtaTree, ReduceErrorBoundedByDepthOffsets) {
  const WtaTree tree(8);
  util::Rng rng(43);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> in(8);
    double truth = 0.0;
    for (auto& v : in) {
      v = rng.uniform(1e-6, 20e-6);
      truth = std::max(truth, v);
    }
    const double out = tree.reduce(in, &rng);
    // 3 levels of 0.25% Gaussian offsets: 5σ bound ≈ 2.2%.
    EXPECT_NEAR(out, truth, 0.03 * truth);
  }
}

TEST(WtaTree, WinnerMatchesArgmaxForSeparatedInputs) {
  const WtaTree tree(5);
  util::Rng rng(44);
  const std::vector<double> in{1e-6, 2e-6, 15e-6, 3e-6, 4e-6};
  for (int t = 0; t < 50; ++t) EXPECT_EQ(tree.winner(in, &rng), 2u);
}

TEST(WtaTree, SingleInputPassesThrough) {
  const WtaTree tree(1);
  EXPECT_DOUBLE_EQ(tree.reduce({5e-6}), 5e-6);
  EXPECT_EQ(tree.winner({5e-6}), 0u);
}

TEST(WtaTree, LatencyIsDepthTimesCellLatency) {
  const WtaTree tree(8);
  EXPECT_DOUBLE_EQ(tree.latency_s(), 3 * 0.08e-9);
}

TEST(WtaTree, ArityMismatchThrows) {
  const WtaTree tree(4);
  EXPECT_THROW(tree.reduce({1e-6, 2e-6}), std::invalid_argument);
}

TEST(WtaTree, CloseInputsCanFlipButValueStaysClose) {
  // When two inputs are within the offset band the winner may flip, but the
  // reduced value must stay within the offset envelope of the true max.
  const WtaTree tree(2);
  util::Rng rng(45);
  const double a = 10.00e-6, b = 10.01e-6;
  for (int t = 0; t < 500; ++t) {
    const double out = tree.reduce({a, b}, &rng);
    EXPECT_NEAR(out, b, 5.0 * 0.0025 * b);  // within 5 sigma of the offset
  }
}

}  // namespace
}  // namespace cnash::wta
