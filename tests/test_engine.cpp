// SolverEngine: service-pool dispatch with thread-count-invariant determinism.
// The contract under test (see engine.hpp): for a fixed seed, run(N) returns
// bit-identical SolveSample vectors for ANY thread cap, because every run
// derives its SA stream and evaluator instance from keyed RNG splits rather
// than from shared sequential state.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/solver.hpp"
#include "game/games.hpp"
#include "game/support_enum.hpp"
#include "game/verify.hpp"

namespace cnash::core {
namespace {

/// Byte-level fingerprint of an outcome vector: exact doubles and profiles.
std::string fingerprint(const std::vector<SolveSample>& outcomes) {
  std::string fp;
  for (const auto& o : outcomes) {
    fp += o.profile->key();
    fp += '|';
    const auto append_bits = [&fp](double v) {
      const char* bytes = reinterpret_cast<const char*>(&v);
      fp.append(bytes, sizeof(v));
    };
    append_bits(o.objective);
    for (double x : o.p) append_bits(x);
    for (double x : o.q) append_bits(x);
    fp += '\n';
  }
  return fp;
}

SolverEngine make_engine(bool hardware, std::size_t threads,
                         std::uint64_t seed, std::size_t iterations = 600) {
  const game::BimatrixGame g = game::bird_game();
  EngineOptions opts;
  opts.intervals = 12;
  opts.sa.iterations = iterations;
  opts.seed = seed;
  opts.threads = threads;
  std::shared_ptr<const EvaluatorFactory> factory;
  if (hardware) {
    factory = std::make_shared<HardwareEvaluatorFactory>(
        g, opts.intervals, TwoPhaseConfig{}, util::Rng(seed));
  } else {
    factory = std::make_shared<ExactEvaluatorFactory>(g);
  }
  return SolverEngine(std::move(factory), opts);
}

TEST(SolverEngine, ThreadCountInvariantExactBackend) {
  const auto baseline = fingerprint(make_engine(false, 1, 0xABCD).run(24));
  for (const std::size_t threads : {2u, 8u}) {
    auto engine = make_engine(false, threads, 0xABCD);
    EXPECT_EQ(fingerprint(engine.run(24)), baseline)
        << "threads=" << threads;
  }
}

TEST(SolverEngine, ThreadCountInvariantHardwareBackend) {
  // The strong version of the contract: even with per-instance device
  // variability and per-read noise, outcomes are scheduling-independent.
  const auto baseline = fingerprint(make_engine(true, 1, 0xBEEF).run(16));
  for (const std::size_t threads : {2u, 8u}) {
    auto engine = make_engine(true, threads, 0xBEEF);
    EXPECT_EQ(fingerprint(engine.run(16)), baseline)
        << "threads=" << threads;
  }
}

TEST(SolverEngine, BatchesContinueTheRunSequence) {
  auto once = make_engine(false, 1, 77);
  auto split = make_engine(false, 4, 77);
  const auto all = once.run(10);
  auto head = split.run(4);
  const auto tail = split.run(6);
  head.insert(head.end(), tail.begin(), tail.end());
  EXPECT_EQ(fingerprint(head), fingerprint(all));
}

TEST(SolverEngine, RewindReplaysRunZero) {
  auto engine = make_engine(false, 2, 31);
  const auto first = engine.run(5);
  engine.rewind();
  const auto replay = engine.run(5);
  EXPECT_EQ(fingerprint(first), fingerprint(replay));
}

TEST(SolverEngine, DifferentSeedsProduceDifferentRuns) {
  auto a = make_engine(false, 2, 1);
  auto b = make_engine(false, 2, 2);
  EXPECT_NE(fingerprint(a.run(8)), fingerprint(b.run(8)));
}

TEST(SolverEngine, ReportBestNeverWorseThanFinal) {
  // Same seed => same per-run trajectories, so best <= final run by run.
  auto final_engine = make_engine(false, 4, 555);
  EngineOptions opts = final_engine.options();
  opts.report_best = true;
  SolverEngine best(std::make_shared<ExactEvaluatorFactory>(game::bird_game()),
                    opts);
  const auto of = final_engine.run(10);
  const auto ob = best.run(10);
  for (std::size_t i = 0; i < of.size(); ++i)
    EXPECT_LE(ob[i].objective, of[i].objective + 1e-12);
}

TEST(SolverEngine, ZeroRunsIsEmpty) {
  auto engine = make_engine(false, 4, 99);
  EXPECT_TRUE(engine.run(0).empty());
}

TEST(SolverEngine, ParallelRunsStillSolve) {
  // Quality survives parallel dispatch: most runs land on equilibria.
  auto engine = make_engine(false, 8, 4321, /*iterations=*/4000);
  const auto outcomes = engine.run(24);
  const auto g = game::bird_game();
  int nash = 0;
  for (const auto& o : outcomes)
    if (game::is_nash_equilibrium(g, o.p, o.q, 1e-9)) ++nash;
  EXPECT_GE(nash, 16);
}

// ---- Facade: CNashConfig::seed reproducibility across thread counts --------

TEST(SolverFacade, SameSeedSameOutcomesAcrossThreadCounts) {
  // Documented CNashConfig contract: `seed` fully determines run outcomes;
  // `threads` (1, 2, 8) only changes wall-clock, never results.
  std::string baseline;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    CNashConfig cfg;
    cfg.use_hardware = true;
    cfg.sa.iterations = 400;
    cfg.seed = 20240613;
    cfg.threads = threads;
    CNashSolver solver(game::battle_of_sexes(), cfg);
    const auto fp = fingerprint(solver.run(12));
    if (baseline.empty())
      baseline = fp;
    else
      EXPECT_EQ(fp, baseline) << "threads=" << threads;
  }
}

TEST(SolverFacade, ProbeEvaluatorDoesNotPerturbRuns) {
  CNashConfig cfg;
  cfg.sa.iterations = 300;
  cfg.seed = 808;
  cfg.threads = 2;
  CNashSolver with_probe(game::battle_of_sexes(), cfg);
  ASSERT_NE(with_probe.hardware(), nullptr);
  // Inspect the probe before running; run outcomes must not shift.
  (void)with_probe.hardware()->crossbar_m().mapping().geometry();
  CNashSolver untouched(game::battle_of_sexes(), cfg);
  EXPECT_EQ(fingerprint(with_probe.run(6)), fingerprint(untouched.run(6)));
}

}  // namespace
}  // namespace cnash::core
