#include <gtest/gtest.h>

#include <cmath>

#include "core/timing.hpp"

namespace cnash::core {
namespace {

xbar::MappingGeometry bos_geometry() {
  // Battle of the Sexes at I=12, t=2: 2 actions each.
  return {2, 2, 12, 2};
}

xbar::MappingGeometry mpd_geometry() { return {8, 8, 60, 22}; }

TEST(CNashTiming, ControllerBoundsIteration) {
  const CNashTimingModel model;
  // Analog path is nanoseconds; the 1 MHz controller dominates.
  EXPECT_LT(model.analog_path_s(bos_geometry()), 1e-6);
  EXPECT_DOUBLE_EQ(model.iteration_s(bos_geometry()),
                   model.params().controller_period_s);
}

TEST(CNashTiming, AnalogPathGrowsWithArray) {
  const CNashTimingModel model;
  EXPECT_GT(model.analog_path_s(mpd_geometry()),
            model.analog_path_s(bos_geometry()));
}

TEST(CNashTiming, RunTimeScalesWithIterations) {
  const CNashTimingModel model;
  const double t1 = model.run_time_s(bos_geometry(), 10000);
  const double t2 = model.run_time_s(bos_geometry(), 20000);
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
  // 10k iterations at 1 MHz controller -> 10 ms (paper's scale for BoS).
  EXPECT_NEAR(t1, 0.01, 1e-6);
}

TEST(CNashTiming, TimeToSolutionDividesBySuccessRate) {
  const CNashTimingModel model;
  const double run = model.run_time_s(bos_geometry(), 10000);
  EXPECT_DOUBLE_EQ(model.time_to_solution_s(bos_geometry(), 10000, 0.5),
                   2.0 * run);
  EXPECT_TRUE(std::isinf(model.time_to_solution_s(bos_geometry(), 10000, 0.0)));
}

TEST(CNashTiming, TiledAnalogPathBeatsMonolithicForLargeArrays) {
  const CNashTimingModel model;
  // 256-action, I=8, t=7 game: the monolithic array has 2048×14336 lines,
  // the tiled chip fixed 64×1024 tiles plus a log-depth H-tree.
  const xbar::MappingGeometry mono{256, 256, 8, 7};
  const TileGridTiming grid{64, 1024, 32, 13, 256};
  EXPECT_LT(model.tiled_analog_path_s(grid), model.analog_path_s(mono));
  // Both still controller-bound at this size.
  EXPECT_DOUBLE_EQ(model.tiled_iteration_s(grid),
                   model.params().controller_period_s);
  EXPECT_DOUBLE_EQ(model.tiled_run_time_s(grid, 1000),
                   1000.0 * model.tiled_iteration_s(grid));
}

TEST(CNashTiming, TiledAnalogPathGrowsWithGridDepth) {
  const CNashTimingModel model;
  const TileGridTiming small{64, 1024, 2, 1, 16};
  const TileGridTiming big{64, 1024, 32, 13, 16};
  // Same tile (same settle), deeper H-tree -> longer path.
  EXPECT_GT(model.tiled_analog_path_s(big), model.tiled_analog_path_s(small));
  // A 1×1 grid has no aggregation stage: the tiled path equals the
  // monolithic path over the tile's own geometry... modulo the identical
  // WTA/ADC terms, the settle is the tile's.
  const TileGridTiming single{24, 48, 1, 1, 2};
  const xbar::MappingGeometry same_size{2, 2, 12, 2};  // 24×48 lines
  EXPECT_DOUBLE_EQ(model.tiled_analog_path_s(single),
                   model.analog_path_s(same_size));
}

TEST(DWaveTiming, JobTimeComposition) {
  const DWaveTimingModel m(dwave_2000q6_timing());
  const auto& p = m.params();
  EXPECT_DOUBLE_EQ(m.job_time_s(),
                   p.programming_s + p.per_sample_s * p.reads_per_job);
}

TEST(DWaveTiming, GenerationsOrdered) {
  const DWaveTimingModel q2000(dwave_2000q6_timing());
  const DWaveTimingModel adv(dwave_advantage41_timing());
  EXPECT_GT(q2000.job_time_s(), adv.job_time_s());
}

TEST(DWaveTiming, PaperScaleRatios) {
  // Sanity: the calibration lands near the paper's reported speedups —
  // 2000Q / C-Nash ≈ 157.9X and Advantage / C-Nash ≈ 79X on BoS.
  const CNashTimingModel cnash;
  const DWaveTimingModel q2000(dwave_2000q6_timing());
  const DWaveTimingModel adv(dwave_advantage41_timing());
  const double c = cnash.time_to_solution_s(bos_geometry(), 10000, 1.0);
  const double r2000 = q2000.time_to_solution_s(0.9962) / c;
  const double radv = adv.time_to_solution_s(0.9804) / c;
  EXPECT_NEAR(r2000, 157.9, 25.0);
  EXPECT_NEAR(radv, 79.0, 15.0);
}

TEST(DWaveTiming, ZeroReadsRejected) {
  EXPECT_THROW(DWaveTimingModel({0.1, 1e-4, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace cnash::core
